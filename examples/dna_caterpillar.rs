//! Caterpillar expressions on DNA (paper Sections 1.3 and 6.2).
//!
//! Demonstrates two of the paper's showcase capabilities:
//!
//! 1. **Regular string matching inside the tree** — the §1.3 example:
//!    select `gene` nodes with a `sequence` child whose text contains a
//!    substring matching `ACCGT(GA(C|G)ATT)*` — expressible because text
//!    characters are sibling nodes.
//! 2. **The sideways infix walk** — the §6.2 caterpillar that finds the
//!    previous symbol of the sequence in the balanced infix tree.
//!
//! ```sh
//! cargo run --example dna_caterpillar
//! ```

use arb::datagen::{acgt_infix_tree, random_acgt};
use arb::tmnf::programs::INFIX_PREVIOUS;
use arb::tree::{infix, LabelTable};
use arb::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The gene/sequence example -----------------------------------
    let xml = "<db>\
        <gene><name>g1</name><sequence>TTACCGTGACATTGAGATT</sequence></gene>\
        <gene><name>g2</name><sequence>ACCGTT</sequence></gene>\
        <gene><name>g3</name><sequence>CCGTGACATT</sequence></gene>\
    </db>";
    let mut db = Database::from_xml_str(xml)?;

    // Walk the character chain: a node starts a match if the regex
    // ACCGT(GA(C|G)ATT)* can be read along NextSibling moves. The
    // sequence contains a matching substring iff some char node starts a
    // match; propagate that up to the sequence element and then to the
    // gene.
    let program = format!(
        "Match :- V.Label['A'].NextSibling.Label['C'].NextSibling.Label['C']\
                  .NextSibling.Label['G'].NextSibling.Label['T']{};\n\
         HasMatch :- Match.invNextSibling*.invFirstChild;\n\
         SeqWithMatch :- HasMatch, Label[sequence];\n\
         QUERY :- SeqWithMatch.invNextSibling*.invFirstChild, Label[gene];\n",
        // (GA(C|G)ATT)* unrolled as a caterpillar group:
        ".(NextSibling.Label['G'].NextSibling.Label['A']\
          .(NextSibling.Label['C'] | NextSibling.Label['G'])\
          .NextSibling.Label['A'].NextSibling.Label['T'].NextSibling.Label['T'])*"
    );
    let q = db.compile_tmnf(&program)?;
    let outcome = db.prepare(&[q]).run_one()?;
    println!(
        "genes whose sequence matches ACCGT(GA(C|G)ATT)*: {}",
        outcome.stats.selected
    );
    let tree = db.to_tree()?;
    for v in outcome.selected.iter() {
        // Print the gene's name (first child chain: name element's text).
        let name_el = tree.first_child(v).expect("gene has children");
        println!("  {}", tree.text_of_children(name_el));
    }
    // g1 contains ACCGT+GACATT+ (one full repetition then GAGATT...),
    // g2 contains plain ACCGT, g3 lacks the ACCGT prefix.
    assert_eq!(outcome.stats.selected, 2);

    // --- 2. The infix sideways walk --------------------------------------
    let seq = random_acgt(10, 7);
    let mut labels = LabelTable::new();
    let infix_tree = acgt_infix_tree(&seq, &mut labels);
    println!(
        "\ninfix tree over {} symbols, binary depth {}",
        seq.len(),
        infix::binary_depth(&infix_tree)
    );
    let mut db = Database::from_tree(infix_tree, labels);
    // Select occurrences of "CG": start at a G node, walk the sideways
    // caterpillar to the previous symbol, and require it to be a C. The
    // selected node is the C of each CG bigram.
    let src = format!("QUERY :- V.Label[G].{INFIX_PREVIOUS}.Label[C];");
    let q = db.compile_tmnf(&src)?;
    let outcome = db.prepare(&[q]).run_one()?;
    // Count CG bigrams in the raw sequence to double-check.
    let chars: Vec<u8> = seq.iter().map(|l| l.text_byte().expect("char")).collect();
    let expected = chars.windows(2).filter(|w| w == b"CG").count() as u64;
    println!(
        "CG bigrams via caterpillar walk: {} (string count: {expected})",
        outcome.stats.selected
    );
    assert_eq!(outcome.stats.selected, expected);
    Ok(())
}
