//! Paper Example 2.2: mark every node whose subtree contains an even
//! number of leaves labeled `a` — counting modulo a constant, a query no
//! path language can express, evaluated bottom-up by the tree automata.
//!
//! ```sh
//! cargo run --example even_odd
//! ```

use arb::tmnf::programs::EVEN_ODD;
use arb::{Database, QueryOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let xml = "<b><a/><a/><b><a/><a/></b></b>";
    println!("document: {xml}\n");
    let mut db = Database::from_xml_str(xml)?;

    // The program computes both Even and Odd; select Even nodes.
    let src = format!("{EVEN_ODD}\nQUERY :- Even, Even;");
    let q = db.compile_tmnf(&src)?;
    let outcome: QueryOutcome = db.prepare(&[q]).run_one()?;

    println!("nodes with an EVEN number of 'a'-leaves in their subtree:");
    for v in outcome.selected.iter() {
        println!("  node {} (preorder)", v.0);
    }
    // Root has 4 'a' leaves => Even; the inner <b> has 2 => Even;
    // each <a/> leaf contains itself => Odd:
    let tree = db.to_tree()?;
    for v in tree.nodes() {
        let name = db.labels().name(tree.label(v)).into_owned();
        println!(
            "  node {}: <{}> => {}",
            v.0,
            name,
            if outcome.selected.contains(v) {
                "Even"
            } else {
                "Odd"
            }
        );
    }
    Ok(())
}
