//! DTD conformance as a query (paper §1.3, item 4): select exactly the
//! nodes whose subtree conforms to a document type — a *universal*
//! property over whole subtrees, far beyond path languages, evaluated in
//! the same two scans as any other query.
//!
//! ```sh
//! cargo run --example dtd_conformance
//! ```

use arb::tmnf::{conformance_program, Dtd};
use arb::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dtd = Dtd::parse(
        "
        library = (book*);
        book    = (title, author+, chapter*);
        title   = #PCDATA*;
        author  = #PCDATA*;
        chapter = (#PCDATA | emph)*;
        emph    = #PCDATA*;
    ",
    )?;

    // The second book lacks an author; the third contains a stray tag.
    let xml = "<library>\
        <book><title>Good</title><author>K</author><chapter>ok <emph>fine</emph></chapter></book>\
        <book><title>No author</title></book>\
        <book><title>Bad</title><author>K</author><chapter><title>!</title></chapter></book>\
    </library>";
    let mut db = Database::from_xml_str(xml)?;

    let mut labels = db.labels().clone();
    let prog = conformance_program(&dtd, &mut labels);
    println!(
        "conformance program: {} predicates, {} rules",
        prog.pred_count(),
        prog.rule_count()
    );

    // Run it through the engine by wrapping it as a Query via TMNF text is
    // unnecessary — evaluate the compiled program directly:
    let tree = db.to_tree()?;
    let res = arb::core::evaluate_tree(&prog, &tree);
    let conf = prog.query_pred().expect("Conf");

    let mut book_no = 0;
    for v in tree.nodes() {
        let name = labels.name(tree.label(v)).into_owned();
        if name == "book" {
            book_no += 1;
            println!(
                "book {book_no}: {}",
                if res.holds(conf, v) {
                    "conforms"
                } else {
                    "DOES NOT conform"
                }
            );
        }
        if name == "library" {
            println!(
                "library as a whole: {}",
                if res.holds(conf, v) {
                    "conforms"
                } else {
                    "DOES NOT conform"
                }
            );
        }
    }

    // Select the *maximal* conforming books with XPath-style composition:
    // conforming nodes are just a predicate, so they can be combined with
    // any other TMNF machinery.
    let q = db.compile_tmnf(
        "# books whose subtree has a chapter child\n\
         HasChapter :- V.Label[chapter].invNextSibling*.invFirstChild;\n\
         QUERY :- HasChapter, Label[book];",
    )?;
    let outcome = db.prepare(&[q]).run_one()?;
    println!(
        "\nbooks with chapters (plain TMNF): {}",
        outcome.stats.selected
    );
    Ok(())
}
