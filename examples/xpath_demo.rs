//! Core XPath on the tree-automata engine: all structural axes and
//! boolean conditions with negation (paper Section 1.3, item 1).
//!
//! ```sh
//! cargo run --example xpath_demo
//! ```

use arb::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let xml = "<doc>\
        <chapter id='1'><title>Intro</title><p>hello</p></chapter>\
        <chapter id='2'><title>Theory</title><p>trees</p><p>automata</p></chapter>\
        <appendix><title>Proofs</title></appendix>\
    </doc>";
    let mut db = Database::from_xml_str(xml)?;

    let queries = [
        // Downward.
        "/doc/chapter/title",
        "//p",
        // Conditions with and/or/not — beyond any streaming fragment.
        "//chapter[title and not(p)]",
        "//chapter[p]/title",
        // Upward and sideways axes.
        "//title/parent::chapter",
        "//chapter/following-sibling::appendix",
        "//p[not(following-sibling::p)]",
        "//title[ancestor::doc]",
        // Document-order axes.
        "//chapter/following::title",
    ];
    for src in queries {
        match db.compile_xpath(src) {
            Ok(q) => {
                let outcome = db.prepare(&[q]).run_one()?;
                let nodes: Vec<u32> = outcome.selected.iter().map(|v| v.0).collect();
                println!("{src:<45} -> {} node(s) {nodes:?}", outcome.stats.selected);
            }
            Err(e) => println!("{src:<45} -> error: {e}"),
        }
    }

    // Marked output for one query.
    let q = db.compile_xpath("//chapter[not(p)]")?;
    let mut out = Vec::new();
    db.prepare(&[q]).run_marked(&mut out)?;
    println!("\nmarked //chapter[not(p)]:\n{}", String::from_utf8(out)?);
    Ok(())
}
