//! Quickstart: create a database, run a TMNF and an XPath query, and
//! print the document with selected nodes marked.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use arb::{Database, Query};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Any XML document; text becomes one character node per byte
    // (paper Section 2.1).
    let xml = "<library><book><title>TCS</title><loaned/></book>\
               <book><title>VLDB03</title></book></library>";
    let mut db = Database::from_xml_str(xml)?;

    // --- TMNF (the Arb surface syntax, paper Section 2.2) --------------
    // Select books that are NOT loaned: a universal condition, expressed
    // with a sibling scan over the children list.
    let tmnf = "
        # NotLoanedFromRight(y): y and all following siblings are not 'loaned'.
        NFR :- -Label[loaned], LastSibling;
        FS :- NFR.invNextSibling;
        NFR :- -Label[loaned], FS;
        NoLoanedChild :- Leaf;
        NoLoanedChild :- NFR.invFirstChild;
        QUERY :- NoLoanedChild, Label[book];
    ";
    let q: Query = db.compile_tmnf(tmnf)?;
    let outcome = db.evaluate(&q)?;
    println!("TMNF: {} book(s) not loaned", outcome.stats.selected);

    // --- XPath (compiled to TMNF, then the same automata) --------------
    let q = db.compile_xpath("//book[not(loaned)]")?;
    let outcome = db.evaluate(&q)?;
    println!("XPath: {} book(s) not loaned", outcome.stats.selected);

    // --- Marked output (the engine's default mode, paper §6.3) ---------
    let mut out = Vec::new();
    db.evaluate_marked(&q, &mut out)?;
    println!("marked: {}", String::from_utf8(out)?);

    // --- Evaluation statistics (paper Figure 6 columns) ----------------
    println!("\n{}", arb::core::EvalStats::table_header());
    println!("{}", outcome.stats.table_row());
    Ok(())
}
