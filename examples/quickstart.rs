//! Quickstart: create a database, prepare a session over a TMNF and an
//! XPath query, and read the results through pluggable sinks.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use arb::engine::{CountSink, EvalRequest, XmlMarkSink};
use arb::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Any XML document; text becomes one character node per byte
    // (paper Section 2.1).
    let xml = "<library><book><title>TCS</title><loaned/></book>\
               <book><title>VLDB03</title></book></library>";
    let mut db = Database::from_xml_str(xml)?;

    // --- Compile: TMNF (the Arb surface syntax, paper Section 2.2) -----
    // Select books that are NOT loaned: a universal condition, expressed
    // with a sibling scan over the children list.
    let tmnf = db.compile_tmnf(
        "
        # NotLoanedFromRight(y): y and all following siblings are not 'loaned'.
        NFR :- -Label[loaned], LastSibling;
        FS :- NFR.invNextSibling;
        NFR :- -Label[loaned], FS;
        NoLoanedChild :- Leaf;
        NoLoanedChild :- NFR.invFirstChild;
        QUERY :- NoLoanedChild, Label[book];
    ",
    )?;
    // --- ... and XPath (compiled to TMNF, then the same automata) ------
    let xpath = db.compile_xpath("//book[not(loaned)]")?;

    // --- Prepare once, evaluate in ONE shared two-scan pass ------------
    let session = db.prepare(&[tmnf, xpath]);
    let mut counts = CountSink::default();
    session.eval(&EvalRequest::new(), &mut counts)?;
    println!("TMNF:  {} book(s) not loaned", counts.counts()[0]);
    println!("XPath: {} book(s) not loaned", counts.counts()[1]);

    // --- Marked output (the engine's default mode, paper §6.3) ---------
    // The same session streams the document during phase 2, marking the
    // union of what the queries selected.
    let mut mark = XmlMarkSink::new(db.labels(), Vec::new());
    session.eval(&EvalRequest::new(), &mut mark)?;
    let out = mark.into_inner().expect("run completed");
    println!("marked: {}", String::from_utf8(out)?);

    // --- Evaluation statistics (paper Figure 6 columns) ----------------
    let outcome = session.run()?;
    println!("\n{}", arb::core::EvalStats::table_header());
    for o in &outcome.outcomes {
        println!("{}", o.stats.table_row());
    }
    Ok(())
}
