//! The paper's Treebank benchmark scenario (Section 6.2) end to end:
//! generate a synthetic constituency corpus, build an on-disk `.arb`
//! database with the two-pass algorithm, and evaluate the paper's example
//! size-5 regular path query `S.VP.(NP.PP)*.NP` with two linear scans.
//!
//! ```sh
//! cargo run --release --example treebank_paths
//! ```

use arb::datagen::{treebank_tree, TreebankConfig};
use arb::storage::{create_from_tree, CreationStats};
use arb::tree::LabelTable;
use arb::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate the corpus (synthetic stand-in for Penn Treebank).
    let mut labels = LabelTable::new();
    let tree = treebank_tree(
        &TreebankConfig {
            target_elems: 50_000,
            seed: 42,
            filler_tags: 246,
        },
        &mut labels,
    );
    println!("generated {} nodes", tree.len());

    // 2. Store it in the Arb storage model.
    let dir = std::env::temp_dir().join("arb-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("treebank.arb");
    let stats = create_from_tree(&tree, &labels, &path)?;
    println!("{}", CreationStats::table_header());
    println!("{}", stats.table_row("treebank"));

    // 3. The paper's example query, in the Arb surface syntax, where
    //    R = FirstChild.NextSibling* walks to a child in the unranked tree.
    let mut db = Database::open_arb(&path)?;
    let query = "QUERY :- V.Label[S].FirstChild.NextSibling*.Label[VP].\
                 (FirstChild.NextSibling*.Label[NP].FirstChild.NextSibling*.Label[PP])*.\
                 FirstChild.NextSibling*.Label[NP];";
    let q = db.compile_tmnf(query)?;
    println!(
        "\nquery S.VP.(NP.PP)*.NP  (|IDB| = {}, |P| = {})",
        q.idb_count(),
        q.rule_count()
    );

    // 4. Two linear scans: backward (bottom-up automaton, states streamed
    //    to the .sta file) and forward (top-down automaton).
    let outcome = db.prepare(&[q]).run_one()?;
    println!("{}", arb::core::EvalStats::table_header());
    println!("{}", outcome.stats.table_row());
    println!(
        "\nselected {} NP phrases; {} + {} lazily computed transitions",
        outcome.stats.selected, outcome.stats.phase1_transitions, outcome.stats.phase2_transitions
    );
    Ok(())
}
