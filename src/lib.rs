//! # arb — facade crate
//!
//! Re-exports the full Arb-rs workspace: a Rust reproduction of
//! *"Efficient Processing of Expressive Node-Selecting Queries on XML Data
//! in Secondary Storage: A Tree Automata-based Approach"* (Christoph Koch,
//! VLDB 2003).
//!
//! See the crate-level docs of the individual subsystems:
//!
//! * [`tree`] — binary tree data model (paper §2.1)
//! * [`xml`] — streaming XML (SAX) substrate
//! * [`logic`] — propositional Horn programs, LTUR, residual programs (§4.1)
//! * [`tmnf`] — the TMNF query language and caterpillar expressions (§2.2)
//! * [`core`] — tree automata, STAs and two-phase evaluation (§3–4)
//! * [`storage`] — the `.arb` secondary-storage model (§5)
//! * [`xpath`] — Core XPath front end
//! * [`datagen`] — workload generators for the evaluation (§6)
//! * [`engine`] — the high-level query engine API
//!
//! ## Building and testing
//!
//! The workspace is fully offline: the four external dependencies
//! (`rand`, `proptest`, `criterion`, `crossbeam`) are vendored as
//! API-subset stand-ins under `vendor/` (see `vendor/README.md`).
//!
//! ```text
//! cargo build --release      # all 11 crates + the `arb` CLI binary
//! cargo test -q              # unit, property and integration suites
//! cargo bench --no-run       # compile the four criterion benches
//! cargo bench -p arb-bench   # run them (ltur, storage, twophase, xpath)
//! ```
//!
//! ## Batched multi-query evaluation
//!
//! Several queries — TMNF or XPath — evaluate as one [`QueryBatch`]
//! (paper §7): the compiled programs are merged at the IR level
//! ([`tmnf::merge_programs`], collision-free predicate renaming, shared
//! EDB atoms) and the merged program runs through the ordinary two-phase
//! machinery, so the whole batch costs **one** backward and **one**
//! forward linear scan regardless of its size (`EvalStats::backward_scans`
//! / `forward_scans` count them). Results are demultiplexed into one
//! [`QueryOutcome`] per query. Entry points:
//!
//! * [`QueryBatch::new`] / [`Database::evaluate_batch`] (also
//!   `evaluate_boolean_batch` and `evaluate_batch_marked`),
//! * [`engine::evaluate_disk_batch`] and
//!   [`engine::evaluate_disk_batch_with_hook`] over raw [`CoreProgram`]s
//!   (`QueryBatch::from_programs`),
//! * [`core::evaluate_tree_batch`] for in-memory trees,
//! * CLI: repeat `--tmnf`/`-q`/`--xpath`/`--file` under `arb query` (or
//!   pass `--batch`) to submit a batch; results print per query as
//!   `q<i>: …`.
//!
//! [`CoreProgram`]: tmnf::CoreProgram
//!
//! The nine root integration suites are the correctness spine:
//! `paper_claims`, `theorem_4_1`, `xpath_differential`,
//! `dtd_differential`, `storage_model`, `twophase_vs_naive`,
//! `batch_differential`, `end_to_end` and `section_1_3`. Property
//! suites take an explicit
//! case-count override for deep runs (`ARB_PROPTEST_CASES=5000 cargo
//! test`) and a global input seed (`ARB_PROPTEST_SEED`); all datagen
//! workloads are seeded, so every suite is deterministic end to end.
//!
//! Paper-figure reproductions live in `arb-bench` as binaries:
//! `cargo run --release -p arb-bench --bin fig5` (creation statistics),
//! `fig6 [treebank|acgt-flat|acgt-infix|all]`, `baseline`, `multiquery`,
//! `parallel`, and `ablation`. Sizes scale via `ARB_ACGT_LOG2`,
//! `ARB_TREEBANK_ELEMS` and friends — see the `arb_bench` crate docs.

pub use arb_core as core;
pub use arb_datagen as datagen;
pub use arb_engine as engine;
pub use arb_logic as logic;
pub use arb_storage as storage;
pub use arb_tmnf as tmnf;
pub use arb_tree as tree;
pub use arb_xml as xml;
pub use arb_xpath as xpath;

pub use arb_engine::{BatchOutcome, Database, Engine, Query, QueryBatch, QueryOutcome};
