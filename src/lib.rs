//! # arb — facade crate
//!
//! Re-exports the full Arb-rs workspace: a Rust reproduction of
//! *"Efficient Processing of Expressive Node-Selecting Queries on XML Data
//! in Secondary Storage: A Tree Automata-based Approach"* (Christoph Koch,
//! VLDB 2003).
//!
//! See the crate-level docs of the individual subsystems:
//!
//! * [`tree`] — binary tree data model (paper §2.1)
//! * [`xml`] — streaming XML (SAX) substrate
//! * [`logic`] — propositional Horn programs, LTUR, residual programs (§4.1)
//! * [`tmnf`] — the TMNF query language and caterpillar expressions (§2.2)
//! * [`core`] — tree automata, STAs and two-phase evaluation (§3–4)
//! * [`storage`] — the `.arb` secondary-storage model (§5), with two
//!   on-disk formats: v1 (the paper's bare 2-byte records) and v2
//!   (versioned, block-compressed, checksummed — the creation default)
//! * [`xpath`] — Core XPath front end
//! * [`datagen`] — workload generators for the evaluation (§6)
//! * [`engine`] — the high-level query engine API
//! * [`server`] — the resident query service (admission-window scan
//!   sharing over a hand-rolled TCP protocol)
//!
//! ## Quick start: one evaluation surface
//!
//! The paper has one evaluation algorithm — compile to strict TMNF, run
//! two linear scans — and the engine mirrors that with **one** entry
//! point: compile queries against a [`Database`], prepare a [`Session`]
//! (a single query is a batch of one; k queries share the same two-scan
//! pass, §7), describe the run with an [`EvalRequest`], and plug a
//! [`ResultSink`] to choose the output shape:
//!
//! ```
//! use arb::engine::{CountSink, EvalRequest, XmlMarkSink};
//! use arb::Database;
//!
//! let mut db = Database::from_xml_str("<r><a/><b><a/></b></r>")?;
//! let q1 = db.compile_tmnf("QUERY :- V.Label[a];")?;
//! let q2 = db.compile_xpath("//b")?;
//! let session = db.prepare(&[q1, q2]);
//!
//! // Per-query counts from one shared backward + forward scan.
//! let mut counts = CountSink::default();
//! session.eval(&EvalRequest::new(), &mut counts)?;
//! assert_eq!(counts.counts(), &[2, 1]);
//!
//! // The same prepared session streams marked XML during phase 2.
//! let mut mark = XmlMarkSink::new(db.labels(), Vec::new());
//! session.eval(&EvalRequest::new(), &mut mark)?;
//! assert!(String::from_utf8(mark.into_inner().unwrap())?.contains("arb:selected"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Provided sinks: [`engine::BooleanSink`] (accept/reject per query —
//! a single backward scan on disk databases), [`engine::CountSink`],
//! [`engine::NodeSetSink`], and [`engine::XmlMarkSink`] (streams during
//! phase 2 without materializing extra node sets). [`EvalOptions`]
//! carries the knobs: `prefer_memory` materializes a disk database
//! first, `parallelism` splits the pass over a subtree frontier with
//! worker threads on either backend (§6.2 —
//! [`core::evaluate_tree_parallel`] in memory; on disk, sharded
//! backward/forward *range scans* over disjoint subtree record windows
//! with segmented `.sta` I/O, see the [`engine::diskeval`] module docs).
//! Every run gets its own uniquely named `.sta` scratch file, so
//! concurrent sessions over one database are safe. Shorthand wrappers
//! [`Session::run`], [`Session::run_one`], [`Session::run_boolean`] and
//! [`Session::run_marked`] cover the common shapes. The legacy
//! `Database::evaluate*` matrix is deprecated and forwards to this path;
//! see the migration table on [`Database`].
//!
//! Raw-program entry points for harnesses that bypass `Query`
//! compilation: [`QueryBatch::from_programs`] +
//! [`Database::prepare_batch`] (or the kernels
//! [`engine::evaluate_disk`] / [`engine::evaluate_disk_batch`] /
//! [`core::evaluate_tree_batch`] directly).
//!
//! ## Build once, eval many
//!
//! Compiled tree automata ([`core::QueryAutomata`]) are a *session*
//! resource, not a per-run one: every [`Session`] owns an
//! [`engine::AutomataPool`], each `eval` takes a pooled automaton
//! (resetting only its per-run node state — the interned transition
//! tables stay warm) and returns it afterwards, so the second and every
//! later evaluation of a prepared session skips the automata build
//! entirely. Sharded runs draw one pooled automaton per worker.
//! [`Session::with_pool`] shares one pool between sessions prepared
//! over the *same* merged program (the server's window cache uses this
//! to keep repeated batch shapes warm across session churn). Every run's
//! [`core::EvalStats`] reports `automata_builds` / `automata_reused` /
//! `automata_build_time`, so reuse is observable — the `session_reuse`
//! integration suite pins that warm runs report zero builds while
//! staying bit-for-bit identical to fresh sessions.
//!
//! ## Evaluation statistics
//!
//! Every run reports [`core::EvalStats`] — the paper's Figure 6 columns
//! (per-phase wall time, lazily computed δ_A/δ_B transitions, state and
//! node counts, `memory_bytes`, scan counters, `.sta` bytes) plus
//! [`core::InternStats`] under `stats.interning`: the pressure of the
//! automata's hash tables, which bound phase-1 throughput on every
//! worker. Its fields: `arena_bytes` (payload of the interned residual
//! programs and predicate sets), `table_bytes` (open-addressing slot
//! arrays, stored hashes and transition key/value vectors),
//! `max_probe` (longest probe sequence any table walked — a clustering
//! indicator; low tens is normal on healthy runs, since grow-time
//! re-placement counts toward the maximum), `alphabet_symbols`
//! (distinct schema symbols `|Σ_A|` seen; the schema abstraction keeps
//! this tiny and, since the dense-alphabet rework, a merged batch may
//! mention **any** number of EDB atoms — the old 128 ceiling is gone),
//! and `bu_entries`/`td_entries` (memoized δ transitions). Parallel
//! runs report master and workers combined. Disk runs additionally
//! report the storage format they read (`db_format`), on v2 databases
//! how many compressed blocks the scans decoded (`blocks_decoded`), and
//! the `.sta` scratch-stream traffic as two counters:
//! `sta_encoded_bytes` (what phase 1 put on disk — under 4 B/node with
//! the default compressed layout) and `sta_decoded_bytes` (the 4 B/state
//! volume phase 2 read back).
//!
//! ## On-disk storage formats
//!
//! [`Database::create_arb_from_xml`] (and the `arb create` CLI verb)
//! write format **v2** by default: a 64-byte checksummed header,
//! delta/varint block-compressed records framed with per-block CRC32s,
//! a materialized subtree-extent section, and a block index that lets
//! range scans seek straight to the first needed block. Pass
//! [`engine::FormatVersion::V1`] (CLI: `--format v1`) for the paper's
//! bare-record layout; [`storage::ArbDatabase::open`] sniffs the
//! version, so both formats are served through the same scan API and
//! corrupt or truncated files of either format are rejected with
//! `InvalidData` instead of silently returning wrong answers (see the
//! `arb_storage` crate docs for the byte-level layout).
//!
//! The temporary `.sta` state stream connecting the two evaluation
//! phases follows the same pattern ([`storage::StaFormat`]): by default
//! phase 1 writes block-framed compressed state runs — delta/varint
//! literals, run-length tokens, and a skip-default token eliding nodes
//! whose state equals the block's most frequent one, each block framed
//! `{n_records, body_len, crc32}` — and phase 2 decodes whole blocks
//! into a reusable buffer instead of issuing one 4-byte read per node.
//! Sharded runs keep their per-worker segment/patch composition (§6.2)
//! as side files of the scratch path. `ARB_STA_FORMAT=flat` (or
//! [`EvalOptions::sta_format`]) selects the paper's bare 4-bytes-per-node
//! layout (footnote 12); a truncated or damaged stream of either layout
//! surfaces as `InvalidData` mid-evaluation, never as silent wrong
//! answers. See [`storage::stafile`] for the byte-level layout.
//!
//! ## Serving: amortizing the pass across clients
//!
//! One-shot `arb query` invocations pay database open, query
//! compilation and a private two-scan pass every time. The resident
//! query service (`arb serve`, crate [`server`]) amortizes all three:
//! open databases stay registered across requests, compiled programs
//! are cached in a byte-bounded LRU keyed by query text, and — the key
//! move — concurrent requests that land within one **admission window**
//! (default 2 ms, cap 64 queries) are merged with the engine's §7
//! multi-query batching into a *single* shared backward + forward scan
//! pair. Eight clients asking in the same window cost one scan pair,
//! not eight; each gets its own result plus wire statistics saying how
//! many queries rode its pass (`batch_size`) and how long admission
//! held it (`queue_wait_us`). A bounded queue sheds overload with a
//! fast `Overloaded` reply instead of buffering without bound.
//!
//! Window *shapes* are cached too: the merged batch and its automata
//! pool are keyed by the sorted query texts of the window, so a hot
//! shape (the same k queries landing together again) skips both the
//! merge and the automata build and reuses warm pooled automata —
//! `automata_builds` stays at one no matter how often the window
//! repeats, visible per reply (`automata builds/reused` in `--stats`)
//! and in the `server-stats` aggregates. `arb serve --workers N` sets
//! the sharded parallelism every dispatched window is evaluated with.
//!
//! ```text
//! arb serve --listen 127.0.0.1:7333 --batch-window 2 --max-batch 64 docs.arb
//! arb client 127.0.0.1:7333 docs --xpath //a --output count --stats
//! #   2 nodes selected
//! #   # shared pass: batch of 8 (queue wait 1312 us), 1 backward + 1 forward
//! #   # scan(s), 2 selected of 20000 nodes, cache hit
//! ```
//!
//! Programmatic access goes through [`server::Client`], or
//! [`server::Server::start`] to embed the service; the length-prefixed
//! frame layout, request/response schema and error codes are specified
//! in the [`server::protocol`] module docs. The `servebench` binary in
//! `arb-bench` drives a server at a fixed offered QPS and reports
//! p50/p99 latency and scans-per-query.
//!
//! ## Updatable databases and standing queries
//!
//! Databases are **updatable in place**. [`DocUpdate`] describes one
//! edit — append a fragment under a node, splice out a subtree for a
//! replacement, or delete one — and
//! [`Database::apply_update`](engine::Database::apply_update) applies
//! it to either backing: in memory the tree is re-spliced; on disk
//! (format v2) the storage layer rewrites only the record blocks the
//! edit window touches, bumps the file's **epoch** in the header, and
//! leaves every other block byte-identical. v2 files that predate the
//! update API open unchanged at epoch 0; v1 files reject updates. The
//! CLI counterpart is `arb update` (which also grows the `.lab` file
//! when a fragment introduces new tags), and `arb stats` prints the
//! epoch with its per-kind append/splice/delete counters.
//!
//! Evaluation keeps up **incrementally**. A [`Session`] (or an owned
//! [`StandingQuery`] for hosts that outlive the session borrow) holds
//! the rho-a/rho-b state vectors of its last run; after an update,
//! [`Session::refresh`](engine::Session::refresh) re-runs phase 1 over
//! the edit window plus the root spine only — stopping the upward walk
//! as soon as a recomputed state re-interns equal — and phase 2 only
//! below the highest changed state, pruning subtrees whose downward
//! state is unchanged. The [`core::EvalStats`] counters `dirty_nodes`,
//! `retained_sta_blocks` and `refreshes` make the savings observable,
//! and on disk the blocked `.sta` stream is rewritten from the first
//! dirty block only. Each refresh returns a [`RefreshReport`] whose
//! [`QueryDelta`]s carry the per-query added/removed nodes and verdict
//! flips. The server folds all of this into the wire protocol:
//! `Register` installs a standing batch, `UpdateDoc` applies one edit
//! and pushes every registration's deltas in its reply (`arb watch` is
//! the CLI loop around it), and `server-stats` counts registrations,
//! updates and delta pushes. The `incremental_differential` suite pins
//! refresh against full re-evaluation bit-for-bit, edit sequences and
//! backends crossed, including the wire deltas.
//!
//! ## Building and testing
//!
//! The workspace is fully offline: the four external dependencies
//! (`rand`, `proptest`, `criterion`, `crossbeam`) are vendored as
//! API-subset stand-ins under `vendor/` (see `vendor/README.md`).
//!
//! ```text
//! cargo build --release      # all 12 crates + the `arb` CLI binary
//! cargo test -q              # unit, property and integration suites
//! cargo bench --no-run       # compile the five criterion benches
//! cargo bench -p arb-bench   # run them (interning, ltur, storage, twophase, xpath)
//! ```
//!
//! The seventeen root integration suites are the correctness spine:
//! `paper_claims`, `theorem_4_1`, `xpath_differential`,
//! `dtd_differential`, `storage_model`, `format_v2` (corrupt-file
//! rejection plus a v1-vs-v2 differential property), `twophase_vs_naive`,
//! `batch_differential`, `session_api`, `session_reuse` (a reused
//! session is bit-for-bit a fresh one, and warm runs never rebuild
//! automata), `end_to_end`, `section_1_3`,
//! `intern_differential` (arena interners vs. a map-based model),
//! `wide_alphabet` (merged batches past 128 EDB atoms),
//! `sta_differential` (blocked vs. flat `.sta` streams vs. in-memory
//! states, sequential and sharded), `server_differential`
//! (concurrent clients vs. one-shot sessions, wire-asserted scan
//! sharing, window-shape automata reuse, overload shedding) and
//! `incremental_differential` (random edit sequences: `Session::refresh`
//! vs. full rebuild + re-evaluation bit-for-bit, plus standing-query
//! wire deltas vs. the diff of full results).
//! Property suites take an explicit case-count override for deep runs
//! (`ARB_PROPTEST_CASES=5000 cargo test`) and a global input seed
//! (`ARB_PROPTEST_SEED`); all datagen workloads are seeded, so every
//! suite is deterministic end to end.
//!
//! Paper-figure reproductions live in `arb-bench` as binaries:
//! `cargo run --release -p arb-bench --bin fig5` (creation statistics),
//! `fig6 [treebank|acgt-flat|acgt-infix|all]`, `baseline`, `multiquery`,
//! `parallel`, `sharded` (per-thread scaling of the sharded disk path),
//! `ablation`, `storagefmt` (v1 vs. v2 creation, file size and cold/warm
//! scan throughput), `servebench` (open-loop load against a resident
//! server: p50/p99 latency, scans-per-query, cache hit and automata
//! reuse rates), and
//! `regress` (benchmark regression tracking against the committed
//! baselines in `crates/bench/baselines/`, now including storage
//! file-size, decode-throughput, server scan-sharing and exact automata
//! build/reuse metrics). Sizes
//! scale via
//! `ARB_ACGT_LOG2`, `ARB_TREEBANK_ELEMS` and friends — see the
//! `arb_bench` crate docs.

pub use arb_core as core;
pub use arb_datagen as datagen;
pub use arb_engine as engine;
pub use arb_logic as logic;
pub use arb_server as server;
pub use arb_storage as storage;
pub use arb_tmnf as tmnf;
pub use arb_tree as tree;
pub use arb_xml as xml;
pub use arb_xpath as xpath;

pub use arb_engine::{
    AppliedUpdate, BatchOutcome, Database, DocUpdate, EvalOptions, EvalReport, EvalRequest, Query,
    QueryBatch, QueryDelta, QueryOutcome, RefreshReport, ResultSink, Session, SinkDemand,
    StaFormat, StandingQuery,
};
