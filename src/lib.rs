//! # arb — facade crate
//!
//! Re-exports the full Arb-rs workspace: a Rust reproduction of
//! *"Efficient Processing of Expressive Node-Selecting Queries on XML Data
//! in Secondary Storage: A Tree Automata-based Approach"* (Christoph Koch,
//! VLDB 2003).
//!
//! See the crate-level docs of the individual subsystems:
//!
//! * [`tree`] — binary tree data model (paper §2.1)
//! * [`xml`] — streaming XML (SAX) substrate
//! * [`logic`] — propositional Horn programs, LTUR, residual programs (§4.1)
//! * [`tmnf`] — the TMNF query language and caterpillar expressions (§2.2)
//! * [`core`] — tree automata, STAs and two-phase evaluation (§3–4)
//! * [`storage`] — the `.arb` secondary-storage model (§5)
//! * [`xpath`] — Core XPath front end
//! * [`datagen`] — workload generators for the evaluation (§6)
//! * [`engine`] — the high-level query engine API

pub use arb_core as core;
pub use arb_datagen as datagen;
pub use arb_engine as engine;
pub use arb_logic as logic;
pub use arb_storage as storage;
pub use arb_tmnf as tmnf;
pub use arb_tree as tree;
pub use arb_xml as xml;
pub use arb_xpath as xpath;

pub use arb_engine::{Database, Engine, Query, QueryOutcome};
