//! Differential property for incremental re-evaluation: after any
//! sequence of document updates, `Session::refresh` must be bit-for-bit
//! the same as throwing the session away, rebuilding the database from
//! the edited document, and re-evaluating from scratch — node sets,
//! counts, verdicts, and streamed marked XML, on both backings and
//! under sharded evaluation. A second test drives the same invariant
//! through the server: the standing-query deltas pushed over the wire
//! must replay to exactly the full result sets of fresh wire queries.
//!
//! The update oracle is independent of the engine's apply path: the test
//! keeps its own record vector and edits it through the public storage
//! planners (`plan_append`/`plan_splice`/`plan_delete` + `apply_edit`),
//! then materializes a fresh in-memory database from it.

use arb::datagen::queries::{RandomPathQuery, R_TOP_DOWN};
use arb::datagen::{treebank_tree, RegexShape, TreebankConfig};
use arb::engine::{BooleanSink, CountSink, EvalRequest, NodeSetSink, XmlMarkSink};
use arb::storage::{
    apply_edit, plan_append, plan_delete, plan_splice, record_extents, records_to_tree, NodeRecord,
};
use arb::tree::{BinaryTree, LabelTable};
use arb::{Database, DocUpdate};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn small_treebank(seed: u64, target_elems: usize) -> (BinaryTree, LabelTable) {
    let mut labels = LabelTable::new();
    let tree = treebank_tree(
        &TreebankConfig {
            target_elems,
            seed,
            filler_tags: 8,
        },
        &mut labels,
    );
    (tree, labels)
}

fn query_sources(k: usize, seed: u64) -> Vec<String> {
    RandomPathQuery::batch(k, 5, &["NP", "VP", "PP", "S"], RegexShape::Tags, seed)
        .iter()
        .map(|q| q.to_program(R_TOP_DOWN))
        .collect()
}

fn tree_records(tree: &BinaryTree) -> Vec<NodeRecord> {
    tree.nodes()
        .map(|v| {
            let info = tree.info(v);
            NodeRecord {
                label: info.label,
                has_first: info.has_first,
                has_second: info.has_second,
            }
        })
        .collect()
}

/// Fragments built from tags every treebank document interns, so the
/// engine's no-new-tags fragment rule never trips.
fn fragment(sel: u8) -> &'static str {
    match sel % 4 {
        0 => "<NP><VP/></NP>",
        1 => "<S><NP/><VP><PP/></VP></S>",
        2 => "<PP/>",
        _ => "<VP><NP/><NP/></VP>",
    }
}

/// Maps raw proptest randomness onto a valid edit for the current
/// document shape: appends target an element node, deletes spare the
/// root, splices may hit any node (including character nodes and the
/// root itself).
fn pick_edit(records: &[NodeRecord], kind: u8, pos_sel: u32, frag_sel: u8) -> DocUpdate {
    let n = records.len() as u32;
    match kind % 3 {
        0 => {
            let elems: Vec<u32> = (0..n)
                .filter(|&v| !records[v as usize].label.is_text())
                .collect();
            DocUpdate::AppendChild {
                under: elems[pos_sel as usize % elems.len()],
                xml: fragment(frag_sel).to_string(),
            }
        }
        1 => DocUpdate::SpliceSubtree {
            at: pos_sel % n,
            xml: fragment(frag_sel).to_string(),
        },
        _ if n > 1 => DocUpdate::DeleteSubtree {
            at: 1 + pos_sel % (n - 1),
        },
        _ => DocUpdate::AppendChild {
            under: 0,
            xml: fragment(frag_sel).to_string(),
        },
    }
}

/// Applies `update` to the model record vector through the public
/// storage planners and returns the edited document as a fresh tree.
fn apply_to_model(
    model: &mut Vec<NodeRecord>,
    labels: &LabelTable,
    update: &DocUpdate,
) -> BinaryTree {
    let (ends, kinds) = record_extents(model).expect("model extents");
    let frag: Vec<NodeRecord> = match update {
        DocUpdate::AppendChild { xml, .. } | DocUpdate::SpliceSubtree { xml, .. } => {
            let mut lt = labels.clone();
            let tree = arb::xml::str_to_tree(xml, &mut lt).expect("fragment parses");
            assert_eq!(
                lt.tag_count(),
                labels.tag_count(),
                "fragments only use existing tags"
            );
            tree_records(&tree)
        }
        DocUpdate::DeleteSubtree { .. } => Vec::new(),
    };
    let plan = match *update {
        DocUpdate::AppendChild { under, .. } => {
            plan_append(model, &ends, &kinds, under, frag.len() as u32)
        }
        DocUpdate::SpliceSubtree { at, .. } => {
            plan_splice(model, &ends, &kinds, at, frag.len() as u32)
        }
        DocUpdate::DeleteSubtree { at } => plan_delete(model, &ends, &kinds, at),
    }
    .expect("edit plans");
    apply_edit(model, &plan, &frag);
    records_to_tree(model).expect("model stays well-formed")
}

/// Replays one wire/report delta onto the shifted previous result set.
fn replay(
    prev: &[u32],
    pos: u32,
    removed: u32,
    inserted: u32,
    added: &[u32],
    gone: &[u32],
) -> Vec<u32> {
    let mut set: Vec<u32> = prev
        .iter()
        .filter(|&&v| v < pos || v >= pos + removed)
        .map(|&v| if v < pos { v } else { v - removed + inserted })
        .collect();
    set.retain(|v| !gone.contains(v));
    set.extend_from_slice(added);
    set.sort_unstable();
    set.dedup();
    set
}

/// Runs a full edit sequence on one backing, checking every refresh
/// against the from-scratch oracle across sinks and thread counts.
fn check_sequence(
    mut db: Database,
    labels: &LabelTable,
    mut model: Vec<NodeRecord>,
    sources: &[String],
    edits: &[(u8, u32, u8)],
) {
    let queries: Vec<arb::Query> = sources
        .iter()
        .map(|s| db.compile_tmnf(s).expect("query compiles"))
        .collect();
    let session = db.prepare(&queries);
    session.prime_standing().expect("prime");
    let mut prev_sets: Vec<Vec<u32>> = Vec::new();

    for (step, &(kind, pos_sel, frag_sel)) in edits.iter().enumerate() {
        let update = pick_edit(&model, kind, pos_sel, frag_sel);
        let report = session.refresh(&update).expect("refresh");
        let oracle_tree = apply_to_model(&mut model, labels, &update);

        // From-scratch oracle: a fresh database over the edited document.
        let mut oracle = Database::from_tree(oracle_tree, labels.clone());
        let oracle_queries: Vec<arb::Query> = sources
            .iter()
            .map(|s| oracle.compile_tmnf(s).expect("query compiles"))
            .collect();
        let oracle_session = oracle.prepare(&oracle_queries);
        let mut oracle_sets = NodeSetSink::default();
        let mut oracle_bools = BooleanSink::default();
        let mut oracle_mark = XmlMarkSink::new(oracle.labels(), Vec::new());
        oracle_session
            .eval(&EvalRequest::new(), &mut oracle_sets)
            .expect("oracle sets");
        oracle_session
            .eval(&EvalRequest::new(), &mut oracle_bools)
            .expect("oracle bools");
        oracle_session
            .eval(&EvalRequest::new(), &mut oracle_mark)
            .expect("oracle mark");
        let oracle_marked = oracle_mark.into_inner().expect("marked bytes");

        // The refresh's incremental outcomes equal the oracle's.
        prop_assert_eq!(report.batch.outcomes.len(), sources.len());
        for (i, o) in report.batch.outcomes.iter().enumerate() {
            prop_assert_eq!(
                o.selected.to_vec(),
                oracle_sets.sets()[i].to_vec(),
                "refresh sets: step {} query {}",
                step,
                i
            );
            prop_assert_eq!(
                o.stats.selected,
                oracle_sets.sets()[i].count() as u64,
                "refresh counts: step {} query {}",
                step,
                i
            );
        }
        for (i, d) in report.deltas.iter().enumerate() {
            prop_assert_eq!(
                d.verdict,
                oracle_bools.verdicts()[i],
                "refresh verdicts: step {} query {}",
                step,
                i
            );
        }
        // The refresh touched a window, not the document: no scans, and
        // (beyond what the edit inserted) only genuinely dirty nodes.
        prop_assert_eq!(report.batch.stats.backward_scans, 0);
        prop_assert_eq!(report.batch.stats.forward_scans, 0);
        prop_assert!(report.batch.stats.dirty_nodes >= u64::from(report.plan.inserted));
        prop_assert_eq!(report.batch.stats.refreshes, step as u64 + 1);

        // Deltas replay the previous full sets to the new ones.
        if !prev_sets.is_empty() {
            for (i, d) in report.deltas.iter().enumerate() {
                let replayed = replay(
                    &prev_sets[i],
                    report.plan.pos,
                    report.plan.removed,
                    report.plan.inserted,
                    &d.added,
                    &d.removed,
                );
                prop_assert_eq!(
                    replayed,
                    oracle_sets.sets()[i]
                        .iter()
                        .map(|v| v.0)
                        .collect::<Vec<u32>>(),
                    "delta replay: step {} query {}",
                    step,
                    i
                );
            }
        }
        prev_sets = oracle_sets
            .sets()
            .iter()
            .map(|s| s.iter().map(|v| v.0).collect())
            .collect();

        // The updated backing itself — rewritten record blocks, retained
        // `.sta` tail — evaluates from scratch exactly like the oracle,
        // across all four sinks, sequentially and 4-way sharded.
        for threads in [1usize, 4] {
            let req = EvalRequest::new().parallelism(threads);
            let mut sets = NodeSetSink::default();
            session.eval(&req, &mut sets).expect("full sets");
            for (i, (s, m)) in sets.sets().iter().zip(oracle_sets.sets()).enumerate() {
                prop_assert_eq!(
                    s.to_vec(),
                    m.to_vec(),
                    "full sets: step {} query {} threads {}",
                    step,
                    i,
                    threads
                );
            }
            let mut counts = CountSink::default();
            session.eval(&req, &mut counts).expect("full counts");
            for (i, c) in counts.counts().iter().enumerate() {
                prop_assert_eq!(
                    *c,
                    oracle_sets.sets()[i].count() as u64,
                    "full counts: step {} query {} threads {}",
                    step,
                    i,
                    threads
                );
            }
            let mut bools = BooleanSink::default();
            session.eval(&req, &mut bools).expect("full bools");
            prop_assert_eq!(
                bools.verdicts(),
                oracle_bools.verdicts(),
                "full verdicts: step {} threads {}",
                step,
                threads
            );
            let mut mark = XmlMarkSink::new(db.labels(), Vec::new());
            session.eval(&req, &mut mark).expect("full mark");
            prop_assert_eq!(
                mark.into_inner().expect("marked bytes"),
                oracle_marked.clone(),
                "marked XML: step {} threads {}",
                step,
                threads
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// refresh == rebuild + re-eval, on both backings, for random edit
    /// sequences.
    #[test]
    fn refresh_equals_rebuild((k, tree_seed, query_seed, edits) in
        (1usize..=3, any::<u64>(), any::<u64>(),
         proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u8>()), 2..=4)))
    {
        let (tree, labels) = small_treebank(tree_seed, 120);
        let sources = query_sources(k, query_seed);
        let model = tree_records(&tree);

        // Memory backing.
        check_sequence(
            Database::from_tree(tree.clone(), labels.clone()),
            &labels,
            model.clone(),
            &sources,
            &edits,
        );

        // Disk backing (format v2 — the only updatable format).
        let dir = std::env::temp_dir().join(format!("arb-incdiff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("case-{}.arb", CASE.fetch_add(1, Ordering::Relaxed)));
        arb::storage::create_from_tree(&tree, &labels, &path).expect("create database");
        check_sequence(
            Database::open_arb(&path).expect("open database"),
            &labels,
            model,
            &sources,
            &edits,
        );
    }
}

/// The same invariant over the wire: the standing-query deltas a server
/// pushes after each `UpdateDoc` must replay the previous full results
/// to exactly the full results of fresh wire queries — and the server's
/// standing counters must account for every push.
#[test]
fn wire_deltas_replay_to_full_results() {
    use arb::server::protocol::{QueryResult, WireLanguage, WireUpdate};
    use arb::server::{Client, Server, ServerConfig};

    let (tree, labels) = small_treebank(7, 80);
    let dir = std::env::temp_dir().join(format!("arb-incwire-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("standing.arb");
    arb::storage::create_from_tree(&tree, &labels, &path).expect("create database");

    let handle = Server::start(ServerConfig::default(), &[&path]).expect("server starts");
    let mut c = Client::connect(handle.local_addr()).expect("connect");
    let sources = query_sources(2, 42);
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let reg = c
        .register("standing", WireLanguage::Tmnf, &refs)
        .expect("register");
    assert_eq!(reg.initial.len(), sources.len());
    let mut prev = reg.initial.clone();

    let updates = [
        WireUpdate::AppendChild {
            under: 0,
            xml: "<NP><VP/></NP>".into(),
        },
        WireUpdate::SpliceSubtree {
            at: 2,
            xml: "<S><NP/><PP/></S>".into(),
        },
        WireUpdate::DeleteSubtree { at: 1 },
    ];
    for (step, update) in updates.iter().enumerate() {
        let reply = c.update_doc("standing", update.clone()).expect("update");
        assert_eq!(reply.epoch, step as u64 + 1, "epochs are contiguous");
        let push = reply
            .pushes
            .iter()
            .find(|p| p.handle == reg.handle)
            .expect("our registration got a push");
        assert_eq!(push.queries.len(), sources.len());
        for (i, (source, delta)) in sources.iter().zip(&push.queries).enumerate() {
            let full = match c
                .query(
                    "standing",
                    WireLanguage::Tmnf,
                    arb::server::protocol::OutputKind::Nodes,
                    source,
                )
                .expect("full query")
                .result
            {
                QueryResult::Nodes(nodes) => nodes,
                other => panic!("expected nodes, got {other:?}"),
            };
            let replayed = replay(
                &prev[i],
                reply.pos,
                reply.removed,
                reply.inserted,
                &delta.added,
                &delta.removed,
            );
            assert_eq!(replayed, full, "wire replay: step {step} query {i}");
            prev[i] = full;
        }
    }

    let stats = c.server_stats().expect("stats");
    assert_eq!(stats.standing_registered, 1);
    assert_eq!(stats.standing_active, 1);
    assert_eq!(stats.doc_updates, 3);
    assert_eq!(stats.delta_pushes, 3);

    // After unregistering, updates still apply but push nothing.
    c.unregister("standing", reg.handle).expect("unregister");
    let reply = c
        .update_doc(
            "standing",
            WireUpdate::AppendChild {
                under: 0,
                xml: "<PP/>".into(),
            },
        )
        .expect("update without registrations");
    assert!(reply.pushes.is_empty());
    assert_eq!(c.server_stats().expect("stats").standing_active, 0);

    c.shutdown().expect("shutdown");
    handle.wait();
}
