//! Two-phase automaton evaluation vs. the naive datalog fixpoint on
//! *generated documents*: for every TMNF program in a seeded query batch,
//! both evaluators must select exactly the same node set (Theorem 4.1 on
//! realistic workload data rather than the small random trees of
//! `theorem_4_1.rs`).

use arb::core::evaluate_tree;
use arb::datagen::queries::{RandomPathQuery, R_BOTTOM_UP, R_TOP_DOWN};
use arb::datagen::{acgt_flat_tree, random_acgt, treebank_tree, RegexShape, TreebankConfig};
use arb::tmnf::core::CoreProgram;
use arb::tmnf::{naive, normalize, parse_program};
use arb::tree::{BinaryTree, LabelTable, NodeId};

fn compile(q: &RandomPathQuery, step: &str, labels: &mut LabelTable) -> CoreProgram {
    let src = q.to_program(step);
    let ast = parse_program(&src, labels).expect("generated query parses");
    let mut prog = normalize(&ast);
    let qp = prog.pred_id("QUERY").expect("QUERY head");
    prog.add_query_pred(qp);
    prog
}

/// Runs both evaluators and returns the selected node sets, asserting
/// they agree on every node (not just the selected ones).
fn selected_by_both(prog: &CoreProgram, tree: &BinaryTree) -> Vec<NodeId> {
    let q = prog.query_pred().expect("query pred");
    let fixpoint = naive::evaluate(prog, tree);
    let two = evaluate_tree(prog, tree);
    let mut selected = Vec::new();
    for v in tree.nodes() {
        let naive_holds = fixpoint.holds(q, v);
        assert_eq!(
            two.holds(q, v),
            naive_holds,
            "two-phase disagrees with naive fixpoint at node {}",
            v.0
        );
        if naive_holds {
            selected.push(v);
        }
    }
    selected
}

#[test]
fn treebank_top_down_queries_agree() {
    let mut labels = LabelTable::new();
    let tree = treebank_tree(
        &TreebankConfig {
            target_elems: 1500,
            seed: 0xA11CE,
            filler_tags: 20,
        },
        &mut labels,
    );
    let queries = RandomPathQuery::batch(12, 6, &["NP", "VP", "PP", "S"], RegexShape::Tags, 7);

    let mut any_selected = 0usize;
    for q in &queries {
        let mut lt = labels.clone();
        let prog = compile(q, R_TOP_DOWN, &mut lt);
        any_selected += selected_by_both(&prog, &tree).len();
    }
    // A seeded dozen of size-6 queries over {NP,VP,PP,S} on a 1500-element
    // treebank select *something*; if not, the generators drifted.
    assert!(any_selected > 0, "no query selected any node");
}

#[test]
fn acgt_bottom_up_queries_agree() {
    let mut labels = LabelTable::new();
    let seq = random_acgt(10, 99); // 1023 symbols
    let tree = acgt_flat_tree(&seq, &mut labels);
    let queries = RandomPathQuery::batch(8, 5, &["A", "C", "G", "T"], RegexShape::Chars, 21);

    let mut any_selected = 0usize;
    for q in &queries {
        let mut lt = labels.clone();
        let prog = compile(q, R_BOTTOM_UP, &mut lt);
        any_selected += selected_by_both(&prog, &tree).len();
    }
    assert!(any_selected > 0, "no query selected any node");
}
