//! Build-once / eval-many property suite for the session-owned automata
//! lifecycle: a single reused [`Session`] run N times (mixed sinks, both
//! backends, sequential and frontier-parallel) must be bit-for-bit
//! identical to N fresh sessions over the same queries, and the warm
//! runs must actually *be* warm — `automata_builds == 0`,
//! `automata_reused >= 1` on every round after the first, and (on the
//! sequential path, where exactly one evaluator is live at a time) the
//! session's pool builds exactly one automaton across the whole matrix.

use arb::datagen::queries::{RandomPathQuery, R_TOP_DOWN};
use arb::datagen::{treebank_tree, RegexShape, TreebankConfig};
use arb::engine::{BooleanSink, CountSink, EvalRequest, NodeSetSink, Session, XmlMarkSink};
use arb::tree::{BinaryTree, LabelTable, NodeId};
use arb::Database;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn small_treebank(seed: u64) -> (BinaryTree, LabelTable) {
    let mut labels = LabelTable::new();
    let tree = treebank_tree(
        &TreebankConfig {
            target_elems: 400,
            seed,
            filler_tags: 8,
        },
        &mut labels,
    );
    (tree, labels)
}

/// Both backends over the same document: in-memory, and on-disk `.arb`.
fn both_backends(tree: &BinaryTree, labels: &LabelTable) -> Vec<Database> {
    let dir = std::env::temp_dir().join(format!("arb-session-reuse-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("case-{}.arb", CASE.fetch_add(1, Ordering::Relaxed)));
    arb::storage::create_from_tree(tree, labels, &path).expect("create database");
    vec![
        Database::from_tree(tree.clone(), labels.clone()),
        Database::open_arb(&path).expect("open database"),
    ]
}

/// Everything one evaluation round can observe: verdicts, counts, node
/// sets, marked XML bytes, plus the per-run automata counters stamped on
/// the NodeSet run's shared stats.
#[derive(Debug, Clone, PartialEq)]
struct RunImage {
    verdicts: Vec<bool>,
    counts: Vec<u64>,
    sets: Vec<Vec<NodeId>>,
    marked: Vec<u8>,
}

/// Runs the full sink matrix once on `session` and returns the observed
/// image plus `(automata_builds, automata_reused)` from the NodeSet
/// run's shared-pass stats (the first eval of the matrix).
fn run_matrix(session: &Session, req: &EvalRequest, labels: &LabelTable) -> (RunImage, (u64, u64)) {
    let mut sets = NodeSetSink::default();
    let report = session.eval(req, &mut sets).unwrap();
    let stats = &report
        .batch
        .as_ref()
        .expect("node-set demand runs phase 2")
        .stats;
    let automata = (stats.automata_builds, stats.automata_reused);

    let mut counts = CountSink::default();
    session.eval(req, &mut counts).unwrap();

    let mut bools = BooleanSink::default();
    session.eval(req, &mut bools).unwrap();

    let mut mark = XmlMarkSink::new(labels, Vec::new());
    session.eval(req, &mut mark).unwrap();

    (
        RunImage {
            verdicts: bools.verdicts().to_vec(),
            counts: counts.counts().to_vec(),
            sets: sets.sets().iter().map(|s| s.to_vec()).collect(),
            marked: mark.into_inner().expect("run completed"),
        },
        automata,
    )
}

/// The reuse property for one database: N matrix rounds on a single
/// session equal N rounds on fresh sessions, and the reused session's
/// pool reports warm rounds as reuse, not rebuilds.
fn check_reuse(db: &mut Database, sources: &[String], rounds: usize) {
    let queries: Vec<arb::Query> = sources
        .iter()
        .map(|s| db.compile_tmnf(s).expect("generated query compiles"))
        .collect();
    let labels = db.labels().clone();

    for parallelism in [1usize, 4] {
        let req = EvalRequest::new().parallelism(parallelism);

        // Baseline: a fresh session per round.
        let fresh: Vec<RunImage> = (0..rounds)
            .map(|_| run_matrix(&db.prepare(&queries), &req, &labels).0)
            .collect();
        for (r, img) in fresh.iter().enumerate().skip(1) {
            prop_assert_eq!(img, &fresh[0], "fresh sessions disagree at round {}", r);
        }

        // One session, reused for every round.
        let session = db.prepare(&queries);
        let pool = std::sync::Arc::clone(session.automata_pool());
        for r in 0..rounds {
            let (img, (builds, reused)) = run_matrix(&session, &req, &labels);
            prop_assert_eq!(
                &img,
                &fresh[0],
                "reused session diverged at round {} (parallelism {})",
                r,
                parallelism
            );
            if r > 0 && parallelism == 1 {
                prop_assert_eq!(builds, 0, "warm round {} rebuilt automata", r);
                prop_assert!(reused >= 1, "warm round {} reports no reuse", r);
            }
        }
        prop_assert!(pool.reused() >= 1, "reused session never reused automata");
        if parallelism == 1 {
            // Exactly one evaluator is live at a time, so the whole
            // matrix × rounds needs exactly one build.
            prop_assert_eq!(pool.builds(), 1);
        } else {
            // Concurrent shard workers may each build one before the
            // pool warms (plus one for the sequential spine evaluator),
            // but never proportional to the number of rounds.
            prop_assert!(
                pool.builds() <= parallelism as u64 + 1,
                "parallel reuse built {} automata for {} workers",
                pool.builds(),
                parallelism
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Treebank documents, top-down path queries, k = 1 (single) .. 3,
    /// both backends, 3 rounds of the full sink matrix.
    #[test]
    fn reused_session_equals_fresh_sessions((k, tree_seed, query_seed) in
        (1usize..=3, any::<u64>(), any::<u64>()))
    {
        let (tree, labels) = small_treebank(tree_seed);
        let sources: Vec<String> =
            RandomPathQuery::batch(k, 5, &["NP", "VP", "PP", "S"], RegexShape::Tags, query_seed)
                .iter()
                .map(|q| q.to_program(R_TOP_DOWN))
                .collect();
        for mut db in both_backends(&tree, &labels) {
            check_reuse(&mut db, &sources, 3);
        }
    }
}

/// A shared pool spanning sessions over the same merged program keeps
/// its warmth across session drops — the server's window cache relies on
/// exactly this.
#[test]
fn pool_survives_session_churn() {
    let (tree, labels) = small_treebank(0xAB);
    let mut db = Database::from_tree(tree, labels);
    let q = db.compile_tmnf("QUERY :- V.Label[NP];").unwrap();
    let queries = vec![q];

    let pool = std::sync::Arc::clone(db.prepare(&queries).automata_pool());
    let baseline = db
        .prepare(&queries)
        .with_pool(std::sync::Arc::clone(&pool))
        .run_one()
        .unwrap()
        .selected
        .to_vec();
    for _ in 0..5 {
        let session = db.prepare(&queries).with_pool(std::sync::Arc::clone(&pool));
        let out = session.run_one().unwrap();
        assert_eq!(out.selected.to_vec(), baseline);
    }
    assert_eq!(pool.builds(), 1, "session churn must not rebuild automata");
    assert!(pool.reused() >= 5);
}
