//! The paper's Section 1.3 showcase queries as executable tests.

use arb::tree::{LabelTable, NodeId, TreeBuilder};
use arb::Database;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// §1.3 example 3 (counting part): select `publication` nodes whose
/// subtree contains an even number of `page`-labeled nodes — verified
/// against direct counting on random trees.
#[test]
fn even_pages_matches_direct_count() {
    let mut rng = StdRng::seed_from_u64(21);
    for round in 0..20 {
        // Random tree over {publication, page, other} tags.
        let mut lt = LabelTable::new();
        let tags = ["publication", "page", "other"].map(|n| lt.intern(n).unwrap());
        let mut b = TreeBuilder::new();
        b.open(tags[2]);
        let mut depth = 1;
        for _ in 0..rng.gen_range(0..60) {
            match rng.gen_range(0..4) {
                0 if depth > 1 => {
                    b.close();
                    depth -= 1;
                }
                1 => b.leaf(tags[rng.gen_range(0..3)]),
                _ => {
                    b.open(tags[rng.gen_range(0..3)]);
                    depth += 1;
                }
            }
        }
        while depth > 0 {
            b.close();
            depth -= 1;
        }
        let tree = b.finish().unwrap();

        let mut db = Database::from_tree(tree.clone(), lt.clone());
        let q = db.compile_tmnf(arb::tmnf::programs::EVEN_PAGES).unwrap();
        let outcome = db.prepare(&[q]).run_one().unwrap();

        // Direct count: pages in each node's unranked subtree.
        let page = lt.get("page").unwrap();
        let publication = lt.get("publication").unwrap();
        let n = tree.len();
        // pages_below[v] = #page nodes in v's unranked subtree (incl. v).
        let mut pages = vec![0u32; n];
        for ix in (0..n as u32).rev() {
            let v = NodeId(ix);
            let own = u32::from(tree.label(v) == page);
            let below: u32 = tree
                .unranked_children(v)
                .iter()
                .map(|c| pages[c.ix()])
                .sum();
            pages[ix as usize] = own + below;
        }
        for v in tree.nodes() {
            let expect = tree.label(v) == publication && pages[v.ix()].is_multiple_of(2);
            assert_eq!(
                outcome.selected.contains(v),
                expect,
                "round {round}, node {} ({} pages)",
                v.0,
                pages[v.ix()]
            );
        }
    }
}

/// §1.3 example 2 (structural part): genes with a `sequence` child whose
/// text contains a given substring — via the XPath `contains-text`
/// extension, checked both polarities.
#[test]
fn gene_sequence_substring() {
    let xml = "<db>\
        <gene><sequence>TTACCGTAA</sequence></gene>\
        <gene><sequence>GGGG</sequence></gene>\
        <gene><note>ACCGT</note></gene>\
    </db>";
    let mut db = Database::from_xml_str(xml).unwrap();
    let q = db
        .compile_xpath("//gene[sequence[contains-text(\"ACCGT\")]]")
        .unwrap();
    let outcome = db.prepare(&[q]).run_one().unwrap();
    assert_eq!(outcome.stats.selected, 1);
    let q = db
        .compile_xpath("//gene[not(sequence[contains-text(\"ACCGT\")])]")
        .unwrap();
    assert_eq!(db.prepare(&[q]).run_one().unwrap().stats.selected, 2);
}

/// §1.3 example 1: upward and sideways axes with boolean conditions —
/// the fragment streaming processors cannot express.
#[test]
fn upward_sideways_boolean() {
    let xml = "<s><np/><vp><np/><pp/></vp><np/></s>";
    let mut db = Database::from_xml_str(xml).unwrap();
    // NPs whose parent is a VP containing a PP, with a following sibling.
    let q = db
        .compile_xpath("//np[parent::vp[pp] and following-sibling::node()]")
        .unwrap();
    let outcome = db.prepare(&[q]).run_one().unwrap();
    assert_eq!(outcome.selected.to_vec(), vec![NodeId(3)]);
}

/// §1.3 example 4 is covered by `tests/dtd_differential.rs` and the
/// `dtd_conformance` example; this smoke test ties it to the engine.
#[test]
fn dtd_conformance_via_engine() {
    let dtd = arb::tmnf::Dtd::parse("r = (x*); x = EMPTY;").unwrap();
    let db = Database::from_xml_str("<r><x/><x/></r>").unwrap();
    let mut labels = db.labels().clone();
    let prog = arb::tmnf::conformance_program(&dtd, &mut labels);
    let res = arb::core::evaluate_tree(&prog, &db.to_tree().unwrap());
    let conf = prog.query_pred().unwrap();
    assert!(res.holds(conf, NodeId(0)));
}
