//! Batched multi-query evaluation vs. k independent runs: for random
//! k-query batches over generated documents, the batch API's per-query
//! node sets must equal k separate `evaluate_disk` runs (and the
//! in-memory batch path must agree with the naive datalog fixpoint),
//! while the whole batch costs exactly one backward and one forward scan.

use arb::core::evaluate_tree_batch;
use arb::datagen::queries::{RandomPathQuery, R_TOP_DOWN};
use arb::datagen::{treebank_tree, RegexShape, TreebankConfig};
use arb::engine::{evaluate_disk, evaluate_disk_batch, QueryBatch};
use arb::storage::{create_from_tree, ArbDatabase};
use arb::tmnf::{naive, normalize, parse_program, CoreProgram};
use arb::tree::{BinaryTree, LabelTable};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A small seeded treebank document (a few hundred nodes).
fn small_treebank(seed: u64) -> (BinaryTree, LabelTable) {
    let mut labels = LabelTable::new();
    let tree = treebank_tree(
        &TreebankConfig {
            target_elems: 250,
            seed,
            filler_tags: 8,
        },
        &mut labels,
    );
    (tree, labels)
}

/// Compiles a random k-query batch against one shared label table.
fn compile_batch(k: usize, seed: u64, labels: &mut LabelTable) -> Vec<CoreProgram> {
    let queries = RandomPathQuery::batch(k, 5, &["NP", "VP", "PP", "S"], RegexShape::Tags, seed);
    queries
        .iter()
        .map(|q| {
            let src = q.to_program(R_TOP_DOWN);
            let ast = parse_program(&src, labels).expect("generated query parses");
            let mut prog = normalize(&ast);
            let qp = prog.pred_id("QUERY").expect("QUERY head");
            prog.add_query_pred(qp);
            prog
        })
        .collect()
}

fn materialize(tree: &BinaryTree, labels: &LabelTable) -> ArbDatabase {
    let dir = std::env::temp_dir().join(format!("arb-batchdiff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("case-{}.arb", CASE.fetch_add(1, Ordering::Relaxed)));
    create_from_tree(tree, labels, &path).expect("create database");
    ArbDatabase::open(&path).expect("open database")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Disk path: batch == k independent two-scan runs, in 2 scans total.
    #[test]
    fn disk_batch_matches_independent_runs((k, tree_seed, query_seed) in
        (2usize..=5, any::<u64>(), any::<u64>()))
    {
        let (tree, mut labels) = small_treebank(tree_seed);
        let progs = compile_batch(k, query_seed, &mut labels);
        let db = materialize(&tree, &labels);

        let batch = QueryBatch::from_programs(&progs);
        let combined = evaluate_disk_batch(&batch, &db).expect("batch eval");

        // Acceptance criterion: one shared scan in each direction for
        // the whole batch, where k independent runs take k each. The
        // stats count the evaluation's own scan opens; the fresh
        // handle's lifetime totals are an independent cross-check.
        prop_assert_eq!(combined.stats.backward_scans, 1);
        prop_assert_eq!(combined.stats.forward_scans, 1);
        prop_assert_eq!(db.scan_counts(), (1, 1));
        prop_assert_eq!(combined.outcomes.len(), k);

        let mut independent_scans = 0u64;
        for (prog, out) in progs.iter().zip(&combined.outcomes) {
            let indep = evaluate_disk(prog, &db).expect("independent eval");
            independent_scans += indep.stats.backward_scans + indep.stats.forward_scans;
            prop_assert_eq!(out.selected.to_vec(), indep.selected.to_vec());
            prop_assert_eq!(&out.per_pred_counts, &indep.per_pred_counts);
            prop_assert_eq!(out.stats.selected, indep.stats.selected);
        }
        prop_assert_eq!(independent_scans, 2 * k as u64);
        prop_assert_eq!(db.scan_counts(), (1 + k as u64, 1 + k as u64));
    }

    /// Memory path: the merged two-phase run agrees with the naive
    /// datalog fixpoint of every input program on every node.
    #[test]
    fn memory_batch_matches_naive_fixpoint((k, tree_seed, query_seed) in
        (2usize..=5, any::<u64>(), any::<u64>()))
    {
        let (tree, mut labels) = small_treebank(tree_seed);
        let progs = compile_batch(k, query_seed, &mut labels);
        let refs: Vec<&CoreProgram> = progs.iter().collect();
        let batched = evaluate_tree_batch(&refs, &tree);
        prop_assert_eq!(batched.result.stats.backward_scans, 1);
        prop_assert_eq!(batched.result.stats.forward_scans, 1);

        for (i, prog) in progs.iter().enumerate() {
            let oracle = naive::evaluate(prog, &tree);
            let q = prog.query_pred().expect("query pred");
            let selected = batched.selected(i);
            for v in tree.nodes() {
                prop_assert_eq!(
                    selected.contains(v),
                    oracle.holds(q, v),
                    "query {} at node {}", i, v.0
                );
            }
        }
    }
}
