//! Format-v2 integrity suite: corrupt and truncated `.arb` files must be
//! rejected with `InvalidData` — at open where the header/index arithmetic
//! catches them, at scan time where a block or extent checksum does — and
//! **never** produce wrong answers. Plus the v1-vs-v2 differential
//! property: both formats, through every evaluation path, are
//! byte-for-byte interchangeable.

use arb::engine::{BooleanSink, CountSink, EvalRequest, NodeSetSink};
use arb::storage::{create_from_xml_with, v2, ArbDatabase, FormatVersion};
use arb::xml::XmlConfig;
use arb::Database;
use proptest::prelude::*;
use std::io::{Cursor, ErrorKind};
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "arb-fv2-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&d).expect("tmp dir");
    d.join(name)
}

/// A document big enough for several compressed blocks and extent
/// windows: `2*elems + 1` nodes (each `<a>t</a>` is an element node plus
/// one character node).
fn big_xml(elems: usize) -> String {
    let mut s = String::with_capacity(elems * 8 + 16);
    s.push_str("<r>");
    for i in 0..elems {
        s.push_str(if i % 3 == 0 { "<a>t</a>" } else { "<b>u</b>" });
    }
    s.push_str("</r>");
    s
}

fn create(name: &str, xml: &str, format: FormatVersion) -> PathBuf {
    let path = tmp(name);
    create_from_xml_with(
        Cursor::new(xml.as_bytes()),
        &XmlConfig::default(),
        &path,
        format,
    )
    .expect("create");
    path
}

/// Writes a mutated copy of `base` (the `.lab` sibling is carried over).
fn corrupted(base: &Path, name: &str, f: impl FnOnce(&mut Vec<u8>)) -> PathBuf {
    let mut bytes = std::fs::read(base).expect("read arb");
    f(&mut bytes);
    let path = base.with_file_name(format!("{name}.arb"));
    std::fs::write(&path, &bytes).expect("write corrupt copy");
    std::fs::copy(base.with_extension("lab"), path.with_extension("lab")).expect("copy lab");
    path
}

/// Opens the database and exercises every read path: both full scans,
/// the extent section, point reads and the structural validator.
fn full_check(path: &Path) -> std::io::Result<u64> {
    let db = ArbDatabase::open(path)?;
    let mut n = 0u64;
    let mut s = db.backward_scan()?;
    while s.next_record()?.is_some() {
        n += 1;
    }
    let mut s = db.forward_scan()?;
    while s.next_record()?.is_some() {}
    db.subtree_extents()?;
    db.record_at(0)?;
    db.validate()?;
    Ok(n)
}

fn assert_rejected(path: &Path, what: &str) {
    match full_check(path) {
        Ok(n) => panic!("{what}: corrupt file accepted ({n} records)"),
        Err(e) => assert_eq!(e.kind(), ErrorKind::InvalidData, "{what}: kind of {e}"),
    }
}

/// Recomputes the header CRC after a deliberate field patch, so the
/// mutation tests cross-field consistency rather than the checksum.
fn reseal_header(bytes: &mut [u8]) {
    let crc = v2::crc32(&bytes[..60]);
    bytes[60..64].copy_from_slice(&crc.to_le_bytes());
}

fn header_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

#[test]
fn open_sniffs_the_format_version() {
    let xml = big_xml(500);
    let v1 = create("sniff1.arb", &xml, FormatVersion::V1);
    let v2p = create("sniff2.arb", &xml, FormatVersion::V2);
    let d1 = ArbDatabase::open(&v1).unwrap();
    let d2 = ArbDatabase::open(&v2p).unwrap();
    assert_eq!(d1.format_version(), 1);
    assert_eq!(d2.format_version(), 2);
    assert_eq!(d1.node_count(), d2.node_count());
    assert_eq!(d1.to_tree().unwrap().parts(), d2.to_tree().unwrap().parts());
}

#[test]
fn truncations_are_rejected() {
    let base = create("trunc.arb", &big_xml(40_000), FormatVersion::V2);
    let len = std::fs::metadata(&base).unwrap().len() as usize;
    let bytes = std::fs::read(&base).unwrap();
    let index_offset = header_u64(&bytes, 36) as usize;
    for (i, cut) in [
        len - 1,          // last index byte gone
        len - 6,          // mid-index
        index_offset,     // everything after the extent section
        index_offset - 3, // mid-extent
        1000,             // mid-block
        65,               // just past the header
        32,               // mid-header
        9,                // magic plus one byte
    ]
    .into_iter()
    .enumerate()
    {
        let p = corrupted(&base, &format!("trunc{i}"), |b| b.truncate(cut));
        assert_rejected(&p, &format!("truncated to {cut} of {len}"));
    }
}

#[test]
fn block_and_extent_bit_flips_are_rejected() {
    let base = create("flip.arb", &big_xml(40_000), FormatVersion::V2);
    let bytes = std::fs::read(&base).unwrap();
    let len = bytes.len();
    let extent_offset = header_u64(&bytes, 28) as usize;
    let index_offset = header_u64(&bytes, 36) as usize;
    let spots = [
        (64usize, "first block frame"),
        (80, "first block body"),
        (extent_offset - 10, "last block body"),
        (extent_offset + 2, "extent window checksum"),
        (extent_offset + 12, "extent window body"),
        (index_offset + 1, "block index"),
        (len - 2, "index checksum"),
    ];
    for (i, (off, what)) in spots.into_iter().enumerate() {
        let p = corrupted(&base, &format!("flip{i}"), |b| b[off] ^= 0x10);
        assert_rejected(&p, what);
    }
}

#[test]
fn header_field_tampering_is_rejected() {
    let base = create("tamper.arb", &big_xml(40_000), FormatVersion::V2);

    // Without resealing, the header checksum itself catches the patch.
    let p = corrupted(&base, "tamper-crc", |b| b[12] ^= 1);
    assert_rejected(&p, "node-count patch, stale header crc");

    // With the checksum recomputed, the cross-field arithmetic must
    // still reject a node count that disagrees with the sections.
    let p = corrupted(&base, "tamper-nodes", |b| {
        let n = u32::from_le_bytes(b[12..16].try_into().unwrap());
        b[12..16].copy_from_slice(&(n + 1).to_le_bytes());
        reseal_header(b);
    });
    assert_rejected(&p, "node count + 1, resealed header");

    let p = corrupted(&base, "tamper-blocks", |b| {
        let c = u32::from_le_bytes(b[20..24].try_into().unwrap());
        b[20..24].copy_from_slice(&(c + 1).to_le_bytes());
        reseal_header(b);
    });
    assert_rejected(&p, "block count + 1, resealed header");
}

#[test]
fn crashed_creation_placeholder_is_rejected() {
    // `V2Writer` stamps version `u16::MAX` until `finish()` patches the
    // real header, so a file from a crashed creation looks exactly like
    // this — with either a stale or a resealed checksum.
    let base = create("crash.arb", &big_xml(1_000), FormatVersion::V2);
    let p = corrupted(&base, "crash-stale", |b| {
        b[8..10].copy_from_slice(&u16::MAX.to_le_bytes());
    });
    assert_rejected(&p, "placeholder version, stale crc");
    let p = corrupted(&base, "crash-sealed", |b| {
        b[8..10].copy_from_slice(&u16::MAX.to_le_bytes());
        reseal_header(b);
    });
    assert_rejected(&p, "placeholder version, resealed crc");
}

#[test]
fn zeroed_prefix_is_rejected() {
    // Zeroing the head of a v2 file destroys the magic, so it sniffs as
    // v1 — and must then fail v1's structural checks rather than decode
    // the remaining compressed garbage into answers.
    let base = create("zero.arb", &big_xml(40_000), FormatVersion::V2);
    for (i, n) in [4096usize, 64, 8].into_iter().enumerate() {
        let p = corrupted(&base, &format!("zero{i}"), |b| {
            b[..n].fill(0);
        });
        assert_rejected(&p, &format!("zeroed first {n} bytes"));
    }
}

#[test]
fn magic_prefixed_garbage_is_rejected() {
    let path = tmp("garbage.arb");
    let mut bytes = b"ArbDBv2\0".to_vec();
    bytes.resize(300, 0xAB);
    std::fs::write(&path, &bytes).unwrap();
    std::fs::write(path.with_extension("lab"), "").unwrap();
    match full_check(&path) {
        Ok(_) => panic!("magic-prefixed garbage accepted"),
        Err(e) => assert_eq!(e.kind(), ErrorKind::InvalidData, "{e}"),
    }
}

#[test]
fn failed_creation_leaves_no_partial_files() {
    for format in [FormatVersion::V1, FormatVersion::V2] {
        let path = tmp(&format!("orphan-{format}.arb"));
        let err = create_from_xml_with(
            Cursor::new(b"<a><b></a>".as_slice()),
            &XmlConfig::default(),
            &path,
            format,
        );
        assert!(err.is_err(), "{format}: unbalanced document must fail");
        for ext in ["arb", "evt", "lab", "tmp"] {
            let p = path.with_extension(ext);
            assert!(!p.exists(), "{format}: orphan {} left behind", p.display());
        }
    }
}

/// Strategy: a random small XML document (same op encoding as the
/// `storage_model` suite, so both formats see realistic shapes).
fn random_xml() -> impl Strategy<Value = String> {
    proptest::collection::vec((0..3u8, 0..3usize, "[a-z]{1,4}"), 0..40).prop_map(|ops| {
        let tags = ["x", "y", "z"];
        let mut out = String::from("<r>");
        let mut stack: Vec<&str> = vec![];
        for (op, t, text) in ops {
            match op {
                0 => {
                    let tag = tags[t % 3];
                    out.push_str(&format!("<{tag}>"));
                    stack.push(tag);
                }
                1 => {
                    if let Some(tag) = stack.pop() {
                        out.push_str(&format!("</{tag}>"));
                    }
                }
                _ => out.push_str(&text),
            }
        }
        while let Some(tag) = stack.pop() {
            out.push_str(&format!("</{tag}>"));
        }
        out.push_str("</r>");
        out
    })
}

/// Evaluates the same queries on one database through every path and
/// returns (counts, node sets, verdicts) per request shape.
#[allow(clippy::type_complexity)]
fn eval_everywhere(path: &Path) -> (Vec<Vec<u64>>, Vec<Vec<Vec<u32>>>, Vec<bool>) {
    let mut db = Database::open_arb(path).expect("open");
    let q1 = db.compile_xpath("//x").expect("xpath");
    let q2 = db.compile_tmnf("QUERY :- V.Label[y];").expect("tmnf");
    let session = db.prepare(&[q1, q2]);
    let requests = [
        EvalRequest::new(),
        EvalRequest::new().parallelism(2),
        EvalRequest::new().prefer_memory(true),
    ];
    let mut counts = Vec::new();
    let mut sets = Vec::new();
    for req in &requests {
        let mut c = CountSink::default();
        session.eval(req, &mut c).expect("count eval");
        counts.push(c.into_counts());
        let mut s = NodeSetSink::default();
        session.eval(req, &mut s).expect("set eval");
        sets.push(
            s.into_sets()
                .into_iter()
                .map(|ns| ns.iter().map(|v| v.0).collect::<Vec<u32>>())
                .collect(),
        );
    }
    let mut b = BooleanSink::default();
    session
        .eval(&EvalRequest::new(), &mut b)
        .expect("bool eval");
    (counts, sets, b.into_verdicts())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The differential property: a v1 and a v2 database built from the
    /// same document are indistinguishable — identical record streams in
    /// both directions, identical point reads, identical trees, and
    /// identical query results across sequential/parallel/in-memory
    /// evaluation with count, node-set and boolean sinks.
    #[test]
    fn v1_and_v2_are_interchangeable(xml in random_xml()) {
        let p1 = create("diff1.arb", &xml, FormatVersion::V1);
        let p2 = create("diff2.arb", &xml, FormatVersion::V2);
        let d1 = ArbDatabase::open(&p1).expect("open v1");
        let d2 = ArbDatabase::open(&p2).expect("open v2");
        prop_assert_eq!(d1.node_count(), d2.node_count());

        let mut s1 = d1.forward_scan().expect("scan");
        let mut s2 = d2.forward_scan().expect("scan");
        while let Some(r1) = s1.next_record().expect("read") {
            prop_assert_eq!(Some(r1), s2.next_record().expect("read"));
        }
        prop_assert!(s2.next_record().expect("read").is_none());

        let mut s1 = d1.backward_scan().expect("scan");
        let mut s2 = d2.backward_scan().expect("scan");
        while let Some(r1) = s1.next_record().expect("read") {
            prop_assert_eq!(Some(r1), s2.next_record().expect("read"));
        }
        prop_assert!(s2.next_record().expect("read").is_none());

        for ix in 0..d1.node_count().min(16) {
            prop_assert_eq!(
                d1.record_at(ix).expect("read"),
                d2.record_at(ix).expect("read")
            );
        }
        prop_assert_eq!(
            d1.to_tree().expect("tree").parts(),
            d2.to_tree().expect("tree").parts()
        );
        prop_assert_eq!(
            d1.subtree_extents().expect("extents"),
            d2.subtree_extents().expect("extents")
        );

        prop_assert_eq!(eval_everywhere(&p1), eval_everywhere(&p2));
    }
}
