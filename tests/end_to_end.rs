//! End-to-end engine tests: marked output, multi-query programs,
//! parallel evaluation, benchmark-query semantics, and the `arb` CLI.

use arb::datagen::queries::{RandomPathQuery, R_BOTTOM_UP, R_INFIX};
use arb::datagen::{acgt_flat_tree, acgt_infix_tree, random_acgt, RegexShape};
use arb::tree::LabelTable;
use arb::Database;

/// Marked output reparses to the same document, and selected nodes carry
/// the mark.
#[test]
fn marked_output_reparses() {
    let xml = "<m><x>one</x><y><x/>two</y></m>";
    let mut db = Database::from_xml_str(xml).unwrap();
    let q = db.compile_xpath("//x").unwrap();
    let mut buf = Vec::new();
    let outcome = db.prepare(&[q]).run_marked(&mut buf).unwrap();
    assert_eq!(outcome.outcomes[0].stats.selected, 2);
    let out = String::from_utf8(buf).unwrap();
    assert_eq!(out.matches("arb:selected=\"true\"").count(), 2);
    // Strip marks; document must reparse to the same shape.
    let stripped = out.replace(" arb:selected=\"true\"", "");
    let mut lt1 = LabelTable::new();
    let t1 = arb::xml::str_to_tree(xml, &mut lt1).unwrap();
    let mut lt2 = LabelTable::new();
    let t2 = arb::xml::str_to_tree(&stripped, &mut lt2).unwrap();
    assert_eq!(t1.parts(), t2.parts());
}

/// The paper's §6.2 benchmark queries: ACGT-flat and ACGT-infix give the
/// same selected-node counts for the same regular expressions, because
/// both encode the same sequence (paper: "the average numbers of nodes
/// selected are – correctly – the same").
#[test]
fn flat_and_infix_select_equally() {
    let seq = random_acgt(9, 123);
    let mut flat_labels = LabelTable::new();
    let flat = acgt_flat_tree(&seq, &mut flat_labels);
    let mut infix_labels = LabelTable::new();
    let infix = acgt_infix_tree(&seq, &mut infix_labels);
    let mut flat_db = Database::from_tree(flat, flat_labels);
    let mut infix_db = Database::from_tree(infix, infix_labels);

    for (i, size) in [3usize, 5, 7].iter().enumerate() {
        let alphabet = ["A", "C", "G", "T"];
        for (j, q) in RandomPathQuery::batch(4, *size, &alphabet, RegexShape::Chars, 7 + i as u64)
            .into_iter()
            .enumerate()
        {
            let flat_q = flat_db.compile_tmnf(&q.to_program(R_BOTTOM_UP)).unwrap();
            let infix_src = RandomPathQuery {
                shape: RegexShape::Tags, // infix symbols are element tags
                ..q.clone()
            }
            .to_program(R_INFIX);
            let infix_q = infix_db.compile_tmnf(&infix_src).unwrap();
            let cf = flat_db.prepare(&[flat_q]).run_one().unwrap().stats.selected;
            let ci = infix_db
                .prepare(&[infix_q])
                .run_one()
                .unwrap()
                .stats
                .selected;
            assert_eq!(cf, ci, "query {j} of size {size}: {}", q.display());
        }
    }
}

/// Multi-query programs: per-predicate counts equal individual runs.
#[test]
fn multi_query_counts() {
    let xml = "<r><a><b/></a><b/><c><b/><a/></c></r>";
    let db = Database::from_xml_str(xml).unwrap();
    // Compile below the engine (whose optimizer prunes towards the single
    // default query predicate): declare all three query predicates first.
    let mut labels = db.labels().clone();
    let mut prog = arb::tmnf::compile(
        "Q0 :- V.Label[a]; Q1 :- V.Label[b]; Q2 :- V.Label[a].FirstChild;",
        &mut labels,
    )
    .unwrap();
    for name in ["Q0", "Q1", "Q2"] {
        prog.add_query_pred(prog.pred_id(name).unwrap());
    }
    let prog = arb::tmnf::optimize(&prog);
    let res = arb::core::evaluate_tree(&prog, &db.to_tree().unwrap());
    let count = |n: &str| res.extent(prog.pred_id(n).unwrap()).count();
    assert_eq!(count("Q0"), 2);
    assert_eq!(count("Q1"), 3);
    assert_eq!(count("Q2"), 1); // first child of an <a>: only <b/> under the first <a>
}

/// Parallel evaluation agrees with sequential on a balanced tree with a
/// branching query.
#[test]
fn parallel_equivalence_on_infix() {
    let seq = random_acgt(11, 5);
    let mut labels = LabelTable::new();
    let tree = acgt_infix_tree(&seq, &mut labels);
    let q = RandomPathQuery::batch(1, 6, &["A", "C", "G", "T"], RegexShape::Tags, 31)
        .pop()
        .unwrap();
    let src = q.to_program(R_INFIX);
    let mut db = Database::from_tree(tree.clone(), labels);
    let query = db.compile_tmnf(&src).unwrap();
    let session = db.prepare(std::slice::from_ref(&query));
    let seq_out = session.run_one().unwrap();
    let par = arb::core::parallel::evaluate_tree_parallel(query.program(), &tree, 4);
    assert_eq!(par.stats.selected, seq_out.stats.selected);
    // The same parallelism is reachable through the prepared surface.
    let par_opt = session
        .run_with(&arb::engine::EvalRequest::new().parallelism(4))
        .unwrap();
    assert_eq!(par_opt.outcomes[0].stats.selected, seq_out.stats.selected);
    assert_eq!(
        par_opt.outcomes[0].selected.to_vec(),
        seq_out.selected.to_vec()
    );
}

/// Boolean (document-filtering) queries: accept/reject by one scan.
#[test]
fn boolean_queries() {
    let xml = "<feed><item><spam/></item><item/></feed>";
    // In memory.
    let mut db = Database::from_xml_str(xml).unwrap();
    let q = db.compile_xpath("//feed[.//spam]").unwrap();
    assert!(db.prepare(&[q]).run_boolean().unwrap()[0]);
    let q = db.compile_xpath("//feed[not(.//spam)]").unwrap();
    assert!(!db.prepare(&[q]).run_boolean().unwrap()[0]);
    // On disk (single backward scan, no .sta file).
    let dir = std::env::temp_dir().join(format!("arb-bool-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let xml_path = dir.join("b.xml");
    std::fs::write(&xml_path, xml).unwrap();
    let (mut disk, _) = Database::create_arb_from_xml(
        &xml_path,
        dir.join("b.arb"),
        &arb::xml::XmlConfig::default(),
    )
    .unwrap();
    let q = disk.compile_xpath("//feed[.//spam]").unwrap();
    assert!(disk.prepare(&[q]).run_boolean().unwrap()[0]);
    let q = disk
        .compile_tmnf(
            "HasSpam :- V.Label[spam].(invFirstChild|invSecondChild)*; QUERY :- HasSpam, Root;",
        )
        .unwrap();
    assert!(disk.prepare(&[q]).run_boolean().unwrap()[0]);
}

/// Attribute queries over an attributes-as-nodes database: `@name` steps
/// address the `@`-prefixed child elements the storage model creates.
#[test]
fn attribute_queries() {
    let xml = r#"<lib><book id="1" lang="en"/><book id="2"/></lib>"#;
    let mut labels = arb::tree::LabelTable::new();
    let config = arb::xml::XmlConfig {
        attributes_as_nodes: true,
        trim_whitespace_text: false,
    };
    let tree = arb::xml::to_tree(xml.as_bytes(), &config, &mut labels).unwrap();
    let mut db = Database::from_tree(tree, labels);

    let q = db.compile_xpath("//book[@lang]").unwrap();
    assert_eq!(db.prepare(&[q]).run_one().unwrap().stats.selected, 1);
    let q = db.compile_xpath("//book[@id]").unwrap();
    assert_eq!(db.prepare(&[q]).run_one().unwrap().stats.selected, 2);
    let q = db.compile_xpath("//book/@id").unwrap();
    assert_eq!(db.prepare(&[q]).run_one().unwrap().stats.selected, 2);
    // Attribute value via contains-text on the attribute node's chars.
    let q = db
        .compile_xpath("//book[@lang[contains-text(\"en\")]]")
        .unwrap();
    assert_eq!(db.prepare(&[q]).run_one().unwrap().stats.selected, 1);
}
