//! Direct tests of the paper's headline complexity claims (§1.1/§1.2):
//!
//! 1. running time `O(m + n)` — the query-dependent part (`m`: lazily
//!    computed transitions) does not grow with the data;
//! 2. main-memory requirements "in principle independent of the size of
//!    the data" — automata memory stays flat as `n` grows;
//! 3. each node is visited exactly twice (once per phase);
//! 4. temporary disk space is linear: the paper's layout costs 4 bytes
//!    per node (`.sta`, footnote 12); the default block-compressed
//!    layout stays *under* that while phase 2 still consumes exactly one
//!    4-byte state per node.

use arb::datagen::queries::{RandomPathQuery, R_BOTTOM_UP};
use arb::datagen::{acgt_flat_tree, random_acgt, RegexShape};
use arb::engine::evaluate_disk;
use arb::storage::{create_from_tree, ArbDatabase};
use arb::tree::LabelTable;

/// Builds the ACGT-flat database at the given scale and evaluates one
/// fixed query, returning (nodes, transitions, memory, sta encoded
/// bytes, sta decoded bytes).
fn run_at_scale(log2: u32) -> (u64, u64, usize, u64, u64) {
    let seq = random_acgt(log2, 99);
    let mut labels = LabelTable::new();
    let tree = acgt_flat_tree(&seq, &mut labels);
    let dir = std::env::temp_dir().join(format!("arb-claims-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("c{log2}.arb"));
    create_from_tree(&tree, &labels, &path).unwrap();
    let db = ArbDatabase::open(&path).unwrap();

    let q = RandomPathQuery::batch(1, 6, &["A", "C", "G", "T"], RegexShape::Chars, 4)
        .pop()
        .unwrap();
    let mut lt = labels.clone();
    let ast = arb::tmnf::parse_program(&q.to_program(R_BOTTOM_UP), &mut lt).unwrap();
    let mut prog = arb::tmnf::normalize(&ast);
    prog.add_query_pred(prog.pred_id("QUERY").unwrap());
    let outcome = evaluate_disk(&prog, &db).unwrap();
    // Scratch files are uniquely named and deleted when the run ends,
    // so the temporary-space claim is checked via the stats instead of
    // stat(2) on a (now gone) fixed sibling path.
    (
        outcome.stats.nodes,
        outcome.stats.phase1_transitions + outcome.stats.phase2_transitions,
        outcome.stats.memory_bytes,
        outcome.stats.sta_encoded_bytes,
        outcome.stats.sta_decoded_bytes,
    )
}

/// Claims 1, 2 and 4: transitions and memory flat in n; the `.sta`
/// stream stays within (and, compressed, under) 4 bytes per node.
#[test]
fn transitions_and_memory_independent_of_data_size() {
    let (n_small, m_small, mem_small, enc_small, dec_small) = run_at_scale(10);
    let (n_large, m_large, mem_large, enc_large, dec_large) = run_at_scale(14);
    assert!(n_large > n_small * 10);
    // m part: allow slack for extra symbol combinations discovered on the
    // larger database, but nothing resembling growth with n.
    assert!(
        m_large <= m_small * 2,
        "transitions grew with data: {m_small} -> {m_large}"
    );
    // Automata memory flat within 2x.
    assert!(
        mem_large <= mem_small * 2,
        "memory grew with data: {mem_small} -> {mem_large}"
    );
    // Temporary state stream: phase 2 consumes exactly one 4-byte state
    // per node (paper footnote 12's volume), while the default blocked
    // layout encodes it in strictly fewer bytes on disk at scale —
    // linear with a constant under the paper's 4.
    assert_eq!(dec_small, n_small * 4);
    assert_eq!(dec_large, n_large * 4);
    assert!(enc_small > 0 && enc_large > 0);
    assert!(
        enc_large < n_large * 4,
        "blocked encoding must beat 4 B/node at scale: {enc_large} vs {}",
        n_large * 4
    );
}

/// Claim 3: each node is touched exactly once per phase. Instrumented via
/// the in-memory driver: the per-node state arrays are written exactly
/// once per phase, so their lengths pin down the visit counts; the disk
/// driver's scans are additionally covered by the storage tests.
#[test]
fn each_node_visited_twice() {
    let mut db = arb::Database::from_xml_str("<a><b>x</b><c><d/></c></a>").unwrap();
    let tree = db.to_tree().unwrap();
    let q = db.compile_xpath("//d").unwrap();
    let res = arb::core::evaluate_tree(q.program(), &tree);
    assert_eq!(res.rho_a.len(), tree.len()); // phase-1 assignment per node
    assert_eq!(res.rho_b.len(), tree.len()); // phase-2 assignment per node
}

/// The "two scans are optimal" argument (§1.2): a node-selecting query
/// whose answer at the *first* node in document order depends on the
/// *last* node cannot be answered by any single forward pass that must
/// emit verdicts as it goes. The two-phase engine answers it exactly.
#[test]
fn first_node_depends_on_last() {
    // Select the root iff the last node (deepest-right leaf) is labeled z.
    let src = "HasZ :- V.Label[z].(invFirstChild|invSecondChild)*;\n\
               QUERY :- HasZ, Root;";
    let mut db1 = arb::Database::from_xml_str("<r><m/><m><z/></m></r>").unwrap();
    let q1 = db1.compile_tmnf(src).unwrap();
    assert_eq!(
        db1.prepare(&[q1]).run_one().unwrap().selected.to_vec(),
        vec![arb::tree::NodeId(0)]
    );

    let mut db2 = arb::Database::from_xml_str("<r><m/><m><y/></m></r>").unwrap();
    let q2 = db2.compile_tmnf(src).unwrap();
    assert!(db2.prepare(&[q2]).run_one().unwrap().selected.is_empty());
}

/// Fixed automata, growing data: evaluation time is linear in n. We
/// assert work-proxy linearity via derivation-free metrics (nodes
/// processed per transition-free step), not wall time, to stay robust on
/// shared CI machines.
#[test]
fn state_count_stays_bounded() {
    let (_, _, _, _, _) = run_at_scale(12);
    let seq = random_acgt(12, 99);
    let mut labels = LabelTable::new();
    let tree = acgt_flat_tree(&seq, &mut labels);
    let q = RandomPathQuery::batch(1, 6, &["A", "C", "G", "T"], RegexShape::Chars, 4)
        .pop()
        .unwrap();
    let mut lt = labels.clone();
    let ast = arb::tmnf::parse_program(&q.to_program(R_BOTTOM_UP), &mut lt).unwrap();
    let prog = arb::tmnf::normalize(&ast);
    let res = arb::core::evaluate_tree(&prog, &tree);
    // Distinct residual programs are far fewer than nodes.
    assert!(
        res.stats.bu_states < 200,
        "bu_states = {}",
        res.stats.bu_states
    );
    assert!(
        res.stats.td_states < 400,
        "td_states = {}",
        res.stats.td_states
    );
}
