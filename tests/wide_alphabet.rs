//! Regression for the 128-EDB schema-symbol overflow: a merged batch
//! whose union of EDB atoms exceeds 128 must evaluate **correctly** —
//! never silently alias alphabet symbols.
//!
//! The old `u128` truth-vector key computed `1 << i` per EDB atom, which
//! wraps (is masked) in release builds once a merged program mentions
//! more than 128 EDB atoms: atom `i` and atom `i + 128` became the same
//! bit, so e.g. a query for `Label[t0]` could select nodes labelled
//! `t128`. The dense arbitrary-width alphabet interner
//! (`arb_core::alphabet`) lifts the ceiling; this suite pins the
//! behavior end-to-end on both backends against the naive fixpoint and
//! against independent per-query runs.

use arb::engine::{evaluate_disk, evaluate_disk_batch, Database, QueryBatch};
use arb::storage::{create_from_tree, ArbDatabase};
use arb::tmnf::{naive, normalize, parse_program, CoreProgram};
use arb::tree::{BinaryTree, LabelTable, TreeBuilder};

/// Number of distinct labels — chosen so the merged EDB alphabet is
/// comfortably past the old 128 ceiling and exercises bits of the second
/// and third `u64` words of the truth vector.
const LABELS: usize = 150;

/// A flat document `<r><t0/><t1/>…</r>` with one leaf per label.
fn wide_doc() -> (BinaryTree, LabelTable) {
    let mut labels = LabelTable::new();
    let r = labels.intern("r").unwrap();
    let tags: Vec<_> = (0..LABELS)
        .map(|i| labels.intern(&format!("t{i}")).unwrap())
        .collect();
    let mut b = TreeBuilder::new();
    b.open(r);
    for &t in &tags {
        b.leaf(t);
    }
    b.close();
    (b.finish().unwrap(), labels)
}

/// One query per label: `QUERY :- V.Label[t{i}], Leaf;`.
fn wide_batch(labels: &mut LabelTable) -> Vec<CoreProgram> {
    (0..LABELS)
        .map(|i| {
            let src = format!("QUERY :- V.Label[t{i}], Leaf;");
            let ast = parse_program(&src, labels).expect("query parses");
            let mut prog = normalize(&ast);
            let qp = prog.pred_id("QUERY").expect("QUERY head");
            prog.add_query_pred(qp);
            prog
        })
        .collect()
}

fn disk_db(tree: &BinaryTree, labels: &LabelTable) -> ArbDatabase {
    let dir = std::env::temp_dir().join(format!("arb-wide-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wide.arb");
    create_from_tree(tree, labels, &path).expect("create database");
    ArbDatabase::open(&path).expect("open database")
}

#[test]
fn merged_alphabet_past_128_evaluates_correctly_on_disk() {
    let (tree, mut labels) = wide_doc();
    let progs = wide_batch(&mut labels);
    let batch = QueryBatch::from_programs(&progs);
    assert!(
        batch.merged_program().edbs().len() > 128,
        "the merged schema must cross the old u128 ceiling (got {})",
        batch.merged_program().edbs().len()
    );

    let db = disk_db(&tree, &labels);
    let combined = evaluate_disk_batch(&batch, &db).expect("batch eval");
    assert_eq!(combined.stats.backward_scans, 1);
    assert_eq!(combined.stats.forward_scans, 1);

    for (i, (prog, out)) in progs.iter().zip(&combined.outcomes).enumerate() {
        // Query i selects exactly the one leaf labelled t{i} — under the
        // old wrap-around, query i also matched leaf i ± 128.
        assert_eq!(out.stats.selected, 1, "query {i} selects one node");
        assert_eq!(
            out.selected.to_vec(),
            vec![arb::tree::NodeId(i as u32 + 1)],
            "query {i} selects its own leaf"
        );
        // Independent (narrow-schema) run as oracle.
        let indep = evaluate_disk(prog, &db).expect("independent eval");
        assert_eq!(out.selected.to_vec(), indep.selected.to_vec(), "query {i}");
    }
    // The interning report sees the wide alphabet.
    assert!(combined.stats.interning.alphabet_symbols >= 2);
}

#[test]
fn merged_alphabet_past_128_matches_naive_in_memory() {
    let (tree, mut labels) = wide_doc();
    let progs = wide_batch(&mut labels);
    let refs: Vec<&CoreProgram> = progs.iter().collect();
    let merged = arb::tmnf::merge_programs(&refs);
    assert!(merged.program.edbs().len() > 128);

    let batched = arb::core::evaluate_tree_batch(&refs, &tree);
    for (i, prog) in progs.iter().enumerate() {
        let oracle = naive::evaluate(prog, &tree);
        let q = prog.query_pred().expect("query pred");
        let selected = batched.selected(i);
        for v in tree.nodes() {
            assert_eq!(
                selected.contains(v),
                oracle.holds(q, v),
                "query {i} at node {}",
                v.0
            );
        }
    }
}

#[test]
fn wide_alphabet_session_surface_end_to_end() {
    // The same guarantee through the public prepared-session surface:
    // compile >128 single-label queries, prepare one session, and check
    // the per-query counts demultiplex correctly.
    let (tree, labels) = wide_doc();
    let mut db = Database::from_tree(tree, labels);
    let queries: Vec<_> = (0..LABELS)
        .map(|i| {
            db.compile_tmnf(&format!("QUERY :- V.Label[t{i}], Leaf;"))
                .expect("compiles")
        })
        .collect();
    let session = db.prepare(&queries);
    let outcome = session.run().expect("session eval");
    assert_eq!(outcome.outcomes.len(), LABELS);
    for (i, out) in outcome.outcomes.iter().enumerate() {
        assert_eq!(out.stats.selected, 1, "query {i}");
    }
    // Union across the batch: every leaf selected exactly once.
    assert_eq!(outcome.stats.selected, LABELS as u64);
}
