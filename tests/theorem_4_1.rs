//! Property tests for Theorem 4.1: the two-phase automaton evaluation
//! computes exactly the TMNF least-fixpoint semantics —
//! `P ∈ ρB(v) ⇔ P(v) ∈ P(T)` — on *random programs* and *random trees*,
//! in memory and through the `.arb` storage model.

use arb::core::evaluate_tree;
use arb::engine::evaluate_disk;
use arb::logic::{Atom, ProgramId};
use arb::storage::{create_from_tree, ArbDatabase};
use arb::tmnf::core::{BodyAtom, CoreProgram, CoreRule};
use arb::tmnf::{naive, EdbAtom};
use arb::tree::{BinaryTree, LabelId, LabelTable, TreeBuilder};
use proptest::prelude::*;

/// The EDB pool random programs draw from.
fn edb_pool() -> Vec<EdbAtom> {
    vec![
        EdbAtom::V,
        EdbAtom::Root,
        EdbAtom::HasFirstChild,
        EdbAtom::Leaf,
        EdbAtom::HasSecondChild,
        EdbAtom::LastSibling,
        EdbAtom::Label(LabelId(256)),
        EdbAtom::NotLabel(LabelId(256)),
        EdbAtom::Label(LabelId(257)),
        EdbAtom::Text,
    ]
}

/// Strategy: a random strict TMNF program over `n_preds` predicates.
fn random_program(n_preds: u32, n_rules: usize) -> impl Strategy<Value = CoreProgram> {
    let rule = (
        0..5u8,
        0..n_preds,
        0..n_preds,
        0..n_preds,
        0..10usize,
        1..3u8,
    );
    proptest::collection::vec(rule, 1..=n_rules).prop_map(move |rules| {
        let mut prog = CoreProgram::new();
        for i in 0..n_preds {
            prog.pred(&format!("P{i}"));
        }
        let pool = edb_pool();
        for (kind, head, b1, b2, edb_ix, k) in rules {
            let rule = match kind {
                0 => CoreRule::Edb {
                    head,
                    edb: prog.edb(pool[edb_ix % pool.len()]),
                },
                1 => CoreRule::Down { head, body: b1, k },
                2 => CoreRule::Up { head, body: b1, k },
                3 => CoreRule::And {
                    head,
                    b1: BodyAtom::Pred(b1),
                    b2: BodyAtom::Pred(b2),
                },
                _ => CoreRule::And {
                    head,
                    b1: BodyAtom::Pred(b1),
                    b2: BodyAtom::Edb(prog.edb(pool[edb_ix % pool.len()])),
                },
            };
            prog.add_rule(rule);
        }
        prog
    })
}

/// Strategy: a random tree with labels 256/257/258 and some text.
fn random_tree(max_ops: usize) -> impl Strategy<Value = BinaryTree> {
    proptest::collection::vec((0..4u8, 0..3u16), 0..max_ops).prop_map(|ops| {
        let mut lt = LabelTable::new();
        for n in ["a", "b", "c"] {
            lt.intern(n).expect("label");
        }
        let mut b = TreeBuilder::new();
        b.open(LabelId(256));
        let mut depth = 1;
        for (op, l) in ops {
            match op {
                0 if depth > 1 => {
                    b.close();
                    depth -= 1;
                }
                1 => b.text(b"x"),
                2 => b.leaf(LabelId(256 + l)),
                _ => {
                    b.open(LabelId(256 + l));
                    depth += 1;
                }
            }
        }
        while depth > 0 {
            b.close();
            depth -= 1;
        }
        b.finish().expect("balanced")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two-phase in-memory evaluation equals the naive least fixpoint on
    /// every (predicate, node) pair.
    #[test]
    fn two_phase_equals_fixpoint(
        prog in random_program(5, 14),
        tree in random_tree(40),
    ) {
        let oracle = naive::evaluate(&prog, &tree);
        let two = evaluate_tree(&prog, &tree);
        for p in 0..prog.pred_count() as u32 {
            for v in tree.nodes() {
                prop_assert_eq!(
                    two.holds(p, v),
                    oracle.holds(p, v),
                    "pred P{} at node {}", p, v.0
                );
            }
        }
    }

    /// The same through the storage model: backward scan + .sta file +
    /// forward scan (the paper's production configuration).
    #[test]
    fn disk_equals_fixpoint(
        prog in random_program(4, 10),
        tree in random_tree(30),
    ) {
        let mut prog = prog;
        for p in 0..prog.pred_count() as u32 {
            prog.add_query_pred(p);
        }
        let mut lt = LabelTable::new();
        for n in ["a", "b", "c"] {
            lt.intern(n).expect("label");
        }
        let dir = std::env::temp_dir().join(format!("arb-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(format!("t{:?}.arb", std::thread::current().id()));
        create_from_tree(&tree, &lt, &path).expect("create");
        let db = ArbDatabase::open(&path).expect("open");
        let outcome = evaluate_disk(&prog, &db).expect("disk eval");

        let oracle = naive::evaluate(&prog, &tree);
        for (i, &p) in prog.query_preds().iter().enumerate() {
            prop_assert_eq!(
                outcome.per_pred_counts[i],
                oracle.extent(p).count() as u64,
                "pred P{}", p
            );
        }
        // Selected set = union over query predicates.
        for v in tree.nodes() {
            let any = (0..prog.pred_count() as u32).any(|p| oracle.holds(p, v));
            prop_assert_eq!(outcome.selected.contains(v), any, "node {}", v.0);
        }
    }

    /// The optimizer preserves query-predicate semantics on random
    /// programs and trees.
    #[test]
    fn optimizer_preserves_semantics(
        prog in random_program(5, 12),
        tree in random_tree(40),
    ) {
        let mut prog = prog;
        prog.add_query_pred(0);
        prog.add_query_pred(2);
        let opt = arb::tmnf::optimize(&prog);
        prop_assert!(opt.rule_count() <= prog.rule_count());
        let r1 = naive::evaluate(&prog, &tree);
        let r2 = naive::evaluate(&opt, &tree);
        for (i, (&q1, &q2)) in prog
            .query_preds()
            .iter()
            .zip(opt.query_preds())
            .enumerate()
        {
            for v in tree.nodes() {
                prop_assert_eq!(
                    r1.holds(q1, v),
                    r2.holds(q2, v),
                    "query pred {} at node {}", i, v.0
                );
            }
        }
    }

    /// Phase-1 residual programs are always EDB-free and local-only, and
    /// the number of distinct states stays small (the paper's central
    /// empirical observation).
    #[test]
    fn residual_programs_are_local(
        prog in random_program(5, 12),
        tree in random_tree(40),
    ) {
        let res = evaluate_tree(&prog, &tree);
        for i in 0..res.automata.programs.len() as u32 {
            let p = res.automata.programs.get(ProgramId(i));
            for r in p.rules() {
                prop_assert!(r.head.is_local());
                prop_assert!(r.body.iter().all(|a| a.is_local()));
            }
        }
        // States are hash-consed: distinct states ≤ distinct transitions.
        prop_assert!(res.automata.programs.len() as u64 <= res.stats.phase1_transitions + 1);
    }
}

/// Theorem 4.1 on the paper's own running example, end to end through
/// every code path (in-memory, parallel, disk).
#[test]
fn example_4_3_everywhere() {
    let mut lt = LabelTable::new();
    let ast = arb::tmnf::parse_program(arb::tmnf::programs::EXAMPLE_4_3, &mut lt).unwrap();
    let mut prog = arb::tmnf::normalize(&ast);
    let q = prog.pred_id("Q").unwrap();
    prog.add_query_pred(q);
    let a = lt.intern("a").unwrap();
    let mut b = TreeBuilder::new();
    b.open(a);
    b.open(a);
    b.open(a);
    b.close();
    b.close();
    b.close();
    let tree = b.finish().unwrap();

    let mem = evaluate_tree(&prog, &tree);
    assert!(mem.holds(q, arb::tree::NodeId(0)));
    assert_eq!(mem.extent(q).count(), 1);

    let par = arb::core::parallel::evaluate_tree_parallel(&prog, &tree, 2);
    assert_eq!(par.stats.selected, 1);

    let dir = std::env::temp_dir().join(format!("arb-e43-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e43.arb");
    create_from_tree(&tree, &lt, &path).unwrap();
    let db = ArbDatabase::open(&path).unwrap();
    let disk = evaluate_disk(&prog, &db).unwrap();
    assert_eq!(disk.stats.selected, 1);
    assert!(disk.selected.contains(arb::tree::NodeId(0)));
    let _ = Atom::local(q);
}
