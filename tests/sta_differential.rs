//! Differential property for the `.sta` state-stream codec: the default
//! block-compressed stream, the paper's flat 4-bytes-per-node stream,
//! and the in-memory evaluation path must produce identical results —
//! node sets, counts, boolean verdicts, and streamed marked XML — for
//! random query batches over generated documents, sequentially and
//! sharded over 1, 2 and 4 workers.
//!
//! The whole suite pins `ARB_STA_BLOCK_RECORDS=64` (via the
//! `EvalOptions`-independent env knob, set once before any evaluation),
//! so the few-hundred-node documents span many blocks and the sharded
//! runs' segment windows straddle block frames — the frontier planner
//! splits on subtree boundaries, which almost never coincide with a
//! 64-record frame.

use arb::datagen::queries::{RandomPathQuery, R_TOP_DOWN};
use arb::datagen::{treebank_tree, RegexShape, TreebankConfig};
use arb::engine::{BooleanSink, CountSink, EvalRequest, NodeSetSink, XmlMarkSink};
use arb::tree::{BinaryTree, LabelTable};
use arb::{Database, StaFormat};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

static CASE: AtomicUsize = AtomicUsize::new(0);
static TINY_BLOCKS: Once = Once::new();

/// Pins tiny `.sta` blocks for the whole test process (all tests of this
/// binary want the same value, so the write is race-free by idempotence).
fn pin_tiny_blocks() {
    TINY_BLOCKS.call_once(|| std::env::set_var("ARB_STA_BLOCK_RECORDS", "64"));
}

/// A small seeded treebank document (a few hundred nodes — dozens of
/// 64-record blocks).
fn small_treebank(seed: u64) -> (BinaryTree, LabelTable) {
    let mut labels = LabelTable::new();
    let tree = treebank_tree(
        &TreebankConfig {
            target_elems: 250,
            seed,
            filler_tags: 8,
        },
        &mut labels,
    );
    (tree, labels)
}

/// Generates k random query sources against the treebank tag set.
fn query_sources(k: usize, seed: u64) -> Vec<String> {
    RandomPathQuery::batch(k, 5, &["NP", "VP", "PP", "S"], RegexShape::Tags, seed)
        .iter()
        .map(|q| q.to_program(R_TOP_DOWN))
        .collect()
}

/// Memory backend + disk backend over the same document.
fn both_backends(tree: &BinaryTree, labels: &LabelTable) -> (Database, Database) {
    let dir = std::env::temp_dir().join(format!("arb-stadiff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("case-{}.arb", CASE.fetch_add(1, Ordering::Relaxed)));
    arb::storage::create_from_tree(tree, labels, &path).expect("create database");
    (
        Database::from_tree(tree.clone(), labels.clone()),
        Database::open_arb(&path).expect("open database"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// blocked == flat == in-memory, across sequential/sharded × sinks.
    #[test]
    fn blocked_equals_flat_equals_memory((k, tree_seed, query_seed) in
        (1usize..=3, any::<u64>(), any::<u64>()))
    {
        pin_tiny_blocks();
        let (tree, labels) = small_treebank(tree_seed);
        let sources = query_sources(k, query_seed);
        let (mut mem, mut disk) = both_backends(&tree, &labels);

        // In-memory oracle: no `.sta` stream at all.
        let mem_queries: Vec<arb::Query> = sources
            .iter()
            .map(|s| mem.compile_tmnf(s).expect("query compiles"))
            .collect();
        let mut mem_sets = NodeSetSink::default();
        let mut mem_bools = BooleanSink::default();
        let mut mem_mark = XmlMarkSink::new(mem.labels(), Vec::new());
        {
            let session = mem.prepare(&mem_queries);
            session.eval(&EvalRequest::new(), &mut mem_sets).expect("memory sets");
            session.eval(&EvalRequest::new(), &mut mem_bools).expect("memory bools");
            session.eval(&EvalRequest::new(), &mut mem_mark).expect("memory mark");
        }
        let mem_marked = mem_mark.into_inner().expect("marked bytes");

        let disk_queries: Vec<arb::Query> = sources
            .iter()
            .map(|s| disk.compile_tmnf(s).expect("query compiles"))
            .collect();
        let session = disk.prepare(&disk_queries);
        for format in [StaFormat::Blocked, StaFormat::Flat] {
            for threads in [1usize, 2, 4] {
                let req = EvalRequest::new().parallelism(threads).sta_format(format);

                let mut sets = NodeSetSink::default();
                session.eval(&req, &mut sets).expect("disk sets");
                prop_assert_eq!(sets.sets().len(), k);
                for (i, (s, m)) in sets.sets().iter().zip(mem_sets.sets()).enumerate() {
                    prop_assert_eq!(
                        s.to_vec(), m.to_vec(),
                        "sets: query {} {} threads {}", i, format, threads
                    );
                }

                let mut counts = CountSink::default();
                session.eval(&req, &mut counts).expect("disk counts");
                for (i, c) in counts.counts().iter().enumerate() {
                    prop_assert_eq!(
                        *c, mem_sets.sets()[i].count() as u64,
                        "counts: query {} {} threads {}", i, format, threads
                    );
                }

                let mut bools = BooleanSink::default();
                session.eval(&req, &mut bools).expect("disk bools");
                prop_assert_eq!(
                    bools.verdicts(), mem_bools.verdicts(),
                    "verdicts: {} threads {}", format, threads
                );

                // The streamed (hook) path reads the whole stream in
                // document order — sharded runs remap worker segments.
                let mut mark = XmlMarkSink::new(disk.labels(), Vec::new());
                session.eval(&req, &mut mark).expect("disk mark");
                prop_assert_eq!(
                    mark.into_inner().expect("marked bytes"), mem_marked.clone(),
                    "marked XML: {} threads {}", format, threads
                );
            }
        }
    }
}
