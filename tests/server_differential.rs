//! Differential and behavioral tests for the resident query service:
//! concurrent clients against `arb_server` must agree exactly with
//! one-shot [`Session::eval`] runs, and the admission batcher's scan
//! sharing, cache eviction, load shedding and graceful drain must be
//! observable on the wire.

use arb::engine::{CountSink, Database, EvalRequest, NodeSetSink, XmlMarkSink};
use arb::server::protocol::{ErrorCode, OutputKind, QueryResult, WireLanguage};
use arb::server::{Client, ClientError, Server, ServerConfig, ServerHandle};
use std::io::Cursor;
use std::path::PathBuf;
use std::time::Duration;

/// A small but non-trivial document: nested sections with repeated tags
/// so the queries select interesting subsets.
fn test_xml() -> String {
    let mut xml = String::from("<corpus>");
    for i in 0..40 {
        xml.push_str("<doc>");
        xml.push_str(&format!("<title>t{i}</title>"));
        for j in 0..(i % 5) {
            xml.push_str(&format!("<sec><p>x{j}</p><note/></sec>"));
        }
        if i % 3 == 0 {
            xml.push_str("<flag/>");
        }
        xml.push_str("</doc>");
    }
    xml.push_str("</corpus>");
    xml
}

fn make_db(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("arb-servdiff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    arb::storage::create_from_xml(
        Cursor::new(test_xml().into_bytes()),
        &arb::xml::XmlConfig::default(),
        &path,
    )
    .unwrap();
    path
}

fn start(name: &str, config: ServerConfig) -> (ServerHandle, PathBuf) {
    let db = make_db(name);
    let handle = Server::start(config, &[&db]).unwrap();
    (handle, db)
}

const QUERIES: &[&str] = &[
    "//sec/p",
    "//flag",
    "//title",
    "//note",
    "//doc//p",
    "/corpus/doc",
];

/// N concurrent clients with mixed sinks must match one-shot engine
/// runs bit for bit — verdicts, counts, node sets and marked XML.
#[test]
fn concurrent_clients_match_one_shot_sessions() {
    let (handle, db_path) = start(
        "diff.arb",
        ServerConfig {
            batch_window: Duration::from_millis(20),
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();
    let stem = "diff";

    // One-shot reference results straight from the engine.
    let mut db = Database::open_arb(&db_path).unwrap();
    let queries: Vec<_> = QUERIES
        .iter()
        .map(|q| db.compile_xpath(q).unwrap())
        .collect();
    let session = db.prepare(&queries);
    let mut counts = CountSink::default();
    let report = session.eval(&EvalRequest::new(), &mut counts).unwrap();
    let ref_verdicts = report.verdicts.clone();
    let ref_counts = counts.counts().to_vec();
    let mut nodes = NodeSetSink::default();
    session.eval(&EvalRequest::new(), &mut nodes).unwrap();
    let ref_nodes: Vec<Vec<u32>> = nodes
        .sets()
        .iter()
        .map(|s| s.iter().map(|v| v.0).collect())
        .collect();
    // Per-query marked XML needs a single-query session per query (the
    // server marks each client's own selection, not the union).
    let ref_xml: Vec<Vec<u8>> = queries
        .iter()
        .map(|q| {
            let s = db.prepare(std::slice::from_ref(q));
            let mut sink = XmlMarkSink::new(db.labels(), Vec::new());
            s.eval(&EvalRequest::new(), &mut sink).unwrap();
            sink.into_inner().unwrap()
        })
        .collect();

    // Concurrent clients, four output shapes per query.
    let outputs = [
        OutputKind::Bool,
        OutputKind::Count,
        OutputKind::Nodes,
        OutputKind::Xml,
    ];
    let mut threads = Vec::new();
    for (qi, q) in QUERIES.iter().enumerate() {
        for output in outputs {
            let q = q.to_string();
            threads.push(std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let reply = c
                    .query(stem, WireLanguage::XPath, output, &q)
                    .unwrap_or_else(|e| panic!("query {q:?} ({output:?}): {e}"));
                (qi, output, reply)
            }));
        }
    }
    for t in threads {
        let (qi, output, reply) = t.join().unwrap();
        match (output, reply.result) {
            (OutputKind::Bool, QueryResult::Bool(v)) => assert_eq!(v, ref_verdicts[qi]),
            (OutputKind::Count, QueryResult::Count(n)) => assert_eq!(n, ref_counts[qi]),
            (OutputKind::Nodes, QueryResult::Nodes(ns)) => assert_eq!(ns, ref_nodes[qi]),
            (OutputKind::Xml, QueryResult::Xml(xml)) => assert_eq!(xml, ref_xml[qi]),
            (o, r) => panic!("result shape {r:?} does not match requested {o:?}"),
        }
        assert!(reply.stats.batch_size >= 1);
    }
    handle.shutdown();
}

/// The acceptance scenario: 8 clients land in one admission window and
/// the wire statistics prove the whole window was served by exactly one
/// backward and one forward scan shared by all 8.
#[test]
fn full_window_shares_one_scan_pair() {
    // A long window plus max_batch == 8 makes dispatch deterministic:
    // the batcher fires on the 8th admission, not on a timer.
    let (handle, _db) = start(
        "window.arb",
        ServerConfig {
            batch_window: Duration::from_secs(5),
            max_batch: 8,
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();
    let mut threads = Vec::new();
    for i in 0..8 {
        // Distinct query texts so the pass is a real 8-way merge.
        let q = QUERIES[i % QUERIES.len()].to_string();
        let q = if i < QUERIES.len() {
            q
        } else {
            format!("{q}/..")
        };
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.query("window", WireLanguage::XPath, OutputKind::Count, &q)
                .unwrap()
        }));
    }
    for t in threads {
        let reply = t.join().unwrap();
        assert_eq!(reply.stats.batch_size, 8, "all 8 queries share one pass");
        assert_eq!(reply.stats.backward_scans, 1);
        assert_eq!(reply.stats.forward_scans, 1);
    }
    let mut c = Client::connect(addr).unwrap();
    let s = c.server_stats().unwrap();
    assert_eq!(s.requests, 8);
    assert_eq!(s.batches, 1, "one dispatch served the whole window");
    assert_eq!(s.backward_scans, 1);
    assert_eq!(s.forward_scans, 1);
    assert_eq!(s.max_batch, 8);
    handle.shutdown();
}

/// Repeated identical windows hit the window-shape cache: the first
/// dispatch builds the merged automata exactly once, and every later
/// identical window reuses them — pinned on the wire (per-reply
/// `automata_builds`/`automata_reused`) and in the server counters.
#[test]
fn repeated_windows_build_automata_once() {
    let (handle, _db) = start(
        "winreuse.arb",
        ServerConfig {
            batch_window: Duration::from_secs(5),
            max_batch: 4,
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();
    for round in 0..3 {
        let mut threads = Vec::new();
        for q in QUERIES.iter().take(4) {
            let q = q.to_string();
            threads.push(std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.query("winreuse", WireLanguage::XPath, OutputKind::Count, &q)
                    .unwrap()
            }));
        }
        for t in threads {
            let reply = t.join().unwrap();
            assert_eq!(reply.stats.batch_size, 4, "round {round} shares one window");
            if round == 0 {
                assert_eq!(reply.stats.automata_builds, 1, "cold window builds once");
            } else {
                assert_eq!(
                    reply.stats.automata_builds, 0,
                    "warm window round {round} must not rebuild"
                );
                assert!(reply.stats.automata_reused >= 1, "round {round} reuses");
            }
        }
    }
    let mut c = Client::connect(addr).unwrap();
    let s = c.server_stats().unwrap();
    assert_eq!(s.requests, 12);
    assert_eq!(s.batches, 3);
    assert_eq!(s.automata_builds, 1, "three identical windows, one build");
    assert_eq!(s.automata_reused, 2);
    handle.shutdown();
}

/// Verdict-only windows skip phase 2 entirely: one backward scan, zero
/// forward scans, on the wire and in the server counters.
#[test]
fn boolean_window_skips_phase_two() {
    let (handle, _db) = start(
        "boolwin.arb",
        ServerConfig {
            batch_window: Duration::from_secs(5),
            max_batch: 4,
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();
    let mut threads = Vec::new();
    for q in QUERIES.iter().take(4) {
        let q = q.to_string();
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.query("boolwin", WireLanguage::XPath, OutputKind::Bool, &q)
                .unwrap()
        }));
    }
    for t in threads {
        let reply = t.join().unwrap();
        assert_eq!(reply.stats.batch_size, 4);
        assert_eq!(reply.stats.backward_scans, 1);
        assert_eq!(reply.stats.forward_scans, 0, "no phase 2 for verdicts");
    }
    let mut c = Client::connect(addr).unwrap();
    let s = c.server_stats().unwrap();
    assert_eq!((s.backward_scans, s.forward_scans), (1, 0));
    handle.shutdown();
}

/// A tiny cache budget forces evictions, visible in the server
/// counters; evicted programs recompile and still answer correctly.
#[test]
fn cache_eviction_under_tight_budget() {
    let (handle, _db) = start(
        "evict.arb",
        ServerConfig {
            cache_budget: 3000, // fits roughly one cached program, not two
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();
    let mut c = Client::connect(addr).unwrap();
    // Alternate two queries: each lookup misses because the other
    // evicted it.
    for _ in 0..3 {
        for q in ["//flag", "//title"] {
            let reply = c
                .query("evict", WireLanguage::XPath, OutputKind::Count, q)
                .unwrap();
            assert!(!reply.stats.cache_hit, "budget fits only one program");
        }
    }
    let s = c.server_stats().unwrap();
    assert_eq!(s.cache_hits, 0);
    assert_eq!(s.cache_misses, 6);
    assert!(
        s.cache_evictions >= 5,
        "alternating misses evict each other"
    );
    // Same query twice in a roomy cache does hit.
    let r1 = c
        .query("evict", WireLanguage::XPath, OutputKind::Count, "//flag")
        .unwrap();
    let r2 = c
        .query("evict", WireLanguage::XPath, OutputKind::Count, "//flag")
        .unwrap();
    assert_eq!(r1.result, r2.result);
    handle.shutdown();
}

/// With the batcher effectively parked (long window, high max_batch)
/// a saturated admission queue sheds further requests with a fast
/// `Overloaded` reply instead of queuing them.
#[test]
fn saturated_queue_sheds_load() {
    let (handle, _db) = start(
        "shed.arb",
        ServerConfig {
            batch_window: Duration::from_millis(700),
            max_batch: 64,
            queue_cap: 2,
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();
    let mut threads = Vec::new();
    for q in QUERIES.iter().take(5) {
        let q = q.to_string();
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.query("shed", WireLanguage::XPath, OutputKind::Count, &q)
        }));
    }
    let mut served = 0u32;
    let mut shed = 0u32;
    for t in threads {
        match t.join().unwrap() {
            Ok(reply) => {
                served += 1;
                assert!(reply.stats.batch_size <= 2);
            }
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::Overloaded);
                shed += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    // Exact split depends on timing (a dispatch may free the queue),
    // but the cap guarantees at least one request was shed and at
    // least queue_cap were served.
    assert!(served >= 2, "served {served}");
    assert!(shed >= 1, "shed {shed}");
    let mut c = Client::connect(addr).unwrap();
    assert_eq!(c.server_stats().unwrap().overloaded, u64::from(shed));
    handle.shutdown();
}

/// Unknown databases and bad query text come back as typed errors, and
/// the connection stays usable afterwards.
#[test]
fn typed_errors_keep_the_connection_alive() {
    let (handle, _db) = start("errs.arb", ServerConfig::default());
    let mut c = Client::connect(handle.local_addr()).unwrap();
    match c.query("nope", WireLanguage::XPath, OutputKind::Count, "//a") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownDatabase),
        other => panic!("expected UnknownDatabase, got {other:?}"),
    }
    match c.query("errs", WireLanguage::XPath, OutputKind::Count, "//a[") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Query),
        other => panic!("expected Query error, got {other:?}"),
    }
    let reply = c
        .query(
            "errs",
            WireLanguage::Tmnf,
            OutputKind::Count,
            "QUERY :- V.Label[flag];",
        )
        .unwrap();
    assert_eq!(reply.result, QueryResult::Count(14));
    handle.shutdown();
}

/// Graceful shutdown: a queued window is drained (clients get answers),
/// while requests admitted after the drain began are refused.
#[test]
fn shutdown_drains_inflight_batches() {
    let (handle, _db) = start(
        "drain.arb",
        ServerConfig {
            batch_window: Duration::from_millis(600),
            max_batch: 64,
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();
    // Two clients park a window in the admission queue...
    let mut threads = Vec::new();
    for q in ["//flag", "//title"] {
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.query("drain", WireLanguage::XPath, OutputKind::Count, q)
        }));
    }
    // ...then shutdown arrives mid-window.
    std::thread::sleep(Duration::from_millis(150));
    let mut c = Client::connect(addr).unwrap();
    c.shutdown().unwrap();
    for t in threads {
        let reply = t.join().unwrap().expect("queued queries drain to answers");
        assert_eq!(reply.stats.batch_size, 2, "drained as one shared pass");
    }
    // New queries are refused while (or after) draining.
    match c.query("drain", WireLanguage::XPath, OutputKind::Count, "//flag") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        Err(ClientError::Io(_)) => {} // server already gone
        Ok(r) => panic!("expected refusal, got {:?}", r.result),
    }
    handle.wait();
}
