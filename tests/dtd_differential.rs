//! Differential testing of DTD-conformance compilation: for random trees
//! over the DTD's alphabet, the compiled TMNF program (evaluated naively
//! *and* by the two-phase automata) must agree with the direct recursive
//! checker on every node.

use arb::core::evaluate_tree;
use arb::tmnf::{conformance_program, naive, Dtd};
use arb::tree::{BinaryTree, LabelTable, TreeBuilder};
use proptest::prelude::*;

// The case budget below is capped CI-friendly low; the proptest runner
// honors `ARB_PROPTEST_CASES` (e.g. `ARB_PROPTEST_CASES=5000 cargo test`)
// for deep runs, overriding every `with_cases` value.

const DTD_SRC: &str = "
    a = (b, c?)*;
    b = (#PCDATA | c)*;
    c = EMPTY;
";

fn random_tree() -> impl Strategy<Value = (BinaryTree, LabelTable)> {
    proptest::collection::vec((0..4u8, 0..3u8), 0..30).prop_map(|ops| {
        let mut lt = LabelTable::new();
        let tags = ["a", "b", "c"].map(|n| lt.intern(n).expect("label"));
        let mut b = TreeBuilder::new();
        b.open(tags[0]);
        let mut depth = 1;
        for (op, t) in ops {
            match op {
                0 if depth > 1 => {
                    b.close();
                    depth -= 1;
                }
                1 => b.text(b"w"),
                2 => b.leaf(tags[t as usize]),
                _ => {
                    b.open(tags[t as usize]);
                    depth += 1;
                }
            }
        }
        while depth > 0 {
            b.close();
            depth -= 1;
        }
        (b.finish().expect("balanced"), lt)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_conformance_agrees_with_checker((tree, lt) in random_tree()) {
        let dtd = Dtd::parse(DTD_SRC).expect("dtd");
        let expected = dtd.check_tree(&tree, &lt);
        let mut labels = lt.clone();
        let prog = conformance_program(&dtd, &mut labels);
        let conf = prog.query_pred().expect("Conf");

        let fixpoint = naive::evaluate(&prog, &tree);
        let two = evaluate_tree(&prog, &tree);
        for v in tree.nodes() {
            prop_assert_eq!(
                fixpoint.holds(conf, v),
                expected.contains(v),
                "naive at node {}", v.0
            );
            prop_assert_eq!(
                two.holds(conf, v),
                expected.contains(v),
                "two-phase at node {}", v.0
            );
        }
    }
}
