//! Differential testing of the Core XPath pipeline: for random trees and
//! a diverse query pool, the **direct node-at-a-time evaluator**, the
//! **naive datalog fixpoint** of the compiled TMNF, and the **two-phase
//! automaton run** must all select the same nodes.

use arb::core::evaluate_tree;
use arb::tmnf::naive;
use arb::tree::{BinaryTree, LabelId, LabelTable, TreeBuilder};
use arb::xpath::{compile_path, parse_xpath, DirectEvaluator};
use proptest::prelude::*;

// Case budgets below are capped CI-friendly low because every case sweeps
// the whole query pool with three evaluators. The proptest runner honors
// `ARB_PROPTEST_CASES` (e.g. `ARB_PROPTEST_CASES=5000 cargo test`) for
// deep runs, overriding every `with_cases` value.

const QUERIES: &[&str] = &[
    "//a",
    "/r/a",
    "//a/b",
    "//a//b",
    "//*[a]",
    "//*[not(a)]",
    "//a[b and not(c)]",
    "//a[b or c]",
    "//b/..",
    "//b/parent::a",
    "//b/ancestor::*",
    "//a/descendant-or-self::b",
    "//b/following-sibling::*",
    "//b/preceding-sibling::a",
    "//c/following::b",
    "//c/preceding::node()",
    "//a[not(.//c)]",
    "//a[not(following::b)]",
    "//text()",
    "//*[text()]",
    "//a[//c]",
    "//a[not(//missing)]",
    "//*[not(ancestor::b)]",
    "//a/self::a[b]",
    "//*[b][not(c)]",
    "//a[contains-text(\"t\")]",
    "//*[not(contains-text(\"tt\"))]",
];

/// Union queries, tested against the union of direct evaluations.
const UNION_QUERIES: &[&str] = &["//a | //b", "/r/a | //c[not(a)] | //text()"];

fn random_tree() -> impl Strategy<Value = (BinaryTree, LabelTable)> {
    proptest::collection::vec((0..4u8, 0..3u16), 0..35).prop_map(|ops| {
        let mut lt = LabelTable::new();
        let r = lt.intern("r").expect("label");
        for n in ["a", "b", "c"] {
            lt.intern(n).expect("label");
        }
        let mut b = TreeBuilder::new();
        b.open(r);
        let mut depth = 1;
        for (op, l) in ops {
            match op {
                0 if depth > 1 => {
                    b.close();
                    depth -= 1;
                }
                1 => b.text(b"t"),
                2 => b.leaf(LabelId(257 + l)),
                _ => {
                    b.open(LabelId(257 + l));
                    depth += 1;
                }
            }
        }
        while depth > 0 {
            b.close();
            depth -= 1;
        }
        (b.finish().expect("balanced"), lt)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn direct_naive_and_automata_agree((tree, lt) in random_tree()) {
        for src in QUERIES {
            let path = parse_xpath(src).expect("parse");
            let mut labels = lt.clone();
            let prog = compile_path(&path, &mut labels);
            let q = prog.query_pred().expect("query pred");

            let mut direct = DirectEvaluator::new(&tree, &labels);
            let expected = direct.evaluate(&path);

            let fixpoint = naive::evaluate(&prog, &tree);
            let two = evaluate_tree(&prog, &tree);
            for v in tree.nodes() {
                prop_assert_eq!(
                    fixpoint.holds(q, v),
                    expected.contains(v),
                    "{} at node {} (naive vs direct)", src, v.0
                );
                prop_assert_eq!(
                    two.holds(q, v),
                    expected.contains(v),
                    "{} at node {} (two-phase vs direct)", src, v.0
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn unions_agree((tree, lt) in random_tree()) {
        for src in UNION_QUERIES {
            let paths = arb::xpath::parse_xpath_union(src).expect("parse");
            let mut labels = lt.clone();
            let prog = arb::xpath::compile_union(&paths, &mut labels);
            let q = prog.query_pred().expect("query pred");
            let fixpoint = naive::evaluate(&prog, &tree);

            let mut direct = DirectEvaluator::new(&tree, &labels);
            let mut expected = arb::tree::NodeSet::new(tree.len());
            for p in &paths {
                expected.union_with(&direct.evaluate(p));
            }
            for v in tree.nodes() {
                prop_assert_eq!(
                    fixpoint.holds(q, v),
                    expected.contains(v),
                    "{} at node {}", src, v.0
                );
            }
        }
    }
}

/// De Morgan consistency: `not(a or b)` ≡ `not(a) and not(b)` and double
/// negation elimination, via the pos/neg pair compilation.
#[test]
fn negation_laws() {
    let mut lt = LabelTable::new();
    for n in ["r", "a", "b", "c"] {
        lt.intern(n).unwrap();
    }
    let mut b = TreeBuilder::new();
    b.open(LabelId(256));
    b.open(LabelId(257));
    b.leaf(LabelId(258));
    b.close();
    b.open(LabelId(257));
    b.leaf(LabelId(259));
    b.close();
    b.leaf(LabelId(257));
    b.close();
    let tree = b.finish().unwrap();

    let pairs = [
        ("//*[not(b or c)]", "//*[not(b) and not(c)]"),
        ("//*[not(not(b))]", "//*[b]"),
        ("//*[not(b and c)]", "//*[not(b) or not(c)]"),
    ];
    for (lhs, rhs) in pairs {
        let mut l1 = lt.clone();
        let p1 = compile_path(&parse_xpath(lhs).unwrap(), &mut l1);
        let mut l2 = lt.clone();
        let p2 = compile_path(&parse_xpath(rhs).unwrap(), &mut l2);
        let r1 = naive::evaluate(&p1, &tree);
        let r2 = naive::evaluate(&p2, &tree);
        let (q1, q2) = (p1.query_pred().unwrap(), p2.query_pred().unwrap());
        for v in tree.nodes() {
            assert_eq!(
                r1.holds(q1, v),
                r2.holds(q2, v),
                "{lhs} vs {rhs} at node {}",
                v.0
            );
        }
    }
}
