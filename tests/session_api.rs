//! Sink equivalence for the prepared `Session`/`EvalRequest` surface:
//! on generated treebank and ACGT documents, every provided sink must
//! agree with (a) the corresponding legacy `Database::evaluate*` method
//! (now a shim — this pins the shim wiring) and (b) the raw un-merged
//! evaluation kernels (`arb_engine::evaluate_disk` on disk,
//! `arb::core::evaluate_tree` + `MarkedWriter` on memory — independent
//! oracles that never see the merged batch IR). Checked for memory and
//! disk backends, single-query and batched sessions, sequential and
//! frontier-parallel evaluation.
//!
//! Also here: the disk-parallel differential property (sharded disk ==
//! sequential disk == in-memory, across thread counts, single and
//! batched — the §6.2-on-disk guarantee) and the concurrent-session
//! regression for the once-shared `.sta` scratch path.

#![allow(deprecated)] // comparing against the legacy matrix is the point

use arb::datagen::queries::{RandomPathQuery, R_INFIX, R_TOP_DOWN};
use arb::datagen::{acgt_infix_tree, random_acgt, treebank_tree, RegexShape, TreebankConfig};
use arb::engine::{BooleanSink, CountSink, EvalRequest, NodeSetSink, XmlMarkSink};
use arb::tree::{BinaryTree, LabelTable, NodeId, NodeSet};
use arb::Database;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A small seeded treebank document (a few hundred nodes).
fn small_treebank(seed: u64) -> (BinaryTree, LabelTable) {
    let mut labels = LabelTable::new();
    let tree = treebank_tree(
        &TreebankConfig {
            target_elems: 200,
            seed,
            filler_tags: 8,
        },
        &mut labels,
    );
    (tree, labels)
}

/// A small ACGT-infix document (balanced; exercises the parallel
/// frontier even at this size).
fn small_acgt(seed: u64) -> (BinaryTree, LabelTable) {
    let mut labels = LabelTable::new();
    let seq = random_acgt(8, seed);
    let tree = acgt_infix_tree(&seq, &mut labels);
    (tree, labels)
}

/// Both backends over the same document: in-memory, and on-disk `.arb`.
fn both_backends(tree: &BinaryTree, labels: &LabelTable) -> Vec<Database> {
    let dir = std::env::temp_dir().join(format!("arb-session-api-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("case-{}.arb", CASE.fetch_add(1, Ordering::Relaxed)));
    arb::storage::create_from_tree(tree, labels, &path).expect("create database");
    vec![
        Database::from_tree(tree.clone(), labels.clone()),
        Database::open_arb(&path).expect("open database"),
    ]
}

/// The full equivalence matrix for one database and a set of query
/// sources: sinks vs. legacy shims vs. raw un-merged kernels.
fn check_sink_equivalence(db: &mut Database, sources: &[String]) {
    let queries: Vec<arb::Query> = sources
        .iter()
        .map(|s| db.compile_tmnf(s).expect("generated query compiles"))
        .collect();
    let k = queries.len();

    // --- Independent oracles: per-query, on the un-merged program ------
    let tree = db.to_tree().expect("materialize");
    let mut oracle_sets: Vec<NodeSet> = Vec::new();
    for q in &queries {
        let set = match db.as_disk() {
            Some(disk) => {
                arb::engine::evaluate_disk(q.program(), disk)
                    .expect("raw disk eval")
                    .selected
            }
            None => {
                let res = arb::core::evaluate_tree(q.program(), &tree);
                let mut set = NodeSet::new(tree.len());
                for v in tree.nodes() {
                    if q.program().query_preds().iter().any(|&p| res.holds(p, v)) {
                        set.insert(v);
                    }
                }
                set
            }
        };
        oracle_sets.push(set);
    }
    let mut oracle_union = NodeSet::new(tree.len());
    for s in &oracle_sets {
        oracle_union.union_with(s);
    }
    let mut oracle_marked = Vec::new();
    arb::xml::MarkedWriter::new(db.labels(), Some(&oracle_union))
        .write(&tree, &mut oracle_marked)
        .expect("oracle marked output");

    let session = db.prepare(&queries);

    // --- NodeSetSink == oracle sets == legacy evaluate -----------------
    let mut sets = NodeSetSink::default();
    let report = session.eval(&EvalRequest::new(), &mut sets).unwrap();
    prop_assert_eq!(sets.sets().len(), k);
    for (i, (q, oracle)) in queries.iter().zip(&oracle_sets).enumerate() {
        prop_assert_eq!(sets.sets()[i].to_vec(), oracle.to_vec(), "query {}", i);
        let legacy = db.evaluate(q).unwrap();
        prop_assert_eq!(sets.sets()[i].to_vec(), legacy.selected.to_vec());
        prop_assert_eq!(
            report.batch.as_ref().unwrap().outcomes[i]
                .per_pred_counts
                .clone(),
            legacy.per_pred_counts
        );
    }

    // --- CountSink == legacy evaluate counts ---------------------------
    let mut counts = CountSink::default();
    session.eval(&EvalRequest::new(), &mut counts).unwrap();
    for (i, oracle) in oracle_sets.iter().enumerate() {
        prop_assert_eq!(counts.counts()[i], oracle.count() as u64);
    }

    // --- BooleanSink == oracle root membership == legacy boolean -------
    let mut bools = BooleanSink::default();
    let report = session.eval(&EvalRequest::new(), &mut bools).unwrap();
    prop_assert!(report.batch.is_none(), "verdict demand skips phase 2");
    for (i, (q, oracle)) in queries.iter().zip(&oracle_sets).enumerate() {
        prop_assert_eq!(
            bools.verdicts()[i],
            oracle.contains(NodeId(0)),
            "query {}",
            i
        );
        prop_assert_eq!(bools.verdicts()[i], db.evaluate_boolean(q).unwrap());
    }

    // --- XmlMarkSink == MarkedWriter oracle == legacy marked -----------
    let mut mark = XmlMarkSink::new(db.labels(), Vec::new());
    session.eval(&EvalRequest::new(), &mut mark).unwrap();
    let marked = mark.into_inner().expect("run completed");
    prop_assert_eq!(&marked, &oracle_marked);
    let mut legacy_marked = Vec::new();
    if k == 1 {
        db.evaluate_marked(&queries[0], &mut legacy_marked).unwrap();
    } else {
        let batch = arb::QueryBatch::new(&queries);
        db.evaluate_batch_marked(&batch, &mut legacy_marked)
            .unwrap();
    }
    prop_assert_eq!(&marked, &legacy_marked);

    // --- Options: frontier-parallel (+ prefer_memory on disk) ----------
    let par = session
        .run_with(
            &EvalRequest::new()
                .prefer_memory(db.as_disk().is_some())
                .parallelism(3),
        )
        .unwrap();
    for (i, oracle) in oracle_sets.iter().enumerate() {
        prop_assert_eq!(par.outcomes[i].selected.to_vec(), oracle.to_vec());
    }

    // --- Legacy batch shims still demux identically --------------------
    let batch = arb::QueryBatch::new(&queries);
    let legacy_batch = db.evaluate_batch(&batch).unwrap();
    prop_assert_eq!(legacy_batch.stats.backward_scans, 1);
    for (i, oracle) in oracle_sets.iter().enumerate() {
        prop_assert_eq!(legacy_batch.outcomes[i].selected.to_vec(), oracle.to_vec());
    }
    let legacy_bools = db.evaluate_boolean_batch(&batch).unwrap();
    prop_assert_eq!(legacy_bools, bools.verdicts().to_vec());
}

/// A treebank document big enough to admit a sharding frontier (the
/// planner needs subtree pieces of ≥ 512 nodes).
fn frontier_treebank(seed: u64) -> (BinaryTree, LabelTable) {
    let mut labels = LabelTable::new();
    let tree = treebank_tree(
        &TreebankConfig {
            target_elems: 2_500,
            seed,
            filler_tags: 8,
        },
        &mut labels,
    );
    (tree, labels)
}

/// The disk-parallel differential property: for every thread count,
/// sharded disk == sequential disk == in-memory — per-query node sets,
/// counts, and boolean verdicts (which exercise the sharded
/// single-backward-pass fast path), single and batched.
fn check_sharded_disk_equivalence(
    disk: &mut Database,
    mem: &mut Database,
    sources: &[String],
    threads: &[usize],
) {
    assert!(disk.as_disk().is_some() && mem.as_disk().is_none());
    let dq: Vec<arb::Query> = sources
        .iter()
        .map(|s| disk.compile_tmnf(s).expect("query compiles"))
        .collect();
    let mq: Vec<arb::Query> = sources
        .iter()
        .map(|s| mem.compile_tmnf(s).expect("query compiles"))
        .collect();
    let disk_session = disk.prepare(&dq);
    let mem_session = mem.prepare(&mq);

    // Oracles: sequential disk and sequential memory agree first.
    let mut seq_sets = NodeSetSink::default();
    disk_session
        .eval(&EvalRequest::new(), &mut seq_sets)
        .unwrap();
    let mut mem_sets = NodeSetSink::default();
    mem_session
        .eval(&EvalRequest::new(), &mut mem_sets)
        .unwrap();
    let mut seq_bools = BooleanSink::default();
    disk_session
        .eval(&EvalRequest::new(), &mut seq_bools)
        .unwrap();
    for (i, (d, m)) in seq_sets.sets().iter().zip(mem_sets.sets()).enumerate() {
        prop_assert_eq!(d.to_vec(), m.to_vec(), "disk vs memory, query {}", i);
    }

    for &t in threads {
        let req = EvalRequest::new().parallelism(t);
        let mut sets = NodeSetSink::default();
        let report = disk_session.eval(&req, &mut sets).unwrap();
        for (i, (s, oracle)) in sets.sets().iter().zip(seq_sets.sets()).enumerate() {
            prop_assert_eq!(
                s.to_vec(),
                oracle.to_vec(),
                "sharded disk vs sequential disk, query {} at {} threads",
                i,
                t
            );
        }
        let batch = report.batch.as_ref().unwrap();
        for (i, o) in batch.outcomes.iter().enumerate() {
            prop_assert_eq!(o.stats.selected, seq_sets.sets()[i].count() as u64);
        }

        let mut counts = CountSink::default();
        disk_session.eval(&req, &mut counts).unwrap();
        for (i, c) in counts.counts().iter().enumerate() {
            prop_assert_eq!(*c, seq_sets.sets()[i].count() as u64);
        }

        // Verdicts fast path: sharded single backward pass.
        let mut bools = BooleanSink::default();
        let report = disk_session.eval(&req, &mut bools).unwrap();
        prop_assert!(report.batch.is_none(), "verdict demand skips phase 2");
        prop_assert_eq!(bools.verdicts(), seq_bools.verdicts());

        // Streaming sinks stay byte-identical (sequential phase 2 in
        // document order over the sharded-written state file).
        let mut mark_seq = XmlMarkSink::new(disk.labels(), Vec::new());
        disk_session
            .eval(&EvalRequest::new(), &mut mark_seq)
            .unwrap();
        let mut mark_par = XmlMarkSink::new(disk.labels(), Vec::new());
        disk_session.eval(&req, &mut mark_par).unwrap();
        prop_assert_eq!(
            mark_seq.into_inner().unwrap(),
            mark_par.into_inner().unwrap()
        );
    }
}

/// Regression for the shared-`.sta` race: concurrent evaluations of one
/// `Database` used to write the *same* fixed sibling scratch path and
/// silently corrupt each other's phase-1 state stream. Several threads
/// hammer one disk database (sequential and sharded runs interleaved)
/// and every result must match the sequentially computed oracle.
#[test]
fn concurrent_sessions_over_one_database_are_correct() {
    let (tree, labels) = small_treebank(0xC0FFEE);
    let dir = std::env::temp_dir().join(format!("arb-session-api-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("concurrent.arb");
    arb::storage::create_from_tree(&tree, &labels, &path).expect("create database");
    let mut db = Database::open_arb(&path).expect("open database");

    let sources = [
        "QUERY :- V.Label[NP];".to_string(),
        "QUERY :- V.Label[VP].FirstChild.NextSibling*;".to_string(),
        "QUERY :- Text;".to_string(),
    ];
    let queries: Vec<arb::Query> = sources
        .iter()
        .map(|s| db.compile_tmnf(s).expect("query compiles"))
        .collect();

    // Sequential oracle per query, computed before any concurrency.
    let oracles: Vec<Vec<NodeId>> = queries
        .iter()
        .map(|q| {
            db.prepare(std::slice::from_ref(q))
                .run_one()
                .unwrap()
                .selected
                .to_vec()
        })
        .collect();

    let db = &db;
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let queries = &queries;
            let oracles = &oracles;
            scope.spawn(move || {
                for round in 0..8 {
                    let qi = (worker + round) % queries.len();
                    let session = db.prepare(std::slice::from_ref(&queries[qi]));
                    // Mix sequential and sharded runs across threads.
                    let req = EvalRequest::new().parallelism(1 + (worker + round) % 3);
                    let out = session.run_with(&req).unwrap();
                    assert_eq!(
                        out.outcomes[0].selected.to_vec(),
                        oracles[qi],
                        "worker {worker} round {round} query {qi} corrupted"
                    );
                }
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Treebank documents, top-down path queries, k = 1 (single) .. 4.
    #[test]
    fn sinks_agree_on_treebank((k, tree_seed, query_seed) in
        (1usize..=4, any::<u64>(), any::<u64>()))
    {
        let (tree, labels) = small_treebank(tree_seed);
        let sources: Vec<String> =
            RandomPathQuery::batch(k, 5, &["NP", "VP", "PP", "S"], RegexShape::Tags, query_seed)
                .iter()
                .map(|q| q.to_program(R_TOP_DOWN))
                .collect();
        for mut db in both_backends(&tree, &labels) {
            check_sink_equivalence(&mut db, &sources);
        }
    }

    /// Balanced ACGT-infix documents, sideways caterpillar queries.
    #[test]
    fn sinks_agree_on_acgt((k, tree_seed, query_seed) in
        (1usize..=3, any::<u64>(), any::<u64>()))
    {
        let (tree, labels) = small_acgt(tree_seed);
        let sources: Vec<String> =
            RandomPathQuery::batch(k, 4, &["A", "C", "G", "T"], RegexShape::Tags, query_seed)
                .iter()
                .map(|q| q.to_program(R_INFIX))
                .collect();
        for mut db in both_backends(&tree, &labels) {
            check_sink_equivalence(&mut db, &sources);
        }
    }

    /// Disk-parallel differential: sharded disk == sequential disk ==
    /// in-memory on documents big enough to actually shard, single
    /// query (k = 1) and batched, across thread counts (including one
    /// beyond the frontier size and the fall-back count 1).
    #[test]
    fn sharded_disk_agrees_across_thread_counts((k, tree_seed, query_seed) in
        (1usize..=3, any::<u64>(), any::<u64>()))
    {
        let (tree, labels) = frontier_treebank(tree_seed);
        let sources: Vec<String> =
            RandomPathQuery::batch(k, 5, &["NP", "VP", "PP", "S"], RegexShape::Tags, query_seed)
                .iter()
                .map(|q| q.to_program(R_TOP_DOWN))
                .collect();
        let [mut mem, mut disk]: [Database; 2] =
            both_backends(&tree, &labels).try_into().ok().expect("two backends");
        check_sharded_disk_equivalence(&mut disk, &mut mem, &sources, &[1, 2, 3, 8]);
    }
}
