//! Property tests for the storage model (paper Section 5):
//! XML → `.evt` → backward pass → `.arb` creation, Proposition 5.1
//! traversals, and marked-output roundtrips.

use arb::storage::{create_from_xml, ArbDatabase};
use arb::tree::{LabelId, LabelTable, NodeId, TreeBuilder};
use arb::xml::{str_to_tree, XmlConfig};
use proptest::prelude::*;
use std::io::Cursor;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "arb-sm-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&d).expect("tmp dir");
    d.join(name)
}

/// Strategy: a random small XML document.
fn random_xml() -> impl Strategy<Value = String> {
    // Build documents from nesting ops to guarantee well-formedness.
    proptest::collection::vec((0..3u8, 0..3usize, "[a-z]{1,4}"), 0..30).prop_map(|ops| {
        let tags = ["x", "y", "z"];
        let mut out = String::from("<r>");
        let mut stack: Vec<&str> = vec![];
        for (op, t, text) in ops {
            match op {
                0 => {
                    let tag = tags[t % 3];
                    out.push_str(&format!("<{tag}>"));
                    stack.push(tag);
                }
                1 => {
                    if let Some(tag) = stack.pop() {
                        out.push_str(&format!("</{tag}>"));
                    }
                }
                _ => out.push_str(&text),
            }
        }
        while let Some(tag) = stack.pop() {
            out.push_str(&format!("</{tag}>"));
        }
        out.push_str("</r>");
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The two-pass database creation produces exactly the binary tree
    /// the direct in-memory parser produces, record for record.
    #[test]
    fn creation_equals_direct_parse(xml in random_xml()) {
        let path = tmp("c.arb");
        let (stats, labels) =
            create_from_xml(Cursor::new(xml.as_bytes()), &XmlConfig::default(), &path)
                .expect("create");
        let db = ArbDatabase::open(&path).expect("open");
        let tree = db.to_tree().expect("reconstruct");

        let mut lt = LabelTable::new();
        let direct = str_to_tree(&xml, &mut lt).expect("parse");
        prop_assert_eq!(tree.len(), direct.len());
        prop_assert_eq!(stats.nodes(), direct.len() as u64);
        for v in tree.nodes() {
            prop_assert_eq!(tree.has_first(v), direct.has_first(v));
            prop_assert_eq!(tree.has_second(v), direct.has_second(v));
            prop_assert_eq!(
                labels.name(tree.label(v)).into_owned(),
                lt.name(direct.label(v)).into_owned()
            );
        }
        // Creation defaults to format v2: the `.evt` event file keeps the
        // paper's 4 bytes/node, while `.arb` is the block-compressed file
        // (64-byte header + checksummed frames, so never empty).
        prop_assert_eq!(stats.evt_bytes, stats.nodes() * 4);
        prop_assert!(stats.arb_bytes > 64);
        prop_assert_eq!(stats.arb_bytes, db.file_bytes());
    }

    /// With format v1 pinned, the paper's exact file-size invariants
    /// hold: `.arb` = 2 bytes/node, `.evt` = 2×.
    #[test]
    fn v1_creation_keeps_paper_sizes(xml in random_xml()) {
        let path = tmp("c1.arb");
        let (stats, _labels) = arb::storage::create_from_xml_with(
            Cursor::new(xml.as_bytes()),
            &XmlConfig::default(),
            &path,
            arb::storage::FormatVersion::V1,
        )
        .expect("create");
        let db = ArbDatabase::open(&path).expect("open");
        prop_assert_eq!(db.format_version(), 1);
        prop_assert_eq!(stats.arb_bytes, stats.nodes() * 2);
        prop_assert_eq!(stats.evt_bytes, stats.arb_bytes * 2);
    }

    /// Unmarked output reproduces an equivalent document (reparse equal).
    #[test]
    fn emit_reparse_roundtrip(xml in random_xml()) {
        let mut lt = LabelTable::new();
        let tree = str_to_tree(&xml, &mut lt).expect("parse");
        let out = arb::xml::writer::tree_to_string(&tree, &lt);
        let mut lt2 = LabelTable::new();
        let tree2 = str_to_tree(&out, &mut lt2).expect("reparse");
        prop_assert_eq!(tree.parts(), tree2.parts());
    }
}

/// Figure-1 sanity: the stored record order is document order, and the
/// label file uses the (i − 255)-th whitespace-separated entry scheme.
#[test]
fn lab_file_format_matches_paper() {
    let xml = "<beta><alpha/><gamma/></beta>";
    let path = tmp("lab.arb");
    create_from_xml(Cursor::new(xml.as_bytes()), &XmlConfig::default(), &path).unwrap();
    let lab = std::fs::read_to_string(path.with_extension("lab")).unwrap();
    let entries: Vec<&str> = lab.split_whitespace().collect();
    // First-seen order: beta=256, alpha=257, gamma=258.
    assert_eq!(entries, vec!["beta", "alpha", "gamma"]);
    let db = ArbDatabase::open(&path).unwrap();
    assert_eq!(db.labels().name(LabelId(256)), "beta");
    assert_eq!(db.labels().name(LabelId(258)), "gamma");
}

/// A unicode/entity-heavy document survives the whole pipeline.
#[test]
fn entities_and_bytes_roundtrip() {
    let xml = "<t>a&amp;b&lt;c&gt;d&#65;</t>";
    let path = tmp("ent.arb");
    create_from_xml(Cursor::new(xml.as_bytes()), &XmlConfig::default(), &path).unwrap();
    let db = ArbDatabase::open(&path).unwrap();
    let tree = db.to_tree().unwrap();
    assert_eq!(tree.text_of_children(NodeId(0)), "a&b<c>dA");
}

/// Depth stress: a 50k-deep nesting chain must not overflow any stack
/// (builders and traversals are iterative).
#[test]
fn deep_nesting_is_iterative() {
    let mut lt = LabelTable::new();
    let a = lt.intern("d").unwrap();
    let mut b = TreeBuilder::new();
    let depth = 50_000;
    for _ in 0..depth {
        b.open(a);
    }
    for _ in 0..depth {
        b.close();
    }
    let tree = b.finish().unwrap();
    let path = tmp("deep.arb");
    arb::storage::create_from_tree(&tree, &lt, &path).unwrap();
    let db = ArbDatabase::open(&path).unwrap();
    let rebuilt = db.to_tree().unwrap();
    assert_eq!(rebuilt.len(), depth);
    // And a query runs over it.
    let mut database = arb::Database::open_arb(&path).unwrap();
    let q = database.compile_tmnf("QUERY :- Leaf;").unwrap();
    let outcome = database.prepare(&[q]).run_one().unwrap();
    assert_eq!(outcome.stats.selected, 1);
}
