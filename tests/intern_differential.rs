//! Differential properties pinning the arena-backed open-addressing
//! interners (`arb_logic::intern`) against a trivial map-based model:
//! the same intern-order id assignment, deduplication, view round-trips,
//! and monotone `byte_size` accounting the old `Arc` + `HashMap` design
//! provided.

use arb::logic::{Atom, PredSet, PredSetInterner, Program, ProgramId, ProgramInterner, Rule};
use proptest::prelude::*;
use std::collections::HashMap;

/// Builds a small canonical program from `(head, body)` rule seeds.
fn mk_program(rules: &[(u8, Vec<u8>)]) -> Program {
    Program::canonical(
        rules
            .iter()
            .map(|(h, body)| {
                Rule::new(
                    Atom::local(*h as u32 % 8),
                    body.iter().map(|&b| Atom::local(b as u32 % 8)).collect(),
                )
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ProgramInterner vs. a Vec+HashMap model: identical ids for an
    /// identical intern sequence, `get` round-trips, dedup, and
    /// `byte_size` growing exactly on (and only on) fresh entries.
    #[test]
    fn program_interner_matches_map_model(
        seeds in proptest::collection::vec(
            (proptest::collection::vec((0u8..8, proptest::collection::vec(0u8..8, 0..3)), 0..4),
             any::<bool>()),
            1..40)
    ) {
        let mut interner = ProgramInterner::new();
        let mut model: Vec<Program> = Vec::new();
        let mut model_ids: HashMap<Program, u32> = HashMap::new();
        let mut last_bytes = 0usize;

        for (rule_seeds, by_ref) in &seeds {
            let p = mk_program(rule_seeds);
            // Model id: first-seen order.
            let model_id = *model_ids.entry(p.clone()).or_insert_with(|| {
                model.push(p.clone());
                (model.len() - 1) as u32
            });
            let fresh = model.len() > interner.len();

            let id = if *by_ref {
                interner.intern_ref(&p)
            } else {
                interner.intern(p.clone())
            };
            prop_assert_eq!(id, ProgramId(model_id), "intern-order ids");
            prop_assert_eq!(interner.get(id), &p, "get round-trips");
            prop_assert_eq!(interner.len(), model.len(), "dedup");

            // byte_size is monotone and moves only on fresh interns.
            let bytes = interner.byte_size();
            prop_assert!(bytes >= last_bytes, "byte_size monotone");
            if fresh {
                prop_assert_eq!(bytes, last_bytes + p.byte_size());
            } else {
                prop_assert_eq!(bytes, last_bytes, "hits allocate nothing");
            }
            last_bytes = bytes;
        }

        // Every model entry is still retrievable by its id.
        for (ix, p) in model.iter().enumerate() {
            prop_assert_eq!(interner.get(ProgramId(ix as u32)), p);
        }
    }

    /// PredSetInterner (flat atom arena) vs. the model: same ids, spans
    /// equal to the owned sets, dedup across build paths
    /// (`intern` / `intern_sorted`), and monotone accounting.
    #[test]
    fn predset_interner_matches_map_model(
        seeds in proptest::collection::vec(
            (proptest::collection::vec(0u8..12, 0..6), any::<bool>()),
            1..60)
    ) {
        let mut interner = PredSetInterner::new();
        let mut model: Vec<PredSet> = Vec::new();
        let mut model_ids: HashMap<PredSet, u32> = HashMap::new();
        let mut last_bytes = 0usize;

        for (atoms, sorted_path) in &seeds {
            let set = PredSet::new(atoms.iter().map(|&a| Atom::local(a as u32)).collect());
            let model_id = *model_ids.entry(set.clone()).or_insert_with(|| {
                model.push(set.clone());
                (model.len() - 1) as u32
            });
            let fresh = model.len() > interner.len();

            let id = if *sorted_path {
                interner.intern_sorted(set.atoms())
            } else {
                interner.intern(set.clone())
            };
            prop_assert_eq!(id.0, model_id, "intern-order ids");
            prop_assert_eq!(interner.get(id).atoms(), set.atoms(), "span round-trips");
            prop_assert!(interner.get(id).to_owned() == set, "to_owned round-trips");
            prop_assert_eq!(interner.len(), model.len(), "dedup");

            // byte_size is monotone: fresh interns extend the arena,
            // hits leave it untouched.
            let bytes = interner.byte_size();
            if fresh {
                prop_assert!(bytes > last_bytes, "fresh intern grows the arena");
            } else {
                prop_assert_eq!(bytes, last_bytes, "hits allocate nothing");
            }
            last_bytes = bytes;
        }

        // Adjacent arena spans must not bleed into each other.
        for (ix, set) in model.iter().enumerate() {
            let view = interner.get(arb::logic::PredSetId(ix as u32));
            prop_assert_eq!(view.atoms(), set.atoms());
            for a in 0..12u32 {
                prop_assert_eq!(view.contains(Atom::local(a)), set.contains(Atom::local(a)));
            }
        }
    }
}

/// `memory_bytes` accounting: the automata's reported footprint covers
/// the new tables and grows as states/transitions accumulate.
#[test]
fn memory_accounting_tracks_tables() {
    use arb::core::QueryAutomata;
    use arb::tmnf::{normalize, parse_program};
    use arb::tree::{LabelTable, TreeBuilder};

    let mut lt = LabelTable::new();
    let ast = parse_program("A :- V.Label[a]; QUERY :- A.FirstChild;", &mut lt).unwrap();
    let prog = normalize(&ast);
    let a = lt.get("a").unwrap();
    let b = lt.intern("b").unwrap();
    let mut tb = TreeBuilder::new();
    tb.open(a);
    for i in 0..20 {
        tb.leaf(if i % 2 == 0 { a } else { b });
    }
    tb.close();
    let tree = tb.finish().unwrap();

    let mut qa = QueryAutomata::new(&prog);
    let empty = qa.memory_bytes();
    let mut states = vec![arb::logic::ProgramId(0); tree.len()];
    for ix in (0..tree.len() as u32).rev() {
        let v = arb::tree::NodeId(ix);
        let s1 = tree.first_child(v).map(|c| states[c.ix()]);
        let s2 = tree.second_child(v).map(|c| states[c.ix()]);
        states[v.ix()] = qa.bottom_up(s1, s2, tree.info(v));
    }
    let after = qa.memory_bytes();
    assert!(after > empty, "tables grew: {empty} -> {after}");

    let stats = qa.intern_stats();
    assert!(stats.arena_bytes > 0);
    assert!(stats.table_bytes > 0);
    assert_eq!(stats.bu_entries as u64, qa.bu_transitions);
    assert!(stats.alphabet_symbols >= 2, "a-leaf and b-leaf symbols");
    assert!(after >= stats.arena_bytes + stats.table_bytes);
}
