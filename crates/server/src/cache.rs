//! The prepared-program and prepared-window caches: compiled queries
//! interned across requests, so a repeat query skips parsing,
//! normalization, optimization **and** the single-query merge entirely
//! and goes straight to the shared scan pair — and repeated admission
//! *window shapes* skip the multi-query merge and the automata build
//! too ([`WindowCache`]).
//!
//! The program cache is keyed on `(database, language, source text)` —
//! the compiled program is label-bound, so the same source against a
//! different database is a different entry. The window cache is keyed
//! on the **sorted** multiset of the window's query specs (arrival
//! order inside an admission window is nondeterministic under
//! concurrency, so the shape is canonicalized before lookup). Both are
//! byte-size-bounded with least-recently-used eviction;
//! hit/miss/eviction counters surface on the wire through
//! `ServerStats`.
//!
//! Every cached entry — single-query or merged window — carries an
//! [`AutomataPool`], so a hot shape's `QueryAutomata` (interners and
//! memoized δ tables) survive from one dispatched window to the next:
//! the session layer's build-once/eval-many lifecycle, extended across
//! server batches.

use crate::protocol::WireLanguage;
use arb_engine::{AutomataPool, Query, QueryBatch};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key: a query is reusable only against the database whose label
/// space it was compiled into.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registered database name.
    pub db: String,
    /// Source language.
    pub language: WireLanguage,
    /// Verbatim query text.
    pub source: String,
}

/// A compiled query plus its prepared single-query batch (the merged
/// batch-of-one the session surface evaluates), built once on a cache
/// miss and shared by every later hit.
pub struct PreparedProgram {
    /// The compiled query.
    pub query: Query,
    /// The singleton [`QueryBatch`] over `query`, so a one-query
    /// admission window skips `merge_programs` too.
    pub singleton: QueryBatch,
    /// The automata pool for one-query windows over `singleton`: the
    /// first dispatch builds the `QueryAutomata`, every later one-query
    /// window over this program reuses them warm.
    pub pool: Arc<AutomataPool>,
}

impl PreparedProgram {
    /// Prepares a freshly compiled query for caching.
    pub fn new(query: Query) -> Self {
        let singleton = QueryBatch::new(std::slice::from_ref(&query));
        PreparedProgram {
            query,
            singleton,
            pool: Arc::new(AutomataPool::new()),
        }
    }
}

/// Deterministic byte cost of one cache entry: key text plus a fixed
/// model of the compiled and merged program sizes. Deterministic (no
/// allocator introspection) so eviction order is testable.
fn entry_cost(key: &CacheKey, p: &PreparedProgram) -> usize {
    const ENTRY_OVERHEAD: usize = 256;
    const PER_RULE: usize = 96;
    const PER_PRED: usize = 32;
    let prog = p.query.program();
    let merged = p.singleton.merged_program();
    ENTRY_OVERHEAD
        + key.db.len()
        + 2 * key.source.len() // the key's copy plus `Query::source`
        + (prog.rule_count() + merged.rule_count()) * PER_RULE
        + (prog.pred_count() + merged.pred_count()) * PER_PRED
}

struct Slot {
    prepared: Arc<PreparedProgram>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    map: HashMap<CacheKey, Slot>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Counters and occupancy of a [`ProgramCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a prepared program.
    pub hits: u64,
    /// Lookups that found nothing (the caller compiles and inserts).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: u64,
    /// Modeled bytes currently cached.
    pub bytes: u64,
    /// The byte budget.
    pub budget: u64,
}

/// A byte-bounded LRU cache of [`PreparedProgram`]s.
pub struct ProgramCache {
    inner: Mutex<Inner>,
    budget: usize,
}

impl ProgramCache {
    /// A cache evicting least-recently-used entries past `budget` bytes
    /// (modeled bytes, see the module docs).
    pub fn new(budget: usize) -> Self {
        ProgramCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            budget,
        }
    }

    /// Looks up a prepared program, counting a hit or a miss and
    /// freshening the entry's recency on a hit.
    pub fn lookup(&self, key: &CacheKey) -> Option<Arc<PreparedProgram>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                let p = Arc::clone(&slot.prepared);
                inner.hits += 1;
                Some(p)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly compiled program, evicting least-recently-used
    /// entries until it fits. Returns `false` (and caches nothing) when
    /// the entry alone exceeds the whole budget. Re-inserting an
    /// existing key replaces the entry.
    pub fn insert(&self, key: CacheKey, prepared: Arc<PreparedProgram>) -> bool {
        let cost = entry_cost(&key, &prepared);
        if cost > self.budget {
            return false;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        while inner.bytes + cost > self.budget {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let evicted = inner.map.remove(&victim).expect("victim exists");
            inner.bytes -= evicted.bytes;
            inner.evictions += 1;
        }
        inner.bytes += cost;
        inner.map.insert(
            key,
            Slot {
                prepared,
                bytes: cost,
                last_used: tick,
            },
        );
        true
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len() as u64,
            bytes: inner.bytes as u64,
            budget: self.budget as u64,
        }
    }
}

// ------------------------------------------------------- window shapes

/// Key of a cached admission-window shape: the window's query specs in
/// **canonical (sorted) order**. Concurrent clients race into the
/// admission window, so the same logical window arrives in a different
/// order every round; sorting makes the shape stable. Duplicates are
/// kept — a window of two identical queries is a different shape than
/// one of them alone. Scoped per database (each `DbEntry` owns its own
/// [`WindowCache`]), so the database name is not part of the key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WindowKey {
    /// `(language, source)` specs, sorted.
    pub specs: Vec<(WireLanguage, String)>,
}

impl WindowKey {
    /// Canonicalizes a window's specs (sorts them).
    pub fn new(mut specs: Vec<(WireLanguage, String)>) -> Self {
        specs.sort();
        WindowKey { specs }
    }
}

/// A prepared multi-query window: the merged [`QueryBatch`] (entries in
/// the key's canonical order) plus the [`AutomataPool`] that keeps the
/// merged program's automata warm from one dispatch of this shape to
/// the next.
pub struct PreparedWindow {
    /// The merged batch; entry `i` evaluates the key's `specs[i]`.
    pub batch: QueryBatch,
    /// Warm automata for `batch`'s merged program.
    pub pool: Arc<AutomataPool>,
}

/// Deterministic byte cost of one window entry — the key text plus the
/// same fixed program-size model as [`entry_cost`].
fn window_cost(key: &WindowKey, w: &PreparedWindow) -> usize {
    const ENTRY_OVERHEAD: usize = 256;
    const PER_RULE: usize = 96;
    const PER_PRED: usize = 32;
    let merged = w.batch.merged_program();
    ENTRY_OVERHEAD
        + key.specs.iter().map(|(_, s)| s.len()).sum::<usize>()
        + merged.rule_count() * PER_RULE
        + merged.pred_count() * PER_PRED
}

struct WindowSlot {
    prepared: Arc<PreparedWindow>,
    bytes: usize,
    last_used: u64,
}

struct WindowInner {
    map: HashMap<WindowKey, WindowSlot>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A byte-bounded LRU cache of [`PreparedWindow`]s — one per database.
/// A hit means the dispatched window skips `merge_programs` *and* finds
/// warm automata in the entry's pool; the per-run
/// `automata_builds == 0` wire counter is the observable consequence.
pub struct WindowCache {
    inner: Mutex<WindowInner>,
    budget: usize,
}

impl WindowCache {
    /// A cache evicting least-recently-used window shapes past `budget`
    /// modeled bytes.
    pub fn new(budget: usize) -> Self {
        WindowCache {
            inner: Mutex::new(WindowInner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            budget,
        }
    }

    /// Looks up a prepared window shape, counting a hit or a miss and
    /// freshening the entry's recency on a hit.
    pub fn lookup(&self, key: &WindowKey) -> Option<Arc<PreparedWindow>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                let w = Arc::clone(&slot.prepared);
                inner.hits += 1;
                Some(w)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly merged window, evicting least-recently-used
    /// shapes until it fits; returns `false` (caching nothing) when the
    /// entry alone exceeds the budget.
    pub fn insert(&self, key: WindowKey, prepared: Arc<PreparedWindow>) -> bool {
        let cost = window_cost(&key, &prepared);
        if cost > self.budget {
            return false;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        while inner.bytes + cost > self.budget {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let evicted = inner.map.remove(&victim).expect("victim exists");
            inner.bytes -= evicted.bytes;
            inner.evictions += 1;
        }
        inner.bytes += cost;
        inner.map.insert(
            key,
            WindowSlot {
                prepared,
                bytes: cost,
                last_used: tick,
            },
        );
        true
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len() as u64,
            bytes: inner.bytes as u64,
            budget: self.budget as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_engine::{CountSink, Database, EvalRequest};

    fn key(db: &str, src: &str) -> CacheKey {
        CacheKey {
            db: db.into(),
            language: WireLanguage::Tmnf,
            source: src.into(),
        }
    }

    fn compile(db: &mut Database, src: &str) -> Arc<PreparedProgram> {
        Arc::new(PreparedProgram::new(db.compile_tmnf(src).unwrap()))
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut db = Database::from_xml_str("<r><a/></r>").unwrap();
        let cache = ProgramCache::new(1 << 20);
        let k = key("d", "QUERY :- V.Label[a];");
        assert!(cache.lookup(&k).is_none());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 0);

        let p = compile(&mut db, &k.source);
        assert!(cache.insert(k.clone(), p));
        assert!(cache.lookup(&k).is_some());
        assert!(cache.lookup(&k).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
        assert!(s.bytes > 0 && s.bytes <= s.budget);
    }

    #[test]
    fn lru_eviction_under_tight_budget() {
        let mut db = Database::from_xml_str("<r><a/><b/><c/></r>").unwrap();
        let (ka, kb, kc) = (
            key("d", "QUERY :- V.Label[a];"),
            key("d", "QUERY :- V.Label[b];"),
            key("d", "QUERY :- V.Label[c];"),
        );
        let (pa, pb, pc) = (
            compile(&mut db, &ka.source),
            compile(&mut db, &kb.source),
            compile(&mut db, &kc.source),
        );
        // A budget that holds exactly two of these (near-identical)
        // entries: inserting a third must evict the least recently used.
        let one = entry_cost(&ka, &pa);
        let cache = ProgramCache::new(2 * one + one / 2);
        assert!(cache.insert(ka.clone(), pa));
        assert!(cache.insert(kb.clone(), pb));
        // Freshen `a`, making `b` the LRU victim.
        assert!(cache.lookup(&ka).is_some());
        assert!(cache.insert(kc.clone(), pc));
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(cache.lookup(&ka).is_some(), "freshened entry survives");
        assert!(cache.lookup(&kc).is_some(), "new entry cached");
        assert!(cache.lookup(&kb).is_none(), "LRU entry evicted");
        assert!(s.bytes <= s.budget, "budget respected after eviction");
    }

    #[test]
    fn oversize_entries_are_not_cached() {
        let mut db = Database::from_xml_str("<r><a/></r>").unwrap();
        let k = key("d", "QUERY :- V.Label[a];");
        let p = compile(&mut db, &k.source);
        let cache = ProgramCache::new(8); // smaller than any entry
        assert!(!cache.insert(k.clone(), p));
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.lookup(&k).is_none());
    }

    #[test]
    fn window_key_is_arrival_order_independent() {
        let a = (WireLanguage::Tmnf, "QUERY :- V.Label[a];".to_string());
        let b = (WireLanguage::XPath, "//b".to_string());
        assert_eq!(
            WindowKey::new(vec![a.clone(), b.clone()]),
            WindowKey::new(vec![b.clone(), a.clone()])
        );
        // Duplicates are part of the shape.
        assert_ne!(
            WindowKey::new(vec![a.clone(), a.clone()]),
            WindowKey::new(vec![a])
        );
    }

    #[test]
    fn window_cache_hits_share_the_pool() {
        let mut db = Database::from_xml_str("<r><a/><b/></r>").unwrap();
        let qa = db.compile_tmnf("QUERY :- V.Label[a];").unwrap();
        let qb = db.compile_tmnf("QUERY :- V.Label[b];").unwrap();
        let key = WindowKey::new(vec![
            (WireLanguage::Tmnf, qa.source.clone()),
            (WireLanguage::Tmnf, qb.source.clone()),
        ]);
        let cache = WindowCache::new(1 << 20);
        assert!(cache.lookup(&key).is_none());
        let prepared = Arc::new(PreparedWindow {
            batch: QueryBatch::new(&[qa, qb]),
            pool: Arc::new(arb_engine::AutomataPool::new()),
        });
        assert!(cache.insert(key.clone(), Arc::clone(&prepared)));
        let hit = cache.lookup(&key).unwrap();
        assert!(Arc::ptr_eq(&hit.pool, &prepared.pool));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn cached_and_uncached_results_are_identical() {
        let xml = "<r><a/><b><a>t</a></b></r>";
        let src = "QUERY :- V.Label[a];";
        let mut db = Database::from_xml_str(xml).unwrap();
        let cache = ProgramCache::new(1 << 20);
        let k = key("d", src);
        cache.insert(k.clone(), compile(&mut db, src));
        let cached = cache.lookup(&k).unwrap();

        // Cached prepared batch vs a fresh compile of the same source.
        let mut fresh_counts = CountSink::default();
        let fresh_q = db.compile_tmnf(src).unwrap();
        db.prepare(std::slice::from_ref(&fresh_q))
            .eval(&EvalRequest::new(), &mut fresh_counts)
            .unwrap();
        let mut cached_counts = CountSink::default();
        db.prepare_batch(&cached.singleton)
            .eval(&EvalRequest::new(), &mut cached_counts)
            .unwrap();
        assert_eq!(cached_counts.counts(), fresh_counts.counts());
        assert_eq!(cached_counts.counts(), &[2]);
    }
}
