//! Blocking client for the resident query service.
//!
//! One [`Client`] owns one TCP connection and speaks the
//! length-prefixed protocol defined in [`crate::protocol`]. Requests
//! are strictly sequential per connection (send a frame, read a frame);
//! open several clients for concurrency — the server batches them into
//! shared passes on its side.

use crate::protocol::{
    self, ErrorCode, OutputKind, QueryResult, Request, Response, ServerStatsReply, UpdateReply,
    WireLanguage, WireStats, WireUpdate,
};
use std::fmt;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// Everything that can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connection refused, reset, malformed frame).
    Io(io::Error),
    /// The server answered with an error response.
    Server {
        /// The wire error code.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error ({code}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A successful query evaluation: the result plus the per-query share
/// of the server-side pass statistics.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// The requested output.
    pub result: QueryResult,
    /// Per-query statistics — `batch_size` tells how many concurrent
    /// queries shared the scan pair, `queue_wait_us` how long this one
    /// sat in the admission window.
    pub stats: WireStats,
}

/// A successful standing-query registration: the handle to unregister
/// with, plus the batch's initial results.
#[derive(Debug, Clone)]
pub struct RegisterReply {
    /// Pass to [`Client::unregister`] to drop the registration.
    pub handle: u64,
    /// The database epoch the initial results reflect; every later
    /// [`UpdateReply::epoch`] continues from here.
    pub epoch: u64,
    /// Initial selected-node sets, one per registered query, in
    /// registration order.
    pub initial: Vec<Vec<u32>>,
}

/// A blocking connection to a running `arb serve` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        protocol::write_frame(&mut self.writer, &req.encode()?)?;
        let payload = protocol::read_frame(&mut self.reader)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ))
        })?;
        match Response::decode(&payload, req)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    /// Evaluates `source` (in `language`) against the registered
    /// database `db`, returning the output shape picked by `output`.
    pub fn query(
        &mut self,
        db: &str,
        language: WireLanguage,
        output: OutputKind,
        source: &str,
    ) -> Result<QueryReply, ClientError> {
        let req = Request::Query {
            db: db.to_string(),
            language,
            output,
            source: source.to_string(),
        };
        match self.roundtrip(&req)? {
            Response::Query { result, stats } => Ok(QueryReply { result, stats }),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's aggregate counters (batching effectiveness,
    /// cache hit rate, shed requests).
    pub fn server_stats(&mut self) -> Result<ServerStatsReply, ClientError> {
        match self.roundtrip(&Request::ServerStats)? {
            Response::ServerStats(s) => Ok(*s),
            other => Err(unexpected(&other)),
        }
    }

    /// Installs a standing query batch on `db`: evaluated once now (the
    /// reply carries the initial result sets), then re-evaluated
    /// incrementally on every [`Client::update_doc`], whose reply pushes
    /// this registration's result deltas.
    pub fn register(
        &mut self,
        db: &str,
        language: WireLanguage,
        sources: &[&str],
    ) -> Result<RegisterReply, ClientError> {
        let req = Request::Register {
            db: db.to_string(),
            language,
            sources: sources.iter().map(|s| s.to_string()).collect(),
        };
        match self.roundtrip(&req)? {
            Response::Registered {
                handle,
                epoch,
                initial,
            } => Ok(RegisterReply {
                handle,
                epoch,
                initial,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Drops a standing registration.
    pub fn unregister(&mut self, db: &str, handle: u64) -> Result<(), ClientError> {
        let req = Request::Unregister {
            db: db.to_string(),
            handle,
        };
        match self.roundtrip(&req)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Applies one document update to `db`. The reply carries the edit
    /// window, the post-update epoch, and one result-delta push per
    /// standing registration on the database.
    pub fn update_doc(&mut self, db: &str, update: WireUpdate) -> Result<UpdateReply, ClientError> {
        let req = Request::UpdateDoc {
            db: db.to_string(),
            update,
        };
        match self.roundtrip(&req)? {
            Response::Updated(reply) => Ok(reply),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down gracefully (drain queued batches,
    /// then exit).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ClientError {
    ClientError::Io(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("response shape does not match the request: {resp:?}"),
    ))
}
