//! The resident query service: database registry, admission batcher,
//! thread-per-connection TCP front end.
//!
//! The heart is the **admission batcher**: one dispatcher thread per
//! registered database collects query requests that arrive within a
//! configurable window ([`ServerConfig::batch_window`], capped at
//! [`ServerConfig::max_batch`] queries), merges their cached compiled
//! programs into one [`QueryBatch`], and runs a single shared
//! backward + forward scan pair through the ordinary
//! [`Session::eval`](arb_engine::Session::eval) surface — then
//! demultiplexes results and per-query statistics back to each waiting
//! connection. k concurrent clients cost one scan pair, not k.

use crate::cache::{
    CacheKey, PreparedProgram, PreparedWindow, ProgramCache, WindowCache, WindowKey,
};
use crate::protocol::{
    ErrorCode, OutputKind, QueryResult, Request, Response, ServerStatsReply, StandingPush,
    UpdateReply, WireDelta, WireLanguage, WireStats, WireUpdate,
};
use arb_engine::{
    AutomataPool, BooleanSink, Database, DocUpdate, EvalRequest, Query, QueryBatch, ResultSink,
    SinkDemand, StandingQuery, XmlEmitter,
};
use arb_storage::NodeRecord;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`host:port`; port 0 picks an ephemeral port).
    pub listen: String,
    /// The admission window: the first request against a database opens
    /// a window, and every request arriving before it closes joins the
    /// same shared scan pair.
    pub batch_window: Duration,
    /// Hard cap on queries per shared pass; a full window dispatches
    /// immediately without waiting out the rest of `batch_window`.
    pub max_batch: usize,
    /// Bound on queued (admitted, not yet dispatched) requests per
    /// database. Requests beyond it are shed with
    /// [`ErrorCode::Overloaded`] instead of buffering without bound.
    pub queue_cap: usize,
    /// Byte budget of the prepared-program cache (each database's
    /// prepared-window cache gets the same budget).
    pub cache_budget: usize,
    /// Worker threads for each dispatched shared pass (threaded into
    /// [`arb_engine::EvalOptions::parallelism`]): `0` and `1` evaluate
    /// sequentially; `> 1` shards the window's scans over a subtree
    /// frontier (per-worker range scans on disk). The CLI exposes this
    /// as `arb serve --workers N`.
    pub workers: usize,
    /// Sweep stale scratch `.sta` streams left by dead processes when
    /// opening each database (see
    /// [`arb_storage::sweep_stale_scratch`]).
    pub sweep_scratch: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            batch_window: Duration::from_millis(2),
            max_batch: 64,
            queue_cap: 256,
            cache_budget: 16 << 20,
            workers: 1,
            sweep_scratch: true,
        }
    }
}

/// One admitted query waiting for (or riding in) a shared pass.
struct Pending {
    prepared: Arc<PreparedProgram>,
    language: WireLanguage,
    output: OutputKind,
    cache_hit: bool,
    enqueued: Instant,
    reply: mpsc::Sender<Response>,
}

#[derive(Default)]
struct QueueState {
    items: Vec<Pending>,
    draining: bool,
}

/// A registered database: the open handle, its admission queue, and its
/// prepared-window cache (merged batch + warm automata per window
/// shape).
struct DbEntry {
    db: RwLock<Database>,
    state: Mutex<QueueState>,
    cv: Condvar,
    windows: WindowCache,
    /// Standing query batches installed on this database, by handle.
    /// Lock order: `standing` before `db` — `Register` and `UpdateDoc`
    /// both take the map first, then the database write lock, so an
    /// update never races a registration's prime/refresh.
    standing: Mutex<HashMap<u64, StandingQuery>>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    backward_scans: AtomicU64,
    forward_scans: AtomicU64,
    overloaded: AtomicU64,
    automata_builds: AtomicU64,
    automata_reused: AtomicU64,
    automata_build_ns: AtomicU64,
    standing_registered: AtomicU64,
    doc_updates: AtomicU64,
    delta_pushes: AtomicU64,
}

struct ServerShared {
    config: ServerConfig,
    dbs: HashMap<String, Arc<DbEntry>>,
    cache: ProgramCache,
    counters: Counters,
    next_handle: AtomicU64,
    shutdown: AtomicBool,
}

/// A running resident query service. Obtain with [`Server::start`];
/// stop with [`ServerHandle::shutdown`] (drains in-flight batches) or
/// by sending the wire `Shutdown` request.
pub struct Server;

/// Handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Opens every database (registered under its file stem), binds the
    /// listen address, and starts the accept loop plus one admission
    /// batcher per database.
    pub fn start(config: ServerConfig, db_paths: &[impl AsRef<Path>]) -> io::Result<ServerHandle> {
        if db_paths.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a server needs at least one database",
            ));
        }
        let mut dbs = HashMap::new();
        for path in db_paths {
            let path = path.as_ref();
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .filter(|s| !s.is_empty())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("cannot derive a database name from {}", path.display()),
                    )
                })?
                .to_string();
            let db = Database::open_arb(path)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if config.sweep_scratch {
                if let Some(disk) = db.as_disk() {
                    disk.sweep_stale_scratch()?;
                }
            }
            if dbs
                .insert(
                    name.clone(),
                    Arc::new(DbEntry {
                        db: RwLock::new(db),
                        state: Mutex::new(QueueState::default()),
                        cv: Condvar::new(),
                        windows: WindowCache::new(config.cache_budget),
                        standing: Mutex::new(HashMap::new()),
                    }),
                )
                .is_some()
            {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("duplicate database name {name:?}"),
                ));
            }
        }
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let cache = ProgramCache::new(config.cache_budget);
        let shared = Arc::new(ServerShared {
            config,
            dbs,
            cache,
            counters: Counters::default(),
            next_handle: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let batchers: Vec<JoinHandle<()>> = shared
            .dbs
            .values()
            .map(|entry| {
                let shared = Arc::clone(&shared);
                let entry = Arc::clone(entry);
                thread::spawn(move || batcher_loop(&shared, &entry))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&shared, listener, batchers))
        };
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates a graceful shutdown — new queries are refused with
    /// `ShuttingDown`, queued ones are drained through their shared
    /// passes — and waits for the server threads to finish.
    pub fn shutdown(mut self) {
        begin_shutdown(&self.shared);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Blocks until the server shuts down (a wire `Shutdown` request or
    /// another thread's [`ServerHandle::shutdown`]).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn begin_shutdown(shared: &ServerShared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    for entry in shared.dbs.values() {
        let mut st = entry.state.lock().unwrap();
        st.draining = true;
        entry.cv.notify_all();
    }
}

fn accept_loop(shared: &Arc<ServerShared>, listener: TcpListener, batchers: Vec<JoinHandle<()>>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                thread::spawn(move || {
                    let _ = handle_connection(&shared, stream);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    // Shutdown: the batchers drain their queues, then exit.
    for h in batchers {
        let _ = h.join();
    }
}

fn handle_connection(shared: &Arc<ServerShared>, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    // Poll between frames so idle connections notice a shutdown.
    stream
        .set_read_timeout(Some(Duration::from_millis(150)))
        .ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match crate::protocol::read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()), // peer closed
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        let response = match Request::decode(&payload) {
            Ok(req) => process(shared, req),
            Err(e) => Response::Error {
                code: ErrorCode::BadRequest,
                message: e.to_string(),
            },
        };
        crate::protocol::write_frame(&mut writer, &response.encode()?)?;
    }
}

fn process(shared: &Arc<ServerShared>, req: Request) -> Response {
    match req {
        Request::Ping => Response::Ok,
        Request::Shutdown => {
            begin_shutdown(shared);
            Response::Ok
        }
        Request::ServerStats => Response::ServerStats(Box::new(gather_stats(shared))),
        Request::Query {
            db,
            language,
            output,
            source,
        } => process_query(shared, db, language, output, source),
        Request::Register {
            db,
            language,
            sources,
        } => process_register(shared, &db, language, &sources),
        Request::Unregister { db, handle } => process_unregister(shared, &db, handle),
        Request::UpdateDoc { db, update } => process_update(shared, &db, update),
    }
}

fn lookup_db<'a>(shared: &'a ServerShared, db: &str) -> Result<&'a Arc<DbEntry>, Response> {
    let Some(entry) = shared.dbs.get(db) else {
        return Err(Response::Error {
            code: ErrorCode::UnknownDatabase,
            message: format!("no database registered as {db:?}"),
        });
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is draining".into(),
        });
    }
    Ok(entry)
}

/// Installs a standing query batch: compiles the sources, evaluates them
/// once (the prime), and replies with the handle plus the initial result
/// sets. Holds the standing map across the prime so a concurrent
/// `UpdateDoc` cannot slip an epoch between prime and installation.
fn process_register(
    shared: &ServerShared,
    db: &str,
    language: WireLanguage,
    sources: &[String],
) -> Response {
    let entry = match lookup_db(shared, db) {
        Ok(e) => e,
        Err(resp) => return resp,
    };
    if sources.is_empty() {
        return Response::Error {
            code: ErrorCode::BadRequest,
            message: "a standing registration needs at least one query".into(),
        };
    }
    let mut standing = entry.standing.lock().unwrap();
    let mut guard = entry.db.write().unwrap();
    let mut queries = Vec::with_capacity(sources.len());
    for source in sources {
        let compiled = match language {
            WireLanguage::Tmnf => guard.compile_tmnf(source),
            WireLanguage::XPath => guard.compile_xpath(source),
        };
        match compiled {
            Ok(q) => queries.push(q),
            Err(e) => {
                return Response::Error {
                    code: ErrorCode::Query,
                    message: e.to_string(),
                }
            }
        }
    }
    let mut sq = StandingQuery::new(&queries);
    if let Err(e) = sq.prime(&guard) {
        return internal_error(e.to_string());
    }
    let epoch = sq.epoch().expect("primed");
    let initial: Vec<Vec<u32>> = sq
        .results()
        .expect("primed")
        .iter()
        .map(|set| set.iter().map(|v| v.0).collect())
        .collect();
    drop(guard);
    let handle = shared.next_handle.fetch_add(1, Ordering::Relaxed);
    standing.insert(handle, sq);
    shared
        .counters
        .standing_registered
        .fetch_add(1, Ordering::Relaxed);
    Response::Registered {
        handle,
        epoch,
        initial,
    }
}

fn process_unregister(shared: &ServerShared, db: &str, handle: u64) -> Response {
    let entry = match lookup_db(shared, db) {
        Ok(e) => e,
        Err(resp) => return resp,
    };
    match entry.standing.lock().unwrap().remove(&handle) {
        Some(_) => Response::Ok,
        None => Response::Error {
            code: ErrorCode::BadRequest,
            message: format!("no standing registration {handle} on {db:?}"),
        },
    }
}

/// Applies one document update and refreshes every standing registration
/// incrementally, collecting their result deltas into the reply. The
/// database write lock serializes the edit against in-flight shared
/// passes (which hold the read lock).
fn process_update(shared: &ServerShared, db: &str, update: WireUpdate) -> Response {
    let entry = match lookup_db(shared, db) {
        Ok(e) => e,
        Err(resp) => return resp,
    };
    let update = match update {
        WireUpdate::AppendChild { under, xml } => DocUpdate::AppendChild { under, xml },
        WireUpdate::SpliceSubtree { at, xml } => DocUpdate::SpliceSubtree { at, xml },
        WireUpdate::DeleteSubtree { at } => DocUpdate::DeleteSubtree { at },
    };
    let mut standing = entry.standing.lock().unwrap();
    let guard = entry.db.write().unwrap();
    let applied = match guard.apply_update(&update) {
        Ok(a) => a,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::BadRequest,
                message: e.to_string(),
            }
        }
    };
    let mut pushes = Vec::with_capacity(standing.len());
    let mut dirty_nodes = 0u64;
    let mut retained_sta_blocks = 0u64;
    let mut failed: Vec<(u64, String)> = Vec::new();
    for (&handle, sq) in standing.iter_mut() {
        match sq.refresh(&guard, &applied) {
            Ok(report) => {
                dirty_nodes += report.batch.stats.dirty_nodes;
                retained_sta_blocks += report.batch.stats.retained_sta_blocks;
                pushes.push(StandingPush {
                    handle,
                    queries: report
                        .deltas
                        .iter()
                        .map(|d| WireDelta {
                            added: d.added.clone(),
                            removed: d.removed.clone(),
                            verdict: d.verdict,
                            verdict_changed: d.verdict_changed,
                        })
                        .collect(),
                });
            }
            Err(e) => failed.push((handle, e.to_string())),
        }
    }
    // A registration whose refresh failed can never absorb a later epoch;
    // drop it rather than leave it permanently stale.
    for (handle, _) in &failed {
        standing.remove(handle);
    }
    drop(guard);
    pushes.sort_by_key(|p| p.handle);
    let c = &shared.counters;
    c.doc_updates.fetch_add(1, Ordering::Relaxed);
    c.delta_pushes
        .fetch_add(pushes.len() as u64, Ordering::Relaxed);
    if let Some((handle, msg)) = failed.into_iter().next() {
        return internal_error(format!(
            "update applied (epoch {}), but refreshing standing registration {handle} \
             failed and it was dropped: {msg}",
            applied.epoch
        ));
    }
    Response::Updated(UpdateReply {
        epoch: applied.epoch,
        pos: applied.plan.pos,
        removed: applied.plan.removed,
        inserted: applied.plan.inserted,
        nodes: u64::from(applied.new_nodes),
        dirty_nodes,
        retained_sta_blocks,
        pushes,
    })
}

fn gather_stats(shared: &ServerShared) -> ServerStatsReply {
    let c = &shared.counters;
    let cache = shared.cache.stats();
    ServerStatsReply {
        requests: c.requests.load(Ordering::Relaxed),
        batches: c.batches.load(Ordering::Relaxed),
        max_batch: c.max_batch.load(Ordering::Relaxed),
        backward_scans: c.backward_scans.load(Ordering::Relaxed),
        forward_scans: c.forward_scans.load(Ordering::Relaxed),
        overloaded: c.overloaded.load(Ordering::Relaxed),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
        cache_bytes: cache.bytes,
        open_databases: shared.dbs.len() as u64,
        automata_builds: c.automata_builds.load(Ordering::Relaxed),
        automata_reused: c.automata_reused.load(Ordering::Relaxed),
        automata_build_us: c.automata_build_ns.load(Ordering::Relaxed) / 1_000,
        standing_registered: c.standing_registered.load(Ordering::Relaxed),
        standing_active: shared
            .dbs
            .values()
            .map(|e| e.standing.lock().unwrap().len() as u64)
            .sum(),
        doc_updates: c.doc_updates.load(Ordering::Relaxed),
        delta_pushes: c.delta_pushes.load(Ordering::Relaxed),
    }
}

fn process_query(
    shared: &Arc<ServerShared>,
    db: String,
    language: WireLanguage,
    output: OutputKind,
    source: String,
) -> Response {
    let Some(entry) = shared.dbs.get(&db) else {
        return Response::Error {
            code: ErrorCode::UnknownDatabase,
            message: format!("no database registered as {db:?}"),
        };
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is draining".into(),
        };
    }
    // Prepared-program cache: a hit skips parse/normalize/optimize and
    // the single-query merge; a miss compiles under the database's
    // write lock (compilation interns labels) and populates the cache.
    let key = CacheKey {
        db,
        language,
        source,
    };
    let (prepared, cache_hit) = match shared.cache.lookup(&key) {
        Some(p) => (p, true),
        None => {
            let compiled = {
                let mut db = entry.db.write().unwrap();
                match key.language {
                    WireLanguage::Tmnf => db.compile_tmnf(&key.source),
                    WireLanguage::XPath => db.compile_xpath(&key.source),
                }
            };
            let query = match compiled {
                Ok(q) => q,
                Err(e) => {
                    return Response::Error {
                        code: ErrorCode::Query,
                        message: e.to_string(),
                    }
                }
            };
            let prepared = Arc::new(PreparedProgram::new(query));
            shared.cache.insert(key, Arc::clone(&prepared));
            (prepared, false)
        }
    };
    // Admission: join the database's current window, shedding when the
    // queue is full.
    let (tx, rx) = mpsc::channel();
    {
        let mut st = entry.state.lock().unwrap();
        if st.draining {
            return Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "server is draining".into(),
            };
        }
        if st.items.len() >= shared.config.queue_cap {
            shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
            return Response::Error {
                code: ErrorCode::Overloaded,
                message: format!(
                    "admission queue full ({} pending); retry later",
                    st.items.len()
                ),
            };
        }
        st.items.push(Pending {
            prepared,
            language,
            output,
            cache_hit,
            enqueued: Instant::now(),
            reply: tx,
        });
        entry.cv.notify_all();
    }
    rx.recv().unwrap_or_else(|_| Response::Error {
        code: ErrorCode::Internal,
        message: "batcher terminated before replying".into(),
    })
}

/// The per-database dispatcher: waits for a window to fill or expire,
/// drains up to `max_batch` admitted queries, and runs them through one
/// shared pass.
fn batcher_loop(shared: &ServerShared, entry: &DbEntry) {
    loop {
        let batch: Vec<Pending> = {
            let mut st = entry.state.lock().unwrap();
            loop {
                if st.items.is_empty() {
                    if st.draining {
                        return;
                    }
                    st = entry.cv.wait(st).unwrap();
                    continue;
                }
                // The window opened when its first request was admitted.
                let deadline = st.items[0].enqueued + shared.config.batch_window;
                let now = Instant::now();
                if st.draining || st.items.len() >= shared.config.max_batch || now >= deadline {
                    let take = st.items.len().min(shared.config.max_batch);
                    break st.items.drain(..take).collect();
                }
                let (guard, _) = entry.cv.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
        };
        run_batch(shared, entry, batch);
    }
}

/// Holds whichever prepared batch the window resolved to: the cached
/// singleton (one-query window, merge skipped) or a cached/freshly
/// merged multi-query window. Either way the entry carries the
/// [`AutomataPool`] that keeps the merged program's automata warm
/// across dispatches of the same shape.
enum WindowBatch {
    Single(Arc<PreparedProgram>),
    Window(Arc<PreparedWindow>),
}

impl WindowBatch {
    fn batch(&self) -> &QueryBatch {
        match self {
            WindowBatch::Single(p) => &p.singleton,
            WindowBatch::Window(w) => &w.batch,
        }
    }

    fn pool(&self) -> &Arc<AutomataPool> {
        match self {
            WindowBatch::Single(p) => &p.pool,
            WindowBatch::Window(w) => &w.pool,
        }
    }
}

/// Resolves a drained admission window to its prepared batch plus the
/// permutation mapping each item to its batch entry (`perm[i]` is item
/// `i`'s entry index — multi-query windows are merged in the canonical
/// sorted order of [`WindowKey`], not arrival order, so repeated shapes
/// hit one cache entry no matter how the clients raced in).
fn resolve_window(entry: &DbEntry, items: &[Pending]) -> (WindowBatch, Vec<usize>) {
    if items.len() == 1 {
        return (WindowBatch::Single(Arc::clone(&items[0].prepared)), vec![0]);
    }
    fn spec(p: &Pending) -> (WireLanguage, &str) {
        (p.language, p.prepared.query.source.as_str())
    }
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| spec(&items[a]).cmp(&spec(&items[b])));
    let mut perm = vec![0usize; items.len()];
    for (entry_ix, &item_ix) in order.iter().enumerate() {
        perm[item_ix] = entry_ix;
    }
    let key = WindowKey {
        specs: order
            .iter()
            .map(|&i| (items[i].language, items[i].prepared.query.source.clone()))
            .collect(),
    };
    let prepared = match entry.windows.lookup(&key) {
        Some(w) => w,
        None => {
            let refs: Vec<&Query> = order.iter().map(|&i| &items[i].prepared.query).collect();
            let w = Arc::new(PreparedWindow {
                batch: QueryBatch::from_query_refs(&refs),
                pool: Arc::new(AutomataPool::new()),
            });
            // Budget overflows just skip caching; the window still runs.
            entry.windows.insert(key, Arc::clone(&w));
            w
        }
    };
    (WindowBatch::Window(prepared), perm)
}

/// Streams phase 2 into one [`XmlEmitter`] per marked-XML client, each
/// marking **its own** query's selections only (unlike
/// [`arb_engine::XmlMarkSink`], which marks the session union).
/// `emitters`/`outputs` are in item (arrival) order; the per-node
/// selection flags arrive in batch-entry (canonical) order, so `perm`
/// translates between them.
struct MarkDemuxSink<'l> {
    emitters: Vec<Option<XmlEmitter<'l, Vec<u8>>>>,
    outputs: Vec<Option<Vec<u8>>>,
    perm: Vec<usize>,
}

impl ResultSink for MarkDemuxSink<'_> {
    fn demand(&self) -> SinkDemand {
        SinkDemand::Stream
    }

    fn node(&mut self, _ix: u32, rec: NodeRecord, selected_by: &[bool]) -> io::Result<()> {
        for (i, e) in self.emitters.iter_mut().enumerate() {
            if let Some(e) = e {
                e.node(rec, selected_by[self.perm[i]])?;
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        for (e, out) in self.emitters.iter_mut().zip(self.outputs.iter_mut()) {
            if let Some(e) = e.take() {
                *out = Some(e.finish()?);
            }
        }
        Ok(())
    }
}

fn internal_error(message: String) -> Response {
    Response::Error {
        code: ErrorCode::Internal,
        message,
    }
}

fn run_batch(shared: &ServerShared, entry: &DbEntry, items: Vec<Pending>) {
    let eval_start = Instant::now();
    let (window, perm) = resolve_window(entry, &items);
    let db = entry.db.read().unwrap();
    let pool = Arc::clone(window.pool());
    let session = db
        .prepare_batch(window.batch())
        .with_pool(Arc::clone(&pool));
    let req = EvalRequest::new().parallelism(shared.config.workers);
    let all_bool = items.iter().all(|p| p.output == OutputKind::Bool);
    let any_xml = items.iter().any(|p| p.output == OutputKind::Xml);
    let queue_wait =
        |p: &Pending| eval_start.saturating_duration_since(p.enqueued).as_micros() as u64;
    // Pool counters are lifetime totals shared with past dispatches of
    // this shape; snapshot them so this pass reports its own deltas.
    let (builds0, reused0, build_t0) = (pool.builds(), pool.reused(), pool.build_time());

    let responses: Vec<Response> = if all_bool {
        // Verdict-only batches skip phase 2 entirely — on disk the whole
        // window is one shared backward scan and no `.sta` stream.
        let mut sink = BooleanSink::default();
        match session.eval(&req, &mut sink) {
            Ok(report) => {
                record_scans(
                    shared,
                    &pool,
                    (builds0, reused0, build_t0),
                    items.len(),
                    1,
                    0,
                );
                let stats = WireStats {
                    batch_size: items.len() as u32,
                    backward_scans: 1,
                    forward_scans: 0,
                    nodes: db.node_count(),
                    db_format: db.as_disk().map_or(0, |d| d.format_version()),
                    automata_builds: pool.builds() - builds0,
                    automata_reused: pool.reused() - reused0,
                    ..WireStats::default()
                };
                items
                    .iter()
                    .enumerate()
                    .map(|(i, p)| Response::Query {
                        result: QueryResult::Bool(report.verdicts[perm[i]]),
                        stats: WireStats {
                            queue_wait_us: queue_wait(p),
                            cache_hit: p.cache_hit,
                            ..stats
                        },
                    })
                    .collect()
            }
            Err(e) => items
                .iter()
                .map(|_| internal_error(e.to_string()))
                .collect(),
        }
    } else {
        let mut sink = MarkDemuxSink {
            emitters: items
                .iter()
                .map(|p| {
                    (p.output == OutputKind::Xml).then(|| XmlEmitter::new(db.labels(), Vec::new()))
                })
                .collect(),
            outputs: items.iter().map(|_| None).collect(),
            perm: perm.clone(),
        };
        // Without an XML client there is nothing to stream; an
        // outcome-only discard sink lets verdict/count/nodes clients
        // share the plain two-scan pass.
        struct OutcomesOnly;
        impl ResultSink for OutcomesOnly {}
        let mut discard = OutcomesOnly;
        let active: &mut dyn ResultSink = if any_xml { &mut sink } else { &mut discard };
        match session.eval(&req, active) {
            Ok(report) => {
                let batch = report
                    .batch
                    .as_ref()
                    .expect("outcome demand yields a batch");
                record_scans(
                    shared,
                    &pool,
                    (builds0, reused0, build_t0),
                    items.len(),
                    batch.stats.backward_scans,
                    batch.stats.forward_scans,
                );
                items
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let o = &batch.outcomes[perm[i]];
                        let mut stats = WireStats {
                            batch_size: o.stats.batch_size as u32,
                            queue_wait_us: queue_wait(p),
                            backward_scans: o.stats.backward_scans,
                            forward_scans: o.stats.forward_scans,
                            selected: o.stats.selected,
                            nodes: o.stats.nodes,
                            phase1_us: o.stats.phase1_time.as_micros() as u64,
                            phase2_us: o.stats.phase2_time.as_micros() as u64,
                            cache_hit: p.cache_hit,
                            db_format: o.stats.db_format,
                            automata_builds: o.stats.automata_builds,
                            automata_reused: o.stats.automata_reused,
                        };
                        if stats.nodes == 0 {
                            stats.nodes = db.node_count();
                        }
                        let result = match p.output {
                            OutputKind::Bool => QueryResult::Bool(report.verdicts[perm[i]]),
                            OutputKind::Count => QueryResult::Count(o.stats.selected),
                            OutputKind::Nodes => {
                                QueryResult::Nodes(o.selected.iter().map(|v| v.0).collect())
                            }
                            OutputKind::Xml => match sink.outputs[i].take() {
                                Some(xml) => QueryResult::Xml(xml),
                                None => {
                                    return internal_error(
                                        "marked-XML stream missing for this query".into(),
                                    )
                                }
                            },
                        };
                        Response::Query { result, stats }
                    })
                    .collect()
            }
            Err(e) => items
                .iter()
                .map(|_| internal_error(e.to_string()))
                .collect(),
        }
    };
    drop(db);
    for (p, resp) in items.iter().zip(responses) {
        // A send error means the client hung up; the batch ran anyway.
        let _ = p.reply.send(resp);
    }
}

fn record_scans(
    shared: &ServerShared,
    pool: &AutomataPool,
    (builds0, reused0, build_t0): (u64, u64, Duration),
    batch_len: usize,
    backward: u64,
    forward: u64,
) {
    let c = &shared.counters;
    c.requests.fetch_add(batch_len as u64, Ordering::Relaxed);
    c.batches.fetch_add(1, Ordering::Relaxed);
    c.max_batch.fetch_max(batch_len as u64, Ordering::Relaxed);
    c.backward_scans.fetch_add(backward, Ordering::Relaxed);
    c.forward_scans.fetch_add(forward, Ordering::Relaxed);
    c.automata_builds
        .fetch_add(pool.builds() - builds0, Ordering::Relaxed);
    c.automata_reused
        .fetch_add(pool.reused() - reused0, Ordering::Relaxed);
    c.automata_build_ns.fetch_add(
        pool.build_time().saturating_sub(build_t0).as_nanos() as u64,
        Ordering::Relaxed,
    );
}
