//! The wire protocol of the resident query service.
//!
//! Every message — request or response — travels as one **frame**:
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 LE    | payload (len bytes) |
//! +----------------+---------------------+
//! ```
//!
//! `len` counts the payload only and must not exceed
//! [`MAX_FRAME_BYTES`]; oversized or short frames are protocol errors.
//! All integers are little-endian. Strings are UTF-8, length-prefixed
//! (`u16` for names, `u32` for query/message bodies).
//!
//! # Request payloads
//!
//! The first payload byte is the opcode:
//!
//! | opcode | request     | body                                           |
//! |--------|-------------|------------------------------------------------|
//! | `0x01` | Query       | `db: str16, lang: u8, output: u8, source: str32` |
//! | `0x02` | Ping        | —                                              |
//! | `0x03` | ServerStats | —                                              |
//! | `0x04` | Shutdown    | —                                              |
//!
//! `lang`: `0` = TMNF, `1` = Core XPath. `output`: `0` = bool, `1` =
//! count, `2` = nodes, `3` = marked XML.
//!
//! # Response payloads
//!
//! The first payload byte is the status: `0x00` for success, else an
//! error code (see [`ErrorCode`]). Error responses carry a `str32`
//! message after the code. Success bodies:
//!
//! * **Query** — `output: u8`, then the result (`bool`: `u8`; `count`:
//!   `u64`; `nodes`: `u32` count + that many `u32` preorder indexes;
//!   `xml`: `u32` length + bytes), then the [`WireStats`] block.
//! * **Ping** / **Shutdown** — empty.
//! * **ServerStats** — the [`ServerStatsReply`] block.
//!
//! # Error codes
//!
//! | code | meaning                                                     |
//! |------|-------------------------------------------------------------|
//! | `1`  | [`ErrorCode::BadRequest`] — malformed frame or unknown opcode |
//! | `2`  | [`ErrorCode::UnknownDatabase`] — no database under that name |
//! | `3`  | [`ErrorCode::Query`] — the query failed to compile          |
//! | `4`  | [`ErrorCode::Overloaded`] — admission queue full, retry later |
//! | `5`  | [`ErrorCode::Internal`] — evaluation / I/O failure           |
//! | `6`  | [`ErrorCode::ShuttingDown`] — server is draining             |

use std::io::{self, Read, Write};

/// Hard ceiling on a frame's payload size (requests *and* responses).
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// The query language of a wire request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WireLanguage {
    /// The Arb surface syntax (TMNF with caterpillar expressions).
    Tmnf,
    /// Core XPath.
    XPath,
}

impl WireLanguage {
    fn to_u8(self) -> u8 {
        match self {
            WireLanguage::Tmnf => 0,
            WireLanguage::XPath => 1,
        }
    }

    fn from_u8(v: u8) -> io::Result<Self> {
        match v {
            0 => Ok(WireLanguage::Tmnf),
            1 => Ok(WireLanguage::XPath),
            other => Err(bad(format!("unknown language byte {other}"))),
        }
    }
}

/// The requested result shape of a wire query (the sink choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// Accept/reject verdict (document filtering).
    Bool,
    /// Selected-node count.
    Count,
    /// Selected preorder indexes.
    Nodes,
    /// The document with this query's selected nodes marked.
    Xml,
}

impl OutputKind {
    fn to_u8(self) -> u8 {
        match self {
            OutputKind::Bool => 0,
            OutputKind::Count => 1,
            OutputKind::Nodes => 2,
            OutputKind::Xml => 3,
        }
    }

    fn from_u8(v: u8) -> io::Result<Self> {
        match v {
            0 => Ok(OutputKind::Bool),
            1 => Ok(OutputKind::Count),
            2 => Ok(OutputKind::Nodes),
            3 => Ok(OutputKind::Xml),
            other => Err(bad(format!("unknown output byte {other}"))),
        }
    }
}

/// Wire error codes (the nonzero response status bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed frame, unknown opcode, or out-of-spec field.
    BadRequest,
    /// The named database is not registered with the server.
    UnknownDatabase,
    /// The query failed to compile.
    Query,
    /// The admission queue is full; the client should back off and retry.
    Overloaded,
    /// Evaluation or I/O failed server-side.
    Internal,
    /// The server is draining in-flight batches and accepts no new work.
    ShuttingDown,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::UnknownDatabase => 2,
            ErrorCode::Query => 3,
            ErrorCode::Overloaded => 4,
            ErrorCode::Internal => 5,
            ErrorCode::ShuttingDown => 6,
        }
    }

    fn from_u8(v: u8) -> io::Result<Self> {
        match v {
            1 => Ok(ErrorCode::BadRequest),
            2 => Ok(ErrorCode::UnknownDatabase),
            3 => Ok(ErrorCode::Query),
            4 => Ok(ErrorCode::Overloaded),
            5 => Ok(ErrorCode::Internal),
            6 => Ok(ErrorCode::ShuttingDown),
            other => Err(bad(format!("unknown error code {other}"))),
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::BadRequest => "bad request",
            ErrorCode::UnknownDatabase => "unknown database",
            ErrorCode::Query => "query error",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Internal => "internal error",
            ErrorCode::ShuttingDown => "shutting down",
        };
        f.write_str(s)
    }
}

/// A request frame, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Evaluate one query against a registered database.
    Query {
        /// Registered database name (the `.arb` file stem).
        db: String,
        /// Query language of `source`.
        language: WireLanguage,
        /// Requested result shape.
        output: OutputKind,
        /// Query text.
        source: String,
    },
    /// Liveness probe.
    Ping,
    /// Server-wide counters (batching, cache, load shedding).
    ServerStats,
    /// Graceful shutdown: drain in-flight batches, then stop.
    Shutdown,
}

/// The per-query statistics block of a successful query response — the
/// amortization story on the wire: `batch_size` queries shared
/// `backward_scans + forward_scans` linear scans, and this request
/// waited `queue_wait_us` in the admission window before the shared
/// pass started.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Queries merged into the shared pass that served this request.
    pub batch_size: u32,
    /// Microseconds between admission and the start of the shared pass.
    pub queue_wait_us: u64,
    /// Backward linear scans of the shared pass (1, shared by the batch).
    pub backward_scans: u64,
    /// Forward linear scans of the shared pass (1, or 0 for all-boolean
    /// batches, which need no phase 2).
    pub forward_scans: u64,
    /// Nodes this query selected.
    pub selected: u64,
    /// Nodes in the database.
    pub nodes: u64,
    /// Phase-1 wall time of the shared pass, microseconds.
    pub phase1_us: u64,
    /// Phase-2 wall time of the shared pass, microseconds.
    pub phase2_us: u64,
    /// True when the compiled program came from the prepared-program
    /// cache (compile + single-query merge skipped).
    pub cache_hit: bool,
    /// On-disk format of the database (0 for in-memory).
    pub db_format: u8,
    /// `QueryAutomata` the shared pass built from scratch. 0 once the
    /// window's shape is warm — the wire-visible proof that the
    /// build-once/eval-many automata lifecycle engaged for this request.
    pub automata_builds: u64,
    /// Warm `QueryAutomata` the shared pass took from its window pool
    /// instead of building.
    pub automata_reused: u64,
}

/// One query's result payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// Accept/reject verdict.
    Bool(bool),
    /// Selected-node count.
    Count(u64),
    /// Selected preorder indexes.
    Nodes(Vec<u32>),
    /// The marked document.
    Xml(Vec<u8>),
}

/// Server-wide counters returned by [`Request::ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsReply {
    /// Query requests admitted (excludes shed / failed ones).
    pub requests: u64,
    /// Shared passes executed (each serves a whole admission window).
    pub batches: u64,
    /// Largest batch observed.
    pub max_batch: u64,
    /// Total backward scans across all batches.
    pub backward_scans: u64,
    /// Total forward scans across all batches.
    pub forward_scans: u64,
    /// Requests shed with [`ErrorCode::Overloaded`].
    pub overloaded: u64,
    /// Prepared-program cache hits.
    pub cache_hits: u64,
    /// Prepared-program cache misses (compiles).
    pub cache_misses: u64,
    /// Prepared-program cache evictions.
    pub cache_evictions: u64,
    /// Bytes currently held by the prepared-program cache.
    pub cache_bytes: u64,
    /// Databases kept open by the registry.
    pub open_databases: u64,
    /// `QueryAutomata` built from scratch across all shared passes. A
    /// steady-state server serving repeated window shapes stops
    /// incrementing this: hot shapes draw warm automata from their
    /// cached window pools.
    pub automata_builds: u64,
    /// Warm `QueryAutomata` reused from window pools across all shared
    /// passes.
    pub automata_reused: u64,
    /// Total wall time spent constructing automata, microseconds.
    pub automata_build_us: u64,
}

/// A response frame, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Successful query evaluation.
    Query {
        /// The result, shaped per the request's [`OutputKind`].
        result: QueryResult,
        /// Shared-pass statistics, demultiplexed for this query.
        stats: WireStats,
    },
    /// Ping or shutdown acknowledged.
    Ok,
    /// Server-wide counters.
    ServerStats(ServerStatsReply),
    /// Request failed.
    Error {
        /// Why.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ---------------------------------------------------------------- frames

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or_else(|| {
            bad(format!(
                "frame payload of {} bytes too large",
                payload.len()
            ))
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. Returns `None` on a clean EOF at a frame
/// boundary (the peer closed the connection).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf)? {
        0 => return Ok(None),
        mut n => {
            while n < 4 {
                let m = r.read(&mut len_buf[n..])?;
                if m == 0 {
                    return Err(bad("truncated frame length".into()));
                }
                n += m;
            }
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(bad(format!(
            "frame of {len} bytes exceeds the protocol cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// -------------------------------------------------------- field helpers

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated payload".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str16(&mut self) -> io::Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("invalid UTF-8 in str16".into()))
    }

    fn str32(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("invalid UTF-8 in str32".into()))
    }

    fn bytes32(&mut self) -> io::Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn put_str16(out: &mut Vec<u8>, s: &str) -> io::Result<()> {
    let len = u16::try_from(s.len()).map_err(|_| bad("name longer than 64 KiB".into()))?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_str32(out: &mut Vec<u8>, s: &[u8]) -> io::Result<()> {
    let len = u32::try_from(s.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or_else(|| bad("body longer than the frame cap".into()))?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s);
    Ok(())
}

// ------------------------------------------------------ request codecs

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        match self {
            Request::Query {
                db,
                language,
                output,
                source,
            } => {
                out.push(0x01);
                put_str16(&mut out, db)?;
                out.push(language.to_u8());
                out.push(output.to_u8());
                put_str32(&mut out, source.as_bytes())?;
            }
            Request::Ping => out.push(0x02),
            Request::ServerStats => out.push(0x03),
            Request::Shutdown => out.push(0x04),
        }
        Ok(out)
    }

    /// Decodes a frame payload into a request.
    pub fn decode(payload: &[u8]) -> io::Result<Request> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            0x01 => Request::Query {
                db: c.str16()?,
                language: WireLanguage::from_u8(c.u8()?)?,
                output: OutputKind::from_u8(c.u8()?)?,
                source: c.str32()?,
            },
            0x02 => Request::Ping,
            0x03 => Request::ServerStats,
            0x04 => Request::Shutdown,
            other => return Err(bad(format!("unknown opcode {other:#04x}"))),
        };
        c.done()?;
        Ok(req)
    }
}

// ----------------------------------------------------- response codecs

impl WireStats {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.batch_size.to_le_bytes());
        out.extend_from_slice(&self.queue_wait_us.to_le_bytes());
        out.extend_from_slice(&self.backward_scans.to_le_bytes());
        out.extend_from_slice(&self.forward_scans.to_le_bytes());
        out.extend_from_slice(&self.selected.to_le_bytes());
        out.extend_from_slice(&self.nodes.to_le_bytes());
        out.extend_from_slice(&self.phase1_us.to_le_bytes());
        out.extend_from_slice(&self.phase2_us.to_le_bytes());
        out.push(self.cache_hit as u8);
        out.push(self.db_format);
        out.extend_from_slice(&self.automata_builds.to_le_bytes());
        out.extend_from_slice(&self.automata_reused.to_le_bytes());
    }

    fn decode(c: &mut Cursor<'_>) -> io::Result<Self> {
        Ok(WireStats {
            batch_size: c.u32()?,
            queue_wait_us: c.u64()?,
            backward_scans: c.u64()?,
            forward_scans: c.u64()?,
            selected: c.u64()?,
            nodes: c.u64()?,
            phase1_us: c.u64()?,
            phase2_us: c.u64()?,
            cache_hit: c.u8()? != 0,
            db_format: c.u8()?,
            automata_builds: c.u64()?,
            automata_reused: c.u64()?,
        })
    }
}

impl ServerStatsReply {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.requests,
            self.batches,
            self.max_batch,
            self.backward_scans,
            self.forward_scans,
            self.overloaded,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_bytes,
            self.open_databases,
            self.automata_builds,
            self.automata_reused,
            self.automata_build_us,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(c: &mut Cursor<'_>) -> io::Result<Self> {
        Ok(ServerStatsReply {
            requests: c.u64()?,
            batches: c.u64()?,
            max_batch: c.u64()?,
            backward_scans: c.u64()?,
            forward_scans: c.u64()?,
            overloaded: c.u64()?,
            cache_hits: c.u64()?,
            cache_misses: c.u64()?,
            cache_evictions: c.u64()?,
            cache_bytes: c.u64()?,
            open_databases: c.u64()?,
            automata_builds: c.u64()?,
            automata_reused: c.u64()?,
            automata_build_us: c.u64()?,
        })
    }
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        match self {
            Response::Query { result, stats } => {
                out.push(0x00);
                match result {
                    QueryResult::Bool(b) => {
                        out.push(OutputKind::Bool.to_u8());
                        out.push(*b as u8);
                    }
                    QueryResult::Count(n) => {
                        out.push(OutputKind::Count.to_u8());
                        out.extend_from_slice(&n.to_le_bytes());
                    }
                    QueryResult::Nodes(ixs) => {
                        out.push(OutputKind::Nodes.to_u8());
                        let len = u32::try_from(ixs.len())
                            .map_err(|_| bad("node set too large for the wire".into()))?;
                        out.extend_from_slice(&len.to_le_bytes());
                        for ix in ixs {
                            out.extend_from_slice(&ix.to_le_bytes());
                        }
                    }
                    QueryResult::Xml(bytes) => {
                        out.push(OutputKind::Xml.to_u8());
                        put_str32(&mut out, bytes)?;
                    }
                }
                stats.encode(&mut out);
            }
            Response::Ok => out.push(0x00),
            Response::ServerStats(s) => {
                out.push(0x00);
                s.encode(&mut out);
            }
            Response::Error { code, message } => {
                out.push(code.to_u8());
                put_str32(&mut out, message.as_bytes())?;
            }
        }
        Ok(out)
    }

    /// Decodes a frame payload into a response; the decode shape depends
    /// on which request this response answers.
    pub fn decode(payload: &[u8], for_request: &Request) -> io::Result<Response> {
        let mut c = Cursor::new(payload);
        let status = c.u8()?;
        if status != 0 {
            let resp = Response::Error {
                code: ErrorCode::from_u8(status)?,
                message: c.str32()?,
            };
            c.done()?;
            return Ok(resp);
        }
        let resp = match for_request {
            Request::Query { .. } => {
                let result = match OutputKind::from_u8(c.u8()?)? {
                    OutputKind::Bool => QueryResult::Bool(c.u8()? != 0),
                    OutputKind::Count => QueryResult::Count(c.u64()?),
                    OutputKind::Nodes => {
                        let n = c.u32()? as usize;
                        let mut ixs = Vec::with_capacity(n.min(1 << 20));
                        for _ in 0..n {
                            ixs.push(c.u32()?);
                        }
                        QueryResult::Nodes(ixs)
                    }
                    OutputKind::Xml => QueryResult::Xml(c.bytes32()?),
                };
                Response::Query {
                    result,
                    stats: WireStats::decode(&mut c)?,
                }
            }
            Request::Ping | Request::Shutdown => Response::Ok,
            Request::ServerStats => Response::ServerStats(ServerStatsReply::decode(&mut c)?),
        };
        c.done()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let enc = req.encode().unwrap();
        assert_eq!(Request::decode(&enc).unwrap(), req);
    }

    fn roundtrip_response(resp: Response, for_request: &Request) {
        let enc = resp.encode().unwrap();
        assert_eq!(Response::decode(&enc, for_request).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::ServerStats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Query {
            db: "treebank".into(),
            language: WireLanguage::XPath,
            output: OutputKind::Nodes,
            source: "//NP//VP".into(),
        });
    }

    #[test]
    fn response_roundtrips() {
        let q = Request::Query {
            db: "d".into(),
            language: WireLanguage::Tmnf,
            output: OutputKind::Count,
            source: "QUERY :- Root;".into(),
        };
        let stats = WireStats {
            batch_size: 8,
            queue_wait_us: 1500,
            backward_scans: 1,
            forward_scans: 1,
            selected: 42,
            nodes: 1000,
            phase1_us: 12,
            phase2_us: 34,
            cache_hit: true,
            db_format: 2,
            automata_builds: 1,
            automata_reused: 9,
        };
        for result in [
            QueryResult::Bool(true),
            QueryResult::Count(42),
            QueryResult::Nodes(vec![0, 7, 12]),
            QueryResult::Xml(b"<r/>".to_vec()),
        ] {
            roundtrip_response(Response::Query { result, stats }, &q);
        }
        roundtrip_response(Response::Ok, &Request::Ping);
        roundtrip_response(
            Response::ServerStats(ServerStatsReply {
                requests: 12,
                batches: 3,
                max_batch: 4,
                backward_scans: 3,
                forward_scans: 3,
                overloaded: 1,
                cache_hits: 8,
                cache_misses: 4,
                cache_evictions: 0,
                cache_bytes: 4096,
                open_databases: 2,
                automata_builds: 3,
                automata_reused: 21,
                automata_build_us: 77,
            }),
            &Request::ServerStats,
        );
        roundtrip_response(
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
            },
            &q,
        );
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        // An adversarial length prefix is rejected without allocating.
        let huge = (MAX_FRAME_BYTES + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        // A truncated length prefix is an error, not a clean EOF.
        assert!(read_frame(&mut &buf[..2]).is_err());
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0x99]).is_err());
        // Trailing garbage after a valid request is an error.
        assert!(Request::decode(&[0x02, 0xFF]).is_err());
        // Truncated query body.
        let mut enc = Request::Query {
            db: "d".into(),
            language: WireLanguage::Tmnf,
            output: OutputKind::Bool,
            source: "QUERY :- Root;".into(),
        }
        .encode()
        .unwrap();
        enc.truncate(enc.len() - 3);
        assert!(Request::decode(&enc).is_err());
    }
}
