//! The wire protocol of the resident query service.
//!
//! Every message — request or response — travels as one **frame**:
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 LE    | payload (len bytes) |
//! +----------------+---------------------+
//! ```
//!
//! `len` counts the payload only and must not exceed
//! [`MAX_FRAME_BYTES`]; oversized or short frames are protocol errors.
//! All integers are little-endian. Strings are UTF-8, length-prefixed
//! (`u16` for names, `u32` for query/message bodies).
//!
//! # Request payloads
//!
//! The first payload byte is the opcode:
//!
//! | opcode | request     | body                                           |
//! |--------|-------------|------------------------------------------------|
//! | `0x01` | Query       | `db: str16, lang: u8, output: u8, source: str32` |
//! | `0x02` | Ping        | —                                              |
//! | `0x03` | ServerStats | —                                              |
//! | `0x04` | Shutdown    | —                                              |
//! | `0x05` | Register    | `db: str16, lang: u8, count: u16, count × str32` |
//! | `0x06` | Unregister  | `db: str16, handle: u64`                       |
//! | `0x07` | UpdateDoc   | `db: str16, kind: u8, pos: u32, xml: str32`    |
//!
//! `lang`: `0` = TMNF, `1` = Core XPath. `output`: `0` = bool, `1` =
//! count, `2` = nodes, `3` = marked XML. `kind` (UpdateDoc): `0` =
//! append child under `pos`, `1` = splice the subtree at `pos`, `2` =
//! delete the subtree at `pos` (`xml` empty).
//!
//! # Response payloads
//!
//! The first payload byte is the status: `0x00` for success, else an
//! error code (see [`ErrorCode`]). Error responses carry a `str32`
//! message after the code. Success bodies:
//!
//! * **Query** — `output: u8`, then the result (`bool`: `u8`; `count`:
//!   `u64`; `nodes`: `u32` count + that many `u32` preorder indexes;
//!   `xml`: `u32` length + bytes), then the [`WireStats`] block.
//! * **Ping** / **Shutdown** — empty.
//! * **ServerStats** — the [`ServerStatsReply`] block.
//! * **Register** — `handle: u64, epoch: u64, count: u16`, then per
//!   query its initial result set (`u32` count + `u32` indexes).
//! * **Unregister** — empty.
//! * **UpdateDoc** — the [`UpdateReply`] block: `epoch: u64, pos: u32,
//!   removed: u32, inserted: u32, nodes: u64, dirty_nodes: u64,
//!   retained_sta_blocks: u64, pushes: u16`, then per push `handle:
//!   u64, queries: u16` × [`WireDelta`] (`added`/`removed` as `u32`
//!   count + indexes, `verdict: u8, verdict_changed: u8`). Every
//!   standing registration on the database gets one push per update —
//!   node indexes are in the **post-edit** preorder space; holders of
//!   pre-edit indexes apply the `pos/removed/inserted` shift first.
//!
//! # Error codes
//!
//! | code | meaning                                                     |
//! |------|-------------------------------------------------------------|
//! | `1`  | [`ErrorCode::BadRequest`] — malformed frame or unknown opcode |
//! | `2`  | [`ErrorCode::UnknownDatabase`] — no database under that name |
//! | `3`  | [`ErrorCode::Query`] — the query failed to compile          |
//! | `4`  | [`ErrorCode::Overloaded`] — admission queue full, retry later |
//! | `5`  | [`ErrorCode::Internal`] — evaluation / I/O failure           |
//! | `6`  | [`ErrorCode::ShuttingDown`] — server is draining             |

use std::io::{self, Read, Write};

/// Hard ceiling on a frame's payload size (requests *and* responses).
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// The query language of a wire request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WireLanguage {
    /// The Arb surface syntax (TMNF with caterpillar expressions).
    Tmnf,
    /// Core XPath.
    XPath,
}

impl WireLanguage {
    fn to_u8(self) -> u8 {
        match self {
            WireLanguage::Tmnf => 0,
            WireLanguage::XPath => 1,
        }
    }

    fn from_u8(v: u8) -> io::Result<Self> {
        match v {
            0 => Ok(WireLanguage::Tmnf),
            1 => Ok(WireLanguage::XPath),
            other => Err(bad(format!("unknown language byte {other}"))),
        }
    }
}

/// The requested result shape of a wire query (the sink choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// Accept/reject verdict (document filtering).
    Bool,
    /// Selected-node count.
    Count,
    /// Selected preorder indexes.
    Nodes,
    /// The document with this query's selected nodes marked.
    Xml,
}

impl OutputKind {
    fn to_u8(self) -> u8 {
        match self {
            OutputKind::Bool => 0,
            OutputKind::Count => 1,
            OutputKind::Nodes => 2,
            OutputKind::Xml => 3,
        }
    }

    fn from_u8(v: u8) -> io::Result<Self> {
        match v {
            0 => Ok(OutputKind::Bool),
            1 => Ok(OutputKind::Count),
            2 => Ok(OutputKind::Nodes),
            3 => Ok(OutputKind::Xml),
            other => Err(bad(format!("unknown output byte {other}"))),
        }
    }
}

/// Wire error codes (the nonzero response status bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed frame, unknown opcode, or out-of-spec field.
    BadRequest,
    /// The named database is not registered with the server.
    UnknownDatabase,
    /// The query failed to compile.
    Query,
    /// The admission queue is full; the client should back off and retry.
    Overloaded,
    /// Evaluation or I/O failed server-side.
    Internal,
    /// The server is draining in-flight batches and accepts no new work.
    ShuttingDown,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::UnknownDatabase => 2,
            ErrorCode::Query => 3,
            ErrorCode::Overloaded => 4,
            ErrorCode::Internal => 5,
            ErrorCode::ShuttingDown => 6,
        }
    }

    fn from_u8(v: u8) -> io::Result<Self> {
        match v {
            1 => Ok(ErrorCode::BadRequest),
            2 => Ok(ErrorCode::UnknownDatabase),
            3 => Ok(ErrorCode::Query),
            4 => Ok(ErrorCode::Overloaded),
            5 => Ok(ErrorCode::Internal),
            6 => Ok(ErrorCode::ShuttingDown),
            other => Err(bad(format!("unknown error code {other}"))),
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::BadRequest => "bad request",
            ErrorCode::UnknownDatabase => "unknown database",
            ErrorCode::Query => "query error",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Internal => "internal error",
            ErrorCode::ShuttingDown => "shutting down",
        };
        f.write_str(s)
    }
}

/// One document edit on the wire (the protocol form of
/// [`arb_engine::DocUpdate`]). Positions are preorder indexes; fragments
/// are XML with one root element whose tags must already exist in the
/// database's label table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireUpdate {
    /// Append the fragment as the last child of node `under`.
    AppendChild {
        /// Preorder index of the new parent.
        under: u32,
        /// The fragment.
        xml: String,
    },
    /// Replace the subtree at `at` with the fragment.
    SpliceSubtree {
        /// Preorder index of the replaced subtree's root.
        at: u32,
        /// The fragment.
        xml: String,
    },
    /// Delete the subtree at `at`.
    DeleteSubtree {
        /// Preorder index of the deleted subtree's root.
        at: u32,
    },
}

/// A request frame, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Evaluate one query against a registered database.
    Query {
        /// Registered database name (the `.arb` file stem).
        db: String,
        /// Query language of `source`.
        language: WireLanguage,
        /// Requested result shape.
        output: OutputKind,
        /// Query text.
        source: String,
    },
    /// Liveness probe.
    Ping,
    /// Server-wide counters (batching, cache, load shedding).
    ServerStats,
    /// Graceful shutdown: drain in-flight batches, then stop.
    Shutdown,
    /// Install a standing query batch: evaluated once at registration,
    /// then re-evaluated incrementally per document update, with result
    /// deltas pushed on every [`Request::UpdateDoc`] response.
    Register {
        /// Registered database name.
        db: String,
        /// Query language of every source in the batch.
        language: WireLanguage,
        /// Query texts (one standing batch, evaluated as one shared pass).
        sources: Vec<String>,
    },
    /// Drop a standing query batch.
    Unregister {
        /// Registered database name.
        db: String,
        /// The handle [`Response::Registered`] returned.
        handle: u64,
    },
    /// Apply one document update; the response carries the result deltas
    /// of every standing batch registered on the database.
    UpdateDoc {
        /// Registered database name.
        db: String,
        /// The edit.
        update: WireUpdate,
    },
}

/// The per-query statistics block of a successful query response — the
/// amortization story on the wire: `batch_size` queries shared
/// `backward_scans + forward_scans` linear scans, and this request
/// waited `queue_wait_us` in the admission window before the shared
/// pass started.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Queries merged into the shared pass that served this request.
    pub batch_size: u32,
    /// Microseconds between admission and the start of the shared pass.
    pub queue_wait_us: u64,
    /// Backward linear scans of the shared pass (1, shared by the batch).
    pub backward_scans: u64,
    /// Forward linear scans of the shared pass (1, or 0 for all-boolean
    /// batches, which need no phase 2).
    pub forward_scans: u64,
    /// Nodes this query selected.
    pub selected: u64,
    /// Nodes in the database.
    pub nodes: u64,
    /// Phase-1 wall time of the shared pass, microseconds.
    pub phase1_us: u64,
    /// Phase-2 wall time of the shared pass, microseconds.
    pub phase2_us: u64,
    /// True when the compiled program came from the prepared-program
    /// cache (compile + single-query merge skipped).
    pub cache_hit: bool,
    /// On-disk format of the database (0 for in-memory).
    pub db_format: u8,
    /// `QueryAutomata` the shared pass built from scratch. 0 once the
    /// window's shape is warm — the wire-visible proof that the
    /// build-once/eval-many automata lifecycle engaged for this request.
    pub automata_builds: u64,
    /// Warm `QueryAutomata` the shared pass took from its window pool
    /// instead of building.
    pub automata_reused: u64,
}

/// One query's result payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// Accept/reject verdict.
    Bool(bool),
    /// Selected-node count.
    Count(u64),
    /// Selected preorder indexes.
    Nodes(Vec<u32>),
    /// The marked document.
    Xml(Vec<u8>),
}

/// Server-wide counters returned by [`Request::ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsReply {
    /// Query requests admitted (excludes shed / failed ones).
    pub requests: u64,
    /// Shared passes executed (each serves a whole admission window).
    pub batches: u64,
    /// Largest batch observed.
    pub max_batch: u64,
    /// Total backward scans across all batches.
    pub backward_scans: u64,
    /// Total forward scans across all batches.
    pub forward_scans: u64,
    /// Requests shed with [`ErrorCode::Overloaded`].
    pub overloaded: u64,
    /// Prepared-program cache hits.
    pub cache_hits: u64,
    /// Prepared-program cache misses (compiles).
    pub cache_misses: u64,
    /// Prepared-program cache evictions.
    pub cache_evictions: u64,
    /// Bytes currently held by the prepared-program cache.
    pub cache_bytes: u64,
    /// Databases kept open by the registry.
    pub open_databases: u64,
    /// `QueryAutomata` built from scratch across all shared passes. A
    /// steady-state server serving repeated window shapes stops
    /// incrementing this: hot shapes draw warm automata from their
    /// cached window pools.
    pub automata_builds: u64,
    /// Warm `QueryAutomata` reused from window pools across all shared
    /// passes.
    pub automata_reused: u64,
    /// Total wall time spent constructing automata, microseconds.
    pub automata_build_us: u64,
    /// Standing query batches registered over the server's lifetime.
    pub standing_registered: u64,
    /// Standing query batches currently installed.
    pub standing_active: u64,
    /// Document updates applied via [`Request::UpdateDoc`].
    pub doc_updates: u64,
    /// Standing-query delta pushes emitted (one per registration per
    /// update).
    pub delta_pushes: u64,
}

/// One query's result delta inside a standing-query push: how the
/// selected node set changed across one document update. Indexes are in
/// the **post-edit** preorder space.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireDelta {
    /// Nodes newly selected by this query.
    pub added: Vec<u32>,
    /// Nodes no longer selected by this query.
    pub removed: Vec<u32>,
    /// The query's accept/reject verdict after the update.
    pub verdict: bool,
    /// True when the update flipped the verdict.
    pub verdict_changed: bool,
}

/// The result deltas of one standing registration after one update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StandingPush {
    /// The registration the deltas belong to.
    pub handle: u64,
    /// One delta per query in the standing batch, in registration order.
    pub queries: Vec<WireDelta>,
}

/// The body of a successful [`Request::UpdateDoc`] response: what the
/// edit did to the document, how much work the incremental refresh
/// touched, and one [`StandingPush`] per registration on the database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateReply {
    /// The database epoch after the update.
    pub epoch: u64,
    /// Preorder index where the edit window starts.
    pub pos: u32,
    /// Records removed at `pos`.
    pub removed: u32,
    /// Records inserted at `pos`.
    pub inserted: u32,
    /// Nodes in the database after the update.
    pub nodes: u64,
    /// Nodes whose phase-1 state changed, summed over the standing
    /// refreshes (0 when no standing batch is installed).
    pub dirty_nodes: u64,
    /// Clean `.sta` blocks byte-copied instead of re-encoded, summed
    /// over the standing refreshes.
    pub retained_sta_blocks: u64,
    /// One push per standing registration on the database.
    pub pushes: Vec<StandingPush>,
}

/// A response frame, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Successful query evaluation.
    Query {
        /// The result, shaped per the request's [`OutputKind`].
        result: QueryResult,
        /// Shared-pass statistics, demultiplexed for this query.
        stats: WireStats,
    },
    /// Ping, shutdown, or unregister acknowledged.
    Ok,
    /// Server-wide counters.
    ServerStats(Box<ServerStatsReply>),
    /// Standing query batch installed.
    Registered {
        /// Opaque handle for [`Request::Unregister`].
        handle: u64,
        /// The database epoch the initial results reflect.
        epoch: u64,
        /// Initial selected-node sets, one per query in the batch.
        initial: Vec<Vec<u32>>,
    },
    /// Document update applied; standing deltas attached.
    Updated(UpdateReply),
    /// Request failed.
    Error {
        /// Why.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ---------------------------------------------------------------- frames

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or_else(|| {
            bad(format!(
                "frame payload of {} bytes too large",
                payload.len()
            ))
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. Returns `None` on a clean EOF at a frame
/// boundary (the peer closed the connection).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf)? {
        0 => return Ok(None),
        mut n => {
            while n < 4 {
                let m = r.read(&mut len_buf[n..])?;
                if m == 0 {
                    return Err(bad("truncated frame length".into()));
                }
                n += m;
            }
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(bad(format!(
            "frame of {len} bytes exceeds the protocol cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// -------------------------------------------------------- field helpers

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated payload".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str16(&mut self) -> io::Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("invalid UTF-8 in str16".into()))
    }

    fn str32(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("invalid UTF-8 in str32".into()))
    }

    fn bytes32(&mut self) -> io::Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn put_str16(out: &mut Vec<u8>, s: &str) -> io::Result<()> {
    let len = u16::try_from(s.len()).map_err(|_| bad("name longer than 64 KiB".into()))?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_str32(out: &mut Vec<u8>, s: &[u8]) -> io::Result<()> {
    let len = u32::try_from(s.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or_else(|| bad("body longer than the frame cap".into()))?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s);
    Ok(())
}

// ------------------------------------------------------ request codecs

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        match self {
            Request::Query {
                db,
                language,
                output,
                source,
            } => {
                out.push(0x01);
                put_str16(&mut out, db)?;
                out.push(language.to_u8());
                out.push(output.to_u8());
                put_str32(&mut out, source.as_bytes())?;
            }
            Request::Ping => out.push(0x02),
            Request::ServerStats => out.push(0x03),
            Request::Shutdown => out.push(0x04),
            Request::Register {
                db,
                language,
                sources,
            } => {
                out.push(0x05);
                put_str16(&mut out, db)?;
                out.push(language.to_u8());
                let count = u16::try_from(sources.len())
                    .map_err(|_| bad("more than 65535 queries in one registration".into()))?;
                out.extend_from_slice(&count.to_le_bytes());
                for source in sources {
                    put_str32(&mut out, source.as_bytes())?;
                }
            }
            Request::Unregister { db, handle } => {
                out.push(0x06);
                put_str16(&mut out, db)?;
                out.extend_from_slice(&handle.to_le_bytes());
            }
            Request::UpdateDoc { db, update } => {
                out.push(0x07);
                put_str16(&mut out, db)?;
                let (kind, pos, xml) = match update {
                    WireUpdate::AppendChild { under, xml } => (0u8, *under, xml.as_str()),
                    WireUpdate::SpliceSubtree { at, xml } => (1, *at, xml.as_str()),
                    WireUpdate::DeleteSubtree { at } => (2, *at, ""),
                };
                out.push(kind);
                out.extend_from_slice(&pos.to_le_bytes());
                put_str32(&mut out, xml.as_bytes())?;
            }
        }
        Ok(out)
    }

    /// Decodes a frame payload into a request.
    pub fn decode(payload: &[u8]) -> io::Result<Request> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            0x01 => Request::Query {
                db: c.str16()?,
                language: WireLanguage::from_u8(c.u8()?)?,
                output: OutputKind::from_u8(c.u8()?)?,
                source: c.str32()?,
            },
            0x02 => Request::Ping,
            0x03 => Request::ServerStats,
            0x04 => Request::Shutdown,
            0x05 => {
                let db = c.str16()?;
                let language = WireLanguage::from_u8(c.u8()?)?;
                let count = c.u16()? as usize;
                let mut sources = Vec::with_capacity(count.min(1 << 10));
                for _ in 0..count {
                    sources.push(c.str32()?);
                }
                Request::Register {
                    db,
                    language,
                    sources,
                }
            }
            0x06 => Request::Unregister {
                db: c.str16()?,
                handle: c.u64()?,
            },
            0x07 => {
                let db = c.str16()?;
                let kind = c.u8()?;
                let pos = c.u32()?;
                let xml = c.str32()?;
                let update = match kind {
                    0 => WireUpdate::AppendChild { under: pos, xml },
                    1 => WireUpdate::SpliceSubtree { at: pos, xml },
                    2 => {
                        if !xml.is_empty() {
                            return Err(bad("delete update carries a fragment".into()));
                        }
                        WireUpdate::DeleteSubtree { at: pos }
                    }
                    other => return Err(bad(format!("unknown update kind {other}"))),
                };
                Request::UpdateDoc { db, update }
            }
            other => return Err(bad(format!("unknown opcode {other:#04x}"))),
        };
        c.done()?;
        Ok(req)
    }
}

// ----------------------------------------------------- response codecs

impl WireStats {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.batch_size.to_le_bytes());
        out.extend_from_slice(&self.queue_wait_us.to_le_bytes());
        out.extend_from_slice(&self.backward_scans.to_le_bytes());
        out.extend_from_slice(&self.forward_scans.to_le_bytes());
        out.extend_from_slice(&self.selected.to_le_bytes());
        out.extend_from_slice(&self.nodes.to_le_bytes());
        out.extend_from_slice(&self.phase1_us.to_le_bytes());
        out.extend_from_slice(&self.phase2_us.to_le_bytes());
        out.push(self.cache_hit as u8);
        out.push(self.db_format);
        out.extend_from_slice(&self.automata_builds.to_le_bytes());
        out.extend_from_slice(&self.automata_reused.to_le_bytes());
    }

    fn decode(c: &mut Cursor<'_>) -> io::Result<Self> {
        Ok(WireStats {
            batch_size: c.u32()?,
            queue_wait_us: c.u64()?,
            backward_scans: c.u64()?,
            forward_scans: c.u64()?,
            selected: c.u64()?,
            nodes: c.u64()?,
            phase1_us: c.u64()?,
            phase2_us: c.u64()?,
            cache_hit: c.u8()? != 0,
            db_format: c.u8()?,
            automata_builds: c.u64()?,
            automata_reused: c.u64()?,
        })
    }
}

impl ServerStatsReply {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.requests,
            self.batches,
            self.max_batch,
            self.backward_scans,
            self.forward_scans,
            self.overloaded,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_bytes,
            self.open_databases,
            self.automata_builds,
            self.automata_reused,
            self.automata_build_us,
            self.standing_registered,
            self.standing_active,
            self.doc_updates,
            self.delta_pushes,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(c: &mut Cursor<'_>) -> io::Result<Self> {
        Ok(ServerStatsReply {
            requests: c.u64()?,
            batches: c.u64()?,
            max_batch: c.u64()?,
            backward_scans: c.u64()?,
            forward_scans: c.u64()?,
            overloaded: c.u64()?,
            cache_hits: c.u64()?,
            cache_misses: c.u64()?,
            cache_evictions: c.u64()?,
            cache_bytes: c.u64()?,
            open_databases: c.u64()?,
            automata_builds: c.u64()?,
            automata_reused: c.u64()?,
            automata_build_us: c.u64()?,
            standing_registered: c.u64()?,
            standing_active: c.u64()?,
            doc_updates: c.u64()?,
            delta_pushes: c.u64()?,
        })
    }
}

fn put_nodes(out: &mut Vec<u8>, ixs: &[u32]) -> io::Result<()> {
    let len =
        u32::try_from(ixs.len()).map_err(|_| bad("node set too large for the wire".into()))?;
    out.extend_from_slice(&len.to_le_bytes());
    for ix in ixs {
        out.extend_from_slice(&ix.to_le_bytes());
    }
    Ok(())
}

fn take_nodes(c: &mut Cursor<'_>) -> io::Result<Vec<u32>> {
    let n = c.u32()? as usize;
    let mut ixs = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        ixs.push(c.u32()?);
    }
    Ok(ixs)
}

impl WireDelta {
    fn encode(&self, out: &mut Vec<u8>) -> io::Result<()> {
        put_nodes(out, &self.added)?;
        put_nodes(out, &self.removed)?;
        out.push(self.verdict as u8);
        out.push(self.verdict_changed as u8);
        Ok(())
    }

    fn decode(c: &mut Cursor<'_>) -> io::Result<Self> {
        Ok(WireDelta {
            added: take_nodes(c)?,
            removed: take_nodes(c)?,
            verdict: c.u8()? != 0,
            verdict_changed: c.u8()? != 0,
        })
    }
}

impl UpdateReply {
    fn encode(&self, out: &mut Vec<u8>) -> io::Result<()> {
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.pos.to_le_bytes());
        out.extend_from_slice(&self.removed.to_le_bytes());
        out.extend_from_slice(&self.inserted.to_le_bytes());
        out.extend_from_slice(&self.nodes.to_le_bytes());
        out.extend_from_slice(&self.dirty_nodes.to_le_bytes());
        out.extend_from_slice(&self.retained_sta_blocks.to_le_bytes());
        let pushes = u16::try_from(self.pushes.len())
            .map_err(|_| bad("more than 65535 standing pushes".into()))?;
        out.extend_from_slice(&pushes.to_le_bytes());
        for push in &self.pushes {
            out.extend_from_slice(&push.handle.to_le_bytes());
            let queries = u16::try_from(push.queries.len())
                .map_err(|_| bad("more than 65535 queries in one push".into()))?;
            out.extend_from_slice(&queries.to_le_bytes());
            for delta in &push.queries {
                delta.encode(out)?;
            }
        }
        Ok(())
    }

    fn decode(c: &mut Cursor<'_>) -> io::Result<Self> {
        let epoch = c.u64()?;
        let pos = c.u32()?;
        let removed = c.u32()?;
        let inserted = c.u32()?;
        let nodes = c.u64()?;
        let dirty_nodes = c.u64()?;
        let retained_sta_blocks = c.u64()?;
        let push_count = c.u16()? as usize;
        let mut pushes = Vec::with_capacity(push_count.min(1 << 10));
        for _ in 0..push_count {
            let handle = c.u64()?;
            let query_count = c.u16()? as usize;
            let mut queries = Vec::with_capacity(query_count.min(1 << 10));
            for _ in 0..query_count {
                queries.push(WireDelta::decode(c)?);
            }
            pushes.push(StandingPush { handle, queries });
        }
        Ok(UpdateReply {
            epoch,
            pos,
            removed,
            inserted,
            nodes,
            dirty_nodes,
            retained_sta_blocks,
            pushes,
        })
    }
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        match self {
            Response::Query { result, stats } => {
                out.push(0x00);
                match result {
                    QueryResult::Bool(b) => {
                        out.push(OutputKind::Bool.to_u8());
                        out.push(*b as u8);
                    }
                    QueryResult::Count(n) => {
                        out.push(OutputKind::Count.to_u8());
                        out.extend_from_slice(&n.to_le_bytes());
                    }
                    QueryResult::Nodes(ixs) => {
                        out.push(OutputKind::Nodes.to_u8());
                        let len = u32::try_from(ixs.len())
                            .map_err(|_| bad("node set too large for the wire".into()))?;
                        out.extend_from_slice(&len.to_le_bytes());
                        for ix in ixs {
                            out.extend_from_slice(&ix.to_le_bytes());
                        }
                    }
                    QueryResult::Xml(bytes) => {
                        out.push(OutputKind::Xml.to_u8());
                        put_str32(&mut out, bytes)?;
                    }
                }
                stats.encode(&mut out);
            }
            Response::Ok => out.push(0x00),
            Response::ServerStats(s) => {
                out.push(0x00);
                s.encode(&mut out);
            }
            Response::Registered {
                handle,
                epoch,
                initial,
            } => {
                out.push(0x00);
                out.extend_from_slice(&handle.to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
                let count = u16::try_from(initial.len())
                    .map_err(|_| bad("more than 65535 initial result sets".into()))?;
                out.extend_from_slice(&count.to_le_bytes());
                for set in initial {
                    put_nodes(&mut out, set)?;
                }
            }
            Response::Updated(reply) => {
                out.push(0x00);
                reply.encode(&mut out)?;
            }
            Response::Error { code, message } => {
                out.push(code.to_u8());
                put_str32(&mut out, message.as_bytes())?;
            }
        }
        Ok(out)
    }

    /// Decodes a frame payload into a response; the decode shape depends
    /// on which request this response answers.
    pub fn decode(payload: &[u8], for_request: &Request) -> io::Result<Response> {
        let mut c = Cursor::new(payload);
        let status = c.u8()?;
        if status != 0 {
            let resp = Response::Error {
                code: ErrorCode::from_u8(status)?,
                message: c.str32()?,
            };
            c.done()?;
            return Ok(resp);
        }
        let resp = match for_request {
            Request::Query { .. } => {
                let result = match OutputKind::from_u8(c.u8()?)? {
                    OutputKind::Bool => QueryResult::Bool(c.u8()? != 0),
                    OutputKind::Count => QueryResult::Count(c.u64()?),
                    OutputKind::Nodes => {
                        let n = c.u32()? as usize;
                        let mut ixs = Vec::with_capacity(n.min(1 << 20));
                        for _ in 0..n {
                            ixs.push(c.u32()?);
                        }
                        QueryResult::Nodes(ixs)
                    }
                    OutputKind::Xml => QueryResult::Xml(c.bytes32()?),
                };
                Response::Query {
                    result,
                    stats: WireStats::decode(&mut c)?,
                }
            }
            Request::Ping | Request::Shutdown | Request::Unregister { .. } => Response::Ok,
            Request::ServerStats => {
                Response::ServerStats(Box::new(ServerStatsReply::decode(&mut c)?))
            }
            Request::Register { .. } => {
                let handle = c.u64()?;
                let epoch = c.u64()?;
                let count = c.u16()? as usize;
                let mut initial = Vec::with_capacity(count.min(1 << 10));
                for _ in 0..count {
                    initial.push(take_nodes(&mut c)?);
                }
                Response::Registered {
                    handle,
                    epoch,
                    initial,
                }
            }
            Request::UpdateDoc { .. } => Response::Updated(UpdateReply::decode(&mut c)?),
        };
        c.done()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let enc = req.encode().unwrap();
        assert_eq!(Request::decode(&enc).unwrap(), req);
    }

    fn roundtrip_response(resp: Response, for_request: &Request) {
        let enc = resp.encode().unwrap();
        assert_eq!(Response::decode(&enc, for_request).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::ServerStats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Query {
            db: "treebank".into(),
            language: WireLanguage::XPath,
            output: OutputKind::Nodes,
            source: "//NP//VP".into(),
        });
        roundtrip_request(Request::Register {
            db: "treebank".into(),
            language: WireLanguage::Tmnf,
            sources: vec!["QUERY :- Root;".into(), "QUERY :- V.Label[a];".into()],
        });
        roundtrip_request(Request::Unregister {
            db: "treebank".into(),
            handle: 7,
        });
        roundtrip_request(Request::UpdateDoc {
            db: "treebank".into(),
            update: WireUpdate::AppendChild {
                under: 0,
                xml: "<a/>".into(),
            },
        });
        roundtrip_request(Request::UpdateDoc {
            db: "treebank".into(),
            update: WireUpdate::SpliceSubtree {
                at: 3,
                xml: "<b><a/></b>".into(),
            },
        });
        roundtrip_request(Request::UpdateDoc {
            db: "treebank".into(),
            update: WireUpdate::DeleteSubtree { at: 5 },
        });
    }

    #[test]
    fn standing_responses_roundtrip() {
        roundtrip_response(
            Response::Registered {
                handle: 9,
                epoch: 4,
                initial: vec![vec![0, 2, 5], vec![], vec![1]],
            },
            &Request::Register {
                db: "d".into(),
                language: WireLanguage::Tmnf,
                sources: vec!["QUERY :- Root;".into()],
            },
        );
        roundtrip_response(
            Response::Ok,
            &Request::Unregister {
                db: "d".into(),
                handle: 9,
            },
        );
        let update = Request::UpdateDoc {
            db: "d".into(),
            update: WireUpdate::DeleteSubtree { at: 2 },
        };
        roundtrip_response(
            Response::Updated(UpdateReply {
                epoch: 5,
                pos: 2,
                removed: 3,
                inserted: 0,
                nodes: 97,
                dirty_nodes: 4,
                retained_sta_blocks: 11,
                pushes: vec![
                    StandingPush {
                        handle: 9,
                        queries: vec![
                            WireDelta {
                                added: vec![2, 3],
                                removed: vec![96],
                                verdict: true,
                                verdict_changed: false,
                            },
                            WireDelta::default(),
                        ],
                    },
                    StandingPush {
                        handle: 12,
                        queries: vec![WireDelta {
                            added: vec![],
                            removed: vec![0],
                            verdict: false,
                            verdict_changed: true,
                        }],
                    },
                ],
            }),
            &update,
        );
        // A push-free update (no standing registrations) still carries
        // the edit window and epoch.
        roundtrip_response(
            Response::Updated(UpdateReply {
                epoch: 1,
                pos: 4,
                removed: 0,
                inserted: 2,
                nodes: 12,
                dirty_nodes: 0,
                retained_sta_blocks: 0,
                pushes: vec![],
            }),
            &update,
        );
    }

    #[test]
    fn delete_with_fragment_is_rejected() {
        // kind 2 must carry an empty fragment; splice the xml in by hand.
        let mut enc = Vec::new();
        enc.push(0x07);
        put_str16(&mut enc, "d").unwrap();
        enc.push(2);
        enc.extend_from_slice(&5u32.to_le_bytes());
        put_str32(&mut enc, b"<a/>").unwrap();
        assert!(Request::decode(&enc).is_err());
        // Unknown kind byte.
        let mut enc = Vec::new();
        enc.push(0x07);
        put_str16(&mut enc, "d").unwrap();
        enc.push(9);
        enc.extend_from_slice(&5u32.to_le_bytes());
        put_str32(&mut enc, b"").unwrap();
        assert!(Request::decode(&enc).is_err());
    }

    #[test]
    fn response_roundtrips() {
        let q = Request::Query {
            db: "d".into(),
            language: WireLanguage::Tmnf,
            output: OutputKind::Count,
            source: "QUERY :- Root;".into(),
        };
        let stats = WireStats {
            batch_size: 8,
            queue_wait_us: 1500,
            backward_scans: 1,
            forward_scans: 1,
            selected: 42,
            nodes: 1000,
            phase1_us: 12,
            phase2_us: 34,
            cache_hit: true,
            db_format: 2,
            automata_builds: 1,
            automata_reused: 9,
        };
        for result in [
            QueryResult::Bool(true),
            QueryResult::Count(42),
            QueryResult::Nodes(vec![0, 7, 12]),
            QueryResult::Xml(b"<r/>".to_vec()),
        ] {
            roundtrip_response(Response::Query { result, stats }, &q);
        }
        roundtrip_response(Response::Ok, &Request::Ping);
        roundtrip_response(
            Response::ServerStats(Box::new(ServerStatsReply {
                requests: 12,
                batches: 3,
                max_batch: 4,
                backward_scans: 3,
                forward_scans: 3,
                overloaded: 1,
                cache_hits: 8,
                cache_misses: 4,
                cache_evictions: 0,
                cache_bytes: 4096,
                open_databases: 2,
                automata_builds: 3,
                automata_reused: 21,
                automata_build_us: 77,
                standing_registered: 2,
                standing_active: 1,
                doc_updates: 5,
                delta_pushes: 8,
            })),
            &Request::ServerStats,
        );
        roundtrip_response(
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
            },
            &q,
        );
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        // An adversarial length prefix is rejected without allocating.
        let huge = (MAX_FRAME_BYTES + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        // A truncated length prefix is an error, not a clean EOF.
        assert!(read_frame(&mut &buf[..2]).is_err());
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0x99]).is_err());
        // Trailing garbage after a valid request is an error.
        assert!(Request::decode(&[0x02, 0xFF]).is_err());
        // Truncated query body.
        let mut enc = Request::Query {
            db: "d".into(),
            language: WireLanguage::Tmnf,
            output: OutputKind::Bool,
            source: "QUERY :- Root;".into(),
        }
        .encode()
        .unwrap();
        enc.truncate(enc.len() - 3);
        assert!(Request::decode(&enc).is_err());
    }
}
