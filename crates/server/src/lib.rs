//! # arb-server
//!
//! The resident query service: keep `.arb` databases hot in one
//! long-lived process and share two-phase scan pairs across concurrent
//! clients (paper §7's multi-query batching, applied at admission time
//! instead of compile time).
//!
//! A one-shot `arb query` pays the full cost per invocation: process
//! start, database open, query compilation, one backward + one forward
//! scan. The server amortizes all four. A **database registry** holds
//! open [`arb_engine::Database`] handles across requests; a
//! **prepared-program cache** ([`cache::ProgramCache`]) skips
//! parse/normalize/optimize for repeated query text; and the **admission
//! batcher** ([`server`]) merges every request that arrives within a
//! small window (default 2 ms, cap 64) against the same database into
//! one [`arb_engine::QueryBatch`] — k concurrent clients cost **one**
//! shared backward + forward scan pair, not k. Each client gets its own
//! result and its own share of the statistics: `batch_size` says how
//! many queries rode the pass, `queue_wait_us` what admission cost.
//! A bounded admission queue sheds excess load with a fast
//! [`protocol::ErrorCode::Overloaded`] reply, and shutdown drains
//! queued requests through their shared passes before exiting.
//!
//! ## Prepared-session lifecycle
//!
//! Compiled tree automata follow the engine's build-once / eval-many
//! lifecycle all the way to the wire. Each cached program carries its
//! own [`arb_engine::AutomataPool`], and multi-query windows go through
//! a **window-shape cache** ([`cache::WindowCache`]): the merged
//! [`arb_engine::QueryBatch`] and its pool are keyed by the *sorted*
//! query texts of the window, so the same k queries landing together
//! again — in any arrival order — skip both the batch merge and the
//! automata build. Dispatch prepares a session over the cached batch
//! with [`arb_engine::Session::with_pool`], so warm automata survive
//! session churn; a permutation maps the canonical batch order back to
//! each client's reply. The reuse is observable: per-reply
//! [`protocol::WireStats`] carries `automata_builds` / `automata_reused`
//! for the run that served the window, and the
//! [`protocol::ServerStatsReply`] aggregates add total builds, reuses
//! and build time. Repeated identical windows therefore report
//! `automata_builds == 1` for the lifetime of the cache entry (pinned
//! by the `server_differential` suite and the `regress` baseline).
//! [`ServerConfig::workers`] (CLI: `arb serve --workers N`) sets the
//! sharded parallelism each dispatched window is evaluated with.
//!
//! ## Standing queries and document updates
//!
//! Databases served here are **updatable**: `UpdateDoc` (opcode `0x07`)
//! splices, appends or deletes a subtree in place — the storage layer
//! rewrites only the touched record blocks and bumps the file epoch. A
//! client can `Register` (opcode `0x05`) a **standing query batch**:
//! the batch is evaluated once at registration (the reply carries the
//! initial result sets), and every subsequent update re-evaluates it
//! *incrementally* via [`arb_engine::StandingQuery`] — phase 1 over the
//! dirty window plus the root spine, phase 2 only where phase-1 states
//! changed — and the `UpdateDoc` reply pushes each registration's
//! result **deltas** (added/removed nodes, verdict flips) instead of
//! re-shipping full results. [`protocol::ServerStatsReply`] counts
//! registrations, updates, and delta pushes
//! (`standing_registered` / `standing_active` / `doc_updates` /
//! `delta_pushes`); the per-update reply reports `dirty_nodes` and
//! `retained_sta_blocks`, the wire-visible proof that the refresh
//! touched a window, not the document. The CLI exposes the loop as
//! `arb watch`.
//!
//! ## Wire protocol
//!
//! Hand-rolled, length-prefixed, no external dependencies. Every frame
//! is a little-endian `u32` payload length (cap 64 MiB) followed by the
//! payload; each connection is a strict request/response lockstep.
//! Integers are little-endian fixed width; strings and byte blobs are
//! `u32` length + bytes. See [`protocol`] for the field-level layout.
//!
//! Requests (first payload byte is the opcode):
//!
//! | opcode | request | payload |
//! |-------:|---------|---------|
//! | `0x01` | `Query` | db name, language (`0` TMNF / `1` XPath), output kind (`0` bool / `1` count / `2` nodes / `3` marked XML), query source |
//! | `0x02` | `Ping` | — |
//! | `0x03` | `ServerStats` | — |
//! | `0x04` | `Shutdown` | — |
//! | `0x05` | `Register` | db name, language, query count, query sources |
//! | `0x06` | `Unregister` | db name, registration handle |
//! | `0x07` | `UpdateDoc` | db name, edit kind (`0` append / `1` splice / `2` delete), position, XML fragment |
//!
//! Responses lead with a status byte: `0x00` success (shape follows the
//! request), `0xFF` error (code byte + message). Error codes:
//!
//! | code | meaning |
//! |-----:|---------|
//! | `1` | `BadRequest` — malformed frame or unknown opcode |
//! | `2` | `UnknownDatabase` — name not in the registry |
//! | `3` | `Query` — compilation failed (message carries the diagnostic) |
//! | `4` | `Overloaded` — admission queue full, retry later |
//! | `5` | `Internal` — evaluation failed server-side |
//! | `6` | `ShuttingDown` — server is draining |
//!
//! ## Example
//!
//! ```
//! use arb_server::client::Client;
//! use arb_server::protocol::{OutputKind, QueryResult, WireLanguage};
//! use arb_server::server::{Server, ServerConfig};
//! use std::io::Cursor;
//!
//! // A tiny .arb database to serve.
//! let dir = std::env::temp_dir().join(format!("arb-srv-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let db = dir.join("docs.arb");
//! arb_storage::create_from_xml(
//!     Cursor::new("<r><a/><b><a/></b></r>".as_bytes()),
//!     &arb_xml::XmlConfig::default(),
//!     &db,
//! )
//! .unwrap();
//!
//! let handle = Server::start(ServerConfig::default(), &[&db]).unwrap();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! let reply = client
//!     .query("docs", WireLanguage::XPath, OutputKind::Count, "//a")
//!     .unwrap();
//! assert_eq!(reply.result, QueryResult::Count(2));
//! assert!(reply.stats.batch_size >= 1);
//! client.shutdown().unwrap();
//! handle.wait();
//! ```

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{CacheStats, ProgramCache, WindowCache, WindowKey};
pub use client::{Client, ClientError, QueryReply, RegisterReply};
pub use protocol::{
    ErrorCode, OutputKind, QueryResult, Request, Response, ServerStatsReply, StandingPush,
    UpdateReply, WireDelta, WireLanguage, WireStats, WireUpdate,
};
pub use server::{Server, ServerConfig, ServerHandle};
