//! The ACGT "bogus DNA database" (paper Section 6.1).
//!
//! "A randomly generated sequence of 2^25 − 1 = 33,554,431 symbols from
//! the alphabet {A, C, G, T}. Two XML versions of it were created: one
//! with a root node with one child for each symbol of the sequence
//! (ACGT-flat), and one in which a complete binary infix tree (of depth
//! 24) was generated, below a separate root node (ACGT-infix)."

use arb_tree::{infix, BinaryTree, LabelId, LabelTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's full sequence length: `2^25 − 1`.
pub const PAPER_LEN: usize = (1 << 25) - 1;

/// Generates a random ACGT sequence of length `2^log2 − 1` (character
/// labels, one per symbol).
pub fn random_acgt(log2: u32, seed: u64) -> Vec<LabelId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = (1usize << log2) - 1;
    (0..n)
        .map(|_| LabelId::from_char_byte(b"ACGT"[rng.gen_range(0..4)]))
        .collect()
}

/// ACGT-flat: root with one child per symbol (an extremely right-deep
/// binary tree). Also interns the root label into `labels`.
pub fn acgt_flat_tree(seq: &[LabelId], labels: &mut LabelTable) -> BinaryTree {
    let root = labels.intern("dna").expect("label space");
    infix::flat_tree(root, seq)
}

/// ACGT-infix: a complete binary infix tree below a separate root node
/// (balanced; enables parallel processing, paper §6.2).
///
/// Symbols become **element** labels `A`/`C`/`G`/`T` (not character
/// nodes): the infix tree has symbol-labeled *internal* nodes, and XML
/// text is always a leaf, so the XML-ized infix database necessarily uses
/// the tree model of \[8\] with element tags. Queries over the infix
/// database therefore test `Label[A]` where the flat database tests
/// `Label['A']`; selected-node counts coincide because the underlying
/// sequence is the same.
pub fn acgt_infix_tree(seq: &[LabelId], labels: &mut LabelTable) -> BinaryTree {
    let root = labels.intern("dna").expect("label space");
    let tags: Vec<LabelId> = [b'A', b'C', b'G', b'T']
        .iter()
        .map(|&b| {
            labels
                .intern(std::str::from_utf8(&[b]).expect("ascii"))
                .expect("label space")
        })
        .collect();
    let tagged: Vec<LabelId> = seq
        .iter()
        .map(|l| {
            tags[match l.text_byte().expect("char label") {
                b'A' => 0,
                b'C' => 1,
                b'G' => 2,
                _ => 3,
            }]
        })
        .collect();
    infix::infix_tree(root, &tagged)
}

/// Serializes a sequence as the flat XML document (for end-to-end
/// database-creation tests: `<dna>ACGT...</dna>`).
pub fn acgt_flat_xml(seq: &[LabelId]) -> String {
    let mut s = String::with_capacity(seq.len() + 16);
    s.push_str("<dna>");
    for l in seq {
        s.push(l.text_byte().expect("char label") as char);
    }
    s.push_str("</dna>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let a = random_acgt(10, 42);
        let b = random_acgt(10, 42);
        let c = random_acgt(10, 43);
        assert_eq!(a.len(), 1023);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a
            .iter()
            .all(|l| matches!(l.text_byte(), Some(b'A' | b'C' | b'G' | b'T'))));
    }

    #[test]
    fn flat_and_infix_agree_on_sequence() {
        let mut lt = LabelTable::new();
        let seq = random_acgt(8, 7);
        let flat = acgt_flat_tree(&seq, &mut lt);
        let infx = acgt_infix_tree(&seq, &mut lt);
        assert_eq!(flat.len(), seq.len() + 1);
        assert_eq!(infx.len(), seq.len() + 1);
        assert_eq!(infix::flat_sequence(&flat), seq);
        // Infix symbols are tag labels; compare by name.
        let infix_names: String = infix::infix_sequence(&infx)
            .iter()
            .map(|l| lt.name(*l).into_owned())
            .collect();
        let seq_names: String = seq.iter().map(|l| l.text_byte().unwrap() as char).collect();
        assert_eq!(infix_names, seq_names);
        // Depths: flat is right-deep, infix is logarithmic.
        assert_eq!(infix::binary_depth(&flat), seq.len() + 1);
        assert!(infix::binary_depth(&infx) <= 10);
    }

    #[test]
    fn xml_form_parses_back() {
        let seq = random_acgt(6, 3);
        let xml = acgt_flat_xml(&seq);
        let mut lt = LabelTable::new();
        let tree = arb_xml_parse(&xml, &mut lt);
        assert_eq!(tree.len(), seq.len() + 1);
    }

    // Local tiny XML parse helper to avoid a dev-dependency cycle: the
    // flat XML is trivial.
    fn arb_xml_parse(xml: &str, lt: &mut LabelTable) -> BinaryTree {
        let inner = xml
            .strip_prefix("<dna>")
            .and_then(|s| s.strip_suffix("</dna>"))
            .unwrap();
        let seq: Vec<LabelId> = inner.bytes().map(LabelId::from_char_byte).collect();
        acgt_flat_tree(&seq, lt)
    }
}
