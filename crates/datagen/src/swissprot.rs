//! Synthetic Swissprot-like protein database.
//!
//! Swissprot appears only in the paper's Figure 5 (database creation
//! statistics): what matters is its *shape* — a long flat list of `entry`
//! records with a few structured children and very large text payloads
//! (the paper's XML-ization has ~27 character nodes per element node).

use arb_tree::{BinaryTree, LabelTable, TreeBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct SwissprotConfig {
    /// Number of `entry` records.
    pub entries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SwissprotConfig {
    fn default() -> Self {
        SwissprotConfig {
            entries: 10_000,
            seed: 0x5072,
        }
    }
}

/// Generates the synthetic protein database as a binary tree.
pub fn swissprot_tree(config: &SwissprotConfig, labels: &mut LabelTable) -> BinaryTree {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let root = labels.intern("sptr").expect("label space");
    let entry = labels.intern("entry").expect("label space");
    let acc = labels.intern("accession").expect("label space");
    let name = labels.intern("name").expect("label space");
    let seq = labels.intern("sequence").expect("label space");
    let feature = labels.intern("feature").expect("label space");
    let comment = labels.intern("comment").expect("label space");

    let mut b = TreeBuilder::new();
    b.open(root);
    for i in 0..config.entries {
        b.open(entry);
        b.open(acc);
        b.text(format!("P{:05}", i % 100_000).as_bytes());
        b.close();
        b.open(name);
        b.text(format!("PROT{i}_HUMAN").as_bytes());
        b.close();
        let n_feats = rng.gen_range(0..5);
        for f in 0..n_feats {
            b.open(feature);
            b.text(format!("domain {f} of interest").as_bytes());
            b.close();
        }
        if rng.gen_bool(0.5) {
            b.open(comment);
            b.text(b"catalytic activity observed in vitro; function inferred");
            b.close();
        }
        b.open(seq);
        let len = rng.gen_range(80..400);
        let aas = b"ACDEFGHIKLMNPQRSTVWY";
        let payload: Vec<u8> = (0..len).map(|_| aas[rng.gen_range(0..aas.len())]).collect();
        b.text(&payload);
        b.close();
        b.close();
    }
    b.close();
    b.finish().expect("generator emits balanced documents")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_swissprot() {
        let mut lt = LabelTable::new();
        let cfg = SwissprotConfig {
            entries: 100,
            seed: 5,
        };
        let t = swissprot_tree(&cfg, &mut lt);
        let elems = t.nodes().filter(|&v| !t.label(v).is_text()).count();
        let chars = t.len() - elems;
        // Paper ratio: ~27 chars per element; ours should be text-heavy.
        assert!(chars > elems * 10, "chars={chars} elems={elems}");
        assert!(lt.get("sequence").is_some());
        // Deterministic.
        let mut lt2 = LabelTable::new();
        let t2 = swissprot_tree(&cfg, &mut lt2);
        assert_eq!(t.parts(), t2.parts());
    }
}
