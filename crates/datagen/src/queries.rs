//! Random regular path queries (paper Section 6.2).
//!
//! "All regular expressions [...] were always of the form `w1.w2*.w3`,
//! where the `wi` were sequences of symbols over the alphabet [...] of
//! length at least one. By the size of such a regular expression, we mean
//! `|w1| + |w2| + |w3|`. An example of a regular expression of length
//! five is `S.VP.(NP.PP)*.NP`. Such queries were written as (single-rule)
//! programs in our extended syntax as
//!
//! ```text
//! QUERY :- V.Label[S].R.Label[VP].
//!          (R.Label[NP].R.Label[PP])*.
//!          R.Label[NP];
//! ```
//!
//! where `R` is short for `FirstChild.NextSibling*`."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The step expression of the paper's top-down Treebank queries.
pub const R_TOP_DOWN: &str = "FirstChild.NextSibling*";

/// The step expression of the bottom-up ACGT-flat queries.
pub const R_BOTTOM_UP: &str = "invNextSibling";

/// The sideways caterpillar of the ACGT-infix queries: walks the infix
/// tree to the symbol immediately previous in the sequence.
pub const R_INFIX: &str = "(FirstChild.SecondChild*.-hasSecondChild \
| -hasFirstChild.invFirstChild*.invSecondChild)";

/// How symbols are written as label tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegexShape {
    /// Tag labels: `Label[NP]`.
    Tags,
    /// Character labels: `Label['A']`.
    Chars,
}

/// A random `w1.w2*.w3` regular path query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RandomPathQuery {
    /// The three symbol sequences (each nonempty).
    pub w1: Vec<String>,
    /// Starred middle part.
    pub w2: Vec<String>,
    /// Tail part.
    pub w3: Vec<String>,
    /// Label test syntax.
    pub shape: RegexShape,
}

impl RandomPathQuery {
    /// Generates a query of the given size (≥ 3) over an alphabet.
    pub fn random(size: usize, alphabet: &[&str], shape: RegexShape, rng: &mut StdRng) -> Self {
        assert!(size >= 3, "w1, w2, w3 must each have length at least one");
        // Random composition of `size` into three positive parts.
        let a = rng.gen_range(1..=size - 2);
        let b = rng.gen_range(1..=size - a - 1);
        let c = size - a - b;
        let pick = |rng: &mut StdRng, n: usize| -> Vec<String> {
            (0..n)
                .map(|_| alphabet[rng.gen_range(0..alphabet.len())].to_string())
                .collect()
        };
        RandomPathQuery {
            w1: pick(rng, a),
            w2: pick(rng, b),
            w3: pick(rng, c),
            shape,
        }
    }

    /// A deterministic batch: the paper uses 25 random queries per size.
    pub fn batch(
        count: usize,
        size: usize,
        alphabet: &[&str],
        shape: RegexShape,
        seed: u64,
    ) -> Vec<Self> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| Self::random(size, alphabet, shape, &mut rng))
            .collect()
    }

    /// The paper's size measure `|w1| + |w2| + |w3|`.
    pub fn size(&self) -> usize {
        self.w1.len() + self.w2.len() + self.w3.len()
    }

    fn label(&self, sym: &str) -> String {
        match self.shape {
            RegexShape::Tags => format!("Label[{sym}]"),
            RegexShape::Chars => format!("Label['{sym}']"),
        }
    }

    /// Renders the single-rule Arb program, with `r` as the step
    /// expression between symbols.
    pub fn to_program(&self, r: &str) -> String {
        let mut body = String::from("V");
        for (i, sym) in self.w1.iter().enumerate() {
            if i == 0 {
                body.push_str(&format!(".{}", self.label(sym)));
            } else {
                body.push_str(&format!(".{r}.{}", self.label(sym)));
            }
        }
        body.push_str(".(");
        for (i, sym) in self.w2.iter().enumerate() {
            if i > 0 {
                body.push('.');
            }
            body.push_str(&format!("{r}.{}", self.label(sym)));
        }
        body.push_str(")*");
        for sym in &self.w3 {
            body.push_str(&format!(".{r}.{}", self.label(sym)));
        }
        format!("QUERY :- {body};")
    }

    /// Human-readable form, e.g. `S.VP.(NP.PP)*.NP`.
    pub fn display(&self) -> String {
        let j = |w: &[String]| w.join(".");
        format!("{}.({})*.{}", j(&self.w1), j(&self.w2), j(&self.w3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for size in 3..=15 {
            let q =
                RandomPathQuery::random(size, &["NP", "VP", "PP", "S"], RegexShape::Tags, &mut rng);
            assert_eq!(q.size(), size);
            assert!(!q.w1.is_empty() && !q.w2.is_empty() && !q.w3.is_empty());
        }
    }

    #[test]
    fn batches_are_deterministic_per_seed() {
        let alphabet = &["NP", "VP", "PP", "S"];
        let a = RandomPathQuery::batch(25, 7, alphabet, RegexShape::Tags, 42);
        let b = RandomPathQuery::batch(25, 7, alphabet, RegexShape::Tags, 42);
        let c = RandomPathQuery::batch(25, 7, alphabet, RegexShape::Tags, 43);
        assert_eq!(a.len(), 25);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|q| q.size() == 7));
    }

    #[test]
    fn paper_example_rendering() {
        let q = RandomPathQuery {
            w1: vec!["S".into(), "VP".into()],
            w2: vec!["NP".into(), "PP".into()],
            w3: vec!["NP".into()],
            shape: RegexShape::Tags,
        };
        assert_eq!(q.size(), 5);
        assert_eq!(q.display(), "S.VP.(NP.PP)*.NP");
        let p = q.to_program("R");
        assert_eq!(
            p,
            "QUERY :- V.Label[S].R.Label[VP].(R.Label[NP].R.Label[PP])*.R.Label[NP];"
        );
    }

    #[test]
    fn char_shape_quotes() {
        let q = RandomPathQuery {
            w1: vec!["A".into()],
            w2: vec!["C".into()],
            w3: vec!["G".into()],
            shape: RegexShape::Chars,
        };
        let p = q.to_program(R_BOTTOM_UP);
        assert!(p.contains("Label['A']"));
        assert!(p.contains("invNextSibling"));
    }
}
