//! # arb-datagen
//!
//! Synthetic workload generators reproducing the paper's evaluation
//! databases (Section 6.1) and benchmark queries (Section 6.2).
//!
//! The paper evaluates on Penn Treebank (licensed), Swissprot (a large
//! XML-ized protein database) and a "bogus DNA database" of random
//! symbols. We regenerate all three synthetically with seeded RNGs:
//!
//! * [`acgt`] — the random `{A,C,G,T}` sequence with its *flat* and
//!   *infix* tree encodings (paper Figure 4) — identical in construction
//!   to the paper's;
//! * [`treebank`] — random constituency trees over `{S, NP, VP, PP}` plus
//!   filler tags, tuned to the paper's element/character/tag ratios;
//! * [`swissprot`] — record-structured protein entries with long text
//!   payloads (only used for database-creation statistics, Figure 5);
//! * [`queries`] — the random regular path expressions `w1.w2*.w3` used
//!   in all three benchmark families of Figure 6.

pub mod acgt;
pub mod queries;
pub mod swissprot;
pub mod treebank;

pub use acgt::{acgt_flat_tree, acgt_flat_xml, acgt_infix_tree, random_acgt};
pub use queries::{RandomPathQuery, RegexShape};
pub use swissprot::{swissprot_tree, SwissprotConfig};
pub use treebank::{treebank_tree, TreebankConfig};
