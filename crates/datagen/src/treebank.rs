//! Synthetic Penn-Treebank-like constituency trees.
//!
//! The real Penn Treebank is licensed and cannot ship with a
//! reproduction. The paper's Treebank benchmarks (Figure 6, top) only
//! exercise *downward regular path queries over the {S, NP, VP, PP} tag
//! skeleton*, so what matters is (a) deep recursive nesting of those four
//! tags with realistic branching, (b) a long tail of other tags (the
//! paper reports 251 tags), and (c) a large volume of character nodes
//! (words at the leaves; the paper reports ~12 character nodes per
//! element node). This generator reproduces those properties with a
//! seeded RNG.

use arb_tree::{BinaryTree, LabelId, LabelTable, TreeBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning parameters for the generator.
#[derive(Clone, Debug)]
pub struct TreebankConfig {
    /// Approximate number of element nodes to generate.
    pub target_elems: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of filler tags beyond the core {TOP, S, NP, VP, PP} set
    /// (the paper's corpus has 251 distinct tags).
    pub filler_tags: usize,
}

impl Default for TreebankConfig {
    fn default() -> Self {
        TreebankConfig {
            target_elems: 50_000,
            seed: 0x7133,
            filler_tags: 246,
        }
    }
}

const WORDS: &[&str] = &[
    "the",
    "a",
    "market",
    "stock",
    "price",
    "company",
    "shares",
    "trading",
    "investors",
    "rose",
    "fell",
    "said",
    "new",
    "year",
    "million",
    "percent",
    "bank",
    "rates",
    "analyst",
    "report",
];

/// Generates a synthetic treebank as a binary tree (document root `TOP`).
pub fn treebank_tree(config: &TreebankConfig, labels: &mut LabelTable) -> BinaryTree {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let s = labels.intern("S").expect("label space");
    let np = labels.intern("NP").expect("label space");
    let vp = labels.intern("VP").expect("label space");
    let pp = labels.intern("PP").expect("label space");
    let top = labels.intern("TOP").expect("label space");
    let fillers: Vec<LabelId> = (0..config.filler_tags)
        .map(|i| labels.intern(&format!("T{i}")).expect("label space"))
        .collect();

    let mut b = TreeBuilder::with_capacity(config.target_elems * 13);
    let mut elems = 0usize;
    b.open(top);
    while elems < config.target_elems {
        // One sentence.
        gen_phrase(
            &mut b,
            &mut rng,
            s,
            &[s, np, vp, pp],
            &fillers,
            0,
            &mut elems,
        );
    }
    b.close();
    b.finish().expect("generator emits balanced documents")
}

/// Recursively generates one phrase node with children.
#[allow(clippy::too_many_arguments)]
fn gen_phrase(
    b: &mut TreeBuilder,
    rng: &mut StdRng,
    label: LabelId,
    core: &[LabelId],
    fillers: &[LabelId],
    depth: usize,
    elems: &mut usize,
) {
    b.open(label);
    *elems += 1;
    let max_kids = if depth > 10 { 0 } else { 4 };
    let n_kids = if max_kids == 0 {
        0
    } else {
        rng.gen_range(0..=max_kids)
    };
    if n_kids == 0 || depth > 10 {
        // Leaf phrase: a word.
        let w = WORDS[rng.gen_range(0..WORDS.len())];
        b.text(w.as_bytes());
    } else {
        for _ in 0..n_kids {
            let child = if rng.gen_bool(0.8) {
                core[rng.gen_range(0..core.len())]
            } else {
                fillers[rng.gen_range(0..fillers.len())]
            };
            gen_phrase(b, rng, child, core, fillers, depth + 1, elems);
        }
    }
    b.close();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_hits_target_and_is_deterministic() {
        let mut lt1 = LabelTable::new();
        let cfg = TreebankConfig {
            target_elems: 2000,
            seed: 11,
            filler_tags: 30,
        };
        let t1 = treebank_tree(&cfg, &mut lt1);
        let mut lt2 = LabelTable::new();
        let t2 = treebank_tree(&cfg, &mut lt2);
        assert_eq!(t1.parts(), t2.parts());
        // Element count near target; plenty of char nodes.
        let elems = t1.nodes().filter(|&v| !t1.label(v).is_text()).count();
        let chars = t1.len() - elems;
        assert!(elems >= 2000, "elems = {elems}");
        assert!(chars > elems, "chars = {chars}");
        assert!(lt1.get("NP").is_some() && lt1.get("VP").is_some());
    }

    #[test]
    fn contains_deep_core_tag_nesting() {
        let mut lt = LabelTable::new();
        let cfg = TreebankConfig {
            target_elems: 5000,
            seed: 1,
            filler_tags: 10,
        };
        let t = treebank_tree(&cfg, &mut lt);
        let depth = arb_tree::traverse::unranked_depth(&t);
        assert!(depth >= 5, "depth = {depth}");
    }
}
