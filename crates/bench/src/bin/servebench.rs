//! Open-loop load generator for the resident query service.
//!
//! Starts an in-process `arb_server` over the synthetic treebank (or
//! targets an external server via `--addr`), offers queries at a fixed
//! rate from a pool of persistent connections, and reports achieved
//! throughput, p50/p99 latency, and the server-side amortization
//! numbers that justify the admission batcher: **scans per query**
//! (below 1 as soon as windows merge ≥ 2 queries; at 1 backward + 1
//! forward scan per k-query window it converges to 2/k) and the
//! prepared-program cache hit rate.
//!
//! Open loop means the offered rate does not slow down when the server
//! does: each request has a scheduled departure time and a late send is
//! recorded as latency, the way a real arrival process would see it.
//!
//! Knobs: `ARB_SERVEBENCH_QPS` (default 400), `ARB_SERVEBENCH_SECS`
//! (default 3), `ARB_SERVEBENCH_CONNS` (connection pool, default 8),
//! `ARB_SERVEBENCH_WINDOW_MS` (admission window, default 2),
//! `ARB_TREEBANK_ELEMS` (database size). CI smoke runs seconds-scale
//! tiny settings; the defaults measure a real amortization curve.

use arb_bench as bench;
use arb_server::protocol::{OutputKind, WireLanguage};
use arb_server::{Client, Server, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUERIES: &[&str] = &[
    "//NP//VP",
    "//S[NP and VP]",
    "//NP[not(PP)]/VP",
    "//VP/following-sibling::NP",
    "//S//NP[not(.//PP)]",
    "//PP",
];

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let ix = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[ix]
}

fn main() {
    let qps = bench::env_usize("ARB_SERVEBENCH_QPS", 400);
    let secs = bench::env_usize("ARB_SERVEBENCH_SECS", 3);
    let conns = bench::env_usize("ARB_SERVEBENCH_CONNS", 8).max(1);
    let window_ms = bench::env_usize("ARB_SERVEBENCH_WINDOW_MS", 2);
    let total = (qps * secs).max(1);
    let interval = Duration::from_secs_f64(1.0 / qps.max(1) as f64);

    // Either target a running server (--addr host:port) or start one
    // in-process over the pinned synthetic treebank.
    let ext_addr = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--addr")
            .map(|i| args.get(i + 1).expect("--addr needs host:port").clone())
    };
    let (addr, db_name, handle) = match ext_addr {
        Some(addr) => (addr, "treebank".to_string(), None),
        None => {
            let tb = bench::treebank_db();
            let config = ServerConfig {
                batch_window: Duration::from_millis(window_ms as u64),
                ..ServerConfig::default()
            };
            let db_name = tb
                .path
                .file_stem()
                .and_then(|s| s.to_str())
                .expect("db stem")
                .to_string();
            let handle = Server::start(config, &[&tb.path]).expect("start server");
            (handle.local_addr().to_string(), db_name, Some(handle))
        }
    };

    println!(
        "servebench: {total} requests at {qps} QPS over {conns} connections \
         (window {window_ms} ms) against {db_name} @ {addr}\n"
    );

    // Baseline server counters, so an external server's history doesn't
    // pollute the delta.
    let mut probe = Client::connect(addr.as_str()).expect("connect");
    let before = probe.server_stats().expect("server stats");

    let next = Arc::new(AtomicU64::new(0));
    let start = Instant::now() + Duration::from_millis(50);
    let mut workers = Vec::new();
    for _ in 0..conns {
        let next = Arc::clone(&next);
        let addr = addr.clone();
        let db_name = db_name.clone();
        workers.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr.as_str()).expect("connect");
            let mut latencies_ms = Vec::new();
            let mut batch_sum = 0u64;
            let mut errors = 0u64;
            loop {
                // Claim the next scheduled departure slot.
                let slot = next.fetch_add(1, Ordering::Relaxed);
                if slot >= total as u64 {
                    break;
                }
                let due = start + interval * slot as u32;
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let q = QUERIES[slot as usize % QUERIES.len()];
                match c.query(&db_name, WireLanguage::XPath, OutputKind::Count, q) {
                    Ok(reply) => {
                        // Open loop: latency counts from the scheduled
                        // departure, so server-side queueing shows up.
                        latencies_ms.push(due.elapsed().as_secs_f64() * 1e3);
                        batch_sum += u64::from(reply.stats.batch_size);
                    }
                    Err(_) => errors += 1,
                }
            }
            (latencies_ms, batch_sum, errors)
        }));
    }

    let mut latencies: Vec<f64> = Vec::with_capacity(total);
    let mut batch_sum = 0u64;
    let mut errors = 0u64;
    for w in workers {
        let (l, b, e) = w.join().expect("worker");
        latencies.extend(l);
        batch_sum += b;
        errors += e;
    }
    let wall = start.elapsed().as_secs_f64();
    let after = probe.server_stats().expect("server stats");
    if let Some(handle) = handle {
        probe.shutdown().expect("shutdown");
        handle.wait();
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let served = latencies.len();
    let requests = after.requests - before.requests;
    let scans = (after.backward_scans - before.backward_scans)
        + (after.forward_scans - before.forward_scans);
    let lookups =
        (after.cache_hits - before.cache_hits) + (after.cache_misses - before.cache_misses);

    println!("served:          {served} ({errors} errors)");
    println!("achieved QPS:    {:.0}", served as f64 / wall.max(1e-9));
    println!(
        "latency ms:      p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
        latencies.last().copied().unwrap_or(0.0),
    );
    if served > 0 {
        println!(
            "mean batch size: {:.2} (max seen by server: {})",
            batch_sum as f64 / served as f64,
            after.max_batch
        );
    }
    if requests > 0 {
        println!(
            "scans per query: {:.3} ({scans} scans for {requests} requests; \
             2.0 = unbatched two-phase, 2/k at full windows)",
            scans as f64 / requests as f64
        );
    }
    if lookups > 0 {
        println!(
            "cache hit rate:  {:.1}% ({} hits / {lookups} lookups)",
            100.0 * (after.cache_hits - before.cache_hits) as f64 / lookups as f64,
            after.cache_hits - before.cache_hits,
        );
    }
    // The build-once / eval-many automata lifecycle: window-shape and
    // program caches keep compiled QueryAutomata warm, so builds should
    // flatline while reuse tracks the dispatch count.
    let builds = after.automata_builds - before.automata_builds;
    let reused = after.automata_reused - before.automata_reused;
    let takes = builds + reused;
    if takes > 0 {
        println!(
            "automata reuse:  {:.1}% ({reused} reused / {takes} takes, {builds} builds, \
             {:.2} ms total build time)",
            100.0 * reused as f64 / takes as f64,
            (after.automata_build_us - before.automata_build_us) as f64 / 1e3,
        );
    }
    println!("shed (overload): {}", after.overloaded - before.overloaded);

    // The amortization guarantee this bench exists to watch: with a
    // pool deeper than 2 connections and any contention at all, windows
    // merge and the per-query scan cost drops below the one-shot 2.0.
    // Only asserted for the in-process run (external servers may be
    // idle apart from us, but their history/config is unknown).
    if ext_addr_unset() && requests >= 64 && conns >= 4 && errors == 0 {
        let spq = scans as f64 / requests as f64;
        assert!(
            spq < 2.0,
            "admission batching had no effect: {spq:.3} scans/query"
        );
    }
}

fn ext_addr_unset() -> bool {
    !std::env::args().any(|a| a == "--addr")
}
