//! The paper's §1/§6.3 comparison claim: two linear scans with automata
//! vs. conventional strategies that revisit nodes — (a) the naive
//! in-memory datalog fixpoint and (b) a node-at-a-time direct XPath
//! evaluator (the \[10\]-style engine class). The two-phase side runs
//! through the engine's prepared [`Session`](arb_engine::Session) API.

use arb_bench as bench;
use arb_engine::{Database, QueryBatch};
use arb_tmnf::naive;
use arb_xpath::{compile_path, parse_xpath, DirectEvaluator};
use std::time::Instant;

fn main() {
    let treebank = bench::treebank_db();
    let labels_master = treebank.labels;
    let db = Database::from_disk(treebank.db);
    println!(
        "baseline comparison on treebank ({} nodes)\n",
        db.node_count()
    );
    let tree = db.to_tree().expect("materialize");

    let queries = [
        "//NP//VP",
        "//S[NP and VP]",
        "//NP[not(PP)]/VP",
        "//VP/following-sibling::NP",
        "//S//NP[not(.//PP)]",
    ];
    println!(
        "{:<32} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "XPath query", "2-phase(ms)", "phase1(ms)", "naive(ms)", "direct(ms)", "selected"
    );
    let mut phase1_total = 0.0f64;
    let mut nodes_total = 0u64;
    for src in queries {
        let path = parse_xpath(src).expect("parse");
        let mut labels = labels_master.clone();
        let prog = compile_path(&path, &mut labels);
        let batch = QueryBatch::from_programs(std::slice::from_ref(&prog));
        let session = db.prepare_batch(&batch);

        let t = Instant::now();
        let outcome = session.run_one().expect("disk eval");
        let two_phase = t.elapsed();

        let t = Instant::now();
        let res = naive::evaluate(&prog, &tree);
        let naive_t = t.elapsed();
        let q = prog.query_pred().expect("query pred");
        let naive_count = res.extent(q).count() as u64;

        let t = Instant::now();
        let mut direct = DirectEvaluator::new(&tree, &labels_master);
        let dsel = direct.evaluate(&path);
        let direct_t = t.elapsed();

        assert_eq!(
            outcome.stats.selected, naive_count,
            "{src}: oracle mismatch"
        );
        assert_eq!(
            outcome.stats.selected,
            dsel.count() as u64,
            "{src}: direct mismatch"
        );
        phase1_total += outcome.stats.phase1_time.as_secs_f64();
        nodes_total += outcome.stats.nodes;
        println!(
            "{:<32} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>10}",
            src,
            two_phase.as_secs_f64() * 1e3,
            outcome.stats.phase1_time.as_secs_f64() * 1e3,
            naive_t.as_secs_f64() * 1e3,
            direct_t.as_secs_f64() * 1e3,
            outcome.stats.selected
        );
    }
    println!(
        "\nphase-1 throughput: {:.1} knodes/s over {} queries ({:.2} ms total)",
        nodes_total as f64 / phase1_total / 1e3,
        queries.len(),
        phase1_total * 1e3
    );
    println!(
        "\nnote: the two-phase engine reads the tree from disk twice; the\n\
         baselines operate on a fully materialized in-memory tree and are\n\
         still expected to lose on condition-heavy queries (per-node\n\
         revisiting), which is the paper's core argument."
    );
}
