//! Regenerates paper **Figure 5**: statistics on `.arb` database creation
//! for Treebank, ACGT-infix, ACGT-flat and Swissprot (synthetic
//! substitutes; see DESIGN.md). Creation runs end-to-end from XML via the
//! two-pass algorithm of paper Section 5.

use arb_bench as bench;
use arb_datagen::acgt;
use arb_storage::CreationStats;
use arb_tree::LabelTable;

fn main() {
    println!("Figure 5: .arb database creation statistics");
    println!("(scaled; see ARB_* environment variables; paper sizes in DESIGN.md)\n");
    println!("{}", CreationStats::table_header());

    // Treebank.
    {
        let elems = bench::env_usize("ARB_TREEBANK_ELEMS", 100_000);
        let mut labels = LabelTable::new();
        let tree = arb_datagen::treebank_tree(
            &arb_datagen::TreebankConfig {
                target_elems: elems,
                seed: 0x7133,
                filler_tags: 246,
            },
            &mut labels,
        );
        let stats = bench::fig5_entry("treebank", &tree, &labels);
        println!("{}", stats.table_row("Treebank"));
    }

    // ACGT-infix and ACGT-flat (same sequence, two tree models).
    {
        let log2 = bench::env_usize("ARB_ACGT_LOG2", 17) as u32;
        let seq = acgt::random_acgt(log2, 0xD2A);
        let mut labels = LabelTable::new();
        let infix = acgt::acgt_infix_tree(&seq, &mut labels);
        let stats = bench::fig5_entry("acgt-infix", &infix, &labels);
        println!("{}", stats.table_row("ACGT-infix"));

        let mut labels = LabelTable::new();
        let flat = acgt::acgt_flat_tree(&seq, &mut labels);
        let stats = bench::fig5_entry("acgt-flat", &flat, &labels);
        println!("{}", stats.table_row("ACGT-flat"));
    }

    // Swissprot.
    {
        let (tree, labels) = bench::swissprot_tree_and_labels();
        let stats = bench::fig5_entry("swissprot", &tree, &labels);
        println!("{}", stats.table_row("SWISSPROT"));
    }

    println!(
        "\nnote: .arb bytes = 2 * nodes; .evt bytes = 2 * .arb bytes (two 2-byte\n\
         events per node), matching the paper's invariants."
    );
}
