//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Lazy transition memoization** (the paper's four hash tables):
//!    disable the caches and measure recomputed transitions / time.
//! 2. **Residual program sizes**: the paper's central empirical claim is
//!    that residual programs "tend to be amazingly small" — report the
//!    distribution of interned program sizes per workload.

use arb_bench as bench;
use arb_core::QueryAutomata;
use arb_datagen::queries::{RandomPathQuery, R_INFIX, R_TOP_DOWN};
use arb_datagen::RegexShape;
use arb_logic::ProgramId;
use arb_tree::NodeId;
use std::time::Instant;

fn run_once(
    prog: &arb_tmnf::CoreProgram,
    tree: &arb_tree::BinaryTree,
    cache: bool,
) -> (f64, u64, QueryAutomata) {
    let mut qa = QueryAutomata::new(prog);
    qa.set_cache_enabled(cache);
    let t = Instant::now();
    let n = tree.len();
    let mut states: Vec<ProgramId> = vec![ProgramId(0); n];
    for ix in (0..n as u32).rev() {
        let v = NodeId(ix);
        let s1 = tree.first_child(v).map(|c| states[c.ix()]);
        let s2 = tree.second_child(v).map(|c| states[c.ix()]);
        states[v.ix()] = qa.bottom_up(s1, s2, tree.info(v));
    }
    (t.elapsed().as_secs_f64() * 1e3, qa.bu_transitions, qa)
}

fn main() {
    println!("ablation 1: lazy transition memoization (phase 1, in memory)\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "workload", "cached(ms)", "uncached(ms)", "trans(c)", "trans(u)", "slowdown"
    );
    for (name, mkdb, alphabet, shape, r) in [
        (
            "treebank",
            bench::treebank_db as fn() -> bench::BenchDb,
            ["NP", "VP", "PP", "S"].as_slice(),
            RegexShape::Tags,
            R_TOP_DOWN,
        ),
        (
            "acgt-infix",
            bench::acgt_infix_db as fn() -> bench::BenchDb,
            ["A", "C", "G", "T"].as_slice(),
            RegexShape::Tags,
            R_INFIX,
        ),
    ] {
        let db = mkdb();
        let tree = db.db.to_tree().expect("materialize");
        let q = RandomPathQuery::batch(1, 7, alphabet, shape, 3)
            .pop()
            .expect("query");
        let mut labels = db.labels.clone();
        let prog = bench::compile_query(&q, r, &mut labels);
        let (t_c, tr_c, qa) = run_once(&prog, &tree, true);
        let (t_u, tr_u, qa_u) = run_once(&prog, &tree, false);
        // The "no hash tables" configuration must not secretly pay for
        // hash tables: with memoization off the δ tables stay empty and
        // every node recomputes its transition (the measurement this
        // ablation exists to make).
        let off = qa_u.intern_stats();
        assert_eq!(off.bu_entries, 0, "δ_A table not empty with cache off");
        assert_eq!(off.td_entries, 0, "δ_B table not empty with cache off");
        assert_eq!(tr_u, tree.len() as u64, "one recompute per node");
        assert!(tr_u >= tr_c);
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>12} {:>12} {:>8.1}x",
            name,
            t_c,
            t_u,
            tr_c,
            tr_u,
            t_u / t_c
        );

        // Ablation 2: residual program size distribution.
        let sizes: Vec<usize> = (0..qa.programs.len() as u32)
            .map(|i| qa.programs.get(ProgramId(i)).len())
            .collect();
        let max = sizes.iter().max().copied().unwrap_or(0);
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len().max(1) as f64;
        println!(
            "  residual programs: {} distinct, avg {:.1} rules, max {} rules",
            sizes.len(),
            avg,
            max
        );
    }
    println!(
        "\nWithout memoization every node recomputes LTUR+contraction; with the\n\
         paper's hash tables, per-node work collapses to a hash lookup after\n\
         the warm-up phase ('the query engine had a simple task and was mainly\n\
         waiting for the disk')."
    );
}
