//! Regenerates paper **Figure 6**: the three benchmark families —
//! top-down regular path queries on Treebank, sideways caterpillar
//! queries on ACGT-infix, and bottom-up path queries on ACGT-flat.
//! Each row averages `ARB_QUERIES` random `w1.w2*.w3` queries per size.

use arb_bench as bench;
use arb_datagen::queries::{R_BOTTOM_UP, R_INFIX, R_TOP_DOWN};
use arb_datagen::RegexShape;

fn family(which: &str) {
    let (lo, hi) = bench::size_range();
    let count = bench::env_usize("ARB_QUERIES", 5);
    let (db, alphabet, shape, r, seed) = match which {
        "treebank" => (
            bench::treebank_db(),
            ["NP", "VP", "PP", "S"].as_slice(),
            RegexShape::Tags,
            R_TOP_DOWN,
            1u64,
        ),
        "acgt-infix" => (
            bench::acgt_infix_db(),
            ["A", "C", "G", "T"].as_slice(),
            RegexShape::Tags, // infix symbols are element tags
            R_INFIX,
            2,
        ),
        "acgt-flat" => (
            bench::acgt_flat_db(),
            ["A", "C", "G", "T"].as_slice(),
            RegexShape::Chars,
            R_BOTTOM_UP,
            2, // same seed as infix: the paper reuses the same regexes,
               // so the selected-node counts per size must coincide
        ),
        other => {
            eprintln!("unknown family {other:?}");
            std::process::exit(1);
        }
    };
    println!(
        "\n{} queries ({} nodes, {} random queries per size {lo}..={hi}):",
        which,
        db.db.node_count(),
        count
    );
    println!("{}", bench::Fig6Row::header());
    for size in lo..=hi {
        let row = bench::fig6_row(&db, size, count, alphabet, shape, r, seed);
        println!("{}", row.display());
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    println!("Figure 6: benchmark results (averages per row, as in the paper)");
    match arg.as_str() {
        "all" => {
            family("treebank");
            family("acgt-infix");
            family("acgt-flat");
        }
        other => family(other),
    }
}
