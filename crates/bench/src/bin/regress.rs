//! Benchmark regression tracking against committed baselines (ROADMAP
//! "CI hardening": criterion regression tracking).
//!
//! Re-runs the measurement kernels of the `baseline`, `multiquery` and
//! `interning` benches on **pinned** workloads (fixed sizes and seeds —
//! the env knobs of the interactive benches are deliberately ignored)
//! and compares the results against `crates/bench/baselines/regress.txt`:
//!
//! * **count metrics** (transitions, states, scans, selected nodes,
//!   interner entries/bytes) are deterministic and must match the
//!   baseline **exactly** — any drift is a behavior change that needs a
//!   deliberate baseline update;
//! * **time metrics** (`*_ms`) are compared with a generous 3× budget so
//!   CI-machine variance never fails the build, while a genuine
//!   order-of-magnitude regression does.
//!
//! Usage: `regress --check` (default) fails with a diff summary on any
//! mismatch; `regress --write` regenerates the baseline file after an
//! intentional change (commit the result). `regress --write <path>`
//! writes the fresh metrics to `<path>` instead of the committed
//! baseline — CI uses this to publish the current numbers as a workflow
//! artifact without dirtying the checkout.
//!
//! Independent of the mode, collection hard-asserts the `.sta`
//! compression guarantee: every baseline query must encode its state
//! stream in under the paper's 4 bytes per node.

use arb_core::evaluate_tree;
use arb_datagen::queries::{RandomPathQuery, R_INFIX, R_TOP_DOWN};
use arb_datagen::{acgt, treebank_tree, RegexShape, TreebankConfig};
use arb_engine::{
    evaluate_disk, evaluate_disk_batch, Database, DocUpdate, QueryBatch, StandingQuery,
};
use arb_server::protocol::{OutputKind, QueryResult, WireLanguage};
use arb_server::{Client, Server, ServerConfig};
use arb_storage::{create_from_tree_with, ArbDatabase, FormatVersion};
use arb_tmnf::{normalize, parse_program, CoreProgram};
use arb_tree::{BinaryTree, LabelTable};
use arb_xpath::{compile_path, parse_xpath};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// One recorded metric: deterministic count or lenient wall time.
enum Metric {
    Count(u64),
    TimeMs(f64),
}

/// Time metrics may regress up to this factor before the check fails.
const TIME_BUDGET: f64 = 3.0;

/// Looks up an already-collected count metric by key.
fn metric(out: &[(String, Metric)], key: &str) -> u64 {
    match out.iter().find(|(k, _)| k == key) {
        Some((_, Metric::Count(n))) => *n,
        _ => panic!("count metric {key} not collected yet"),
    }
}

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baselines/regress.txt")
}

fn pinned_treebank() -> (BinaryTree, LabelTable) {
    let mut labels = LabelTable::new();
    let tree = treebank_tree(
        &TreebankConfig {
            target_elems: 20_000,
            seed: 0x7133,
            filler_tags: 246,
        },
        &mut labels,
    );
    (tree, labels)
}

fn compile_tmnf(src: &str, labels: &mut LabelTable) -> CoreProgram {
    let ast = parse_program(src, labels).expect("program parses");
    let mut prog = normalize(&ast);
    let qp = prog.pred_id("QUERY").expect("QUERY head");
    prog.add_query_pred(qp);
    prog
}

fn disk_db(
    tree: &BinaryTree,
    labels: &LabelTable,
    name: &str,
    format: FormatVersion,
) -> ArbDatabase {
    let dir = std::env::temp_dir().join(format!("arb-regress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create dir");
    let path = dir.join(name);
    create_from_tree_with(tree, labels, &path, format).expect("create database");
    ArbDatabase::open(&path).expect("open database")
}

/// Collects every tracked metric, in stable order.
fn collect() -> Vec<(String, Metric)> {
    let mut out: Vec<(String, Metric)> = Vec::new();
    let count = |o: &mut Vec<(String, Metric)>, k: String, v: u64| o.push((k, Metric::Count(v)));

    let (tree, labels) = pinned_treebank();
    let db = disk_db(&tree, &labels, "treebank.arb", FormatVersion::default());

    // --- storage: v1 vs v2 on-disk formats (size + decode throughput) --
    // Pinned to the 424k-node treebank: the 20k tree above fits in L2,
    // where v1's trivial 2-byte decode is unrealistically favored; the
    // larger tree measures the regime the format targets.
    let (stree, slabels) = {
        let mut l = LabelTable::new();
        let t = treebank_tree(
            &TreebankConfig {
                target_elems: 100_000,
                seed: 0x7133,
                filler_tags: 246,
            },
            &mut l,
        );
        (t, l)
    };
    const SCAN_RUNS: u32 = 3;
    count(&mut out, "storage.nodes".into(), stree.len() as u64);
    for format in [FormatVersion::V1, FormatVersion::V2] {
        let fdb = disk_db(&stree, &slabels, &format!("treebank-{format}.arb"), format);
        count(
            &mut out,
            format!("storage.{format}.file_bytes"),
            fdb.file_bytes(),
        );
        // The backward direction is phase 1's scan — record it separately
        // so decode-throughput regressions on the hot direction show up.
        let mut bwd_ms = 0.0;
        let mut fwd_ms = 0.0;
        for _ in 0..SCAN_RUNS {
            let t = Instant::now();
            let mut bwd = fdb.backward_scan().expect("backward scan");
            while bwd.next_record().expect("backward read").is_some() {}
            bwd_ms += t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            let mut fwd = fdb.forward_scan().expect("forward scan");
            while fwd.next_record().expect("forward read").is_some() {}
            fwd_ms += t.elapsed().as_secs_f64() * 1e3;
        }
        bwd_ms /= SCAN_RUNS as f64;
        fwd_ms /= SCAN_RUNS as f64;

        // End-to-end phase 1 (backward scan + automata + `.sta` write)
        // per format — the number the v2 decode path must not regress.
        let mut ql = slabels.clone();
        let path = parse_xpath("//NP//VP").expect("xpath parses");
        let prog = compile_path(&path, &mut ql);
        let mut phase1_ms = 0.0;
        let mut selected = 0;
        let mut sta_encoded = 0;
        for _ in 0..SCAN_RUNS {
            let o = evaluate_disk(&prog, &fdb).expect("evaluation");
            phase1_ms += o.stats.phase1_time.as_secs_f64() * 1e3;
            selected = o.stats.selected;
            sta_encoded = o.stats.sta_encoded_bytes;
        }
        count(&mut out, format!("storage.{format}.selected"), selected);
        count(
            &mut out,
            format!("storage.{format}.sta_encoded_bytes"),
            sta_encoded,
        );
        assert!(
            sta_encoded < stree.len() as u64 * 4,
            "storage.{format}: .sta stream must encode under 4 B/node \
             ({sta_encoded} bytes for {} nodes)",
            stree.len()
        );
        if format == FormatVersion::V2 {
            count(
                &mut out,
                "storage.v2.blocks_decoded".into(),
                fdb.blocks_decoded(),
            );
        }
        out.push((
            format!("storage.{format}.bwd_scan_ms"),
            Metric::TimeMs(bwd_ms),
        ));
        out.push((
            format!("storage.{format}.fwd_scan_ms"),
            Metric::TimeMs(fwd_ms),
        ));
        out.push((
            format!("storage.{format}.phase1_ms"),
            Metric::TimeMs(phase1_ms / SCAN_RUNS as f64),
        ));
    }
    // The extent-compression acceptance gate: v2's total file size
    // (checksummed blocks + compressed extent section + block index)
    // stays within 1.5x the paper's bare v1 layout.
    {
        let v1 = metric(&out, "storage.v1.file_bytes");
        let v2 = metric(&out, "storage.v2.file_bytes");
        assert!(
            v2 * 2 <= v1 * 3,
            "storage: v2 file size ({v2} bytes) must stay within 1.5x v1 ({v1} bytes)"
        );
    }

    // --- baseline: the 5 XPath queries of the `baseline` bench ---------
    let queries = [
        "//NP//VP",
        "//S[NP and VP]",
        "//NP[not(PP)]/VP",
        "//VP/following-sibling::NP",
        "//S//NP[not(.//PP)]",
    ];
    let mut phase1_ms = 0.0;
    for (i, src) in queries.iter().enumerate() {
        let path = parse_xpath(src).expect("xpath parses");
        let mut ql = labels.clone();
        let prog = compile_path(&path, &mut ql);
        let o = evaluate_disk(&prog, &db).expect("evaluation");
        phase1_ms += o.stats.phase1_time.as_secs_f64() * 1e3;
        count(
            &mut out,
            format!("baseline.q{i}.selected"),
            o.stats.selected,
        );
        count(
            &mut out,
            format!("baseline.q{i}.trans1"),
            o.stats.phase1_transitions,
        );
        count(
            &mut out,
            format!("baseline.q{i}.trans2"),
            o.stats.phase2_transitions,
        );
        count(
            &mut out,
            format!("baseline.q{i}.sta_encoded_bytes"),
            o.stats.sta_encoded_bytes,
        );
        // The ISSUE-7 acceptance gate: the compressed state stream beats
        // the paper's 4 B/node on every baseline query, unconditionally.
        assert!(
            o.stats.sta_encoded_bytes < o.stats.nodes * 4,
            "baseline.q{i}: .sta stream must encode under 4 B/node \
             ({} bytes for {} nodes)",
            o.stats.sta_encoded_bytes,
            o.stats.nodes
        );
    }
    out.push(("baseline.phase1_ms".into(), Metric::TimeMs(phase1_ms)));

    // --- multiquery: a seeded k=4 batch, one shared scan pair ----------
    let mut ml = labels.clone();
    let progs: Vec<CoreProgram> =
        RandomPathQuery::batch(4, 7, &["NP", "VP", "PP", "S"], RegexShape::Tags, 11)
            .iter()
            .map(|q| compile_tmnf(&q.to_program(R_TOP_DOWN), &mut ml))
            .collect();
    let batch = QueryBatch::from_programs(&progs);
    let t = Instant::now();
    let combined = evaluate_disk_batch(&batch, &db).expect("batch eval");
    let batch_ms = t.elapsed().as_secs_f64() * 1e3;
    count(
        &mut out,
        "multiquery.backward_scans".into(),
        combined.stats.backward_scans,
    );
    count(
        &mut out,
        "multiquery.forward_scans".into(),
        combined.stats.forward_scans,
    );
    count(
        &mut out,
        "multiquery.union_selected".into(),
        combined.stats.selected,
    );
    // One-shot batch evaluation builds the merged automata exactly once
    // (the build-once / eval-many lifecycle stamps per-run counters).
    count(
        &mut out,
        "multiquery.automata_builds".into(),
        combined.stats.automata_builds,
    );
    for (i, o) in combined.outcomes.iter().enumerate() {
        count(
            &mut out,
            format!("multiquery.q{i}.selected"),
            o.stats.selected,
        );
    }
    out.push(("multiquery.batch_ms".into(), Metric::TimeMs(batch_ms)));

    // --- server: admission-window scan sharing over the wire -----------
    // Deterministic by construction: max_batch == 4 with a long window
    // means each round of 4 concurrent clients dispatches exactly when
    // its 4th request is admitted — never on a timer — so request,
    // batch, scan and cache counters are all exact.
    {
        let db_path = std::env::temp_dir()
            .join(format!("arb-regress-{}", std::process::id()))
            .join("treebank.arb");
        let handle = Server::start(
            ServerConfig {
                batch_window: std::time::Duration::from_secs(5),
                max_batch: 4,
                ..ServerConfig::default()
            },
            &[&db_path],
        )
        .expect("start server");
        let addr = handle.local_addr();
        const ROUNDS: usize = 3;
        let server_queries = &queries[..4];
        let mut selected = [0u64; 4];
        let t = Instant::now();
        for _ in 0..ROUNDS {
            let threads: Vec<_> = server_queries
                .iter()
                .map(|q| {
                    let q = q.to_string();
                    std::thread::spawn(move || {
                        let mut c = Client::connect(addr).expect("connect");
                        c.query("treebank", WireLanguage::XPath, OutputKind::Count, &q)
                            .expect("server query")
                    })
                })
                .collect();
            for (i, th) in threads.into_iter().enumerate() {
                let reply = th.join().expect("client thread");
                assert_eq!(reply.stats.batch_size, 4, "full window shares one pass");
                let QueryResult::Count(n) = reply.result else {
                    panic!("count result expected");
                };
                selected[i] = n;
            }
        }
        let server_ms = t.elapsed().as_secs_f64() * 1e3;
        let mut c = Client::connect(addr).expect("connect");
        let s = c.server_stats().expect("server stats");
        handle.shutdown();
        count(&mut out, "server.requests".into(), s.requests);
        count(&mut out, "server.batches".into(), s.batches);
        count(&mut out, "server.backward_scans".into(), s.backward_scans);
        count(&mut out, "server.forward_scans".into(), s.forward_scans);
        count(&mut out, "server.cache_hits".into(), s.cache_hits);
        count(&mut out, "server.cache_misses".into(), s.cache_misses);
        // Window-shape cache: the first 4-query window builds the merged
        // automata once; the two later identical windows reuse them.
        count(&mut out, "server.automata_builds".into(), s.automata_builds);
        count(&mut out, "server.automata_reused".into(), s.automata_reused);
        for (i, n) in selected.iter().enumerate() {
            count(&mut out, format!("server.q{i}.selected"), *n);
        }
        out.push(("server.batch_ms".into(), Metric::TimeMs(server_ms)));
        // The resident-service acceptance gate: at k == 4 the shared
        // pass must put scans-per-query well under 1 (here 6/12 = 0.5).
        let spq = (s.backward_scans + s.forward_scans) as f64 / s.requests as f64;
        assert!(
            spq < 1.0,
            "server: scans per query must drop below 1 at k=4, got {spq:.3}"
        );
    }

    // --- interning: state-table pressure, treebank + acgt-infix --------
    let acgt_seq = acgt::random_acgt(14, 0xD2A);
    let mut al = LabelTable::new();
    let acgt_tree = acgt::acgt_infix_tree(&acgt_seq, &mut al);
    let mut aq = al.clone();
    let acgt_prog = compile_tmnf(
        &RandomPathQuery::batch(1, 7, &["A", "C", "G", "T"], RegexShape::Tags, 5)
            .pop()
            .unwrap()
            .to_program(R_INFIX),
        &mut aq,
    );
    let mut tq = labels.clone();
    let tb_prog = compile_tmnf(
        &RandomPathQuery::batch(1, 7, &["NP", "VP", "PP", "S"], RegexShape::Tags, 1)
            .pop()
            .unwrap()
            .to_program(R_TOP_DOWN),
        &mut tq,
    );
    for (name, tree, prog) in [
        ("treebank", &tree, &tb_prog),
        ("acgt-infix", &acgt_tree, &acgt_prog),
    ] {
        let t = Instant::now();
        let res = evaluate_tree(prog, tree);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let i = &res.stats.interning;
        count(
            &mut out,
            format!("interning.{name}.bu_states"),
            res.stats.bu_states as u64,
        );
        count(
            &mut out,
            format!("interning.{name}.td_states"),
            res.stats.td_states as u64,
        );
        count(
            &mut out,
            format!("interning.{name}.alphabet_symbols"),
            i.alphabet_symbols as u64,
        );
        count(
            &mut out,
            format!("interning.{name}.bu_entries"),
            i.bu_entries as u64,
        );
        count(
            &mut out,
            format!("interning.{name}.td_entries"),
            i.td_entries as u64,
        );
        count(
            &mut out,
            format!("interning.{name}.arena_bytes"),
            i.arena_bytes as u64,
        );
        count(
            &mut out,
            format!("interning.{name}.max_probe"),
            i.max_probe as u64,
        );
        out.push((format!("interning.{name}.twophase_ms"), Metric::TimeMs(ms)));
    }

    // --- incremental: single-subtree splice on the 424k treebank -------
    // The updatable-database acceptance gate: one splice dirties a
    // small window (< 5% of the nodes) and its incremental
    // re-evaluation beats a full re-evaluation by at least 5x. The
    // splice always lands on the same late-document element with the
    // same fragment, so the dirty/retained counters are exact. The
    // apply and refresh halves are driven separately (the server's
    // split API) so the speedup gate measures the re-evaluation, not
    // the crash-safe block rewrite + fsync of the disk apply — that
    // end-to-end cost is tracked as `update_ms` on its own.
    {
        let path = std::env::temp_dir()
            .join(format!("arb-regress-{}", std::process::id()))
            .join("treebank-incr.arb");
        create_from_tree_with(&stree, &slabels, &path, FormatVersion::V2).expect("create database");
        let mut idb = Database::open_arb(&path).expect("open database");
        let iqueries: Vec<_> = ["//NP//VP", "//S[NP and VP]"]
            .iter()
            .map(|q| idb.compile_xpath(q).expect("query compiles"))
            .collect();
        let mut standing = StandingQuery::new(&iqueries);
        // Priming is the full evaluation every refresh is measured
        // against.
        let t = Instant::now();
        standing.prime(&idb).expect("prime standing state");
        let prime_ms = t.elapsed().as_secs_f64() * 1e3;

        let at = stree
            .nodes()
            .enumerate()
            .skip(stree.len() * 19 / 20)
            .find(|(_, v)| !stree.info(*v).label.is_text())
            .map(|(i, _)| i as u32)
            .expect("element node in the last 5%");
        let splice = DocUpdate::SpliceSubtree {
            at,
            xml: "<S><NP/><VP><PP/></VP></S>".into(),
        };
        const REFRESH_RUNS: usize = 3;
        let mut refresh_ms = f64::INFINITY;
        let mut update_ms = f64::INFINITY;
        let mut first = None;
        let mut last = None;
        for _ in 0..REFRESH_RUNS {
            let t = Instant::now();
            let applied = idb.apply_update(&splice).expect("apply splice");
            let t_refresh = Instant::now();
            let report = standing.refresh(&idb, &applied).expect("refresh");
            refresh_ms = refresh_ms.min(t_refresh.elapsed().as_secs_f64() * 1e3);
            update_ms = update_ms.min(t.elapsed().as_secs_f64() * 1e3);
            assert_eq!(
                report.batch.stats.backward_scans, 0,
                "refresh must not scan"
            );
            assert_eq!(report.batch.stats.forward_scans, 0, "refresh must not scan");
            if first.is_none() {
                first = Some((
                    report.batch.stats.dirty_nodes,
                    report.batch.stats.retained_sta_blocks,
                ));
            }
            last = Some(report);
        }
        let (dirty, retained) = first.expect("at least one refresh ran");
        let last = last.expect("at least one refresh ran");
        let nodes = idb.node_count();
        count(&mut out, "incremental.nodes".into(), nodes);
        count(&mut out, "incremental.dirty_nodes".into(), dirty);
        count(&mut out, "incremental.retained_sta_blocks".into(), retained);
        for (i, o) in last.batch.outcomes.iter().enumerate() {
            count(
                &mut out,
                format!("incremental.q{i}.selected"),
                o.stats.selected,
            );
        }
        // Full re-evaluation over the updated file — the denominator of
        // the speedup gate.
        let session = idb.prepare(&iqueries);
        let t = Instant::now();
        let full = session.run().expect("full re-evaluation");
        let full_ms = t.elapsed().as_secs_f64() * 1e3;
        for (o, f) in last.batch.outcomes.iter().zip(&full.outcomes) {
            assert_eq!(
                o.stats.selected, f.stats.selected,
                "incremental: refresh and full re-evaluation must agree"
            );
        }
        out.push(("incremental.prime_ms".into(), Metric::TimeMs(prime_ms)));
        out.push(("incremental.refresh_ms".into(), Metric::TimeMs(refresh_ms)));
        out.push(("incremental.update_ms".into(), Metric::TimeMs(update_ms)));
        out.push(("incremental.full_ms".into(), Metric::TimeMs(full_ms)));
        assert!(
            dirty * 20 < nodes,
            "incremental: one splice must dirty under 5% of {nodes} nodes, touched {dirty}"
        );
        assert!(
            refresh_ms * 5.0 < full_ms,
            "incremental: refresh ({refresh_ms:.3} ms) must beat full \
             re-evaluation ({full_ms:.3} ms) by at least 5x"
        );
    }
    out
}

fn render(metrics: &[(String, Metric)]) -> String {
    let mut s = String::from(
        "# Committed benchmark baselines (see `regress --help` in\n\
         # crates/bench/src/bin/regress.rs). Counts must match exactly;\n\
         # *_ms keys have a 3x budget. Regenerate with `regress --write`.\n",
    );
    for (k, v) in metrics {
        match v {
            Metric::Count(n) => writeln!(s, "{k} = {n}").unwrap(),
            Metric::TimeMs(ms) => writeln!(s, "{k} = {ms:.3}").unwrap(),
        }
    }
    s
}

fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .filter_map(|l| {
            let (k, v) = l.split_once('=')?;
            Some((k.trim().to_string(), v.trim().parse().ok()?))
        })
        .collect()
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "--check".into());
    let path = baseline_path();
    let metrics = collect();
    match mode.as_str() {
        "--write" => {
            // An optional output path diverts the fresh metrics (the CI
            // artifact); without one the committed baseline is rewritten.
            let path = std::env::args().nth(2).map(PathBuf::from).unwrap_or(path);
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir).expect("baselines dir");
            }
            std::fs::write(&path, render(&metrics)).expect("write baseline");
            println!("wrote {} metrics to {}", metrics.len(), path.display());
        }
        "--check" => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("no baseline at {}: {e}", path.display()));
            let baseline = parse_baseline(&text);
            let mut failures = Vec::new();
            for (k, v) in &metrics {
                let Some((_, base)) = baseline.iter().find(|(bk, _)| bk == k) else {
                    failures.push(format!("{k}: missing from baseline (run --write)"));
                    continue;
                };
                match v {
                    Metric::Count(n) => {
                        if *n as f64 != *base {
                            failures.push(format!("{k}: {n} != baseline {base}"));
                        } else {
                            println!("ok    {k} = {n}");
                        }
                    }
                    Metric::TimeMs(ms) => {
                        if *ms > base * TIME_BUDGET {
                            failures.push(format!(
                                "{k}: {ms:.3} ms exceeds {TIME_BUDGET}x baseline {base:.3} ms"
                            ));
                        } else {
                            println!("ok    {k} = {ms:.3} ms (baseline {base:.3})");
                        }
                    }
                }
            }
            for (bk, _) in &baseline {
                if !metrics.iter().any(|(k, _)| k == bk) {
                    failures.push(format!("{bk}: in baseline but no longer measured"));
                }
            }
            if !failures.is_empty() {
                eprintln!("\nbenchmark regression check FAILED:");
                for f in &failures {
                    eprintln!("  {f}");
                }
                std::process::exit(1);
            }
            println!("\nall {} metrics within baseline", metrics.len());
        }
        other => {
            eprintln!("usage: regress [--check|--write [out-path]]  (got {other:?})");
            std::process::exit(2);
        }
    }
}
