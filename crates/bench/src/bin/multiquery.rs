//! Paper §7 (future work): "TMNF programs can evaluate several queries
//! (each one defined by one IDB predicate) in one program. It will be
//! interesting to study how well Arb handles multiple queries."
//!
//! This harness batches k random path queries through the engine's
//! prepared [`Session`](arb_engine::Session) surface — the programs are
//! merged at the IR level and the session evaluates with **one** backward
//! and **one** forward scan — and compares against k prepared single-query
//! sessions run separately (2k scans). `ARB_MULTIQUERY_MAX_K` caps the
//! batch sizes (default 16; CI smoke uses 4).

use arb_bench as bench;
use arb_datagen::queries::{RandomPathQuery, R_TOP_DOWN};
use arb_datagen::RegexShape;
use arb_engine::{Database, QueryBatch};
use arb_tmnf::CoreProgram;
use std::time::Instant;

fn main() {
    let treebank = bench::treebank_db();
    let labels_master = treebank.labels;
    let db = Database::from_disk(treebank.db);
    let max_k = bench::env_usize("ARB_MULTIQUERY_MAX_K", 16);
    println!(
        "multi-query evaluation on treebank ({} nodes)\n",
        db.node_count()
    );
    println!(
        "{:>3} {:>14} {:>14} {:>9} {:>13} {:>12} {:>12}",
        "k",
        "combined(ms)",
        "separate(ms)",
        "speedup",
        "per-query(ms)",
        "trans(comb)",
        "trans(sep)"
    );
    for k in [1usize, 2, 4, 8, 16].into_iter().filter(|&k| k <= max_k) {
        let queries = RandomPathQuery::batch(k, 7, &["NP", "VP", "PP", "S"], RegexShape::Tags, 99);
        // All programs compile against one shared label table; the merge
        // happens on the interned IR, not on source text.
        let mut labels = labels_master.clone();
        let progs: Vec<CoreProgram> = queries
            .iter()
            .map(|q| bench::compile_query(q, R_TOP_DOWN, &mut labels))
            .collect();
        // Prepare-once/run-many: merging is session-preparation work and
        // stays outside the timed region, for the combined batch and the
        // separate per-query baselines alike.
        let batch = QueryBatch::from_programs(&progs);
        let session = db.prepare_batch(&batch);
        let singles: Vec<QueryBatch> = progs
            .iter()
            .map(|p| QueryBatch::from_programs(std::slice::from_ref(p)))
            .collect();

        let t = Instant::now();
        let combined = session.run().expect("batch eval");
        let t_combined = t.elapsed();
        assert_eq!(combined.stats.backward_scans, 1, "one shared backward scan");
        assert_eq!(combined.stats.forward_scans, 1, "one shared forward scan");

        let mut t_separate = std::time::Duration::ZERO;
        let mut sep_trans = 0u64;
        for (single, out) in singles.iter().zip(&combined.outcomes) {
            let separate_session = db.prepare_batch(single);
            let t = Instant::now();
            let o = separate_session.run_one().expect("eval");
            t_separate += t.elapsed();
            sep_trans += o.stats.phase1_transitions + o.stats.phase2_transitions;
            // Demultiplexed batch results must equal the independent run.
            assert_eq!(
                out.selected.to_vec(),
                o.selected.to_vec(),
                "combined vs separate selection mismatch"
            );
            assert_eq!(out.per_pred_counts, o.per_pred_counts);
        }
        println!(
            "{:>3} {:>14.2} {:>14.2} {:>9.2} {:>13.2} {:>12} {:>12}",
            k,
            t_combined.as_secs_f64() * 1e3,
            t_separate.as_secs_f64() * 1e3,
            t_separate.as_secs_f64() / t_combined.as_secs_f64(),
            t_combined.as_secs_f64() * 1e3 / k as f64,
            combined.stats.phase1_transitions + combined.stats.phase2_transitions,
            sep_trans
        );
    }
}
