//! Paper §7 (future work): "TMNF programs can evaluate several queries
//! (each one defined by one IDB predicate) in one program. It will be
//! interesting to study how well Arb handles multiple queries."
//!
//! This harness merges k random path queries into one program with k
//! query predicates and compares one combined run against k separate
//! runs.

use arb_bench as bench;
use arb_datagen::queries::{RandomPathQuery, R_TOP_DOWN};
use arb_datagen::RegexShape;
use arb_engine::evaluate_disk;
use arb_tmnf::{normalize, parse_program};
use std::time::Instant;

fn main() {
    let db = bench::treebank_db();
    println!(
        "multi-query evaluation on treebank ({} nodes)\n",
        db.db.node_count()
    );
    println!(
        "{:>3} {:>14} {:>14} {:>9} {:>12} {:>12}",
        "k", "combined(ms)", "separate(ms)", "speedup", "trans(comb)", "trans(sep)"
    );
    for k in [1usize, 2, 4, 8, 16] {
        let batch = RandomPathQuery::batch(k, 7, &["NP", "VP", "PP", "S"], RegexShape::Tags, 99);
        // Combined program: rename QUERY -> QUERY<i>.
        let mut combined_src = String::new();
        for (i, q) in batch.iter().enumerate() {
            combined_src.push_str(&q.to_program(R_TOP_DOWN).replace("QUERY", &format!("Q{i}")));
            combined_src.push('\n');
        }
        let mut labels = db.labels.clone();
        let ast = parse_program(&combined_src, &mut labels).expect("parse");
        let mut prog = normalize(&ast);
        for i in 0..k {
            let p = prog.pred_id(&format!("Q{i}")).expect("query pred");
            prog.add_query_pred(p);
        }
        let t = Instant::now();
        let combined = evaluate_disk(&prog, &db.db).expect("eval");
        let t_combined = t.elapsed();

        let mut t_separate = std::time::Duration::ZERO;
        let mut sep_counts = Vec::new();
        let mut sep_trans = 0u64;
        for q in &batch {
            let mut labels = db.labels.clone();
            let prog = bench::compile_query(q, R_TOP_DOWN, &mut labels);
            let t = Instant::now();
            let o = evaluate_disk(&prog, &db.db).expect("eval");
            t_separate += t.elapsed();
            sep_trans += o.stats.phase1_transitions + o.stats.phase2_transitions;
            sep_counts.push(o.stats.selected);
        }
        // Per-predicate counts must agree between the two strategies.
        assert_eq!(
            combined.per_pred_counts, sep_counts,
            "combined vs separate selection mismatch"
        );
        println!(
            "{:>3} {:>14.2} {:>14.2} {:>9.2} {:>12} {:>12}",
            k,
            t_combined.as_secs_f64() * 1e3,
            t_separate.as_secs_f64() * 1e3,
            t_separate.as_secs_f64() / t_combined.as_secs_f64(),
            combined.stats.phase1_transitions + combined.stats.phase2_transitions,
            sep_trans
        );
    }
}
