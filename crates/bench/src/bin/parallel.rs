//! Paper §6.2: "our techniques provide an algorithm for parallel regular
//! expression matching which runs in parallel time O(log n)" — requires
//! the balanced (infix) tree model. This harness sweeps worker counts on
//! ACGT-infix and shows the flat tree admits no speedup (no balanced
//! frontier exists).

use arb_bench as bench;
use arb_core::parallel::evaluate_tree_parallel;
use arb_core::twophase::evaluate_tree;
use arb_datagen::queries::{RandomPathQuery, R_INFIX};
use arb_datagen::RegexShape;
use std::time::Instant;

fn main() {
    let db = bench::acgt_infix_db();
    let tree = db.db.to_tree().expect("materialize");
    println!(
        "parallel bottom-up evaluation on acgt-infix ({} nodes, in memory)\n",
        tree.len()
    );
    let q = RandomPathQuery::batch(1, 8, &["A", "C", "G", "T"], RegexShape::Tags, 5)
        .pop()
        .expect("one query");
    let mut labels = db.labels.clone();
    let prog = bench::compile_query(&q, R_INFIX, &mut labels);

    let t = Instant::now();
    let seq = evaluate_tree(&prog, &tree);
    let t_seq = t.elapsed();
    println!(
        "sequential: {:>8.2} ms  (selected {})",
        t_seq.as_secs_f64() * 1e3,
        seq.stats.selected
    );

    for threads in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let par = evaluate_tree_parallel(&prog, &tree, threads);
        let el = t.elapsed();
        assert_eq!(par.stats.selected, seq.stats.selected);
        println!(
            "threads {:>2}: {:>8.2} ms  (speedup {:>5.2}x, phase1 {:>6.2} ms)",
            threads,
            el.as_secs_f64() * 1e3,
            t_seq.as_secs_f64() / el.as_secs_f64(),
            par.stats.phase1_time.as_secs_f64() * 1e3,
        );
    }
}
