//! Sharded **disk** two-phase evaluation (the §6.2 parallelism case
//! study taken to secondary storage): per-thread scaling of
//! `evaluate_disk_parallel` on the treebank database, against the
//! sequential disk path as baseline.
//!
//! Every run asserts result equality with the sequential pass before
//! reporting, so this doubles as an end-to-end smoke of the sharded
//! kernel (CI executes it on a tiny treebank with `--threads 1,2`).
//!
//! Knobs: `ARB_TREEBANK_ELEMS` scales the database (default 100_000 →
//! the 424k-node treebank of the earlier benches); `ARB_THREADS` (or
//! `--threads`) is a comma-separated worker-count list, default
//! `1,2,4,8`; `ARB_RUNS` averages each configuration (default 3).

use arb_bench as bench;
use arb_datagen::queries::{RandomPathQuery, R_TOP_DOWN};
use arb_datagen::RegexShape;
use arb_engine::{evaluate_disk, evaluate_disk_parallel};
use std::time::Instant;

fn thread_list() -> Vec<usize> {
    let from_args = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        args.iter()
            .position(|a| a == "--threads")
            .and_then(|i| args.get(i + 1).cloned())
    };
    let spec = from_args
        .or_else(|| std::env::var("ARB_THREADS").ok())
        .unwrap_or_else(|| "1,2,4,8".to_string());
    spec.split(',')
        .filter_map(|p| p.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
        .collect()
}

fn main() {
    let db = bench::treebank_db();
    let runs = bench::env_usize("ARB_RUNS", 3);
    let threads = thread_list();
    println!(
        "sharded disk evaluation on {} ({} nodes, on disk), {} run(s) per row\n",
        db.name,
        db.db.node_count(),
        runs
    );

    let q = RandomPathQuery::batch(1, 7, &["NP", "VP", "PP", "S"], RegexShape::Tags, 0x5A)
        .pop()
        .expect("one query");
    let mut labels = db.labels.clone();
    let prog = bench::compile_query(&q, R_TOP_DOWN, &mut labels);

    // Sequential baseline (also the correctness oracle).
    let mut t_seq = 0.0f64;
    let mut t1_seq = 0.0f64;
    let seq = evaluate_disk(&prog, &db.db).expect("sequential evaluation");
    for _ in 0..runs {
        let t = Instant::now();
        let out = evaluate_disk(&prog, &db.db).expect("sequential evaluation");
        t_seq += t.elapsed().as_secs_f64();
        t1_seq += out.stats.phase1_time.as_secs_f64();
    }
    t_seq /= runs as f64;
    t1_seq /= runs as f64;
    println!(
        "sequential: {:>8.2} ms total, {:>8.2} ms phase 1  (selected {})",
        t_seq * 1e3,
        t1_seq * 1e3,
        seq.stats.selected
    );

    for &t in &threads {
        let mut total = 0.0f64;
        let mut phase1 = 0.0f64;
        let mut scans = 0u64;
        for _ in 0..runs {
            let clock = Instant::now();
            let out = evaluate_disk_parallel(&prog, &db.db, t).expect("sharded evaluation");
            total += clock.elapsed().as_secs_f64();
            phase1 += out.stats.phase1_time.as_secs_f64();
            scans = out.stats.backward_scans;
            assert_eq!(
                out.selected.to_vec(),
                seq.selected.to_vec(),
                "sharded result diverged at {t} threads"
            );
            assert_eq!(out.per_pred_counts, seq.per_pred_counts);
        }
        total /= runs as f64;
        phase1 /= runs as f64;
        println!(
            "threads {:>2}: {:>8.2} ms total ({:>5.2}x), {:>8.2} ms phase 1 ({:>5.2}x), {} backward scan(s)",
            t,
            total * 1e3,
            t_seq / total,
            phase1 * 1e3,
            t1_seq / phase1,
            scans,
        );
    }
}
