//! Storage-format bench: v1 (bare records) vs v2 (block-compressed,
//! checksummed) on the treebank database — creation time, file size, and
//! cold/warm full-scan decode throughput in both directions. The decode
//! rate of these scans is the phase-1 ceiling of disk evaluation; the
//! per-format end-to-end phase-1 numbers live in the `regress` metrics
//! (`storage.{v1,v2}.phase1_ms`).
//!
//! ```text
//! cargo run --release -p arb-bench --bin storagefmt -- [--format v1|v2|both] [--cold]
//! ```
//!
//! `--cold` asks the kernel to drop the page cache before each timed
//! scan (needs root; silently skipped otherwise, with a notice). When
//! both formats run, the two record streams are asserted identical —
//! the bench doubles as an end-to-end differential smoke.
//!
//! Knobs: `ARB_TREEBANK_ELEMS` scales the database, `ARB_RUNS` averages
//! the timed scans (default 3).

use arb_bench as bench;
use arb_datagen::treebank;
use arb_storage::{ArbDatabase, FormatVersion, NodeRecord};
use arb_tree::LabelTable;
use std::time::Instant;

fn drop_page_cache() -> bool {
    std::fs::write("/proc/sys/vm/drop_caches", "3").is_ok()
}

/// Times one full scan in each direction, returning
/// `(backward_s, forward_s, records)` with the forward stream collected
/// for cross-format comparison.
fn timed_scans(db: &ArbDatabase) -> (f64, f64, Vec<NodeRecord>) {
    let t = Instant::now();
    let mut scan = db.backward_scan().expect("backward scan");
    let mut count = 0u64;
    while scan.next_record().expect("backward read").is_some() {
        count += 1;
    }
    assert_eq!(count, db.node_count() as u64);
    let backward = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut scan = db.forward_scan().expect("forward scan");
    let mut records = Vec::with_capacity(db.node_count() as usize);
    while let Some((_, rec)) = scan.next_record().expect("forward read") {
        records.push(rec);
    }
    let forward = t.elapsed().as_secs_f64();
    (backward, forward, records)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cold = args.iter().any(|a| a == "--cold");
    let formats: Vec<FormatVersion> = match args
        .iter()
        .position(|a| a == "--format")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("both") => vec![FormatVersion::V1, FormatVersion::V2],
        Some("v1") | Some("1") => vec![FormatVersion::V1],
        Some("v2") | Some("2") => vec![FormatVersion::V2],
        Some(other) => {
            eprintln!("storagefmt: unknown format {other:?} (use v1, v2 or both)");
            std::process::exit(2);
        }
    };
    let runs = bench::env_usize("ARB_RUNS", 3);

    let elems = bench::env_usize("ARB_TREEBANK_ELEMS", 100_000);
    let mut labels = LabelTable::new();
    let tree = treebank::treebank_tree(
        &treebank::TreebankConfig {
            target_elems: elems,
            seed: 0x7133,
            filler_tags: 246,
        },
        &mut labels,
    );
    let n = tree.len();
    println!("storage formats on treebank-{elems} ({n} nodes), {runs} run(s) per scan");
    let can_cold = cold && drop_page_cache();
    if cold && !can_cold {
        println!("note: cannot drop the page cache (needs root) — cold pass skipped");
    }

    let mut streams: Vec<(FormatVersion, Vec<NodeRecord>)> = Vec::new();
    let mut v1_bytes = None;
    for &format in &formats {
        let path = bench::data_dir().join(format!("storagefmt-{elems}-{format}.arb"));
        // Recreate every run: creation time is part of the comparison.
        let _ = std::fs::remove_file(&path);
        let t = Instant::now();
        arb_storage::create_from_tree_with(&tree, &labels, &path, format).expect("create database");
        let create_s = t.elapsed().as_secs_f64();
        let db = ArbDatabase::open(&path).expect("open database");
        let ratio = match (format, v1_bytes) {
            (FormatVersion::V1, _) => {
                v1_bytes = Some(db.file_bytes());
                String::new()
            }
            (FormatVersion::V2, Some(b1)) => {
                format!(" ({:.2}x of v1)", db.file_bytes() as f64 / b1 as f64)
            }
            (FormatVersion::V2, None) => String::new(),
        };
        println!(
            "\n{format}: create {:>8.2} ms, {} file bytes{ratio}",
            create_s * 1e3,
            db.file_bytes()
        );

        let passes: &[&str] = if can_cold {
            &["cold", "warm"]
        } else {
            &["warm"]
        };
        let mut stream = Vec::new();
        for &pass in passes {
            let mut bwd = 0.0f64;
            let mut fwd = 0.0f64;
            let pass_runs = if pass == "cold" { 1 } else { runs };
            for _ in 0..pass_runs {
                if pass == "cold" {
                    drop_page_cache();
                }
                let (b, f, recs) = timed_scans(&db);
                bwd += b;
                fwd += f;
                stream = recs;
            }
            bwd /= pass_runs as f64;
            fwd /= pass_runs as f64;
            println!(
                "{format} {pass}: backward {:>8.2} ms ({:>6.1} M nodes/s), \
                 forward {:>8.2} ms ({:>6.1} M nodes/s)",
                bwd * 1e3,
                n as f64 / bwd / 1e6,
                fwd * 1e3,
                n as f64 / fwd / 1e6,
            );
        }
        if format == FormatVersion::V2 {
            println!("v2: {} blocks decoded over all scans", db.blocks_decoded());
        }
        streams.push((format, stream));
    }

    if let [(_, a), (_, b)] = streams.as_slice() {
        assert_eq!(a, b, "v1 and v2 record streams must be identical");
        println!("\nv1 and v2 record streams identical ({n} records)");
    }
}
