//! # arb-bench
//!
//! Shared harness for the benchmark binaries that regenerate the paper's
//! tables and figures (see `DESIGN.md` for the experiment index):
//!
//! * `fig5` — database creation statistics (paper Figure 5),
//! * `fig6 [treebank|acgt-flat|acgt-infix|all]` — the three benchmark
//!   families of paper Figure 6,
//! * `baseline` — two-phase automata vs. naive datalog vs. direct XPath,
//! * `multiquery` — several queries in one program (paper §7),
//! * `parallel` — parallel bottom-up evaluation on balanced trees (§6.2),
//! * `sharded` — per-thread scaling of the sharded **disk** path
//!   (`ARB_THREADS`/`--threads` picks the worker counts; every run
//!   asserts equality with the sequential pass),
//! * `ablation` — memoization and residual-program-size ablations (also
//!   asserts the "no hash tables" configuration keeps the δ tables
//!   empty),
//! * `regress` — regression tracking against the committed baselines in
//!   `crates/bench/baselines/regress.txt` (`--check` in nightly CI;
//!   `--write` after an intentional behavior change). Pinned workloads,
//!   exact comparison for deterministic counters, 3x budget for times.
//!
//! The criterion benches (`cargo bench -p arb-bench --bench <name>`):
//! `interning` (state-table pressure of the automata hot path: phase
//! sweeps + isolated interner replay on treebank/ACGT), `ltur`,
//! `storage`, `twophase`, `xpath`.
//!
//! Scaling: the paper's databases are large (up to 300M nodes). The
//! harness defaults to laptop/CI-friendly sizes and scales up via
//! environment variables:
//!
//! * `ARB_ACGT_LOG2` — ACGT sequence length is `2^k − 1` (default 17;
//!   paper: 25),
//! * `ARB_TREEBANK_ELEMS` — treebank element-node target (default
//!   100_000; paper: 2_447_728),
//! * `ARB_SWISSPROT_ENTRIES` — Swissprot entries (default 5_000),
//! * `ARB_QUERIES` — random queries per size row (default 5; paper: 25),
//! * `ARB_SIZES` — `lo..=hi` query-size range (default `5..=15`).

use arb_datagen::{acgt, queries::RandomPathQuery, swissprot, treebank};
use arb_engine::evaluate_disk;
use arb_storage::{ArbDatabase, CreationStats};
use arb_tmnf::{normalize, parse_program, CoreProgram};
use arb_tree::{BinaryTree, LabelTable};
use std::path::PathBuf;

/// Reads a `usize` environment knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The query-size range (paper: 5..=15).
pub fn size_range() -> (usize, usize) {
    match std::env::var("ARB_SIZES") {
        Ok(v) => {
            let parts: Vec<&str> = v.split("..=").collect();
            match parts.as_slice() {
                [lo, hi] => (lo.parse().unwrap_or(5), hi.parse().unwrap_or(15)),
                _ => (5, 15),
            }
        }
        Err(_) => (5, 15),
    }
}

/// Directory for benchmark databases (kept across runs).
pub fn data_dir() -> PathBuf {
    let dir = std::env::var("ARB_DATA_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("arb-bench-data"));
    std::fs::create_dir_all(&dir).expect("create data dir");
    dir
}

/// A generated benchmark database: on-disk `.arb` plus its label table.
pub struct BenchDb {
    /// Opened database.
    pub db: ArbDatabase,
    /// Label table (queries intern against a clone of this).
    pub labels: LabelTable,
    /// Human-readable name.
    pub name: String,
    /// Where the `.arb` file lives (the resident-server benches re-open
    /// it by path).
    pub path: PathBuf,
}

fn materialize(name: &str, tree: &BinaryTree, labels: &LabelTable) -> BenchDb {
    materialize_as(name, tree, labels, arb_storage::FormatVersion::default())
}

/// Like the private `materialize` but pinning the on-disk format (the storage
/// format benches compare v1 against v2 on identical trees). A stale or
/// corrupt cached file (v2 is variable-size, so a length check can't
/// decide freshness) is detected by opening it and comparing node count
/// and format; mismatch or open failure triggers recreation.
pub fn materialize_as(
    name: &str,
    tree: &BinaryTree,
    labels: &LabelTable,
    format: arb_storage::FormatVersion,
) -> BenchDb {
    let path = data_dir().join(format!("{name}-{format}.arb"));
    let fresh = match ArbDatabase::open(&path) {
        Ok(db) => {
            db.node_count() as usize != tree.len()
                || db.format_version() != expected_version(format)
        }
        Err(_) => true,
    };
    if fresh {
        arb_storage::create_from_tree_with(tree, labels, &path, format).expect("create database");
    }
    BenchDb {
        db: ArbDatabase::open(&path).expect("open database"),
        labels: labels.clone(),
        name: name.to_string(),
        path,
    }
}

fn expected_version(format: arb_storage::FormatVersion) -> u8 {
    match format {
        arb_storage::FormatVersion::V1 => 1,
        arb_storage::FormatVersion::V2 => 2,
    }
}

/// The synthetic Treebank database (see DESIGN.md substitutions).
pub fn treebank_db() -> BenchDb {
    let elems = env_usize("ARB_TREEBANK_ELEMS", 100_000);
    let mut labels = LabelTable::new();
    let tree = treebank::treebank_tree(
        &treebank::TreebankConfig {
            target_elems: elems,
            seed: 0x7133,
            filler_tags: 246,
        },
        &mut labels,
    );
    materialize(&format!("treebank-{elems}"), &tree, &labels)
}

/// ACGT-flat (paper §6.1), scaled by `ARB_ACGT_LOG2`.
pub fn acgt_flat_db() -> BenchDb {
    let log2 = env_usize("ARB_ACGT_LOG2", 17) as u32;
    let seq = acgt::random_acgt(log2, 0xD2A);
    let mut labels = LabelTable::new();
    let tree = acgt::acgt_flat_tree(&seq, &mut labels);
    materialize(&format!("acgt-flat-{log2}"), &tree, &labels)
}

/// ACGT-infix (paper §6.1), scaled by `ARB_ACGT_LOG2`.
pub fn acgt_infix_db() -> BenchDb {
    let log2 = env_usize("ARB_ACGT_LOG2", 17) as u32;
    let seq = acgt::random_acgt(log2, 0xD2A);
    let mut labels = LabelTable::new();
    let tree = acgt::acgt_infix_tree(&seq, &mut labels);
    materialize(&format!("acgt-infix-{log2}"), &tree, &labels)
}

/// The synthetic Swissprot tree (Figure 5 only).
pub fn swissprot_tree_and_labels() -> (BinaryTree, LabelTable) {
    let entries = env_usize("ARB_SWISSPROT_ENTRIES", 5_000);
    let mut labels = LabelTable::new();
    let tree = swissprot::swissprot_tree(
        &swissprot::SwissprotConfig {
            entries,
            seed: 0x5072,
        },
        &mut labels,
    );
    (tree, labels)
}

/// Compiles a random path query against a database's label space.
pub fn compile_query(q: &RandomPathQuery, r: &str, labels: &mut LabelTable) -> CoreProgram {
    let src = q.to_program(r);
    let ast = parse_program(&src, labels).expect("generated query parses");
    let mut prog = normalize(&ast);
    let qp = prog.pred_id("QUERY").expect("QUERY head");
    prog.add_query_pred(qp);
    prog
}

/// One Figure-6 row: averages over a batch of queries on a disk database.
pub struct Fig6Row {
    /// Query size (column 1).
    pub size: usize,
    /// Averaged statistics.
    pub idb: f64,
    /// Average rule count.
    pub rules: f64,
    /// Average phase-1 seconds.
    pub t1: f64,
    /// Average phase-1 transitions.
    pub tr1: f64,
    /// Average phase-2 seconds.
    pub t2: f64,
    /// Average phase-2 transitions.
    pub tr2: f64,
    /// Average total seconds.
    pub total: f64,
    /// Average selected node count.
    pub selected: f64,
    /// Average memory KiB.
    pub mem_kib: f64,
}

impl Fig6Row {
    /// The Figure 6 header.
    pub fn header() -> &'static str {
        " size  |IDB|    |P|     t1(s)     trans1     t2(s)     trans2   total(s)    selected   mem(KiB)"
    }

    /// Formats like a paper row.
    pub fn display(&self) -> String {
        format!(
            "{:>5} {:>6.1} {:>6.1} {:>9.3} {:>10.1} {:>9.3} {:>10.1} {:>10.3} {:>11.1} {:>10.1}",
            self.size,
            self.idb,
            self.rules,
            self.t1,
            self.tr1,
            self.t2,
            self.tr2,
            self.total,
            self.selected,
            self.mem_kib
        )
    }
}

/// Runs one row: `count` random queries of `size` with step expression
/// `r` over `alphabet` against the database.
pub fn fig6_row(
    bench: &BenchDb,
    size: usize,
    count: usize,
    alphabet: &[&str],
    shape: arb_datagen::RegexShape,
    r: &str,
    seed: u64,
) -> Fig6Row {
    let batch = RandomPathQuery::batch(count, size, alphabet, shape, seed + size as u64);
    let mut acc = Fig6Row {
        size,
        idb: 0.0,
        rules: 0.0,
        t1: 0.0,
        tr1: 0.0,
        t2: 0.0,
        tr2: 0.0,
        total: 0.0,
        selected: 0.0,
        mem_kib: 0.0,
    };
    for q in &batch {
        let mut labels = bench.labels.clone();
        let prog = compile_query(q, r, &mut labels);
        let outcome = evaluate_disk(&prog, &bench.db).expect("evaluation");
        let s = &outcome.stats;
        acc.idb += s.idb_count as f64;
        acc.rules += s.rule_count as f64;
        acc.t1 += s.phase1_time.as_secs_f64();
        acc.tr1 += s.phase1_transitions as f64;
        acc.t2 += s.phase2_time.as_secs_f64();
        acc.tr2 += s.phase2_transitions as f64;
        acc.total += s.total_time().as_secs_f64();
        acc.selected += s.selected as f64;
        acc.mem_kib += s.memory_bytes as f64 / 1024.0;
    }
    let n = batch.len() as f64;
    acc.idb /= n;
    acc.rules /= n;
    acc.t1 /= n;
    acc.tr1 /= n;
    acc.t2 /= n;
    acc.tr2 /= n;
    acc.total /= n;
    acc.selected /= n;
    acc.mem_kib /= n;
    acc
}

/// Serializes a tree to an XML file (used by `fig5` so database creation
/// is measured end-to-end from XML, as in the paper).
pub fn tree_to_xml_file(tree: &BinaryTree, labels: &LabelTable, path: &PathBuf) {
    let f = std::fs::File::create(path).expect("create xml");
    let mut w = std::io::BufWriter::with_capacity(1 << 20, f);
    arb_xml::write_tree(tree, labels, &mut w).expect("write xml");
    use std::io::Write;
    w.flush().expect("flush xml");
}

/// Reports a creation-statistics table row after building `name.arb`
/// from an XML serialization of the tree.
pub fn fig5_entry(name: &str, tree: &BinaryTree, labels: &LabelTable) -> CreationStats {
    let dir = data_dir();
    let xml_path = dir.join(format!("{name}.xml"));
    tree_to_xml_file(tree, labels, &xml_path);
    let arb_path = dir.join(format!("{name}-fig5.arb"));
    let reader = std::io::BufReader::with_capacity(
        1 << 20,
        std::fs::File::open(&xml_path).expect("open xml"),
    );
    let (stats, _labels) =
        arb_storage::create_from_xml(reader, &arb_xml::XmlConfig::default(), &arb_path)
            .expect("create database");
    stats
}
