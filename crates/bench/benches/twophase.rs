//! End-to-end two-phase evaluation throughput (nodes/second), in memory,
//! plus the cost of a single lazily computed transition.

use arb_core::{evaluate_tree, QueryAutomata};
use arb_datagen::queries::{RandomPathQuery, R_TOP_DOWN};
use arb_datagen::{treebank_tree, RegexShape, TreebankConfig};
use arb_tmnf::{normalize, parse_program};
use arb_tree::LabelTable;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_two_phase(c: &mut Criterion) {
    let mut labels = LabelTable::new();
    let tree = treebank_tree(
        &TreebankConfig {
            target_elems: 20_000,
            seed: 3,
            filler_tags: 50,
        },
        &mut labels,
    );
    let q = RandomPathQuery::batch(1, 7, &["NP", "VP", "PP", "S"], RegexShape::Tags, 1)
        .pop()
        .unwrap();
    let src = q.to_program(R_TOP_DOWN);
    let ast = parse_program(&src, &mut labels).unwrap();
    let prog = normalize(&ast);

    let mut g = c.benchmark_group("two_phase");
    g.throughput(Throughput::Elements(tree.len() as u64));
    g.sample_size(20);
    g.bench_function("treebank_size7", |b| {
        b.iter(|| black_box(evaluate_tree(&prog, &tree)));
    });
    g.finish();

    // Isolated transition cost (cold cache each iteration).
    let mut g = c.benchmark_group("transition");
    let info = tree.info(tree.root());
    g.bench_function("leaf_transition_cold", |b| {
        b.iter(|| {
            let mut qa = QueryAutomata::new(&prog);
            black_box(qa.bottom_up(None, None, info))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_two_phase);
criterion_main!(benches);
