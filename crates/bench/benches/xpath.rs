//! XPath pipeline costs: parsing, compilation to TMNF, and evaluation by
//! the automata vs. the direct node-at-a-time baseline.

use arb_datagen::{treebank_tree, TreebankConfig};
use arb_tree::LabelTable;
use arb_xpath::{compile_path, parse_xpath, DirectEvaluator};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_xpath(c: &mut Criterion) {
    let src = "//S[NP and not(PP)]//VP";
    c.bench_function("xpath_parse", |b| {
        b.iter(|| black_box(parse_xpath(src).unwrap()));
    });

    let path = parse_xpath(src).unwrap();
    c.bench_function("xpath_compile", |b| {
        b.iter(|| {
            let mut lt = LabelTable::new();
            black_box(compile_path(&path, &mut lt))
        });
    });

    let mut labels = LabelTable::new();
    let tree = treebank_tree(
        &TreebankConfig {
            target_elems: 5_000,
            seed: 8,
            filler_tags: 20,
        },
        &mut labels,
    );
    let mut lt = labels.clone();
    let prog = compile_path(&path, &mut lt);
    let mut g = c.benchmark_group("xpath_eval");
    g.sample_size(20);
    g.bench_function("two_phase", |b| {
        b.iter(|| black_box(arb_core::evaluate_tree(&prog, &tree).stats.selected));
    });
    g.bench_function("direct", |b| {
        b.iter(|| {
            let mut ev = DirectEvaluator::new(&tree, &labels);
            black_box(ev.evaluate(&path).count())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_xpath);
criterion_main!(benches);
