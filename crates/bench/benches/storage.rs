//! Storage-model throughput: database creation and the two linear scans
//! of Proposition 5.1.

use arb_datagen::{acgt_flat_xml, random_acgt};
use arb_storage::{bottom_up_scan, create_from_xml, ArbDatabase};
use arb_xml::XmlConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::io::Cursor;

fn bench_storage(c: &mut Criterion) {
    let seq = random_acgt(16, 9); // 65_535 symbols
    let xml = acgt_flat_xml(&seq);
    let dir = std::env::temp_dir().join("arb-criterion");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.arb");

    let mut g = c.benchmark_group("storage");
    g.throughput(Throughput::Elements(seq.len() as u64 + 1));
    g.sample_size(20);
    g.bench_function("create_from_xml", |b| {
        b.iter(|| {
            create_from_xml(Cursor::new(xml.as_bytes()), &XmlConfig::default(), &path).unwrap()
        });
    });

    create_from_xml(Cursor::new(xml.as_bytes()), &XmlConfig::default(), &path).unwrap();
    let db = ArbDatabase::open(&path).unwrap();
    g.bench_function("forward_scan", |b| {
        b.iter(|| {
            let mut scan = db.forward_scan().unwrap();
            let mut count = 0u64;
            while let Some((_, rec)) = scan.next_record().unwrap() {
                count += rec.has_first as u64;
            }
            black_box(count)
        });
    });
    g.bench_function("backward_bottom_up", |b| {
        b.iter(|| {
            let mut scan = db.backward_scan().unwrap();
            black_box(bottom_up_scan(&mut scan, |_: Option<u32>, _, _, ix| ix).unwrap())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
