//! State-table pressure of the automata interning hot path (ROADMAP
//! "hot-path profiling" item): the per-node cost of the four hash tables
//! on the two workload families of paper Figure 6.
//!
//! * `phase1/*` — the full in-memory bottom-up sweep: in steady state
//!   one fused δ_A probe per node (treebank: few states, hundreds of
//!   labels collapsed by the schema abstraction; acgt-infix: many
//!   states, heavy interning).
//! * `phase2/*` — the top-down sweep over precomputed phase-1 states
//!   (δ_B probes + predicate-set interning).
//! * `intern/*` — the interners in isolation, replaying the state
//!   tables a real run produces (re-intern pressure of the parallel
//!   remap paths).
//!
//! Sizes follow the usual env knobs (`ARB_TREEBANK_ELEMS`,
//! `ARB_ACGT_LOG2`) so CI's bench-smoke can run this on tiny inputs.

use arb_bench::env_usize;
use arb_core::QueryAutomata;
use arb_datagen::queries::{RandomPathQuery, R_INFIX, R_TOP_DOWN};
use arb_datagen::{acgt, treebank_tree, RegexShape, TreebankConfig};
use arb_logic::{PredSetId, PredSetInterner, ProgramId, ProgramInterner};
use arb_tmnf::{normalize, parse_program, CoreProgram};
use arb_tree::{BinaryTree, LabelTable, NodeId};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn compile(src: &str, labels: &mut LabelTable) -> CoreProgram {
    let ast = parse_program(src, labels).unwrap();
    let mut prog = normalize(&ast);
    if let Some(q) = prog.pred_id("QUERY") {
        prog.add_query_pred(q);
    }
    prog
}

fn treebank_workload() -> (BinaryTree, CoreProgram) {
    let mut labels = LabelTable::new();
    let tree = treebank_tree(
        &TreebankConfig {
            target_elems: env_usize("ARB_TREEBANK_ELEMS", 20_000),
            seed: 3,
            filler_tags: 50,
        },
        &mut labels,
    );
    let q = RandomPathQuery::batch(1, 7, &["NP", "VP", "PP", "S"], RegexShape::Tags, 1)
        .pop()
        .unwrap();
    let prog = compile(&q.to_program(R_TOP_DOWN), &mut labels);
    (tree, prog)
}

fn acgt_workload() -> (BinaryTree, CoreProgram) {
    let log2 = env_usize("ARB_ACGT_LOG2", 14) as u32;
    let seq = acgt::random_acgt(log2, 0xD2A);
    let mut labels = LabelTable::new();
    let tree = acgt::acgt_infix_tree(&seq, &mut labels);
    let q = RandomPathQuery::batch(1, 7, &["A", "C", "G", "T"], RegexShape::Tags, 5)
        .pop()
        .unwrap();
    let prog = compile(&q.to_program(R_INFIX), &mut labels);
    (tree, prog)
}

/// One phase-1 sweep (the interning hot path: one fused probe per node
/// in steady state). Returns the automata and the per-node states.
fn phase1_sweep(prog: &CoreProgram, tree: &BinaryTree) -> (QueryAutomata, Vec<ProgramId>) {
    let mut qa = QueryAutomata::new(prog);
    let mut states = vec![ProgramId(0); tree.len()];
    for ix in (0..tree.len() as u32).rev() {
        let v = NodeId(ix);
        let s1 = tree.first_child(v).map(|c| states[c.ix()]);
        let s2 = tree.second_child(v).map(|c| states[c.ix()]);
        states[v.ix()] = qa.bottom_up(s1, s2, tree.info(v));
    }
    (qa, states)
}

/// One top-down sweep over precomputed phase-1 states (δ_B probes +
/// predicate-set interning — the phase-2 share of the hot path).
fn phase2_sweep(qa: &mut QueryAutomata, rho_a: &[ProgramId], tree: &BinaryTree) -> Vec<PredSetId> {
    let mut rho_b = vec![PredSetId(0); tree.len()];
    rho_b[0] = qa.start_state(rho_a[0]);
    for ix in 0..tree.len() as u32 {
        let v = NodeId(ix);
        let q = rho_b[v.ix()];
        if let Some(ch) = tree.first_child(v) {
            rho_b[ch.ix()] = qa.top_down(q, rho_a[ch.ix()], 1);
        }
        if let Some(ch) = tree.second_child(v) {
            rho_b[ch.ix()] = qa.top_down(q, rho_a[ch.ix()], 2);
        }
    }
    rho_b
}

fn bench_interning(c: &mut Criterion) {
    for (name, tree, prog) in [
        ("treebank", treebank_workload()),
        ("acgt-infix", acgt_workload()),
    ]
    .map(|(n, (t, p))| (n, t, p))
    {
        // Phase-1 sweep: δ_A + program interning pressure.
        let mut g = c.benchmark_group("phase1");
        g.throughput(Throughput::Elements(tree.len() as u64));
        g.sample_size(15);
        g.bench_function(name, |b| b.iter(|| black_box(phase1_sweep(&prog, &tree))));
        g.finish();

        // Phase-2 sweep on warm tables: only the top-down pass is inside
        // the timer (phase 1 runs once, outside; an explicit warm-up pass
        // populates δ_B so the measured iterations are steady-state
        // probes).
        let (mut qa, rho_a) = phase1_sweep(&prog, &tree);
        phase2_sweep(&mut qa, &rho_a, &tree);
        let mut g = c.benchmark_group("phase2");
        g.throughput(Throughput::Elements(tree.len() as u64));
        g.sample_size(15);
        g.bench_function(name, |b| {
            b.iter(|| black_box(phase2_sweep(&mut qa, &rho_a, &tree)))
        });
        g.finish();

        // Interners in isolation: replay the run's state tables — the
        // master-side work of the parallel remap paths.
        let programs: Vec<_> = (0..qa.programs.len() as u32)
            .map(|i| qa.programs.get(ProgramId(i)).clone())
            .collect();
        let predsets: Vec<_> = (0..qa.predsets.len() as u32)
            .map(|i| qa.predsets.get(PredSetId(i)).to_owned())
            .collect();
        let mut g = c.benchmark_group("intern");
        g.throughput(Throughput::Elements(
            (programs.len() + predsets.len()) as u64,
        ));
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut pi = ProgramInterner::new();
                let mut si = PredSetInterner::new();
                // Two passes: the second is all hits (the steady state of
                // worker→master re-interning).
                for _ in 0..2 {
                    for p in &programs {
                        black_box(pi.intern_ref(p));
                    }
                    for s in &predsets {
                        black_box(si.intern_sorted(s.atoms()));
                    }
                }
                (pi.len(), si.len())
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_interning);
criterion_main!(benches);
