//! Microbenchmarks for the propositional machinery: LTUR unit resolution
//! and ContractProgram — the per-transition cost drivers of the lazy
//! automata.

use arb_logic::{contract, ltur, Atom, LturScratch, Program, Rule};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// A chain program P0<-; P1<-P0; ...; Pn<-Pn-1 plus branching rules.
fn chain_program(n: u32) -> Vec<Rule> {
    let mut rules = vec![Rule::fact(Atom::local(0))];
    for i in 1..n {
        rules.push(Rule::new(Atom::local(i), vec![Atom::local(i - 1)]));
        if i >= 2 {
            rules.push(Rule::new(
                Atom::local(i),
                vec![Atom::local(i - 1), Atom::local(i - 2)],
            ));
        }
    }
    rules
}

/// A contraction workload: k sup-headed chains feeding local heads.
fn contract_program(k: u32) -> Program {
    let mut rules = Vec::new();
    for i in 0..k {
        rules.push(Rule::new(Atom::local(i), vec![Atom::sup1(i)]));
        for j in 0..4 {
            let from = Atom::sup1(k + i * 5 + j);
            let to = if j == 0 {
                Atom::sup1(i)
            } else {
                Atom::sup1(k + i * 5 + j - 1)
            };
            rules.push(Rule::new(to, vec![from]));
        }
        rules.push(Rule::new(
            Atom::sup1(k + i * 5 + 3),
            vec![Atom::local(k + i)],
        ));
    }
    Program::canonical(rules)
}

fn bench_ltur(c: &mut Criterion) {
    let mut g = c.benchmark_group("ltur");
    for n in [16u32, 64, 256] {
        let rules = chain_program(n);
        let mut scratch = LturScratch::new();
        g.bench_with_input(BenchmarkId::new("chain", n), &rules, |b, rules| {
            b.iter(|| black_box(ltur(&[rules], &mut scratch)));
        });
    }
    g.finish();
}

fn bench_contract(c: &mut Criterion) {
    let mut g = c.benchmark_group("contract");
    for k in [4u32, 16, 64] {
        let p = contract_program(k);
        g.bench_with_input(BenchmarkId::new("chains", k), &p, |b, p| {
            b.iter(|| black_box(contract(p)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ltur, bench_contract);
criterion_main!(benches);
