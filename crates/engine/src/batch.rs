//! Batched multi-query evaluation (paper §7).
//!
//! A [`QueryBatch`] holds k compiled [`Query`] values merged into one
//! strict TMNF program at the IR level ([`arb_tmnf::merge_programs`]).
//! Evaluating the batch runs the merged program through the ordinary
//! two-phase machinery — **one** backward linear scan and **one** forward
//! linear scan for the whole batch, regardless of k (assert via the
//! `backward_scans` / `forward_scans` counters of
//! [`EvalStats`]) — and demultiplexes the node
//! annotations back into one [`QueryOutcome`] per input query.

use crate::diskeval::Phase2Hook;
use crate::query::{Query, QueryLanguage};
use crate::QueryOutcome;
use arb_core::{AutomataPool, EvalStats};
use arb_logic::Atom;
use arb_storage::ArbDatabase;
use arb_tmnf::{merge_programs, CoreProgram, PredId};
use arb_tree::NodeSet;
use std::io;

/// Per-query bookkeeping inside a batch.
struct BatchEntry {
    /// The merged-program ids of this query's query predicates.
    query_preds: Vec<PredId>,
    /// Source language of the input query (`None` for raw programs).
    language: Option<QueryLanguage>,
    /// Original query text (empty for raw programs).
    source: String,
    /// `|IDB|` of the *input* program (per-query Figure 6 accounting).
    idb_count: usize,
    /// `|P|` of the input program.
    rule_count: usize,
}

/// A batch of compiled queries merged into one multi-query program.
pub struct QueryBatch {
    merged: CoreProgram,
    entries: Vec<BatchEntry>,
}

impl QueryBatch {
    /// Merges compiled queries into a batch.
    ///
    /// **Precondition (unchecked):** all queries must have been compiled
    /// against the *same* database — label tests are interned as raw
    /// label ids, so a query compiled against a different label table
    /// would silently test the wrong tags when the batch is evaluated.
    pub fn new(queries: &[Query]) -> Self {
        let refs: Vec<&Query> = queries.iter().collect();
        Self::from_query_refs(&refs)
    }

    /// [`QueryBatch::new`] over borrowed queries — the entry point for
    /// callers (e.g. the resident query service's prepared-program
    /// cache) that share compiled [`Query`] values behind `Arc`s and
    /// merge a different subset per admission window. The same
    /// label-space precondition applies.
    pub fn from_query_refs(queries: &[&Query]) -> Self {
        let progs: Vec<&CoreProgram> = queries.iter().map(|q| &q.prog).collect();
        let merged = merge_programs(&progs);
        let entries = queries
            .iter()
            .zip(merged.query_preds.iter())
            .map(|(q, qs)| BatchEntry {
                query_preds: qs.clone(),
                language: Some(q.language),
                source: q.source.clone(),
                idb_count: q.idb_count(),
                rule_count: q.rule_count(),
            })
            .collect();
        QueryBatch {
            merged: merged.program,
            entries,
        }
    }

    /// Merges raw strict TMNF programs (each with its query predicates
    /// already chosen) into a batch — the entry point for harnesses that
    /// compile [`CoreProgram`]s directly. The same label-space
    /// precondition as [`QueryBatch::new`] applies.
    pub fn from_programs(progs: &[CoreProgram]) -> Self {
        let refs: Vec<&CoreProgram> = progs.iter().collect();
        let merged = merge_programs(&refs);
        let entries = progs
            .iter()
            .zip(merged.query_preds.iter())
            .map(|(p, qs)| BatchEntry {
                query_preds: qs.clone(),
                language: None,
                source: String::new(),
                idb_count: p.pred_count(),
                rule_count: p.rule_count(),
            })
            .collect();
        QueryBatch {
            merged: merged.program,
            entries,
        }
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The merged multi-query program.
    pub fn merged_program(&self) -> &CoreProgram {
        &self.merged
    }

    /// The merged-program query predicates of query `i`.
    pub fn query_preds(&self, i: usize) -> &[PredId] {
        &self.entries[i].query_preds
    }

    /// The source language of query `i` (`None` for raw programs).
    pub fn language(&self, i: usize) -> Option<QueryLanguage> {
        self.entries[i].language
    }

    /// The source text of query `i` (empty for raw programs).
    pub fn source(&self, i: usize) -> &str {
        &self.entries[i].source
    }

    /// The query atoms of every entry, in batch order.
    pub(crate) fn query_atoms(&self) -> Vec<Vec<Atom>> {
        self.entries
            .iter()
            .map(|e| e.query_preds.iter().map(|&p| Atom::local(p)).collect())
            .collect()
    }

    /// Demultiplexes the merged outcome plus per-query node sets into
    /// per-query [`QueryOutcome`]s.
    pub(crate) fn demux(
        &self,
        shared: &EvalStats,
        merged_counts: &[u64],
        sets: Vec<NodeSet>,
    ) -> Vec<QueryOutcome> {
        let mut outcomes = Vec::with_capacity(self.entries.len());
        let mut offset = 0usize;
        for (entry, selected) in self.entries.iter().zip(sets) {
            let per_pred_counts = merged_counts[offset..offset + entry.query_preds.len()].to_vec();
            offset += entry.query_preds.len();
            let mut stats = shared.clone();
            // Per-query |IDB| / |P| reflect the *input* program; times,
            // transitions and scan counters are those of the shared pass
            // (the scans are shared, not repeated per query).
            stats.idb_count = entry.idb_count;
            stats.rule_count = entry.rule_count;
            stats.selected = selected.count() as u64;
            outcomes.push(QueryOutcome {
                stats,
                selected,
                per_pred_counts,
            });
        }
        outcomes
    }
}

/// The result of evaluating a [`QueryBatch`]: the statistics of the one
/// shared two-scan pass over the merged program, plus one demultiplexed
/// [`QueryOutcome`] per input query.
pub struct BatchOutcome {
    /// Statistics of the shared pass (`backward_scans == 1`,
    /// `forward_scans == 1`, `selected` counts the union).
    pub stats: EvalStats,
    /// Per-query outcomes, in batch order.
    pub outcomes: Vec<QueryOutcome>,
}

fn empty_batch_err() -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        "cannot evaluate an empty query batch",
    )
}

/// Evaluates a batch over a disk database with one backward and one
/// forward linear scan shared by all queries. Pass a `hook` to observe
/// every node's merged predicate set in document order during phase 2
/// (e.g. to emit marked XML while the batch evaluates).
pub fn evaluate_disk_batch_with_hook(
    batch: &QueryBatch,
    db: &ArbDatabase,
    hook: Option<Phase2Hook<'_>>,
) -> io::Result<BatchOutcome> {
    evaluate_disk_batch_opts(batch, db, 1, hook)
}

/// Snapshot of an [`AutomataPool`]'s lifetime counters, used to stamp
/// one run's build/reuse deltas into its [`EvalStats`] — a session (or a
/// cached server window) shares one pool across many runs, so per-run
/// stats must be differences, not lifetime totals.
struct PoolMark {
    builds: u64,
    reused: u64,
    build_time: std::time::Duration,
}

impl PoolMark {
    fn take(pool: &AutomataPool) -> Self {
        PoolMark {
            builds: pool.builds(),
            reused: pool.reused(),
            build_time: pool.build_time(),
        }
    }

    /// Stamps the delta since the mark into `stats`.
    fn stamp(&self, pool: &AutomataPool, stats: &mut EvalStats) {
        stats.automata_builds = pool.builds() - self.builds;
        stats.automata_reused = pool.reused() - self.reused;
        stats.automata_build_time = pool.build_time().saturating_sub(self.build_time);
    }
}

/// [`evaluate_disk_batch_with_hook`] with a thread count: `threads > 1`
/// shards the two-phase pass over a frontier of disjoint subtree record
/// windows (paper §6.2 on disk — see
/// [`diskeval`](crate::diskeval#sharded-evaluation)). Results are
/// identical to the sequential pass; degenerate documents fall back to
/// it automatically.
pub fn evaluate_disk_batch_opts(
    batch: &QueryBatch,
    db: &ArbDatabase,
    threads: usize,
    hook: Option<Phase2Hook<'_>>,
) -> io::Result<BatchOutcome> {
    evaluate_disk_batch_opts_sta(
        batch,
        db,
        threads,
        hook,
        arb_storage::StaFormat::from_env(),
        &AutomataPool::new(),
    )
}

/// [`evaluate_disk_batch_opts`] with an explicit `.sta` stream format
/// and a caller-owned [`AutomataPool`] — the session surface resolves
/// `EvalOptions::sta_format` (falling back to `ARB_STA_FORMAT`) and
/// hands down its own pool so repeated runs reuse warm automata. The
/// run's build/reuse deltas against the pool are stamped into the
/// returned stats (shared and per-query).
pub(crate) fn evaluate_disk_batch_opts_sta(
    batch: &QueryBatch,
    db: &ArbDatabase,
    threads: usize,
    hook: Option<Phase2Hook<'_>>,
    format: arb_storage::StaFormat,
    pool: &AutomataPool,
) -> io::Result<BatchOutcome> {
    if batch.is_empty() {
        return Err(empty_batch_err());
    }
    let mark = PoolMark::take(pool);
    // The grouped kernel tests each query atom once per node and fills
    // one node set per query directly inside the phase-2 scan.
    let groups = batch.query_atoms();
    let (mut merged_outcome, group_sets) = if threads > 1 {
        crate::diskeval::evaluate_disk_grouped_parallel(
            &batch.merged,
            db,
            &groups,
            hook,
            threads,
            format,
            pool,
        )?
    } else {
        crate::diskeval::evaluate_disk_grouped(&batch.merged, db, &groups, hook, format, pool)?
    };
    merged_outcome.stats.batch_size = batch.len() as u64;
    mark.stamp(pool, &mut merged_outcome.stats);
    // A single-query batch gets its set back as the union.
    let group_sets = if group_sets.is_empty() {
        vec![merged_outcome.selected.clone()]
    } else {
        group_sets
    };
    let outcomes = batch.demux(
        &merged_outcome.stats,
        &merged_outcome.per_pred_counts,
        group_sets,
    );
    Ok(BatchOutcome {
        stats: merged_outcome.stats,
        outcomes,
    })
}

/// [`evaluate_disk_batch_with_hook`] without a hook.
pub fn evaluate_disk_batch(batch: &QueryBatch, db: &ArbDatabase) -> io::Result<BatchOutcome> {
    evaluate_disk_batch_with_hook(batch, db, None)
}

/// Evaluates a batch over an in-memory tree with one shared two-sweep
/// pass of the merged program (the memory counterpart of
/// [`evaluate_disk_batch`]; see also [`arb_core::evaluate_tree_batch`]
/// for the raw-program variant used by the differential suites).
pub fn evaluate_tree_batch(
    batch: &QueryBatch,
    tree: &arb_tree::BinaryTree,
) -> io::Result<BatchOutcome> {
    evaluate_tree_batch_opts(batch, tree, 1, None, &AutomataPool::new())
}

/// [`evaluate_tree_batch`] with knobs: `threads > 1` runs the phase-1/2
/// sweeps through [`arb_core::evaluate_tree_parallel_with`] over a
/// subtree frontier (the Section 6.2 case study), and a `hook` observes
/// every node in document order with a synthesized record and per-query
/// selection flags — the in-memory twin of the disk phase-2 hook, so
/// streaming sinks work identically on both backends. The master
/// automata and every worker's come from (and return to) `pool`, so a
/// session-owned pool keeps the interned δ tables warm across runs.
pub(crate) fn evaluate_tree_batch_opts(
    batch: &QueryBatch,
    tree: &arb_tree::BinaryTree,
    threads: usize,
    mut hook: Option<Phase2Hook<'_>>,
    pool: &AutomataPool,
) -> io::Result<BatchOutcome> {
    if batch.is_empty() {
        return Err(empty_batch_err());
    }
    let mark = PoolMark::take(pool);
    let mut qa = pool.take(&batch.merged);
    let mut run = if threads > 1 {
        arb_core::evaluate_tree_parallel_with(&batch.merged, tree, threads, &mut qa, pool)
    } else {
        arb_core::evaluate_tree_with(&batch.merged, tree, &mut qa)
    };
    run.stats.batch_size = batch.len() as u64;
    mark.stamp(pool, &mut run.stats);
    let atoms = batch.query_atoms();
    let mut sets: Vec<NodeSet> = (0..batch.len()).map(|_| NodeSet::new(tree.len())).collect();
    let mut merged_counts = vec![0u64; atoms.iter().map(Vec::len).sum()];
    let mut flags = vec![false; batch.len()];
    for v in tree.nodes() {
        let set = qa.predsets.get(run.rho_b[v.ix()]);
        demux_node(set, &atoms, &mut merged_counts, &mut sets, v.0, &mut flags);
        if let Some(h) = hook.as_mut() {
            let info = tree.info(v);
            let rec = arb_storage::NodeRecord {
                label: info.label,
                has_first: info.has_first,
                has_second: info.has_second,
            };
            h(v.0, rec, set, &flags);
        }
    }
    let outcomes = batch.demux(&run.stats, &merged_counts, sets);
    pool.put(qa);
    Ok(BatchOutcome {
        stats: run.stats,
        outcomes,
    })
}

/// Tests every group's atoms against one node's predicate set, bumping
/// the flattened per-atom counts, inserting the node into each matching
/// group's set, and recording one selected-flag per group in `flags` —
/// the per-node demux kernel shared by the disk phase-2 scan and the
/// in-memory batch path.
pub(crate) fn demux_node(
    set: arb_logic::PredSetView<'_>,
    groups: &[Vec<Atom>],
    counts: &mut [u64],
    sets: &mut [NodeSet],
    ix: u32,
    flags: &mut [bool],
) {
    let mut offset = 0usize;
    for (g, (atoms, selected)) in groups.iter().zip(sets.iter_mut()).enumerate() {
        let mut any = false;
        for (j, a) in atoms.iter().enumerate() {
            if set.contains(*a) {
                counts[offset + j] += 1;
                any = true;
            }
        }
        if any {
            selected.insert(arb_tree::NodeId(ix));
        }
        flags[g] = any;
        offset += atoms.len();
    }
}

/// Evaluates a batch of **boolean** (document-filtering) queries with a
/// single shared backward scan: returns, per query, whether any of its
/// query predicates holds at the root.
pub fn evaluate_boolean_batch(batch: &QueryBatch, db: &ArbDatabase) -> io::Result<Vec<bool>> {
    evaluate_boolean_batch_opts(batch, db, 1)
}

/// [`evaluate_boolean_batch`] with a thread count: `threads > 1` shards
/// the single backward pass over a subtree frontier (still no `.sta`
/// file — only the root's facts matter).
pub fn evaluate_boolean_batch_opts(
    batch: &QueryBatch,
    db: &ArbDatabase,
    threads: usize,
) -> io::Result<Vec<bool>> {
    evaluate_boolean_batch_pooled(batch, db, threads, &AutomataPool::new())
}

/// [`evaluate_boolean_batch_opts`] with a caller-owned [`AutomataPool`]
/// — the session surface passes its pool so warm sessions answer
/// repeated verdict runs without rebuilding automata.
pub(crate) fn evaluate_boolean_batch_pooled(
    batch: &QueryBatch,
    db: &ArbDatabase,
    threads: usize,
    pool: &AutomataPool,
) -> io::Result<Vec<bool>> {
    if batch.is_empty() {
        return Err(empty_batch_err());
    }
    let set = if threads > 1 {
        crate::diskeval::root_true_preds_parallel(&batch.merged, db, threads, pool)?
    } else {
        crate::diskeval::root_true_preds(&batch.merged, db, pool)?
    };
    Ok(batch
        .query_atoms()
        .iter()
        .map(|entry_atoms| entry_atoms.iter().any(|a| set.contains(*a)))
        .collect())
}

/// The in-memory counterpart of [`evaluate_boolean_batch`]: per-query
/// root verdicts from one shared two-phase run (same error behavior as
/// the disk path). `threads > 1` parallelizes over the subtree frontier,
/// like [`evaluate_tree_batch_opts`]; automata come from `pool`.
pub(crate) fn evaluate_boolean_batch_tree(
    batch: &QueryBatch,
    tree: &arb_tree::BinaryTree,
    threads: usize,
    pool: &AutomataPool,
) -> io::Result<Vec<bool>> {
    if batch.is_empty() {
        return Err(empty_batch_err());
    }
    // Only the root's predicate set matters — no per-node demux.
    let mut qa = pool.take(&batch.merged);
    let run = if threads > 1 {
        arb_core::evaluate_tree_parallel_with(&batch.merged, tree, threads, &mut qa, pool)
    } else {
        arb_core::evaluate_tree_with(&batch.merged, tree, &mut qa)
    };
    let root_set = qa.predsets.get(run.rho_b[tree.root().ix()]);
    let verdicts = batch
        .query_atoms()
        .iter()
        .map(|entry_atoms| entry_atoms.iter().any(|a| root_set.contains(*a)))
        .collect();
    pool.put(qa);
    Ok(verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;

    fn disk_db(xml: &str, name: &str) -> Database {
        let dir = std::env::temp_dir().join(format!("arb-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let xml_path = dir.join(format!("{name}.xml"));
        std::fs::write(&xml_path, xml).unwrap();
        let (db, _) = Database::create_arb_from_xml(
            &xml_path,
            dir.join(format!("{name}.arb")),
            &arb_xml::XmlConfig::default(),
        )
        .unwrap();
        db
    }

    #[test]
    fn batch_matches_independent_runs_on_disk() {
        let mut db = disk_db("<r><a><b/></a><b/><c>t</c></r>", "indep");
        let sources = [
            "QUERY :- V.Label[a];",
            "QUERY :- V.Label[b];",
            "Q :- V.Label[c];",
        ];
        let queries: Vec<Query> = sources
            .iter()
            .map(|s| db.compile_tmnf(s).unwrap())
            .collect();
        let batch = QueryBatch::new(&queries);
        let disk = db.as_disk().unwrap();
        let out = evaluate_disk_batch(&batch, disk).unwrap();

        // Exactly one scan in each direction for the whole batch.
        assert_eq!(out.stats.backward_scans, 1);
        assert_eq!(out.stats.forward_scans, 1);
        assert_eq!(out.outcomes.len(), 3);

        let mut scans = 0;
        for (q, o) in queries.iter().zip(&out.outcomes) {
            let indep = crate::evaluate_disk(&q.prog, disk).unwrap();
            scans += indep.stats.backward_scans + indep.stats.forward_scans;
            assert_eq!(o.selected.to_vec(), indep.selected.to_vec());
            assert_eq!(o.per_pred_counts, indep.per_pred_counts);
            assert_eq!(o.stats.selected, indep.stats.selected);
            assert_eq!(o.stats.idb_count, q.idb_count());
        }
        // The independent runs needed 2k scans; the batch needed 2.
        assert_eq!(scans, 6);
    }

    #[test]
    fn boolean_batch_filters_per_query() {
        let mut db = disk_db("<r><a/></r>", "bool");
        let queries = vec![
            db.compile_tmnf("QUERY :- Root, HasFirstChild;").unwrap(),
            db.compile_tmnf("QUERY :- Root, Leaf;").unwrap(),
        ];
        let batch = QueryBatch::new(&queries);
        let verdicts = evaluate_boolean_batch(&batch, db.as_disk().unwrap()).unwrap();
        assert_eq!(verdicts, vec![true, false]);
    }

    #[test]
    fn empty_batch_is_an_error() {
        let db = disk_db("<r/>", "empty");
        let batch = QueryBatch::new(&[]);
        assert!(evaluate_disk_batch(&batch, db.as_disk().unwrap()).is_err());
        assert!(evaluate_boolean_batch(&batch, db.as_disk().unwrap()).is_err());
    }
}
