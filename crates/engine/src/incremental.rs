//! Incremental re-evaluation for standing queries over updatable
//! databases.
//!
//! Both automaton runs of the two-phase algorithm are *local* functions
//! of the tree: ρ_A(v) depends only on v's subtree, ρ_B(v) only on the
//! states along v's root path. A subtree edit therefore invalidates a
//! sharply bounded region of each run:
//!
//! * **Phase 1** — the edited record window gets fresh bottom-up states;
//!   above it only the **root spine** (the edit site's ancestor chain)
//!   can change, and those changes are contiguous from the edit upward:
//!   the recomputation walks the spine bottom-up and stops at the first
//!   node whose state folds to its old value.
//! * **Phase 2** — everything outside the binary subtree of `top` (the
//!   highest node whose ρ_A changed) keeps its ρ_B verbatim. Inside it,
//!   a pruned top-down walk recomputes states and cuts off at any
//!   surviving node whose recomputed ρ_B equals its pre-edit value over
//!   a ρ_A-clean subtree.
//!
//! A `StandingEval` pins the session's `QueryAutomata` (interned state
//! ids must stay stable across refreshes, so it never returns them to
//! the pool), mirrors the document's record stream, keeps both state
//! arrays and per-atom result bit sets, and — on disk databases —
//! maintains a persistent block-compressed `.sta` stream whose clean
//! blocks are byte-copied across epochs ([`arb_storage::rewrite_blocked`]).
//! The per-refresh [`EvalStats`] report `dirty_nodes`,
//! `retained_sta_blocks` and `refreshes` (and zero full scans — the
//! observable proof that no linear pass ran).

use crate::batch::{BatchOutcome, QueryBatch};
use crate::database::{Database, EngineError};
use crate::update::{tree_records, AppliedUpdate};
use arb_core::{AutomataPool, EvalStats, QueryAutomata};
use arb_logic::{Atom, PredSetId, ProgramId};
use arb_storage::{EditPlan, NodeRecord, ScratchPath, StaFormat};
use arb_tree::{NodeId, NodeInfo, NodeSet};
use std::time::Instant;

/// What one refresh did to one query's result set, in the **new** index
/// space. Consumers holding the old result set first apply the plan's
/// index shift (drop `[pos, pos+removed)`, shift `>= pos+removed` by
/// `inserted - removed`), then these lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryDelta {
    /// Nodes that entered the result set (fresh fragment nodes and
    /// surviving nodes that flipped on).
    pub added: Vec<u32>,
    /// Surviving nodes (post-shift indexes) that left the result set.
    pub removed: Vec<u32>,
    /// The query's root verdict after the update.
    pub verdict: bool,
    /// True if the update flipped the root verdict.
    pub verdict_changed: bool,
}

/// The result of one [`Session::refresh`](crate::Session::refresh).
pub struct RefreshReport {
    /// The positional edit that was applied (window position, removed
    /// and inserted record counts — what result-set holders need to
    /// shift their indexes).
    pub plan: EditPlan,
    /// The document's epoch after the update.
    pub epoch: u64,
    /// Full per-query outcomes at the new epoch (stats carry
    /// `dirty_nodes` / `retained_sta_blocks` / `refreshes`, and zero
    /// scan counts).
    pub batch: BatchOutcome,
    /// Per-query result deltas against the previous epoch.
    pub deltas: Vec<QueryDelta>,
}

/// The retained evaluation state of a standing query batch.
pub(crate) struct StandingEval {
    /// Pinned automata: ρ_A/ρ_B store *interned* state ids, so these
    /// exact interners must survive — the automata never go back to the
    /// session pool.
    qa: QueryAutomata,
    /// Preorder record mirror of the document.
    records: Vec<NodeRecord>,
    /// Binary subtree ends (refreshed per update).
    ends: Vec<u32>,
    /// ρ_A per node.
    rho_a: Vec<ProgramId>,
    /// ρ_B per node.
    rho_b: Vec<PredSetId>,
    /// Per-query query-predicate atoms (merged-program ids).
    groups: Vec<Vec<Atom>>,
    /// One result bit set per query-predicate atom, flattened in group
    /// order.
    atom_sets: Vec<NodeSet>,
    /// Per-query union sets (diffed for the refresh deltas).
    query_sets: Vec<NodeSet>,
    /// Document epoch this state reflects.
    epoch: u64,
    /// Persistent block-compressed `.sta` stream (disk databases only):
    /// rewritten per refresh with clean blocks byte-copied.
    sta: Option<ScratchPath>,
    sta_encoded_bytes: u64,
    refreshes: u64,
}

impl StandingEval {
    /// Full evaluation of the batch at the database's current epoch —
    /// the one-time cost a standing query pays so every later update is
    /// incremental.
    pub(crate) fn prime(
        db: &Database,
        batch: &QueryBatch,
        pool: &AutomataPool,
    ) -> Result<Self, EngineError> {
        let tree = db.snapshot_tree()?;
        let mut qa = pool.take(batch.merged_program());
        let run = arb_core::evaluate_tree_with(batch.merged_program(), &tree, &mut qa);
        let records = tree_records(&tree);
        drop(tree);
        let (ends, _kinds) = arb_storage::record_extents(&records)?;
        let groups = batch.query_atoms();
        let n = records.len();
        let atom_count: usize = groups.iter().map(Vec::len).sum();
        let mut atom_sets: Vec<NodeSet> = (0..atom_count).map(|_| NodeSet::new(n)).collect();
        for ix in 0..n {
            demux_atoms(&qa, &groups, &mut atom_sets, run.rho_b[ix], ix as u32);
        }
        let query_sets = union_queries(&groups, &atom_sets, n);
        let (sta, sta_encoded_bytes) = match db.as_disk() {
            Some(d) => {
                let scratch = d.scratch_sta();
                let mut w = arb_storage::stafile::StateFileWriter::create(
                    scratch.path(),
                    n as u64,
                    StaFormat::Blocked,
                )?;
                for ix in (0..n).rev() {
                    w.write_state(run.rho_a[ix].0)?;
                }
                let bytes = w.finish()?;
                (Some(scratch), bytes)
            }
            None => (None, 0),
        };
        Ok(StandingEval {
            qa,
            records,
            ends,
            rho_a: run.rho_a,
            rho_b: run.rho_b,
            groups,
            atom_sets,
            query_sets,
            epoch: db.epoch(),
            sta,
            sta_encoded_bytes,
            refreshes: 0,
        })
    }

    /// Position of node `v`'s second (binary) child.
    fn second_pos(&self, v: u32) -> u32 {
        if self.records[v as usize].has_first {
            self.ends[v as usize + 1]
        } else {
            v + 1
        }
    }

    /// Recomputes ρ_A(v) from the state array `a` and the (new) record
    /// mirror.
    fn transition_a(&mut self, a: &[ProgramId], v: u32) -> ProgramId {
        let rec = self.records[v as usize];
        let s1 = rec.has_first.then(|| a[v as usize + 1]);
        let s2 = rec.has_second.then(|| a[self.second_pos(v) as usize]);
        self.qa.bottom_up(
            s1,
            s2,
            NodeInfo {
                label: rec.label,
                has_first: rec.has_first,
                has_second: rec.has_second,
                is_root: v == 0,
            },
        )
    }

    /// The root path to `anchor` (exclusive), by subtree-extent descent
    /// in the post-edit tree.
    fn path_to(&self, anchor: u32) -> Result<Vec<u32>, EngineError> {
        let mut path = Vec::new();
        let mut cur = 0u32;
        while cur != anchor {
            path.push(cur);
            let rec = self.records[cur as usize];
            cur = if rec.has_first && anchor < self.ends[cur as usize + 1] {
                cur + 1
            } else if rec.has_second {
                self.second_pos(cur)
            } else {
                return Err(EngineError::Query(
                    "corrupt standing mirror: edit site unreachable from the root".into(),
                ));
            };
            if cur > anchor {
                return Err(EngineError::Query(
                    "corrupt standing mirror: descent overshot the edit site".into(),
                ));
            }
        }
        Ok(path)
    }

    /// Absorbs one applied update: replays the edit on the mirrors,
    /// recomputes ρ_A over the dirty window and changed spine, ρ_B over
    /// the pruned fringe below the highest change, patches the result
    /// sets, and rewrites the persistent `.sta` stream (retaining clean
    /// blocks). Returns the full per-query outcomes plus deltas.
    pub(crate) fn refresh(
        &mut self,
        up: &AppliedUpdate,
        batch: &QueryBatch,
        db: &Database,
    ) -> Result<RefreshReport, EngineError> {
        if up.epoch != self.epoch + 1 {
            return Err(EngineError::Query(format!(
                "standing state at epoch {} cannot absorb an update to epoch {}: the document \
                 changed outside this session — prepare a new session",
                self.epoch, up.epoch
            )));
        }
        let plan = &up.plan;
        let (pos, removed, inserted) = (
            plan.pos as usize,
            plan.removed as usize,
            plan.inserted as usize,
        );

        // --- Phase 1 over the dirty window + spine ------------------------
        let t1 = Instant::now();
        arb_storage::apply_edit(&mut self.records, plan, &up.frag);
        let n = self.records.len();
        debug_assert_eq!(n, up.new_nodes as usize);
        let (ends, _kinds) = arb_storage::record_extents(&self.records)?;
        self.ends = ends;

        let (bu0, td0) = (self.qa.bu_transitions, self.qa.td_transitions);
        let mut a: Vec<ProgramId> = Vec::with_capacity(n);
        a.extend_from_slice(&self.rho_a[..pos]);
        a.resize(pos + inserted, ProgramId(0));
        a.extend_from_slice(&self.rho_a[pos + removed..]);
        for v in (pos..pos + inserted).rev() {
            a[v] = self.transition_a(&a, v as u32);
        }
        let mut dirty = inserted as u64;

        // The spine starts at the window's parent — the flagged node when
        // the edit changed a child flag, the deepest root-path node
        // otherwise — and the changed segment is contiguous upward.
        let anchor = plan.flag_node.map(|(ix, _)| ix).unwrap_or(plan.pos);
        let path = self.path_to(anchor)?;
        let mut top: Option<u32> = (inserted > 0).then_some(plan.pos);
        let spine: Vec<u32> = plan
            .flag_node
            .iter()
            .map(|&(ix, _)| ix)
            .chain(path.iter().rev().copied())
            .collect();
        for v in spine {
            let s = self.transition_a(&a, v);
            if s == a[v as usize] {
                break; // unchanged state — every ancestor folds identically
            }
            a[v as usize] = s;
            dirty += 1;
            top = Some(v);
        }
        self.rho_a = a;
        let phase1_time = t1.elapsed();

        // --- Phase 2 over the pruned fringe below `top` -------------------
        let t2 = Instant::now();
        let old_b = std::mem::take(&mut self.rho_b);
        let mut b: Vec<PredSetId> = Vec::with_capacity(n);
        b.extend_from_slice(&old_b[..pos]);
        b.resize(pos + inserted, PredSetId(0));
        b.extend_from_slice(&old_b[pos + removed..]);
        let old_query_sets = std::mem::take(&mut self.query_sets);
        for s in &mut self.atom_sets {
            *s = splice_shift(s, n, plan.pos, plan.removed, plan.inserted);
        }

        if let Some(top) = top {
            // Deepest node whose subtree spans every ρ_A change: the
            // window root if there is a window, else the spine anchor.
            let site = if inserted > 0 { plan.pos } else { anchor };
            // ρ_B(top) from its unchanged parent (parents are the chain
            // root → … → anchor [→ window root]).
            let seed = if top == 0 {
                self.qa.start_state(self.rho_a[0])
            } else {
                let mut chain = path.clone();
                chain.push(anchor);
                if inserted > 0 && anchor != plan.pos {
                    chain.push(plan.pos);
                }
                let i = chain
                    .iter()
                    .position(|&c| c == top)
                    .expect("top lies on the edit chain");
                let p = chain[i - 1];
                let k = if top == p + 1 { 1 } else { 2 };
                self.qa.top_down(b[p as usize], self.rho_a[top as usize], k)
            };
            let (win_lo, win_hi) = (plan.pos, plan.pos + plan.inserted);
            let mut stack: Vec<(u32, PredSetId)> = vec![(top, seed)];
            while let Some((v, bv)) = stack.pop() {
                let vi = v as usize;
                let is_new = v >= win_lo && v < win_hi;
                let changed = is_new || {
                    let old_ix = if v < win_lo {
                        vi
                    } else {
                        vi + removed - inserted
                    };
                    bv != old_b[old_ix]
                };
                // A surviving node with its old ρ_B over a ρ_A-clean
                // subtree seals everything below it.
                if !(changed || (v <= site && site < self.ends[vi])) {
                    continue;
                }
                b[vi] = bv;
                if changed {
                    dirty += u64::from(!is_new); // window nodes counted above
                    demux_atoms(&self.qa, &self.groups, &mut self.atom_sets, bv, v);
                }
                let rec = self.records[vi];
                if rec.has_first {
                    let c = v + 1;
                    let cb = self.qa.top_down(bv, self.rho_a[c as usize], 1);
                    stack.push((c, cb));
                }
                if rec.has_second {
                    let c = self.second_pos(v);
                    let cb = self.qa.top_down(bv, self.rho_a[c as usize], 2);
                    stack.push((c, cb));
                }
            }
        }
        self.rho_b = b;

        // --- Results, deltas, retained `.sta` stream ----------------------
        self.query_sets = union_queries(&self.groups, &self.atom_sets, n);
        let mut deltas = Vec::with_capacity(self.groups.len());
        for (old, new) in old_query_sets.iter().zip(&self.query_sets) {
            let shifted = splice_shift(old, n, plan.pos, plan.removed, plan.inserted);
            let added = new
                .iter()
                .filter(|id| !shifted.contains(*id))
                .map(|id| id.0)
                .collect();
            let gone = shifted
                .iter()
                .filter(|id| !new.contains(*id))
                .map(|id| id.0)
                .collect();
            let verdict = new.contains(NodeId(0));
            deltas.push(QueryDelta {
                added,
                removed: gone,
                verdict,
                verdict_changed: verdict != old.contains(NodeId(0)),
            });
        }

        let mut retained_sta = 0u64;
        if let Some(sta) = &self.sta {
            let raw: Vec<u32> = self.rho_a.iter().map(|s| s.0).collect();
            let dirty_from = top.unwrap_or(plan.pos) as u64;
            let rw = arb_storage::rewrite_blocked(sta.path(), &raw, dirty_from)?;
            retained_sta = rw.retained_blocks as u64;
            self.sta_encoded_bytes = std::fs::metadata(sta.path())?.len();
        }
        let phase2_time = t2.elapsed();

        self.epoch = up.epoch;
        self.refreshes += 1;
        let mut selected = NodeSet::new(n);
        for s in &self.query_sets {
            selected.union_with(s);
        }
        let prog = batch.merged_program();
        let stats = EvalStats {
            idb_count: prog.pred_count(),
            rule_count: prog.rule_count(),
            phase1_time,
            phase1_transitions: self.qa.bu_transitions - bu0,
            phase2_time,
            phase2_transitions: self.qa.td_transitions - td0,
            selected: selected.count() as u64,
            memory_bytes: self.qa.memory_bytes(),
            bu_states: self.qa.bu_state_count(),
            td_states: self.qa.td_state_count(),
            nodes: n as u64,
            sta_encoded_bytes: self.sta_encoded_bytes,
            db_format: db.as_disk().map(|d| d.format_version()).unwrap_or(0),
            batch_size: batch.len() as u64,
            interning: self.qa.intern_stats(),
            dirty_nodes: dirty,
            retained_sta_blocks: retained_sta,
            refreshes: self.refreshes,
            // No linear scans ran: backward_scans == forward_scans == 0.
            ..Default::default()
        };
        let merged_counts: Vec<u64> = self.atom_sets.iter().map(|s| s.count() as u64).collect();
        let outcomes = batch.demux(&stats, &merged_counts, self.query_sets.clone());
        Ok(RefreshReport {
            plan: *plan,
            epoch: up.epoch,
            batch: BatchOutcome { stats, outcomes },
            deltas,
        })
    }
}

/// An owned standing query batch, for hosts that outlive any one
/// [`Session`](crate::Session) (the resident query service registers one
/// per wire `Register` request).
///
/// Unlike [`Session::refresh`](crate::Session::refresh) — which applies
/// the update itself — a `StandingQuery` absorbs an [`AppliedUpdate`]
/// someone else already performed, so **one** document update can fan
/// out to many standing batches: the host applies the edit once and
/// refreshes each registration with the same `AppliedUpdate`.
pub struct StandingQuery {
    batch: QueryBatch,
    pool: AutomataPool,
    state: Option<StandingEval>,
}

impl StandingQuery {
    /// Builds the standing batch from compiled queries (same label-space
    /// precondition as [`QueryBatch::new`]).
    pub fn new(queries: &[crate::Query]) -> Self {
        StandingQuery {
            batch: QueryBatch::new(queries),
            pool: AutomataPool::new(),
            state: None,
        }
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// True if the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// Fully evaluates the batch at the database's current epoch (no-op
    /// if already primed).
    pub fn prime(&mut self, db: &Database) -> Result<(), EngineError> {
        if self.state.is_none() {
            self.state = Some(StandingEval::prime(db, &self.batch, &self.pool)?);
        }
        Ok(())
    }

    /// The document epoch the standing results reflect (`None` until
    /// primed).
    pub fn epoch(&self) -> Option<u64> {
        self.state.as_ref().map(|s| s.epoch)
    }

    /// Current per-query result sets, in batch order (`None` until
    /// primed).
    pub fn results(&self) -> Option<&[NodeSet]> {
        self.state.as_ref().map(|s| s.query_sets.as_slice())
    }

    /// Absorbs one already-applied update incrementally. The batch must
    /// have been [`prime`](StandingQuery::prime)d **before** the update
    /// was applied (a prime on the post-edit document would have nothing
    /// to diff against); errors otherwise, and when the database moved
    /// more than one epoch past the standing state.
    pub fn refresh(
        &mut self,
        db: &Database,
        up: &AppliedUpdate,
    ) -> Result<RefreshReport, EngineError> {
        let state = self.state.as_mut().ok_or_else(|| {
            EngineError::Query(
                "standing query was never primed: call prime() before applying updates".into(),
            )
        })?;
        state.refresh(up, &self.batch, db)
    }
}

/// Recomputes node `v`'s membership in every query-atom result set from
/// its (new) predicate set.
fn demux_atoms(
    qa: &QueryAutomata,
    groups: &[Vec<Atom>],
    atom_sets: &mut [NodeSet],
    b: PredSetId,
    v: u32,
) {
    let set = qa.predsets.get(b);
    let mut j = 0usize;
    for atoms in groups {
        for atom in atoms {
            if set.contains(*atom) {
                atom_sets[j].insert(NodeId(v));
            } else {
                atom_sets[j].remove(NodeId(v));
            }
            j += 1;
        }
    }
}

/// Per-query union of the (flattened) per-atom sets.
fn union_queries(groups: &[Vec<Atom>], atom_sets: &[NodeSet], n: usize) -> Vec<NodeSet> {
    let mut out = Vec::with_capacity(groups.len());
    let mut j = 0usize;
    for atoms in groups {
        let mut s = NodeSet::new(n);
        for _ in atoms {
            s.union_with(&atom_sets[j]);
            j += 1;
        }
        out.push(s);
    }
    out
}

/// Re-indexes a node set across a splice: bits below the window stay,
/// bits in the removed range vanish, bits above shift by the window's
/// size delta. Window bits are left clear (the refresh walk fills them).
fn splice_shift(old: &NodeSet, n_new: usize, pos: u32, removed: u32, inserted: u32) -> NodeSet {
    let mut s = NodeSet::new(n_new);
    for id in old.iter() {
        if id.0 < pos {
            s.insert(id);
        } else if id.0 >= pos + removed {
            s.insert(NodeId(id.0 - removed + inserted));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use crate::database::Database;
    use crate::update::DocUpdate;
    use arb_tree::NodeId;

    const XML: &str = "<r><a/><b><a/><c/></b><b/><a><c/></a></r>";
    const SOURCES: [&str; 3] = [
        "QUERY :- V.Label[a];",
        "QUERY :- V.Label[b], HasFirstChild;",
        "QUERY :- Root, HasSecondChild;",
    ];

    /// Full from-scratch per-query node sets + verdicts on a database.
    fn oracle(db: &mut Database) -> (Vec<Vec<NodeId>>, Vec<bool>) {
        let qs: Vec<_> = SOURCES
            .iter()
            .map(|s| db.compile_tmnf(s).expect("query compiles"))
            .collect();
        let session = db.prepare(&qs);
        let out = session.run().expect("full evaluation");
        let sets = out.outcomes.iter().map(|o| o.selected.to_vec()).collect();
        let verdicts = out
            .outcomes
            .iter()
            .map(|o| o.selected.contains(NodeId(0)))
            .collect();
        (sets, verdicts)
    }

    fn check_refresh_sequence(mut db: Database, reopen: impl Fn(&Database) -> Database) {
        let qs: Vec<_> = SOURCES
            .iter()
            .map(|s| db.compile_tmnf(s).expect("query compiles"))
            .collect();
        let session = db.prepare(&qs);
        session.prime_standing().expect("prime");
        let updates = [
            DocUpdate::AppendChild {
                under: 0,
                xml: "<b><a/></b>".into(),
            },
            DocUpdate::SpliceSubtree {
                at: 2,
                xml: "<a><b/><b/></a>".into(),
            },
            DocUpdate::DeleteSubtree { at: 1 },
        ];
        for (step, up) in updates.iter().enumerate() {
            let report = session.refresh(up).expect("refresh");
            // Oracle: a fresh database + fresh session over the updated
            // document.
            let mut fresh = reopen(session.database());
            let (sets, verdicts) = oracle(&mut fresh);
            assert_eq!(report.deltas.len(), SOURCES.len());
            for (i, out) in report.batch.outcomes.iter().enumerate() {
                assert_eq!(
                    out.selected.to_vec(),
                    sets[i],
                    "step {step} query {i}: refresh != full re-evaluation"
                );
                assert_eq!(
                    report.deltas[i].verdict, verdicts[i],
                    "step {step} query {i}"
                );
            }
            let s = &report.batch.stats;
            assert_eq!(s.backward_scans, 0, "refresh must not run a linear scan");
            assert_eq!(s.forward_scans, 0);
            // Every inserted node is recomputed; a state-preserving edit
            // (e.g. a delete whose ancestors re-intern identically) may
            // legitimately dirty nothing else.
            assert!(s.dirty_nodes >= u64::from(report.plan.inserted));
            assert!(
                s.dirty_nodes < s.nodes,
                "step {step}: refresh touched every node"
            );
            assert_eq!(s.refreshes, step as u64 + 1);
            assert_eq!(report.epoch, step as u64 + 1);
        }
    }

    #[test]
    fn memory_refresh_matches_full_reevaluation() {
        let db = Database::from_xml_str(XML).unwrap();
        check_refresh_sequence(db, |cur| {
            Database::from_tree(cur.to_tree().unwrap(), cur.labels().clone())
        });
    }

    #[test]
    fn disk_refresh_matches_full_reevaluation() {
        let dir = std::env::temp_dir().join(format!("arb-incr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("incr.arb");
        let mut labels = arb_tree::LabelTable::new();
        let tree = arb_xml::str_to_tree(XML, &mut labels).unwrap();
        arb_storage::create_from_tree(&tree, &labels, &path).unwrap();
        let db = Database::open_arb(&path).unwrap();
        check_refresh_sequence(db, move |_| Database::open_arb(&path).unwrap());
    }

    #[test]
    fn refresh_deltas_replay_to_the_new_result_set() {
        let mut db = Database::from_xml_str(XML).unwrap();
        let mut probe = Database::from_xml_str(XML).unwrap();
        let (mut sets, _) = oracle(&mut probe);
        let qs: Vec<_> = SOURCES
            .iter()
            .map(|s| db.compile_tmnf(s).expect("query compiles"))
            .collect();
        let session = db.prepare(&qs);
        let up = DocUpdate::SpliceSubtree {
            at: 2,
            xml: "<b><a/><a/></b>".into(),
        };
        let report = session.refresh(&up).expect("refresh");
        let plan = report.plan;
        for (i, delta) in report.deltas.iter().enumerate() {
            // Old set -> shift across the splice -> apply the delta.
            let mut replayed: Vec<u32> = sets[i]
                .drain(..)
                .filter_map(|id| {
                    if id.0 < plan.pos {
                        Some(id.0)
                    } else if id.0 >= plan.pos + plan.removed {
                        Some(id.0 - plan.removed + plan.inserted)
                    } else {
                        None
                    }
                })
                .filter(|ix| !delta.removed.contains(ix))
                .collect();
            replayed.extend(delta.added.iter().copied());
            replayed.sort_unstable();
            let new: Vec<u32> = report.batch.outcomes[i]
                .selected
                .to_vec()
                .into_iter()
                .map(|id| id.0)
                .collect();
            assert_eq!(replayed, new, "query {i}: delta replay diverged");
        }
    }

    #[test]
    fn refresh_rejects_external_epoch_changes() {
        let mut db = Database::from_xml_str(XML).unwrap();
        let q = db.compile_tmnf(SOURCES[0]).unwrap();
        let session = db.prepare(&[q]);
        session.prime_standing().expect("prime");
        // An update applied outside the session bumps the epoch past
        // what the standing state can absorb.
        db.apply_update(&DocUpdate::DeleteSubtree { at: 1 })
            .expect("external update");
        let err = match session.refresh(&DocUpdate::DeleteSubtree { at: 1 }) {
            Err(e) => e,
            Ok(_) => panic!("stale standing state must be rejected"),
        };
        assert!(err.to_string().contains("epoch"), "unexpected error: {err}");
    }

    #[test]
    fn refresh_rejects_fragments_with_new_tags() {
        let mut db = Database::from_xml_str(XML).unwrap();
        let q = db.compile_tmnf(SOURCES[0]).unwrap();
        let session = db.prepare(&[q]);
        let err = match session.refresh(&DocUpdate::AppendChild {
            under: 0,
            xml: "<zz/>".into(),
        }) {
            Err(e) => e,
            Ok(_) => panic!("new tags must be rejected online"),
        };
        assert!(
            err.to_string().contains("arb update"),
            "unexpected error: {err}"
        );
    }
}
