//! The `Database` handle: disk or memory, plus query compilation bound to
//! the database's label space.

use crate::diskeval::{evaluate_disk, evaluate_disk_with_hook};
use crate::output::XmlEmitter;
use crate::query::{choose_query_pred, Query, QueryLanguage};
use crate::QueryOutcome;
use arb_core::evaluate_tree;
use arb_storage::{ArbDatabase, CreationStats, NodeRecord};
use arb_tree::{BinaryTree, LabelTable, NodeSet};
use arb_xml::XmlConfig;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;

/// Engine errors.
#[derive(Debug)]
pub enum EngineError {
    /// I/O failure.
    Io(io::Error),
    /// Query compilation failure.
    Query(String),
    /// Database creation / parsing failure.
    Create(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "I/O error: {e}"),
            EngineError::Query(m) => write!(f, "query error: {m}"),
            EngineError::Create(m) => write!(f, "database error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<io::Error> for EngineError {
    fn from(e: io::Error) -> Self {
        EngineError::Io(e)
    }
}

enum Backing {
    Disk(ArbDatabase),
    Memory(BinaryTree),
}

/// A queryable tree database.
///
/// Owns the label table; queries are compiled against it so that label
/// tests in the query resolve to the same 14-bit indexes as the stored
/// records.
pub struct Database {
    backing: Backing,
    labels: LabelTable,
}

impl Database {
    /// Opens an existing `.arb` database.
    pub fn open_arb(path: impl AsRef<Path>) -> Result<Self, EngineError> {
        let db = ArbDatabase::open(path.as_ref().to_path_buf())?;
        let labels = db.labels().clone();
        Ok(Database {
            backing: Backing::Disk(db),
            labels,
        })
    }

    /// Creates a `.arb` database from an XML file (the paper's two-pass
    /// creation), then opens it. Returns the Figure-5 statistics too.
    pub fn create_arb_from_xml(
        xml_path: impl AsRef<Path>,
        arb_path: impl AsRef<Path>,
        config: &XmlConfig,
    ) -> Result<(Self, CreationStats), EngineError> {
        let (db, stats) =
            ArbDatabase::create_from_xml_file(xml_path.as_ref(), arb_path.as_ref(), config)
                .map_err(|e| EngineError::Create(e.to_string()))?;
        let labels = db.labels().clone();
        Ok((
            Database {
                backing: Backing::Disk(db),
                labels,
            },
            stats,
        ))
    }

    /// An in-memory database parsed from an XML string.
    pub fn from_xml_str(xml: &str) -> Result<Self, EngineError> {
        let mut labels = LabelTable::new();
        let tree = arb_xml::str_to_tree(xml, &mut labels)
            .map_err(|e| EngineError::Create(e.to_string()))?;
        Ok(Database {
            backing: Backing::Memory(tree),
            labels,
        })
    }

    /// An in-memory database from an existing tree and label table.
    pub fn from_tree(tree: BinaryTree, labels: LabelTable) -> Self {
        Database {
            backing: Backing::Memory(tree),
            labels,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u64 {
        match &self.backing {
            Backing::Disk(db) => db.node_count() as u64,
            Backing::Memory(t) => t.len() as u64,
        }
    }

    /// The label table.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// The on-disk database, if this is a disk database.
    pub fn as_disk(&self) -> Option<&ArbDatabase> {
        match &self.backing {
            Backing::Disk(db) => Some(db),
            Backing::Memory(_) => None,
        }
    }

    /// Materializes the tree (reads the whole database for disk
    /// backings).
    pub fn to_tree(&self) -> Result<BinaryTree, EngineError> {
        match &self.backing {
            Backing::Disk(db) => Ok(db.to_tree()?),
            Backing::Memory(t) => Ok(t.clone()),
        }
    }

    /// Compiles a TMNF (Arb surface syntax) query against this database.
    /// The query predicate is `QUERY` if such a predicate exists, else
    /// the head of the last rule — in which case the returned query's
    /// `implicit_query_pred` names the predicate that was chosen.
    pub fn compile_tmnf(&mut self, src: &str) -> Result<Query, EngineError> {
        let ast = arb_tmnf::parse_program(src, &mut self.labels)
            .map_err(|e| EngineError::Query(e.to_string()))?;
        let mut prog = arb_tmnf::normalize(&ast);
        let implicit_query_pred = choose_query_pred(&mut prog);
        let prog = arb_tmnf::optimize(&prog);
        Ok(Query {
            prog,
            language: QueryLanguage::Tmnf,
            source: src.to_string(),
            implicit_query_pred,
        })
    }

    /// Compiles a Core XPath query against this database.
    pub fn compile_xpath(&mut self, src: &str) -> Result<Query, EngineError> {
        let prog = arb_xpath::compile(src, &mut self.labels)
            .map_err(|e| EngineError::Query(e.to_string()))?;
        let prog = arb_tmnf::optimize(&prog);
        Ok(Query {
            prog,
            language: QueryLanguage::XPath,
            source: src.to_string(),
            implicit_query_pred: None,
        })
    }

    /// Evaluates a query as a **boolean** (document-filtering) query:
    /// true iff a query predicate holds at the root. For disk databases
    /// this needs only the bottom-up phase — a single backward scan.
    pub fn evaluate_boolean(&self, query: &Query) -> Result<bool, EngineError> {
        match &self.backing {
            Backing::Disk(db) => Ok(crate::diskeval::evaluate_boolean(&query.prog, db)?),
            Backing::Memory(tree) => {
                let res = evaluate_tree(&query.prog, tree);
                Ok(query
                    .prog
                    .query_preds()
                    .iter()
                    .any(|&p| res.holds(p, tree.root())))
            }
        }
    }

    /// Evaluates a query by the two-phase algorithm: two linear scans for
    /// disk databases, two in-memory sweeps otherwise.
    pub fn evaluate(&self, query: &Query) -> Result<QueryOutcome, EngineError> {
        match &self.backing {
            Backing::Disk(db) => Ok(evaluate_disk(&query.prog, db)?),
            Backing::Memory(tree) => {
                let res = evaluate_tree(&query.prog, tree);
                let mut selected = NodeSet::new(tree.len());
                let mut per_pred_counts = vec![0u64; query.prog.query_preds().len()];
                for v in tree.nodes() {
                    let mut any = false;
                    for (i, &q) in query.prog.query_preds().iter().enumerate() {
                        if res.holds(q, v) {
                            per_pred_counts[i] += 1;
                            any = true;
                        }
                    }
                    if any {
                        selected.insert(v);
                    }
                }
                Ok(QueryOutcome {
                    stats: res.stats,
                    selected,
                    per_pred_counts,
                })
            }
        }
    }

    /// Evaluates a [`QueryBatch`](crate::QueryBatch): all queries share
    /// **one** two-phase pass — one backward and one forward linear scan
    /// for disk databases (`stats.backward_scans == 1` regardless of the
    /// batch size), two in-memory sweeps otherwise — and the results are
    /// demultiplexed into one [`QueryOutcome`] per query. The batch's
    /// queries must have been compiled against *this* database (see
    /// [`QueryBatch::new`](crate::QueryBatch::new)).
    pub fn evaluate_batch(
        &self,
        batch: &crate::QueryBatch,
    ) -> Result<crate::BatchOutcome, EngineError> {
        match &self.backing {
            Backing::Disk(db) => Ok(crate::batch::evaluate_disk_batch(batch, db)?),
            Backing::Memory(tree) => Ok(crate::batch::evaluate_tree_batch(batch, tree)?),
        }
    }

    /// Evaluates every query of a batch as a **boolean** (document
    /// filtering) query, sharing a single backward scan: one
    /// accept/reject verdict per query.
    pub fn evaluate_boolean_batch(
        &self,
        batch: &crate::QueryBatch,
    ) -> Result<Vec<bool>, EngineError> {
        match &self.backing {
            Backing::Disk(db) => Ok(crate::batch::evaluate_boolean_batch(batch, db)?),
            Backing::Memory(tree) => Ok(crate::batch::evaluate_boolean_batch_tree(batch, tree)?),
        }
    }

    /// Evaluates a batch and writes the whole document once with nodes
    /// marked that any query of the batch selected (the demultiplexed
    /// per-query node sets are in the returned outcome; per-query marked
    /// output is available through
    /// [`evaluate_disk_batch_with_hook`](crate::evaluate_disk_batch_with_hook)).
    pub fn evaluate_batch_marked(
        &self,
        batch: &crate::QueryBatch,
        out: impl Write,
    ) -> Result<crate::BatchOutcome, EngineError> {
        match &self.backing {
            Backing::Disk(db) => {
                let query_atoms = local_atoms(batch.merged_program().query_preds());
                marked_disk_eval(&self.labels, &query_atoms, out, |hook| {
                    crate::batch::evaluate_disk_batch_with_hook(batch, db, Some(hook))
                })
            }
            Backing::Memory(tree) => {
                let outcome = self.evaluate_batch(batch)?;
                let mut union = NodeSet::new(tree.len());
                for o in &outcome.outcomes {
                    union.union_with(&o.selected);
                }
                let mut out = out;
                let writer = arb_xml::MarkedWriter::new(&self.labels, Some(&union));
                writer.write(tree, &mut out)?;
                Ok(outcome)
            }
        }
    }

    /// Evaluates a query and writes the whole document with selected
    /// nodes marked (the paper's default output mode), streaming during
    /// phase 2 for disk databases.
    pub fn evaluate_marked(
        &self,
        query: &Query,
        out: impl Write,
    ) -> Result<QueryOutcome, EngineError> {
        match &self.backing {
            Backing::Disk(db) => {
                let query_atoms = local_atoms(query.prog.query_preds());
                marked_disk_eval(&self.labels, &query_atoms, out, |hook| {
                    evaluate_disk_with_hook(&query.prog, db, Some(hook))
                })
            }
            Backing::Memory(tree) => {
                let outcome = self.evaluate(query)?;
                let mut out = out;
                let writer = arb_xml::MarkedWriter::new(&self.labels, Some(&outcome.selected));
                writer.write(tree, &mut out)?;
                Ok(outcome)
            }
        }
    }
}

/// The query predicates as logic atoms.
fn local_atoms(preds: &[arb_tmnf::PredId]) -> Vec<arb_logic::Atom> {
    preds.iter().map(|&p| arb_logic::Atom::local(p)).collect()
}

/// Shared disk-side marked-output kernel: runs `eval` with a phase-2
/// hook that streams the document in document order, marking every node
/// whose predicate set contains any of `query_atoms`.
fn marked_disk_eval<T>(
    labels: &LabelTable,
    query_atoms: &[arb_logic::Atom],
    out: impl Write,
    eval: impl FnOnce(crate::diskeval::Phase2Hook<'_>) -> io::Result<T>,
) -> Result<T, EngineError> {
    let mut emitter = XmlEmitter::new(labels, out);
    let mut emit_err: Option<io::Error> = None;
    let mut hook = |_ix: u32, rec: NodeRecord, set: &arb_logic::PredSet| {
        let sel = query_atoms.iter().any(|a| set.contains(*a));
        if let Err(e) = emitter.node(rec, sel) {
            emit_err.get_or_insert(e);
        }
    };
    let outcome = eval(&mut hook)?;
    if let Some(e) = emit_err {
        return Err(e.into());
    }
    emitter.finish()?;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_database_end_to_end() {
        let mut db = Database::from_xml_str("<r><a/><b><a>t</a></b></r>").unwrap();
        let q = db.compile_tmnf("QUERY :- V.Label[a];").unwrap();
        let outcome = db.evaluate(&q).unwrap();
        assert_eq!(outcome.stats.selected, 2);
        assert_eq!(outcome.per_pred_counts, vec![2]);

        let mut buf = Vec::new();
        db.evaluate_marked(&q, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(
            s,
            "<r><a arb:selected=\"true\"></a><b><a arb:selected=\"true\">t</a></b></r>"
        );
    }

    #[test]
    fn disk_and_memory_agree() {
        let xml = "<doc><x><y/>ab</x><x/></doc>";
        let dir = std::env::temp_dir().join(format!("arb-dbx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let xml_path = dir.join("d.xml");
        std::fs::write(&xml_path, xml).unwrap();
        let (mut disk, stats) =
            Database::create_arb_from_xml(&xml_path, dir.join("d.arb"), &XmlConfig::default())
                .unwrap();
        assert_eq!(stats.nodes(), disk.node_count());

        let mut mem = Database::from_xml_str(xml).unwrap();
        let src = "QUERY :- V.Label[x], HasFirstChild;";
        let qd = disk.compile_tmnf(src).unwrap();
        let qm = mem.compile_tmnf(src).unwrap();
        let od = disk.evaluate(&qd).unwrap();
        let om = mem.evaluate(&qm).unwrap();
        assert_eq!(od.stats.selected, om.stats.selected);
        assert_eq!(od.selected.to_vec(), om.selected.to_vec());

        let mut bd = Vec::new();
        let mut bm = Vec::new();
        disk.evaluate_marked(&qd, &mut bd).unwrap();
        mem.evaluate_marked(&qm, &mut bm).unwrap();
        assert_eq!(bd, bm);
    }
}
