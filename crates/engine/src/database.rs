//! The `Database` handle: disk or memory, plus query compilation bound to
//! the database's label space.
//!
//! Evaluation happens through prepared [`Session`]s — see
//! [`Database::prepare`] and the [`session`](crate::session) module. The
//! legacy `evaluate*` method matrix survives as deprecated one-line shims
//! over that path.

use crate::query::{choose_query_pred, Query, QueryLanguage};
use crate::session::Session;
use crate::update::{parse_fragment, tree_records, AppliedUpdate, DocUpdate};
use crate::QueryOutcome;
use arb_storage::{ArbDatabase, CreationStats, FormatVersion, UpdateOp};
use arb_tree::{BinaryTree, LabelTable};
use arb_xml::XmlConfig;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Engine errors.
#[derive(Debug)]
pub enum EngineError {
    /// I/O failure.
    Io(io::Error),
    /// Query compilation failure.
    Query(String),
    /// Database creation / parsing failure.
    Create(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "I/O error: {e}"),
            EngineError::Query(m) => write!(f, "query error: {m}"),
            EngineError::Create(m) => write!(f, "database error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<io::Error> for EngineError {
    fn from(e: io::Error) -> Self {
        EngineError::Io(e)
    }
}

enum Backing {
    Disk(Box<ArbDatabase>),
    /// In-memory trees sit behind a lock so [`Database::apply_update`]
    /// can swap epochs under live sessions; readers snapshot the `Arc`
    /// and never block an update for longer than the pointer clone.
    Memory(RwLock<Arc<BinaryTree>>),
}

/// A queryable tree database.
///
/// Owns the label table; queries are compiled against it so that label
/// tests in the query resolve to the same 14-bit indexes as the stored
/// records.
pub struct Database {
    backing: Backing,
    labels: LabelTable,
    /// Update counter of a memory backing (its epoch); disk backings
    /// read the epoch from the `.arb` header instead.
    mem_updates: AtomicU64,
}

impl Database {
    /// Opens an existing `.arb` database.
    pub fn open_arb(path: impl AsRef<Path>) -> Result<Self, EngineError> {
        let db = ArbDatabase::open(path.as_ref().to_path_buf())?;
        Ok(Self::from_disk(db))
    }

    /// Wraps an already-open [`ArbDatabase`] handle.
    pub fn from_disk(db: ArbDatabase) -> Self {
        let labels = db.labels().clone();
        Database {
            backing: Backing::Disk(Box::new(db)),
            labels,
            mem_updates: AtomicU64::new(0),
        }
    }

    /// Creates a `.arb` database from an XML file (the paper's two-pass
    /// creation) in the default on-disk format
    /// ([`FormatVersion::V2`]), then opens it. Returns the Figure-5
    /// statistics too.
    pub fn create_arb_from_xml(
        xml_path: impl AsRef<Path>,
        arb_path: impl AsRef<Path>,
        config: &XmlConfig,
    ) -> Result<(Self, CreationStats), EngineError> {
        Self::create_arb_from_xml_with(xml_path, arb_path, config, FormatVersion::default())
    }

    /// Creates a `.arb` database from an XML file in an explicit on-disk
    /// format, then opens it.
    pub fn create_arb_from_xml_with(
        xml_path: impl AsRef<Path>,
        arb_path: impl AsRef<Path>,
        config: &XmlConfig,
        format: FormatVersion,
    ) -> Result<(Self, CreationStats), EngineError> {
        let (db, stats) = ArbDatabase::create_from_xml_file_with(
            xml_path.as_ref(),
            arb_path.as_ref(),
            config,
            format,
        )
        .map_err(|e| EngineError::Create(e.to_string()))?;
        Ok((Self::from_disk(db), stats))
    }

    /// An in-memory database parsed from an XML string.
    pub fn from_xml_str(xml: &str) -> Result<Self, EngineError> {
        let mut labels = LabelTable::new();
        let tree = arb_xml::str_to_tree(xml, &mut labels)
            .map_err(|e| EngineError::Create(e.to_string()))?;
        Ok(Database {
            backing: Backing::Memory(RwLock::new(Arc::new(tree))),
            labels,
            mem_updates: AtomicU64::new(0),
        })
    }

    /// An in-memory database from an existing tree and label table.
    pub fn from_tree(tree: BinaryTree, labels: LabelTable) -> Self {
        Database {
            backing: Backing::Memory(RwLock::new(Arc::new(tree))),
            labels,
            mem_updates: AtomicU64::new(0),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u64 {
        match &self.backing {
            Backing::Disk(db) => db.node_count() as u64,
            Backing::Memory(t) => t.read().expect("tree lock poisoned").len() as u64,
        }
    }

    /// The label table.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// The on-disk database, if this is a disk database.
    pub fn as_disk(&self) -> Option<&ArbDatabase> {
        match &self.backing {
            Backing::Disk(db) => Some(db),
            Backing::Memory(_) => None,
        }
    }

    /// A shared snapshot of the current tree: the live `Arc` for memory
    /// backings (cheap, stable across later updates), a materialization
    /// for disk backings.
    pub(crate) fn snapshot_tree(&self) -> Result<Arc<BinaryTree>, EngineError> {
        match &self.backing {
            Backing::Disk(db) => Ok(Arc::new(db.to_tree()?)),
            Backing::Memory(t) => Ok(t.read().expect("tree lock poisoned").clone()),
        }
    }

    /// Materializes the tree (reads the whole database for disk
    /// backings; clones the current epoch's tree in memory).
    pub fn to_tree(&self) -> Result<BinaryTree, EngineError> {
        match &self.backing {
            Backing::Disk(db) => Ok(db.to_tree()?),
            Backing::Memory(t) => Ok((**t.read().expect("tree lock poisoned")).clone()),
        }
    }

    /// The document's epoch: 0 until the first update, bumped by one per
    /// applied update. Disk backings read it from the `.arb` header (so
    /// it survives reopens); memory backings count in-process updates.
    pub fn epoch(&self) -> u64 {
        match &self.backing {
            Backing::Disk(db) => db.epoch(),
            Backing::Memory(_) => self.mem_updates.load(Ordering::SeqCst),
        }
    }

    /// Per-kind update counters `(appends, splices, deletes)` of a disk
    /// backing's header; all zero for memory backings (which only count
    /// the total, see [`Database::epoch`]).
    pub fn update_counters(&self) -> (u32, u32, u32) {
        match &self.backing {
            Backing::Disk(db) => db.update_counters(),
            Backing::Memory(_) => (0, 0, 0),
        }
    }

    /// Applies one [`DocUpdate`] to the document and returns what
    /// happened. Disk backings rewrite only the dirty record blocks of
    /// the `.arb` file in place ([`arb_storage::ArbUpdater`]) and bump
    /// the header epoch; memory backings rebuild the tree and swap it
    /// under the lock. Fragments must not introduce new tag names (see
    /// [`DocUpdate`]).
    ///
    /// Standing [`Session`]s over this database pick the
    /// edit up through [`Session::refresh`](crate::Session::refresh) —
    /// which calls this itself; call `apply_update` directly only when
    /// no standing state needs to follow along.
    pub fn apply_update(&self, update: &DocUpdate) -> Result<AppliedUpdate, EngineError> {
        let frag = match update.xml() {
            Some(xml) => parse_fragment(xml, &self.labels)?,
            None => Vec::new(),
        };
        match &self.backing {
            Backing::Disk(db) => {
                let op = match update {
                    DocUpdate::AppendChild { under, .. } => UpdateOp::AppendChild {
                        under: *under,
                        frag: &frag,
                    },
                    DocUpdate::SpliceSubtree { at, .. } => UpdateOp::SpliceSubtree {
                        at: *at,
                        frag: &frag,
                    },
                    DocUpdate::DeleteSubtree { at } => UpdateOp::DeleteSubtree { at: *at },
                };
                let report = db.apply_update(&op)?;
                Ok(AppliedUpdate {
                    plan: report.plan,
                    frag,
                    new_nodes: report.new_nodes,
                    epoch: report.epoch,
                    retained_blocks: report.retained_blocks,
                })
            }
            Backing::Memory(lock) => {
                let mut guard = lock.write().expect("tree lock poisoned");
                let mut records = tree_records(&guard);
                let (ends, kinds) = arb_storage::record_extents(&records)?;
                let plan = match update {
                    DocUpdate::AppendChild { under, .. } => arb_storage::plan_append(
                        &records,
                        &ends,
                        &kinds,
                        *under,
                        frag.len() as u32,
                    )?,
                    DocUpdate::SpliceSubtree { at, .. } => {
                        arb_storage::plan_splice(&records, &ends, &kinds, *at, frag.len() as u32)?
                    }
                    DocUpdate::DeleteSubtree { at } => {
                        arb_storage::plan_delete(&records, &ends, &kinds, *at)?
                    }
                };
                arb_storage::apply_edit(&mut records, &plan, &frag);
                let tree = arb_storage::records_to_tree(&records)?;
                *guard = Arc::new(tree);
                let epoch = self.mem_updates.fetch_add(1, Ordering::SeqCst) + 1;
                Ok(AppliedUpdate {
                    plan,
                    frag,
                    new_nodes: records.len() as u32,
                    epoch,
                    retained_blocks: 0,
                })
            }
        }
    }

    /// Compiles a TMNF (Arb surface syntax) query against this database.
    /// The query predicate is `QUERY` if such a predicate exists, else
    /// the head of the last rule — in which case the returned query's
    /// `implicit_query_pred` names the predicate that was chosen.
    pub fn compile_tmnf(&mut self, src: &str) -> Result<Query, EngineError> {
        let ast = arb_tmnf::parse_program(src, &mut self.labels)
            .map_err(|e| EngineError::Query(e.to_string()))?;
        let mut prog = arb_tmnf::normalize(&ast);
        let implicit_query_pred = choose_query_pred(&mut prog);
        let prog = arb_tmnf::optimize(&prog);
        Ok(Query {
            prog,
            language: QueryLanguage::Tmnf,
            source: src.to_string(),
            implicit_query_pred,
        })
    }

    /// Compiles a Core XPath query against this database.
    pub fn compile_xpath(&mut self, src: &str) -> Result<Query, EngineError> {
        let prog = arb_xpath::compile(src, &mut self.labels)
            .map_err(|e| EngineError::Query(e.to_string()))?;
        let prog = arb_tmnf::optimize(&prog);
        Ok(Query {
            prog,
            language: QueryLanguage::XPath,
            source: src.to_string(),
            implicit_query_pred: None,
        })
    }

    /// Prepares compiled queries for evaluation: merges them into one
    /// multi-query program (a single query is a batch of one) and binds
    /// the resulting [`Session`] to this database. The queries must have
    /// been compiled against *this* database (see
    /// [`QueryBatch::new`](crate::QueryBatch::new)).
    pub fn prepare(&self, queries: &[Query]) -> Session<'_> {
        Session::new(self, queries)
    }

    /// Prepares an existing [`QueryBatch`](crate::QueryBatch) (e.g. one
    /// built from raw programs with
    /// [`QueryBatch::from_programs`](crate::QueryBatch::from_programs)).
    pub fn prepare_batch<'db>(&'db self, batch: &'db crate::QueryBatch) -> Session<'db> {
        Session::over(self, batch)
    }
}

/// The legacy method-per-(cardinality × output-mode) matrix, now one-line
/// shims over [`Database::prepare`] + [`Session`] with the corresponding
/// sink. Migration map:
///
/// | legacy                   | prepared replacement                              |
/// |--------------------------|---------------------------------------------------|
/// | `evaluate`               | `prepare(&[q]).run_one()`                         |
/// | `evaluate_boolean`       | `prepare(&[q]).run_boolean()` / [`crate::BooleanSink`] |
/// | `evaluate_marked`        | `prepare(&[q]).run_marked(out)` / [`crate::XmlMarkSink`] |
/// | `evaluate_batch`         | `prepare_batch(&batch).run()`                     |
/// | `evaluate_boolean_batch` | `prepare_batch(&batch).run_boolean()`             |
/// | `evaluate_batch_marked`  | `prepare_batch(&batch).run_marked(out)`           |
impl Database {
    /// Evaluates a query by the two-phase algorithm.
    #[deprecated(note = "prepare a Session: `Database::prepare` + `Session::run_one`")]
    pub fn evaluate(&self, query: &Query) -> Result<QueryOutcome, EngineError> {
        self.prepare(std::slice::from_ref(query)).run_one()
    }

    /// Evaluates a query as a **boolean** (document-filtering) query.
    #[deprecated(note = "prepare a Session: `Session::run_boolean` or a `BooleanSink`")]
    pub fn evaluate_boolean(&self, query: &Query) -> Result<bool, EngineError> {
        Ok(self.prepare(std::slice::from_ref(query)).run_boolean()?[0])
    }

    /// Evaluates a query and writes the document with selected nodes
    /// marked.
    #[deprecated(note = "prepare a Session: `Session::run_marked` or an `XmlMarkSink`")]
    pub fn evaluate_marked(
        &self,
        query: &Query,
        out: impl Write,
    ) -> Result<QueryOutcome, EngineError> {
        Ok(self
            .prepare(std::slice::from_ref(query))
            .run_marked(out)?
            .outcomes
            .remove(0))
    }

    /// Evaluates a [`QueryBatch`](crate::QueryBatch) in one shared pass.
    #[deprecated(note = "prepare a Session: `Database::prepare_batch` + `Session::run`")]
    pub fn evaluate_batch(
        &self,
        batch: &crate::QueryBatch,
    ) -> Result<crate::BatchOutcome, EngineError> {
        self.prepare_batch(batch).run()
    }

    /// Evaluates every query of a batch as a boolean query.
    #[deprecated(note = "prepare a Session: `Database::prepare_batch` + `Session::run_boolean`")]
    pub fn evaluate_boolean_batch(
        &self,
        batch: &crate::QueryBatch,
    ) -> Result<Vec<bool>, EngineError> {
        self.prepare_batch(batch).run_boolean()
    }

    /// Evaluates a batch and writes the document once, marking the union
    /// of the batch's selections.
    #[deprecated(note = "prepare a Session: `Database::prepare_batch` + `Session::run_marked`")]
    pub fn evaluate_batch_marked(
        &self,
        batch: &crate::QueryBatch,
        out: impl Write,
    ) -> Result<crate::BatchOutcome, EngineError> {
        self.prepare_batch(batch).run_marked(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_database_end_to_end() {
        let mut db = Database::from_xml_str("<r><a/><b><a>t</a></b></r>").unwrap();
        let q = db.compile_tmnf("QUERY :- V.Label[a];").unwrap();
        let session = db.prepare(std::slice::from_ref(&q));
        let outcome = session.run_one().unwrap();
        assert_eq!(outcome.stats.selected, 2);
        assert_eq!(outcome.per_pred_counts, vec![2]);

        let mut buf = Vec::new();
        session.run_marked(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(
            s,
            "<r><a arb:selected=\"true\"></a><b><a arb:selected=\"true\">t</a></b></r>"
        );
    }

    #[test]
    fn disk_and_memory_agree() {
        let xml = "<doc><x><y/>ab</x><x/></doc>";
        let dir = std::env::temp_dir().join(format!("arb-dbx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let xml_path = dir.join("d.xml");
        std::fs::write(&xml_path, xml).unwrap();
        let (mut disk, stats) =
            Database::create_arb_from_xml(&xml_path, dir.join("d.arb"), &XmlConfig::default())
                .unwrap();
        assert_eq!(stats.nodes(), disk.node_count());

        let mut mem = Database::from_xml_str(xml).unwrap();
        let src = "QUERY :- V.Label[x], HasFirstChild;";
        let qd = disk.compile_tmnf(src).unwrap();
        let qm = mem.compile_tmnf(src).unwrap();
        let sd = disk.prepare(std::slice::from_ref(&qd));
        let sm = mem.prepare(std::slice::from_ref(&qm));
        let od = sd.run_one().unwrap();
        let om = sm.run_one().unwrap();
        assert_eq!(od.stats.selected, om.stats.selected);
        assert_eq!(od.selected.to_vec(), om.selected.to_vec());

        let mut bd = Vec::new();
        let mut bm = Vec::new();
        sd.run_marked(&mut bd).unwrap();
        sm.run_marked(&mut bm).unwrap();
        assert_eq!(bd, bm);
    }

    /// The deprecated shims stay behaviorally identical to the prepared
    /// path they delegate to.
    #[test]
    #[allow(deprecated)]
    fn legacy_shims_delegate() {
        let mut db = Database::from_xml_str("<r><a/><b><a>t</a></b></r>").unwrap();
        let q = db.compile_tmnf("QUERY :- V.Label[a];").unwrap();
        assert_eq!(db.evaluate(&q).unwrap().stats.selected, 2);
        assert!(!db.evaluate_boolean(&q).unwrap());
        let mut buf = Vec::new();
        db.evaluate_marked(&q, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("arb:selected"));
    }
}
