//! # arb-engine
//!
//! The high-level Arb query engine: databases (on disk in the `.arb`
//! storage model, or in memory), compiled queries (TMNF or Core XPath),
//! and two-phase evaluation with optional marked-XML output — the Rust
//! counterpart of the paper's C++ `Arb` system.
//!
//! ```
//! use arb_engine::{Database, Engine};
//!
//! let mut db = Database::from_xml_str("<r><a/><b><a/></b></r>").unwrap();
//! let q = db.compile_tmnf("QUERY :- V.Label[a];").unwrap();
//! let outcome = db.evaluate(&q).unwrap();
//! assert_eq!(outcome.stats.selected, 2);
//! # let _ = Engine::default();
//! ```
//!
//! Several queries evaluate as a batch sharing one two-scan pass
//! (paper §7 — see [`batch`]):
//!
//! ```
//! use arb_engine::{Database, QueryBatch};
//!
//! let mut db = Database::from_xml_str("<r><a/><b><a/></b></r>").unwrap();
//! let q1 = db.compile_tmnf("QUERY :- V.Label[a];").unwrap();
//! let q2 = db.compile_xpath("//b").unwrap();
//! let batch = QueryBatch::new(&[q1, q2]);
//! let out = db.evaluate_batch(&batch).unwrap();
//! assert_eq!(out.outcomes[0].stats.selected, 2);
//! assert_eq!(out.outcomes[1].stats.selected, 1);
//! ```

pub mod batch;
pub mod database;
pub mod diskeval;
pub mod output;
pub mod query;

pub use batch::{
    evaluate_boolean_batch, evaluate_disk_batch, evaluate_disk_batch_with_hook, BatchOutcome,
    QueryBatch,
};
pub use database::{Database, EngineError};
pub use diskeval::evaluate_disk;
pub use output::XmlEmitter;
pub use query::{Query, QueryLanguage};

use arb_core::EvalStats;
use arb_tree::NodeSet;

/// The result of evaluating a query.
pub struct QueryOutcome {
    /// Figure-6-style statistics (times, transitions, selected, memory).
    pub stats: EvalStats,
    /// The selected nodes (union over all query predicates), as preorder
    /// indexes.
    pub selected: NodeSet,
    /// Per-query-predicate selection counts, in the order of
    /// `query_preds()` (multi-query support, paper §7).
    pub per_pred_counts: Vec<u64>,
}

/// Engine-level knobs.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    /// Force in-memory evaluation even for disk databases (materializes
    /// the tree first). Off by default.
    pub prefer_memory: bool,
}
