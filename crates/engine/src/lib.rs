//! # arb-engine
//!
//! The high-level Arb query engine: databases (on disk in the `.arb`
//! storage model, or in memory), compiled queries (TMNF or Core XPath),
//! and two-phase evaluation — the Rust counterpart of the paper's C++
//! `Arb` system.
//!
//! There is **one** evaluation entry point, mirroring the paper's one
//! algorithm: compile queries, [`prepare`](Database::prepare) a
//! [`Session`] (single-query is a batch of one; k queries share one
//! two-scan pass, paper §7), describe the run with an [`EvalRequest`],
//! and plug a [`ResultSink`] to pick the output shape:
//!
//! ```
//! use arb_engine::{CountSink, Database, EvalRequest, XmlMarkSink};
//!
//! let mut db = Database::from_xml_str("<r><a/><b><a/></b></r>").unwrap();
//! let q1 = db.compile_tmnf("QUERY :- V.Label[a];").unwrap();
//! let q2 = db.compile_xpath("//b").unwrap();
//! let session = db.prepare(&[q1, q2]);
//!
//! // Per-query selection counts from one shared pass.
//! let mut counts = CountSink::default();
//! session.eval(&EvalRequest::new(), &mut counts).unwrap();
//! assert_eq!(counts.counts(), &[2, 1]);
//!
//! // The same pass can stream the marked document instead (paper §6.3).
//! let mut mark = XmlMarkSink::new(db.labels(), Vec::new());
//! session.eval(&EvalRequest::new(), &mut mark).unwrap();
//! assert!(String::from_utf8(mark.into_inner().unwrap())
//!     .unwrap()
//!     .contains("arb:selected"));
//! ```
//!
//! Provided sinks: [`BooleanSink`] (accept/reject per query — one
//! backward scan on disk), [`CountSink`], [`NodeSetSink`], and
//! [`XmlMarkSink`] (streams during phase 2). [`EvalOptions`] carries the
//! engine knobs: `prefer_memory` (materialize a disk database first) and
//! `parallelism` (frontier-parallel evaluation, paper §6.2, on **both**
//! backends — on disk the pass is sharded over disjoint subtree record
//! windows with per-worker range scans and `.sta` segments; see the
//! [`diskeval`] module docs). Every evaluation gets its own uniquely
//! named `.sta` scratch file, so concurrent sessions over one database
//! are safe. Convenience wrappers [`Session::run`], [`Session::run_one`],
//! [`Session::run_boolean`] and [`Session::run_marked`] cover the common
//! shapes; the deprecated `Database::evaluate*` matrix forwards to them.
//!
//! ## Build once, eval many
//!
//! A [`Session`] owns an [`AutomataPool`]: the compiled `QueryAutomata`
//! (symbol/predicate interners and memoized δ tables) are built on the
//! first run and reused — warm — by every later run of the session,
//! across sinks, backends and thread counts. The per-run
//! [`arb_core::EvalStats`] counters `automata_builds` /
//! `automata_reused` / `automata_build_time` make the lifecycle
//! observable; hosts that outlive individual sessions can share a pool
//! between sessions over the same merged program with
//! [`Session::with_pool`] (the resident query service does this for
//! repeated admission-window shapes).

pub mod batch;
pub mod database;
pub mod diskeval;
pub mod incremental;
pub mod output;
pub mod query;
pub mod session;
pub mod update;

pub use arb_core::AutomataPool;
pub use arb_storage::{FormatVersion, StaFormat};
pub use batch::{
    evaluate_boolean_batch, evaluate_boolean_batch_opts, evaluate_disk_batch,
    evaluate_disk_batch_opts, evaluate_disk_batch_with_hook, BatchOutcome, QueryBatch,
};
pub use database::{Database, EngineError};
pub use diskeval::{evaluate_disk, evaluate_disk_parallel};
pub use incremental::{QueryDelta, RefreshReport, StandingQuery};
pub use output::XmlEmitter;
pub use query::{Query, QueryLanguage};
pub use session::{
    BooleanSink, CountSink, EvalOptions, EvalReport, EvalRequest, NodeSetSink, ResultSink, Session,
    SinkContext, SinkDemand, XmlMarkSink,
};
pub use update::{AppliedUpdate, DocUpdate};

use arb_core::EvalStats;
use arb_tree::NodeSet;

/// The result of evaluating a query.
pub struct QueryOutcome {
    /// Figure-6-style statistics (times, transitions, selected, memory).
    pub stats: EvalStats,
    /// The selected nodes (union over all query predicates), as preorder
    /// indexes.
    pub selected: NodeSet,
    /// Per-query-predicate selection counts, in the order of
    /// `query_preds()` (multi-query support, paper §7).
    pub per_pred_counts: Vec<u64>,
}
