//! # arb-engine
//!
//! The high-level Arb query engine: databases (on disk in the `.arb`
//! storage model, or in memory), compiled queries (TMNF or Core XPath),
//! and two-phase evaluation with optional marked-XML output — the Rust
//! counterpart of the paper's C++ `Arb` system.
//!
//! ```
//! use arb_engine::{Database, Engine};
//!
//! let mut db = Database::from_xml_str("<r><a/><b><a/></b></r>").unwrap();
//! let q = db.compile_tmnf("QUERY :- V.Label[a];").unwrap();
//! let outcome = db.evaluate(&q).unwrap();
//! assert_eq!(outcome.stats.selected, 2);
//! # let _ = Engine::default();
//! ```

pub mod database;
pub mod diskeval;
pub mod output;
pub mod query;

pub use database::{Database, EngineError};
pub use diskeval::evaluate_disk;
pub use output::XmlEmitter;
pub use query::{Query, QueryLanguage};

use arb_core::EvalStats;
use arb_tree::NodeSet;

/// The result of evaluating a query.
pub struct QueryOutcome {
    /// Figure-6-style statistics (times, transitions, selected, memory).
    pub stats: EvalStats,
    /// The selected nodes (union over all query predicates), as preorder
    /// indexes.
    pub selected: NodeSet,
    /// Per-query-predicate selection counts, in the order of
    /// `query_preds()` (multi-query support, paper §7).
    pub per_pred_counts: Vec<u64>,
}

/// Engine-level knobs.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    /// Force in-memory evaluation even for disk databases (materializes
    /// the tree first). Off by default.
    pub prefer_memory: bool,
}
