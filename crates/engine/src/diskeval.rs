//! Algorithm 4.6 over the `.arb` secondary-storage model.
//!
//! Phase 1 runs the bottom-up automaton over one **backward linear scan**
//! of the `.arb` file, streaming the per-node state ids (4 bytes/node) to
//! the temporary `.sta` file. Phase 2 runs the top-down automaton over
//! one **forward linear scan**, reading the `.sta` file forward in
//! lockstep. Main memory holds only the two automata (lazily grown hash
//! tables) and a stack bounded by the XML depth — the paper's three
//! desiderata of Section 1.1.

use crate::QueryOutcome;
use arb_core::{EvalStats, QueryAutomata};
use arb_logic::{Atom, PredSetId, ProgramId};
use arb_storage::stafile::{StateFileReader, StateFileWriter};
use arb_storage::{bottom_up_scan, top_down_scan, ArbDatabase, DownContext};
use arb_tmnf::CoreProgram;
use arb_tree::NodeSet;
use std::io;
use std::time::Instant;

/// Per-node hook invoked during phase 2 (document order) with the node's
/// record, its final true-predicate set, and one selected-flag per query
/// group (one entry for a single query; one per input query of a batch) —
/// the seam streaming consumers (e.g. [`crate::XmlMarkSink`]) plug into.
pub type Phase2Hook<'a> =
    &'a mut dyn FnMut(u32, arb_storage::NodeRecord, &arb_logic::PredSet, &[bool]);

/// Evaluates a TMNF program over a disk database by the two-phase
/// algorithm. Pass a `hook` to observe every node's predicates in
/// document order during phase 2 (e.g. to emit marked XML).
pub fn evaluate_disk_with_hook(
    prog: &CoreProgram,
    db: &ArbDatabase,
    hook: Option<Phase2Hook<'_>>,
) -> io::Result<QueryOutcome> {
    let atoms: Vec<Atom> = prog.query_preds().iter().map(|&p| Atom::local(p)).collect();
    let (outcome, _sets) = evaluate_disk_grouped(prog, db, &[atoms], hook)?;
    Ok(outcome)
}

/// The shared two-scan kernel, generalized over *groups* of query atoms
/// (one group per query of a batch; a single query is one group): every
/// atom is tested exactly once per node during the phase-2 scan, feeding
/// both the flattened `per_pred_counts` and one selected-node set per
/// group — this is what makes batch demultiplexing free.
///
/// With exactly one group, its node set *is* the union: it is moved into
/// `outcome.selected` and the returned group vector is empty (no
/// duplicate bitset on the single-query path).
pub(crate) fn evaluate_disk_grouped(
    prog: &CoreProgram,
    db: &ArbDatabase,
    groups: &[Vec<Atom>],
    mut hook: Option<Phase2Hook<'_>>,
) -> io::Result<(QueryOutcome, Vec<NodeSet>)> {
    let mut qa = QueryAutomata::new(prog);
    let n = db.node_count();
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "cannot evaluate a query on an empty database",
        ));
    }
    let sta_path = db.sta_path();
    // Scans this evaluation opened, counted at the open sites below so
    // the Proposition 5.1 claim (one each) is measured, not assumed.
    let mut backward_scans = 0u64;
    let mut forward_scans = 0u64;

    // --- Phase 1: backward scan, bottom-up automaton, stream states -----
    let t1 = Instant::now();
    let mut scan = db.backward_scan()?;
    backward_scans += 1;
    let mut sta = StateFileWriter::create(&sta_path, n as u64)?;
    let mut sta_err: Option<io::Error> = None;
    let root_state = bottom_up_scan(&mut scan, |s1: Option<ProgramId>, s2, rec, ix| {
        let s = qa.bottom_up(s1, s2, rec.info(ix));
        if let Err(e) = sta.write_state(s.0) {
            sta_err.get_or_insert(e);
        }
        s
    })?;
    if let Some(e) = sta_err {
        return Err(e);
    }
    sta.finish()?;
    let phase1_time = t1.elapsed();

    // --- Phase 2: forward scan, top-down automaton ----------------------
    let t2 = Instant::now();
    let mut scan = db.forward_scan()?;
    forward_scans += 1;
    let mut sta = StateFileReader::open(&sta_path)?;
    let total_atoms: usize = groups.iter().map(Vec::len).sum();
    let mut per_pred_counts = vec![0u64; total_atoms];
    let mut group_sets: Vec<NodeSet> = (0..groups.len())
        .map(|_| NodeSet::new(n as usize))
        .collect();
    let mut flags = vec![false; groups.len()];
    let mut io_err: Option<io::Error> = None;
    let start = qa.start_state(root_state);
    top_down_scan(&mut scan, |ctx, rec, ix| -> PredSetId {
        // The child's phase-1 state, in preorder lockstep with the scan.
        let rho_a = match sta.read_state() {
            Ok(s) => ProgramId(s),
            Err(e) => {
                io_err.get_or_insert(e);
                return PredSetId(0);
            }
        };
        let state = match ctx {
            DownContext::Root => {
                debug_assert_eq!(rho_a, root_state);
                start
            }
            DownContext::Child(parent, k) => qa.top_down(parent, rho_a, k),
        };
        let set = qa.predsets.get(state);
        crate::batch::demux_node(
            set,
            groups,
            &mut per_pred_counts,
            &mut group_sets,
            ix,
            &mut flags,
        );
        if let Some(h) = hook.as_mut() {
            h(ix, rec, set, &flags);
        }
        state
    })?;
    if let Some(e) = io_err {
        return Err(e);
    }
    let phase2_time = t2.elapsed();

    // The union over all groups (== all query predicates). A lone group
    // is moved rather than copied.
    let (selected, group_sets) = if group_sets.len() == 1 {
        (
            group_sets.into_iter().next().expect("one group"),
            Vec::new(),
        )
    } else {
        let mut union = NodeSet::new(n as usize);
        for s in &group_sets {
            union.union_with(s);
        }
        (union, group_sets)
    };
    let stats = EvalStats {
        idb_count: prog.pred_count(),
        rule_count: prog.rule_count(),
        phase1_time,
        phase1_transitions: qa.bu_transitions,
        phase2_time,
        phase2_transitions: qa.td_transitions,
        selected: selected.count() as u64,
        memory_bytes: qa.memory_bytes(),
        bu_states: qa.bu_state_count(),
        td_states: qa.td_state_count(),
        nodes: n as u64,
        backward_scans,
        forward_scans,
    };
    Ok((
        QueryOutcome {
            stats,
            selected,
            per_pred_counts,
        },
        group_sets,
    ))
}

/// [`evaluate_disk_with_hook`] without a hook.
pub fn evaluate_disk(prog: &CoreProgram, db: &ArbDatabase) -> io::Result<QueryOutcome> {
    evaluate_disk_with_hook(prog, db, None)
}

/// Evaluates a **boolean** query — "accept or reject an entire XML
/// document on the grounds of its contents" (paper §1, the \[12, 3\]
/// document-filtering setting): does the query predicate hold at the
/// root?
///
/// Only the bottom-up phase is needed: the root's residual program
/// already carries all constraints of the whole tree, so the answer is a
/// membership test on its facts. One backward linear scan, no `.sta`
/// file.
pub fn evaluate_boolean(prog: &CoreProgram, db: &ArbDatabase) -> io::Result<bool> {
    let set = root_true_preds(prog, db)?;
    Ok(prog
        .query_preds()
        .iter()
        .any(|&p| set.contains(Atom::local(p))))
}

/// The set of predicates true at the root, computed with a single
/// backward scan and no `.sta` file — the shared kernel of boolean
/// (document-filtering) evaluation, single-query and batched.
pub(crate) fn root_true_preds(
    prog: &CoreProgram,
    db: &ArbDatabase,
) -> io::Result<arb_logic::PredSet> {
    let mut qa = QueryAutomata::new(prog);
    if db.node_count() == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "cannot evaluate a query on an empty database",
        ));
    }
    let mut scan = db.backward_scan()?;
    let root_state = bottom_up_scan(&mut scan, |s1: Option<ProgramId>, s2, rec, ix| {
        qa.bottom_up(s1, s2, rec.info(ix))
    })?;
    let start = qa.start_state(root_state);
    Ok(qa.predsets.get(start).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_storage::create::create_from_xml;
    use arb_tmnf::{naive, normalize, parse_program};

    use arb_xml::XmlConfig;
    use std::io::Cursor;
    use std::path::PathBuf;

    fn mkdb(xml: &str, name: &str) -> ArbDatabase {
        let dir = std::env::temp_dir().join(format!("arb-eval-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let arb: PathBuf = dir.join(name);
        create_from_xml(Cursor::new(xml.as_bytes()), &XmlConfig::default(), &arb).unwrap();
        ArbDatabase::open(&arb).unwrap()
    }

    /// Disk evaluation must equal the in-memory naive fixpoint on every
    /// (pred, node) pair (Theorem 4.1 end-to-end, through the storage
    /// model).
    #[test]
    fn disk_matches_naive() {
        let xml = "<doc><sec><p>ab</p><p/></sec><sec>c</sec></doc>";
        let db = mkdb(xml, "m1.arb");
        let mut labels = db.labels().clone();
        let src = "InSec :- V.Label[sec].FirstChild.NextSibling*;\n\
                   CharNode :- Text, InSec;\n\
                   QUERY :- CharNode, CharNode;";
        let ast = parse_program(src, &mut labels).unwrap();
        let mut prog = normalize(&ast);
        prog.add_query_pred(prog.pred_id("QUERY").unwrap());

        let outcome = evaluate_disk(&prog, &db).unwrap();

        let tree = db.to_tree().unwrap();
        let oracle = naive::evaluate(&prog, &tree);
        let q = prog.pred_id("QUERY").unwrap();
        for v in tree.nodes() {
            assert_eq!(
                outcome.selected.contains(v),
                oracle.holds(q, v),
                "node {}",
                v.0
            );
        }
        // InSec covers only the *children* of sec elements; the only
        // character child of a sec is 'c' ('a','b' sit inside a p).
        assert_eq!(outcome.stats.selected, 1);
        assert_eq!(outcome.per_pred_counts, vec![1]);
    }

    #[test]
    fn hook_sees_every_node_in_document_order() {
        let db = mkdb("<a><b/><c/></a>", "m2.arb");
        let mut labels = db.labels().clone();
        let ast = parse_program("QUERY :- Root;", &mut labels).unwrap();
        let mut prog = normalize(&ast);
        prog.add_query_pred(prog.pred_id("QUERY").unwrap());
        let mut seen = Vec::new();
        let mut hook =
            |ix: u32, _rec: arb_storage::NodeRecord, _s: &arb_logic::PredSet, _f: &[bool]| {
                seen.push(ix);
            };
        evaluate_disk_with_hook(&prog, &db, Some(&mut hook)).unwrap();
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
