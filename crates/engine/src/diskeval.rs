//! Algorithm 4.6 over the `.arb` secondary-storage model.
//!
//! Phase 1 runs the bottom-up automaton over one **backward linear scan**
//! of the `.arb` file, streaming the per-node state ids to a uniquely
//! named temporary `.sta` file (deleted when the run ends). Phase 2 runs
//! the top-down automaton over one **forward linear scan**, reading the
//! `.sta` file forward in lockstep. Main memory holds only the two
//! automata (lazily grown hash tables) and a stack bounded by the XML
//! depth — the paper's three desiderata of Section 1.1.
//!
//! The `.sta` stream defaults to the block-compressed layout
//! ([`arb_storage::StaFormat::Blocked`]): phase 1 appends run-length +
//! delta/varint encoded blocks and phase 2 decodes each block once into
//! a reusable buffer and steps the automata over the decoded states —
//! instead of one buffered 4-byte file read per node, which PR 6's
//! profiles showed dominating disk phase 1. `ARB_STA_FORMAT=flat` (or
//! `EvalOptions::sta_format` on the session surface) selects the paper's
//! bare 4-bytes-per-node layout (footnote 12).
//!
//! # Sharded evaluation
//!
//! "Tree automata (working on binary trees) naturally admit parallel
//! processing" (paper §6.2): distinct subtrees are independent, and on
//! disk a subtree is a contiguous preorder record window. The sharded
//! evaluator ([`evaluate_disk_parallel`], also behind
//! `EvalOptions::parallelism` on the `Session` surface) plans a frontier
//! of disjoint subtree windows from the database's cached subtree
//! extents (one backward metadata scan on first use;
//! `arb_storage::ArbDatabase::subtree_extents` +
//! [`arb_core::SubtreeIndex`]), then:
//!
//! * **phase 1** — N workers run the bottom-up automaton backwards over
//!   their windows in parallel, each with its own lazy
//!   [`QueryAutomata`], streaming *worker-local* state ids into disjoint
//!   segments of one shared `.sta` file; the spine (the handful of split
//!   ancestors) finishes sequentially on the master automata after the
//!   workers' states are re-interned;
//! * **phase 2** — the spine is annotated top-down first, then the same
//!   workers descend their subtrees with forward range scans, reading
//!   back their own `.sta` segments (their local ids are still
//!   meaningful to them) and demultiplexing matches locally. When a
//!   [`Phase2Hook`] needs the document order (marked-XML streaming),
//!   phase 2 instead runs as one sequential forward scan that remaps
//!   each segment's local ids through the master interner — phase 1
//!   stays parallel.
//!
//! Results are identical to the sequential path; `EvalStats` scan
//! counters report the real number of (range) scans opened.

use crate::QueryOutcome;
use arb_core::{AutomataPool, EvalStats, InternStats, QueryAutomata, SubtreeIndex};
use arb_logic::{Atom, PredSet, PredSetId, PredSetView, ProgramId};
use arb_storage::stafile::{StateFilePatcher, StateFileReader, StateFileWriter};
use arb_storage::{
    bottom_up_scan, top_down_scan, ArbDatabase, DownContext, ScratchPath, StaFormat,
};
use arb_tmnf::CoreProgram;
use arb_tree::NodeSet;
use std::collections::HashMap;
use std::io;
use std::time::{Duration, Instant};

/// Per-node hook invoked during phase 2 (document order) with the node's
/// record, its final true-predicate set (a borrowed view into the
/// automata's arena), and one selected-flag per query group (one entry
/// for a single query; one per input query of a batch) — the seam
/// streaming consumers (e.g. [`crate::XmlMarkSink`]) plug into.
pub type Phase2Hook<'a> = &'a mut dyn FnMut(u32, arb_storage::NodeRecord, PredSetView<'_>, &[bool]);

fn empty_db_err() -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        "cannot evaluate a query on an empty database",
    )
}

/// Evaluates a TMNF program over a disk database by the two-phase
/// algorithm. Pass a `hook` to observe every node's predicates in
/// document order during phase 2 (e.g. to emit marked XML).
pub fn evaluate_disk_with_hook(
    prog: &CoreProgram,
    db: &ArbDatabase,
    hook: Option<Phase2Hook<'_>>,
) -> io::Result<QueryOutcome> {
    let atoms: Vec<Atom> = prog.query_preds().iter().map(|&p| Atom::local(p)).collect();
    let pool = AutomataPool::new();
    let (mut outcome, _sets) =
        evaluate_disk_grouped(prog, db, &[atoms], hook, StaFormat::from_env(), &pool)?;
    stamp_pool(&mut outcome.stats, &pool);
    Ok(outcome)
}

/// [`evaluate_disk_with_hook`] without a hook.
pub fn evaluate_disk(prog: &CoreProgram, db: &ArbDatabase) -> io::Result<QueryOutcome> {
    evaluate_disk_with_hook(prog, db, None)
}

/// [`evaluate_disk`] sharded over `threads` workers (see the module docs
/// for the algorithm). Identical results; falls back to the sequential
/// path when `threads <= 1` or the tree admits no useful frontier
/// (tiny or degenerate right-deep documents).
pub fn evaluate_disk_parallel(
    prog: &CoreProgram,
    db: &ArbDatabase,
    threads: usize,
) -> io::Result<QueryOutcome> {
    let atoms: Vec<Atom> = prog.query_preds().iter().map(|&p| Atom::local(p)).collect();
    let pool = AutomataPool::new();
    let (mut outcome, _sets) = evaluate_disk_grouped_parallel(
        prog,
        db,
        &[atoms],
        None,
        threads,
        StaFormat::from_env(),
        &pool,
    )?;
    stamp_pool(&mut outcome.stats, &pool);
    Ok(outcome)
}

/// Fills the automata-lifecycle columns of `stats` from a pool's
/// lifetime counters — correct for the one-shot wrappers above, whose
/// pool is born with the run. Callers that keep a pool across runs
/// (the `Session` surface) stamp per-run counter *deltas* instead.
fn stamp_pool(stats: &mut EvalStats, pool: &AutomataPool) {
    stats.automata_builds = pool.builds();
    stats.automata_reused = pool.reused();
    stats.automata_build_time = pool.build_time();
}

/// The sequential phase-2 pass: one forward record scan in lockstep with
/// a per-node state stream (`next_state`, called exactly once per node in
/// preorder), demultiplexing into per-group node sets and flattened
/// per-atom counts, feeding `hook` in document order.
///
/// Once a state read fails, the pass stops feeding the automaton, the
/// demux and the hook entirely — a fabricated `PredSetId(0)` annotation
/// must never reach sinks (the original code kept streaming such records
/// into `Phase2Hook` consumers until EOF after an I/O error).
fn phase2_sequential(
    qa: &mut QueryAutomata,
    db: &ArbDatabase,
    root_state: ProgramId,
    groups: &[Vec<Atom>],
    mut next_state: impl FnMut(u32) -> io::Result<u32>,
    hook: &mut Option<Phase2Hook<'_>>,
) -> io::Result<(Vec<u64>, Vec<NodeSet>)> {
    let n = db.node_count();
    let mut scan = db.forward_scan()?;
    let total_atoms: usize = groups.iter().map(Vec::len).sum();
    let mut per_pred_counts = vec![0u64; total_atoms];
    let mut group_sets: Vec<NodeSet> = (0..groups.len())
        .map(|_| NodeSet::new(n as usize))
        .collect();
    let mut flags = vec![false; groups.len()];
    let mut io_err: Option<io::Error> = None;
    let start = qa.start_state(root_state);
    top_down_scan(&mut scan, |ctx, rec, ix| -> PredSetId {
        if io_err.is_some() {
            // A state read already failed: the fold value below is
            // fabricated, so nothing downstream may consume it.
            return PredSetId(0);
        }
        // The child's phase-1 state, in preorder lockstep with the scan.
        let rho_a = match next_state(ix) {
            Ok(s) => ProgramId(s),
            Err(e) => {
                io_err.get_or_insert(e);
                return PredSetId(0);
            }
        };
        let state = match ctx {
            DownContext::Root => {
                debug_assert_eq!(rho_a, root_state);
                start
            }
            DownContext::Child(parent, k) => qa.top_down(parent, rho_a, k),
        };
        let set = qa.predsets.get(state);
        crate::batch::demux_node(
            set,
            groups,
            &mut per_pred_counts,
            &mut group_sets,
            ix,
            &mut flags,
        );
        if let Some(h) = hook.as_mut() {
            h(ix, rec, set, &flags);
        }
        state
    })?;
    if let Some(e) = io_err {
        return Err(e);
    }
    Ok((per_pred_counts, group_sets))
}

/// Collapses per-group node sets into the union `selected` set; a lone
/// group is moved rather than copied (its set *is* the union) and the
/// returned group vector is empty.
fn union_groups(group_sets: Vec<NodeSet>, n: u32) -> (NodeSet, Vec<NodeSet>) {
    if group_sets.len() == 1 {
        (
            group_sets.into_iter().next().expect("one group"),
            Vec::new(),
        )
    } else {
        let mut union = NodeSet::new(n as usize);
        for s in &group_sets {
            union.union_with(s);
        }
        (union, group_sets)
    }
}

/// The shared two-scan kernel, generalized over *groups* of query atoms
/// (one group per query of a batch; a single query is one group): every
/// atom is tested exactly once per node during the phase-2 scan, feeding
/// both the flattened `per_pred_counts` and one selected-node set per
/// group — this is what makes batch demultiplexing free.
///
/// With exactly one group, its node set *is* the union: it is moved into
/// `outcome.selected` and the returned group vector is empty (no
/// duplicate bitset on the single-query path).
pub(crate) fn evaluate_disk_grouped(
    prog: &CoreProgram,
    db: &ArbDatabase,
    groups: &[Vec<Atom>],
    mut hook: Option<Phase2Hook<'_>>,
    format: StaFormat,
    pool: &AutomataPool,
) -> io::Result<(QueryOutcome, Vec<NodeSet>)> {
    let n = db.node_count();
    if n == 0 {
        return Err(empty_db_err());
    }
    let mut qa = pool.take(prog);
    // One uniquely named scratch stream per run: concurrent evaluations
    // of the same database must never share a `.sta` path.
    let sta = db.scratch_sta();
    // Scans this evaluation opened, counted at the open sites below so
    // the Proposition 5.1 claim (one each) is measured, not assumed.
    let mut backward_scans = 0u64;
    let mut forward_scans = 0u64;
    let blocks0 = db.blocks_decoded();

    // --- Phase 1: backward scan, bottom-up automaton, stream states -----
    let t1 = Instant::now();
    let mut scan = db.backward_scan()?;
    backward_scans += 1;
    let mut sta_w = StateFileWriter::create(sta.path(), n as u64, format)?;
    let mut sta_err: Option<io::Error> = None;
    let root_state = bottom_up_scan(&mut scan, |s1: Option<ProgramId>, s2, rec, ix| {
        let s = qa.bottom_up(s1, s2, rec.info(ix));
        if let Err(e) = sta_w.write_state(s.0) {
            sta_err.get_or_insert(e);
        }
        s
    })?;
    if let Some(e) = sta_err {
        return Err(e);
    }
    let sta_encoded_bytes = sta_w.finish()?;
    let phase1_time = t1.elapsed();

    // --- Phase 2: forward scan, top-down automaton ----------------------
    let t2 = Instant::now();
    let mut sta_r = StateFileReader::open(sta.path(), format)?;
    let (per_pred_counts, group_sets) = phase2_sequential(
        &mut qa,
        db,
        root_state,
        groups,
        |_| sta_r.read_state(),
        &mut hook,
    )?;
    let sta_decoded_bytes = sta_r.decoded_bytes();
    forward_scans += 1;
    let phase2_time = t2.elapsed();

    let (selected, group_sets) = union_groups(group_sets, n);
    let stats = EvalStats {
        idb_count: prog.pred_count(),
        rule_count: prog.rule_count(),
        phase1_time,
        phase1_transitions: qa.bu_transitions,
        phase2_time,
        phase2_transitions: qa.td_transitions,
        selected: selected.count() as u64,
        memory_bytes: qa.memory_bytes(),
        bu_states: qa.bu_state_count(),
        td_states: qa.td_state_count(),
        nodes: n as u64,
        backward_scans,
        forward_scans,
        sta_encoded_bytes,
        sta_decoded_bytes,
        db_format: db.format_version(),
        blocks_decoded: db.blocks_decoded() - blocks0,
        batch_size: 0,
        queue_wait: Duration::ZERO,
        automata_builds: 0,
        automata_reused: 0,
        automata_build_time: Duration::ZERO,
        interning: qa.intern_stats(),
        dirty_nodes: 0,
        retained_sta_blocks: 0,
        refreshes: 0,
    };
    pool.put(qa);
    Ok((
        QueryOutcome {
            stats,
            selected,
            per_pred_counts,
        },
        group_sets,
    ))
}

/// One phase-1 worker's output, carried across to phase 2: its lazy
/// automata (whose program table gives the worker's `.sta` segments
/// their meaning) and, per assigned frontier root, the worker-local
/// state id the subtree folded to.
struct ShardWorker {
    wqa: QueryAutomata,
    /// `(root, worker-local root state)` per assigned subtree.
    roots: Vec<(u32, u32)>,
    /// Encoded bytes this worker's `.sta` segments occupy.
    sta_encoded: u64,
}

/// Everything the sharded phase 1 produces.
struct ShardedPhase1<'d> {
    /// Master automata: workers' states re-interned, spine evaluated.
    qa: QueryAutomata,
    workers: Vec<ShardWorker>,
    /// Per worker: local program id → master program id.
    remaps: Vec<Vec<ProgramId>>,
    idx: SubtreeIndex<'d>,
    /// Spine nodes (everything outside the frontier subtrees), preorder.
    spine: Vec<u32>,
    /// Master phase-1 states of spine nodes.
    spine_a: HashMap<u32, ProgramId>,
    /// Master phase-1 states of the frontier roots.
    root_a: HashMap<u32, ProgramId>,
    /// The document root's phase-1 state.
    root_state: ProgramId,
    backward_scans: u64,
    phase1_time: Duration,
    /// Σ workers' lazily computed bottom-up transitions.
    worker_bu: u64,
    /// Encoded `.sta` bytes phase 1 put on disk (manifest + segments +
    /// spine patches); 0 when no state stream was requested.
    sta_encoded_bytes: u64,
}

/// Runs the sharded phase 1: plans the frontier with one backward
/// metadata scan, fans the bottom-up pass out over `threads` workers on
/// disjoint subtree record windows (streaming worker-local state ids
/// into disjoint segments of `sta`, when given), finishes the spine
/// sequentially on the master automata. Returns `None` when `threads`
/// or the tree shape make sharding pointless — callers fall back to the
/// sequential path.
fn sharded_phase1<'d>(
    prog: &CoreProgram,
    db: &'d ArbDatabase,
    threads: usize,
    sta: Option<(&ScratchPath, StaFormat)>,
    pool: &AutomataPool,
) -> io::Result<Option<ShardedPhase1<'d>>> {
    let n = db.node_count();
    if n == 0 {
        return Err(empty_db_err());
    }
    if threads <= 1 {
        return Ok(None);
    }
    // The upper clamp keeps absurd requests from allocating per-worker
    // state for millions of threads (or overflowing `threads * 4`).
    let threads = threads.min(1024);
    let t1 = Instant::now();
    let mut backward_scans = 0u64;

    // Plan: the frontier windows, from the database's cached subtree
    // extents (one metadata scan — no automata work — on the handle's
    // first sharded run; free afterwards).
    let idx = {
        let cached = db.extents_cached();
        let x = db.subtree_extents()?;
        if !cached {
            backward_scans += 1;
        }
        SubtreeIndex::from_parts(x.ends.clone(), x.kinds.clone())
    };
    let roots = idx.frontier(threads * 4);
    if roots.len() <= 1 {
        // No useful frontier (tiny or degenerate tree).
        return Ok(None);
    }
    let mut sta_encoded_bytes = 0u64;
    if let Some((sta, format)) = sta {
        sta_encoded_bytes += arb_storage::stafile::allocate(sta.path(), n as u64, format)?;
    }

    // Round-robin the frontier subtrees over the workers.
    let chunks: Vec<Vec<u32>> = {
        let workers = threads.min(roots.len());
        let mut cs: Vec<Vec<u32>> = vec![Vec::new(); workers];
        for (i, &r) in roots.iter().enumerate() {
            cs[i % workers].push(r);
        }
        cs
    };

    let results: Vec<io::Result<ShardWorker>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|mine| {
                let idx = &idx;
                scope.spawn(move |_| -> io::Result<ShardWorker> {
                    let mut wqa = pool.take(prog);
                    let mut out = Vec::with_capacity(mine.len());
                    let mut sta_encoded = 0u64;
                    for &r in mine {
                        let hi = idx.end(r);
                        let mut scan = db.backward_scan_range(r, hi)?;
                        let mut seg = match sta {
                            Some((s, format)) => Some(StateFileWriter::segment(
                                s.path(),
                                r as u64,
                                hi as u64,
                                format,
                            )?),
                            None => None,
                        };
                        let mut werr: Option<io::Error> = None;
                        let root_state =
                            bottom_up_scan(&mut scan, |s1: Option<ProgramId>, s2, rec, ix| {
                                let s = wqa.bottom_up(s1, s2, rec.info(ix));
                                if let Some(seg) = seg.as_mut() {
                                    if let Err(e) = seg.write_state(s.0) {
                                        werr.get_or_insert(e);
                                    }
                                }
                                s
                            })?;
                        if let Some(e) = werr {
                            return Err(e);
                        }
                        if let Some(seg) = seg {
                            sta_encoded += seg.finish()?;
                        }
                        out.push((r, root_state.0));
                    }
                    Ok(ShardWorker {
                        wqa,
                        roots: out,
                        sta_encoded,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("phase-1 worker panicked"))
            .collect()
    })
    .expect("thread scope failed");
    let workers: Vec<ShardWorker> = results.into_iter().collect::<io::Result<_>>()?;
    backward_scans += roots.len() as u64;
    sta_encoded_bytes += workers.iter().map(|w| w.sta_encoded).sum::<u64>();

    // Re-intern the workers' states into the master automata — by
    // reference, so states several workers discovered independently are
    // cloned at most once. Master and workers all come from the pool,
    // so a repeated run starts with every table warm.
    let mut qa = pool.take(prog);
    let remaps: Vec<Vec<ProgramId>> = workers
        .iter()
        .map(|w| {
            (0..w.wqa.programs.len() as u32)
                .map(|i| qa.programs.intern_ref(w.wqa.programs.get(ProgramId(i))))
                .collect()
        })
        .collect();
    let mut root_a: HashMap<u32, ProgramId> = HashMap::new();
    for (wi, w) in workers.iter().enumerate() {
        for &(r, local) in &w.roots {
            root_a.insert(r, remaps[wi][local as usize]);
        }
    }
    let worker_bu: u64 = workers.iter().map(|w| w.wqa.bu_transitions).sum();

    // Sequential spine (≤ frontier-target nodes): children of spine
    // nodes are spine nodes or frontier roots, so reverse preorder has
    // every child state at hand. Spine states are written to the shared
    // state file as *master* ids.
    let spine = idx.spine(&roots);
    debug_assert!(spine.contains(&0), "the document root is a split node");
    let mut patch = match sta {
        Some((s, format)) => Some(StateFilePatcher::open(s.path(), format)?),
        None => None,
    };
    let mut spine_a: HashMap<u32, ProgramId> = HashMap::new();
    for &v in spine.iter().rev() {
        let rec = db.record_at(v)?;
        let state_of =
            |c: u32| -> ProgramId { spine_a.get(&c).copied().unwrap_or_else(|| root_a[&c]) };
        let s1 = idx.first_child(v).map(state_of);
        let s2 = idx.second_child(v).map(state_of);
        let s = qa.bottom_up(s1, s2, rec.info(v));
        spine_a.insert(v, s);
        if let Some(p) = patch.as_mut() {
            p.write_state_at(v as u64, s.0)?;
        }
    }
    let root_state = spine_a[&0];
    if let Some(p) = patch {
        sta_encoded_bytes += p.finish()?;
    }
    Ok(Some(ShardedPhase1 {
        qa,
        workers,
        remaps,
        idx,
        spine,
        spine_a,
        root_a,
        root_state,
        backward_scans,
        phase1_time: t1.elapsed(),
        worker_bu,
        sta_encoded_bytes,
    }))
}

/// [`evaluate_disk_grouped`] sharded over `threads` workers. Phase 1
/// always shards; phase 2 shards too unless a `hook` needs the document
/// order, in which case it runs as one sequential forward scan over the
/// (sharded-written) state file. Falls back to the sequential kernel
/// when no useful frontier exists. Results are identical either way.
pub(crate) fn evaluate_disk_grouped_parallel(
    prog: &CoreProgram,
    db: &ArbDatabase,
    groups: &[Vec<Atom>],
    mut hook: Option<Phase2Hook<'_>>,
    threads: usize,
    format: StaFormat,
    pool: &AutomataPool,
) -> io::Result<(QueryOutcome, Vec<NodeSet>)> {
    let n = db.node_count();
    let sta = db.scratch_sta();
    let blocks0 = db.blocks_decoded();
    let p1 = match sharded_phase1(prog, db, threads, Some((&sta, format)), pool)? {
        Some(p1) => p1,
        None => return evaluate_disk_grouped(prog, db, groups, hook, format, pool),
    };
    let ShardedPhase1 {
        mut qa,
        workers,
        remaps,
        idx,
        spine,
        spine_a,
        root_a,
        root_state,
        backward_scans,
        phase1_time,
        worker_bu,
        sta_encoded_bytes,
    } = p1;
    let mut forward_scans = 0u64;
    let total_atoms: usize = groups.iter().map(Vec::len).sum();

    let t2 = Instant::now();
    let (per_pred_counts, group_sets, worker_td, worker_mem, worker_intern, sta_decoded_bytes) =
        if hook.is_some() {
            // Streaming consumers need preorder: sequential phase 2 over the
            // whole file, remapping each segment's worker-local ids through
            // the master interner (spine slots already hold master ids).
            let mut ranges: Vec<(u32, u32, usize)> = Vec::new();
            for (wi, w) in workers.iter().enumerate() {
                for &(r, _) in &w.roots {
                    ranges.push((r, idx.end(r), wi));
                }
            }
            ranges.sort_unstable();
            let worker_mem: usize = workers.iter().map(|w| w.wqa.memory_bytes()).sum();
            let mut worker_intern = InternStats::default();
            for w in &workers {
                worker_intern.absorb(&w.wqa.intern_stats());
            }
            let mut sta_r = StateFileReader::open(sta.path(), format)?;
            let mut cursor = 0usize;
            let (counts, sets) = phase2_sequential(
                &mut qa,
                db,
                root_state,
                groups,
                |ix| {
                    let raw = sta_r.read_state()?;
                    while cursor < ranges.len() && ix >= ranges[cursor].1 {
                        cursor += 1;
                    }
                    Ok(match ranges.get(cursor) {
                        Some(&(lo, _, wi)) if ix >= lo => remaps[wi][raw as usize].0,
                        _ => raw, // spine slot: already a master id
                    })
                },
                &mut hook,
            )?;
            forward_scans += 1;
            let decoded = sta_r.decoded_bytes();
            // Phase 2 never stepped the workers here, but their warm
            // phase-1 tables are still worth keeping for the next run.
            for w in workers {
                pool.put(w.wqa);
            }
            (counts, sets, 0u64, worker_mem, worker_intern, decoded)
        } else {
            // Sharded phase 2: spine first (it hands each frontier root its
            // predicate set), then the same workers descend their subtrees
            // reading back their own `.sta` segments.
            let start = qa.start_state(root_state);
            let mut spine_b: HashMap<u32, PredSetId> = HashMap::new();
            let mut root_b: HashMap<u32, PredSetId> = HashMap::new();
            spine_b.insert(0, start);
            for &v in &spine {
                let q = spine_b[&v];
                for (k, c) in [(1u8, idx.first_child(v)), (2, idx.second_child(v))] {
                    let Some(c) = c else { continue };
                    let a = spine_a.get(&c).copied().unwrap_or_else(|| root_a[&c]);
                    let ps = qa.top_down(q, a, k);
                    if spine_a.contains_key(&c) {
                        spine_b.insert(c, ps);
                    } else {
                        root_b.insert(c, ps);
                    }
                }
            }

            // Demux the spine nodes on the master.
            let mut per_pred_counts = vec![0u64; total_atoms];
            let mut group_sets: Vec<NodeSet> = (0..groups.len())
                .map(|_| NodeSet::new(n as usize))
                .collect();
            let mut flags = vec![false; groups.len()];
            for &v in &spine {
                let set = qa.predsets.get(spine_b[&v]);
                crate::batch::demux_node(
                    set,
                    groups,
                    &mut per_pred_counts,
                    &mut group_sets,
                    v,
                    &mut flags,
                );
            }

            // Workers: per-subtree forward range scan + segment read. Their
            // phase-1 program tables give the raw segment ids meaning, so no
            // remap is needed inside a worker. Selections are collected in
            // *window-sized* bitsets indexed relative to the subtree root —
            // the windows are disjoint, so all workers together hold at most
            // one document's worth of bits per group (a full-document set
            // per worker would multiply result memory by the worker count).
            type WindowSets = (u32, Vec<NodeSet>);
            type P2Out = (Vec<u64>, Vec<WindowSets>, u64, QueryAutomata);
            let master_predsets = &qa.predsets;
            let root_b = &root_b;
            let subtree_count: u64 = workers.iter().map(|w| w.roots.len() as u64).sum();
            let results: Vec<io::Result<P2Out>> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = workers
                    .into_iter()
                    .map(|w| {
                        let idx = &idx;
                        let sta_path = sta.path();
                        scope.spawn(move |_| -> io::Result<P2Out> {
                            let ShardWorker { mut wqa, roots, .. } = w;
                            let mut counts = vec![0u64; total_atoms];
                            let mut windows: Vec<WindowSets> = Vec::with_capacity(roots.len());
                            let mut flags = vec![false; groups.len()];
                            let mut decoded = 0u64;
                            for &(r, local_root) in &roots {
                                let hi = idx.end(r);
                                let mut sets: Vec<NodeSet> = (0..groups.len())
                                    .map(|_| NodeSet::new((hi - r) as usize))
                                    .collect();
                                let mut scan = db.forward_scan_range(r, hi)?;
                                let mut sta_r =
                                    StateFileReader::open_at(sta_path, r as u64, format)?;
                                // The root's predicate set comes from the master.
                                let q0 = wqa
                                    .predsets
                                    .intern_sorted(master_predsets.get(root_b[&r]).atoms());
                                let mut io_err: Option<io::Error> = None;
                                top_down_scan(&mut scan, |ctx, _rec, ix| -> PredSetId {
                                    if io_err.is_some() {
                                        return PredSetId(0);
                                    }
                                    let rho = match sta_r.read_state() {
                                        Ok(raw) => ProgramId(raw),
                                        Err(e) => {
                                            io_err.get_or_insert(e);
                                            return PredSetId(0);
                                        }
                                    };
                                    let state = match ctx {
                                        DownContext::Root => {
                                            debug_assert_eq!(
                                                rho.0, local_root,
                                                "segment misaligned"
                                            );
                                            q0
                                        }
                                        DownContext::Child(parent, k) => {
                                            wqa.top_down(parent, rho, k)
                                        }
                                    };
                                    let set = wqa.predsets.get(state);
                                    crate::batch::demux_node(
                                        set,
                                        groups,
                                        &mut counts,
                                        &mut sets,
                                        ix - r, // window-relative
                                        &mut flags,
                                    );
                                    state
                                })?;
                                if let Some(e) = io_err {
                                    return Err(e);
                                }
                                decoded += sta_r.decoded_bytes();
                                windows.push((r, sets));
                            }
                            Ok((counts, windows, decoded, wqa))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("phase-2 worker panicked"))
                    .collect()
            })
            .expect("thread scope failed");
            forward_scans += subtree_count;

            let mut worker_td = 0u64;
            let mut worker_mem = 0usize;
            let mut worker_intern = InternStats::default();
            let mut decoded = 0u64;
            for res in results {
                let (counts, windows, dec, wqa) = res?;
                for (acc, c) in per_pred_counts.iter_mut().zip(counts) {
                    *acc += c;
                }
                for (r, sets) in windows {
                    for (acc, s) in group_sets.iter_mut().zip(&sets) {
                        for v in s.iter() {
                            acc.insert(arb_tree::NodeId(r + v.0));
                        }
                    }
                }
                worker_td += wqa.td_transitions;
                worker_mem += wqa.memory_bytes();
                worker_intern.absorb(&wqa.intern_stats());
                decoded += dec;
                // Back to the pool: the next run's phase-1 workers
                // inherit both phases' memoized tables.
                pool.put(wqa);
            }
            (
                per_pred_counts,
                group_sets,
                worker_td,
                worker_mem,
                worker_intern,
                decoded,
            )
        };
    let phase2_time = t2.elapsed();

    let (selected, group_sets) = union_groups(group_sets, n);
    let stats = EvalStats {
        idb_count: prog.pred_count(),
        rule_count: prog.rule_count(),
        phase1_time,
        phase1_transitions: qa.bu_transitions + worker_bu,
        phase2_time,
        phase2_transitions: qa.td_transitions + worker_td,
        selected: selected.count() as u64,
        // Peak automata memory across master and workers.
        memory_bytes: qa.memory_bytes() + worker_mem,
        bu_states: qa.bu_state_count(),
        td_states: qa.td_state_count(),
        nodes: n as u64,
        backward_scans,
        forward_scans,
        sta_encoded_bytes,
        sta_decoded_bytes,
        db_format: db.format_version(),
        blocks_decoded: db.blocks_decoded() - blocks0,
        batch_size: 0,
        queue_wait: Duration::ZERO,
        automata_builds: 0,
        automata_reused: 0,
        automata_build_time: Duration::ZERO,
        interning: {
            let mut i = qa.intern_stats();
            i.absorb(&worker_intern);
            i
        },
        dirty_nodes: 0,
        retained_sta_blocks: 0,
        refreshes: 0,
    };
    pool.put(qa);
    Ok((
        QueryOutcome {
            stats,
            selected,
            per_pred_counts,
        },
        group_sets,
    ))
}

/// Evaluates a **boolean** query — "accept or reject an entire XML
/// document on the grounds of its contents" (paper §1, the \[12, 3\]
/// document-filtering setting): does the query predicate hold at the
/// root?
///
/// Only the bottom-up phase is needed: the root's residual program
/// already carries all constraints of the whole tree, so the answer is a
/// membership test on its facts. One backward linear scan, no `.sta`
/// file.
pub fn evaluate_boolean(prog: &CoreProgram, db: &ArbDatabase) -> io::Result<bool> {
    let set = root_true_preds(prog, db, &AutomataPool::new())?;
    Ok(prog
        .query_preds()
        .iter()
        .any(|&p| set.contains(Atom::local(p))))
}

/// The set of predicates true at the root, computed with a single
/// backward scan and no `.sta` file — the shared kernel of boolean
/// (document-filtering) evaluation, single-query and batched.
pub(crate) fn root_true_preds(
    prog: &CoreProgram,
    db: &ArbDatabase,
    pool: &AutomataPool,
) -> io::Result<PredSet> {
    if db.node_count() == 0 {
        return Err(empty_db_err());
    }
    let mut qa = pool.take(prog);
    let mut scan = db.backward_scan()?;
    let root_state = bottom_up_scan(&mut scan, |s1: Option<ProgramId>, s2, rec, ix| {
        qa.bottom_up(s1, s2, rec.info(ix))
    })?;
    let start = qa.start_state(root_state);
    let set = qa.predsets.get(start).to_owned();
    pool.put(qa);
    Ok(set)
}

/// [`root_true_preds`] with the backward pass sharded over `threads`
/// workers — the boolean (document-filtering) fast path of sharded
/// evaluation: still no `.sta` file, since only the root's facts matter.
pub(crate) fn root_true_preds_parallel(
    prog: &CoreProgram,
    db: &ArbDatabase,
    threads: usize,
    pool: &AutomataPool,
) -> io::Result<PredSet> {
    match sharded_phase1(prog, db, threads, None, pool)? {
        None => root_true_preds(prog, db, pool),
        Some(mut p1) => {
            let start = p1.qa.start_state(p1.root_state);
            let set = p1.qa.predsets.get(start).to_owned();
            pool.put(p1.qa);
            for w in p1.workers {
                pool.put(w.wqa);
            }
            Ok(set)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_storage::create::create_from_xml;
    use arb_tmnf::{naive, normalize, parse_program};

    use arb_xml::XmlConfig;
    use std::io::Cursor;
    use std::path::PathBuf;

    fn mkdb(xml: &str, name: &str) -> ArbDatabase {
        let dir = std::env::temp_dir().join(format!("arb-eval-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let arb: PathBuf = dir.join(name);
        create_from_xml(Cursor::new(xml.as_bytes()), &XmlConfig::default(), &arb).unwrap();
        ArbDatabase::open(&arb).unwrap()
    }

    /// Disk evaluation must equal the in-memory naive fixpoint on every
    /// (pred, node) pair (Theorem 4.1 end-to-end, through the storage
    /// model).
    #[test]
    fn disk_matches_naive() {
        let xml = "<doc><sec><p>ab</p><p/></sec><sec>c</sec></doc>";
        let db = mkdb(xml, "m1.arb");
        let mut labels = db.labels().clone();
        let src = "InSec :- V.Label[sec].FirstChild.NextSibling*;\n\
                   CharNode :- Text, InSec;\n\
                   QUERY :- CharNode, CharNode;";
        let ast = parse_program(src, &mut labels).unwrap();
        let mut prog = normalize(&ast);
        prog.add_query_pred(prog.pred_id("QUERY").unwrap());

        let outcome = evaluate_disk(&prog, &db).unwrap();

        let tree = db.to_tree().unwrap();
        let oracle = naive::evaluate(&prog, &tree);
        let q = prog.pred_id("QUERY").unwrap();
        for v in tree.nodes() {
            assert_eq!(
                outcome.selected.contains(v),
                oracle.holds(q, v),
                "node {}",
                v.0
            );
        }
        // InSec covers only the *children* of sec elements; the only
        // character child of a sec is 'c' ('a','b' sit inside a p).
        assert_eq!(outcome.stats.selected, 1);
        assert_eq!(outcome.per_pred_counts, vec![1]);
        // Phase 2 consumed exactly one 4-byte state per node; the
        // encoded stream exists but its framing overhead dominates on a
        // document this tiny, so only positivity is asserted here.
        assert_eq!(outcome.stats.sta_decoded_bytes, outcome.stats.nodes * 4);
        assert!(outcome.stats.sta_encoded_bytes > 0);
    }

    #[test]
    fn hook_sees_every_node_in_document_order() {
        let db = mkdb("<a><b/><c/></a>", "m2.arb");
        let mut labels = db.labels().clone();
        let ast = parse_program("QUERY :- Root;", &mut labels).unwrap();
        let mut prog = normalize(&ast);
        prog.add_query_pred(prog.pred_id("QUERY").unwrap());
        let mut seen = Vec::new();
        let mut hook = |ix: u32,
                        _rec: arb_storage::NodeRecord,
                        _s: arb_logic::PredSetView<'_>,
                        _f: &[bool]| {
            seen.push(ix);
        };
        evaluate_disk_with_hook(&prog, &db, Some(&mut hook)).unwrap();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    /// A generated document big enough to admit a frontier (the frontier
    /// planner requires pieces of ≥ 512 nodes).
    fn balanced_db(name: &str) -> ArbDatabase {
        use std::fmt::Write;
        let mut xml = String::from("<r>");
        for i in 0..direct_children() {
            write!(xml, "<g{}>", i % 7).unwrap();
            for j in 0..40 {
                match (i + j) % 3 {
                    0 => write!(xml, "<a>t</a>").unwrap(),
                    1 => xml.push_str("<b/>"),
                    _ => write!(xml, "<c><a/></c>").unwrap(),
                }
            }
            xml.push_str(&format!("</g{}>", i % 7));
        }
        xml.push_str("</r>");
        mkdb(&xml, name)
    }

    fn direct_children() -> usize {
        100
    }

    /// The sharded evaluator is a drop-in replacement: identical
    /// selected sets, counts, and verdict-relevant state, with the
    /// transition totals within the worker envelope.
    #[test]
    fn sharded_matches_sequential() {
        let db = balanced_db("shard1.arb");
        assert!(db.node_count() > 4096, "document must admit a frontier");
        let mut labels = db.labels().clone();
        let src = "InG :- V.Label[g0].FirstChild.NextSibling*;\n\
                   QUERY :- V.Label[a], Leaf;\n\
                   QUERY :- InG, Text;";
        let ast = parse_program(src, &mut labels).unwrap();
        let mut prog = normalize(&ast);
        prog.add_query_pred(prog.pred_id("QUERY").unwrap());

        let seq = evaluate_disk(&prog, &db).unwrap();
        for threads in [2usize, 3, 8] {
            let par = evaluate_disk_parallel(&prog, &db, threads).unwrap();
            assert_eq!(
                par.selected.to_vec(),
                seq.selected.to_vec(),
                "threads {threads}"
            );
            assert_eq!(par.per_pred_counts, seq.per_pred_counts);
            assert_eq!(par.stats.selected, seq.stats.selected);
            assert_eq!(par.stats.nodes, seq.stats.nodes);
            assert!(par.stats.phase1_transitions >= seq.stats.phase1_transitions);
            assert!(par.stats.backward_scans > 1, "range scans are counted");
            // Sharded phase 2 reads only the workers' segments — the
            // spine states never leave memory — so it consumes at most
            // the sequential run's 4-bytes-per-node volume.
            assert_eq!(seq.stats.sta_decoded_bytes, seq.stats.nodes * 4);
            assert!(par.stats.sta_decoded_bytes > 0);
            assert!(par.stats.sta_decoded_bytes <= seq.stats.sta_decoded_bytes);
            assert!(par.stats.sta_encoded_bytes > 0);
        }
        // threads = 1 falls back to the sequential kernel (one scan each).
        let fb = evaluate_disk_parallel(&prog, &db, 1).unwrap();
        assert_eq!(fb.stats.backward_scans, 1);
        assert_eq!(fb.selected.to_vec(), seq.selected.to_vec());

        // An absurd thread count is clamped, not a panic / OOM.
        let huge = evaluate_disk_parallel(&prog, &db, usize::MAX / 8).unwrap();
        assert_eq!(huge.selected.to_vec(), seq.selected.to_vec());
    }

    /// The sharded evaluator with a streaming hook still delivers every
    /// node exactly once in document order (phase 2 degrades to one
    /// sequential scan; phase 1 stays sharded).
    #[test]
    fn sharded_hook_preserves_document_order() {
        let db = balanced_db("shard2.arb");
        let mut labels = db.labels().clone();
        let ast = parse_program("QUERY :- V.Label[a];", &mut labels).unwrap();
        let mut prog = normalize(&ast);
        prog.add_query_pred(prog.pred_id("QUERY").unwrap());

        let mut seq_flags = Vec::new();
        let mut hook =
            |ix: u32, _rec: arb_storage::NodeRecord, _s: arb_logic::PredSetView<'_>, f: &[bool]| {
                seq_flags.push((ix, f[0]));
            };
        evaluate_disk_with_hook(&prog, &db, Some(&mut hook)).unwrap();

        let mut par_flags = Vec::new();
        let mut hook =
            |ix: u32, _rec: arb_storage::NodeRecord, _s: arb_logic::PredSetView<'_>, f: &[bool]| {
                par_flags.push((ix, f[0]));
            };
        let atoms: Vec<Atom> = prog.query_preds().iter().map(|&p| Atom::local(p)).collect();
        let (par, _) = evaluate_disk_grouped_parallel(
            &prog,
            &db,
            &[atoms],
            Some(&mut hook),
            4,
            StaFormat::from_env(),
            &AutomataPool::new(),
        )
        .unwrap();
        assert_eq!(par_flags, seq_flags);
        assert_eq!(par.stats.forward_scans, 1, "hook mode scans forward once");
    }

    /// The boolean fast path shards phase 1 and agrees with the
    /// sequential verdict.
    #[test]
    fn sharded_boolean_matches_sequential() {
        let db = balanced_db("shard3.arb");
        let mut labels = db.labels().clone();
        for src in [
            "QUERY :- Root, HasFirstChild;",
            "Deep :- V.Label[a].invFirstChild.invNextSibling*.invFirstChild;\nQUERY :- Root, Deep;",
            "QUERY :- Root, Leaf;",
        ] {
            let ast = parse_program(src, &mut labels).unwrap();
            let mut prog = normalize(&ast);
            let q = prog.pred_id("QUERY").unwrap();
            prog.add_query_pred(q);
            let seq = evaluate_boolean(&prog, &db).unwrap();
            let par_set = root_true_preds_parallel(&prog, &db, 4, &AutomataPool::new()).unwrap();
            let par = prog
                .query_preds()
                .iter()
                .any(|&p| par_set.contains(Atom::local(p)));
            assert_eq!(seq, par, "program: {src}");
        }
    }

    /// Satellite regression: once a phase-2 state read fails, neither
    /// the demux nor the hook may see another (fabricated) record.
    #[test]
    fn phase2_stops_feeding_hook_after_state_read_error() {
        let db = mkdb("<a><b/><c/><d/><e/></a>", "m3.arb");
        let mut labels = db.labels().clone();
        let ast = parse_program("QUERY :- V.Label[b];", &mut labels).unwrap();
        let mut prog = normalize(&ast);
        prog.add_query_pred(prog.pred_id("QUERY").unwrap());
        let groups = vec![vec![Atom::local(prog.pred_id("QUERY").unwrap())]];

        // Run phase 1 by hand so phase 2 can be driven with a state
        // source that fails once mid-stream and then "recovers" —
        // exactly the shape under which the old code resumed streaming
        // fabricated PredSetId(0) annotations into the hook.
        let mut qa = QueryAutomata::new(&prog);
        let n = db.node_count();
        let mut states = vec![0u32; n as usize];
        let mut scan = db.backward_scan().unwrap();
        let root_state = bottom_up_scan(&mut scan, |s1: Option<ProgramId>, s2, rec, ix| {
            let s = qa.bottom_up(s1, s2, rec.info(ix));
            states[ix as usize] = s.0;
            s
        })
        .unwrap();

        let fail_at = 2u32;
        let mut calls = Vec::new();
        let mut hook = |ix: u32,
                        _rec: arb_storage::NodeRecord,
                        _s: arb_logic::PredSetView<'_>,
                        _f: &[bool]| {
            calls.push(ix);
        };
        let mut hook_opt: Option<Phase2Hook<'_>> = Some(&mut hook);
        let res = phase2_sequential(
            &mut qa,
            &db,
            root_state,
            &groups,
            |ix| {
                if ix == fail_at {
                    Err(io::Error::new(io::ErrorKind::UnexpectedEof, "injected"))
                } else {
                    Ok(states[ix as usize])
                }
            },
            &mut hook_opt,
        );
        assert!(res.is_err(), "the injected error must surface");
        assert_eq!(
            calls,
            vec![0, 1],
            "no fabricated records may reach the hook after the error"
        );
    }

    /// The same latch against *real* truncation: a `.sta` stream that
    /// ends two states early must surface `InvalidData` with context
    /// (not a bare `UnexpectedEof`), and the hook must stop at the last
    /// intact node — in both stream formats.
    #[test]
    fn phase2_error_latch_covers_real_sta_truncation() {
        let db = mkdb("<a><b/><c/><d/><e/></a>", "m4.arb");
        let n = db.node_count();
        let mut labels = db.labels().clone();
        let ast = parse_program("QUERY :- V.Label[b];", &mut labels).unwrap();
        let mut prog = normalize(&ast);
        prog.add_query_pred(prog.pred_id("QUERY").unwrap());
        let groups = vec![vec![Atom::local(prog.pred_id("QUERY").unwrap())]];

        for format in [StaFormat::Flat, StaFormat::Blocked] {
            // Phase 1, capturing the true states.
            let mut qa = QueryAutomata::new(&prog);
            let mut states = vec![0u32; n as usize];
            let mut scan = db.backward_scan().unwrap();
            let root_state = bottom_up_scan(&mut scan, |s1: Option<ProgramId>, s2, rec, ix| {
                let s = qa.bottom_up(s1, s2, rec.info(ix));
                states[ix as usize] = s.0;
                s
            })
            .unwrap();

            // A stream covering only nodes [0, 2) of n. Flat: a chopped
            // file. Blocked: a sharded layout whose later segments (and
            // spine patches) never arrived — the crashed-worker shape.
            let sta = db.scratch_sta();
            let covered = 2u64;
            match format {
                StaFormat::Flat => {
                    let mut w =
                        StateFileWriter::create(sta.path(), n as u64, StaFormat::Flat).unwrap();
                    for ix in (0..n).rev() {
                        w.write_state(states[ix as usize]).unwrap();
                    }
                    w.finish().unwrap();
                    let f = std::fs::OpenOptions::new()
                        .write(true)
                        .open(sta.path())
                        .unwrap();
                    f.set_len(covered * 4).unwrap();
                }
                StaFormat::Blocked => {
                    arb_storage::stafile::allocate(sta.path(), n as u64, StaFormat::Blocked)
                        .unwrap();
                    let mut w =
                        StateFileWriter::segment(sta.path(), 0, covered, StaFormat::Blocked)
                            .unwrap();
                    for ix in (0..covered).rev() {
                        w.write_state(states[ix as usize]).unwrap();
                    }
                    w.finish().unwrap();
                }
            }

            let mut calls = Vec::new();
            let mut hook = |ix: u32,
                            _rec: arb_storage::NodeRecord,
                            _s: arb_logic::PredSetView<'_>,
                            _f: &[bool]| {
                calls.push(ix);
            };
            let mut hook_opt: Option<Phase2Hook<'_>> = Some(&mut hook);
            let mut sta_r = StateFileReader::open(sta.path(), format).unwrap();
            let err = phase2_sequential(
                &mut qa,
                &db,
                root_state,
                &groups,
                |_| sta_r.read_state(),
                &mut hook_opt,
            )
            .expect_err("truncated stream must fail");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{format}: {err}");
            assert!(
                err.to_string().contains("node 2"),
                "{format}: error must name the failing node, got {err}"
            );
            assert_eq!(calls, vec![0, 1], "{format}: hook must stop at the damage");
        }
    }
}
