//! Compiled queries.

use arb_tmnf::CoreProgram;

/// The source language a query was compiled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryLanguage {
    /// The Arb surface syntax (TMNF with caterpillar expressions).
    Tmnf,
    /// Core XPath.
    XPath,
}

/// A compiled query: a strict TMNF program with its query predicate(s)
/// chosen, bound to the label space of the database it was compiled
/// against.
pub struct Query {
    pub(crate) prog: CoreProgram,
    /// Source language.
    pub language: QueryLanguage,
    /// Original query text.
    pub source: String,
    /// Set when the program had no `QUERY` predicate and the compiler
    /// fell back to the head of the last rule: the name of the predicate
    /// it chose. Front ends should surface this so the user knows which
    /// predicate answers the query.
    pub implicit_query_pred: Option<String>,
}

impl Query {
    /// The compiled strict TMNF program.
    pub fn program(&self) -> &CoreProgram {
        &self.prog
    }

    /// `|IDB|` (paper Figure 6 column 2).
    pub fn idb_count(&self) -> usize {
        self.prog.pred_count()
    }

    /// `|P|` (paper Figure 6 column 3).
    pub fn rule_count(&self) -> usize {
        self.prog.rule_count()
    }
}

/// Chooses the query predicates for a freshly normalized program: a
/// predicate named `QUERY` if present, else the head of the last rule.
/// In the fallback case, returns the name of the predicate that was
/// chosen so callers can warn the user instead of silently picking one.
pub(crate) fn choose_query_pred(prog: &mut CoreProgram) -> Option<String> {
    if let Some(q) = prog.pred_id("QUERY") {
        prog.add_query_pred(q);
        return None;
    }
    if let Some(last) = prog.rules().last() {
        let head = last.head();
        prog.add_query_pred(head);
        return Some(prog.pred_name(head).to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_tmnf::{normalize, parse_program};
    use arb_tree::LabelTable;

    #[test]
    fn query_pred_convention() {
        let mut lt = LabelTable::new();
        let ast = parse_program("A :- Root; QUERY :- A.FirstChild;", &mut lt).unwrap();
        let mut prog = normalize(&ast);
        assert_eq!(choose_query_pred(&mut prog), None);
        assert_eq!(prog.query_pred(), prog.pred_id("QUERY"));

        let ast = parse_program("A :- Root; B :- A.FirstChild;", &mut lt).unwrap();
        let mut prog = normalize(&ast);
        // The fallback reports which predicate it silently chose.
        assert_eq!(choose_query_pred(&mut prog), Some("B".to_string()));
        assert_eq!(prog.query_pred(), prog.pred_id("B"));
    }
}
