//! Compiled queries.

use arb_tmnf::CoreProgram;

/// The source language a query was compiled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryLanguage {
    /// The Arb surface syntax (TMNF with caterpillar expressions).
    Tmnf,
    /// Core XPath.
    XPath,
}

/// A compiled query: a strict TMNF program with its query predicate(s)
/// chosen, bound to the label space of the database it was compiled
/// against.
pub struct Query {
    pub(crate) prog: CoreProgram,
    /// Source language.
    pub language: QueryLanguage,
    /// Original query text.
    pub source: String,
}

impl Query {
    /// The compiled strict TMNF program.
    pub fn program(&self) -> &CoreProgram {
        &self.prog
    }

    /// `|IDB|` (paper Figure 6 column 2).
    pub fn idb_count(&self) -> usize {
        self.prog.pred_count()
    }

    /// `|P|` (paper Figure 6 column 3).
    pub fn rule_count(&self) -> usize {
        self.prog.rule_count()
    }
}

/// Chooses the query predicates for a freshly normalized program:
/// a predicate named `QUERY` if present, else the head of the last rule.
pub(crate) fn choose_query_pred(prog: &mut CoreProgram) {
    if let Some(q) = prog.pred_id("QUERY") {
        prog.add_query_pred(q);
        return;
    }
    if let Some(last) = prog.rules().last() {
        let head = last.head();
        prog.add_query_pred(head);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_tmnf::{normalize, parse_program};
    use arb_tree::LabelTable;

    #[test]
    fn query_pred_convention() {
        let mut lt = LabelTable::new();
        let ast = parse_program("A :- Root; QUERY :- A.FirstChild;", &mut lt).unwrap();
        let mut prog = normalize(&ast);
        choose_query_pred(&mut prog);
        assert_eq!(prog.query_pred(), prog.pred_id("QUERY"));

        let ast = parse_program("A :- Root; B :- A.FirstChild;", &mut lt).unwrap();
        let mut prog = normalize(&ast);
        choose_query_pred(&mut prog);
        assert_eq!(prog.query_pred(), prog.pred_id("B"));
    }
}
