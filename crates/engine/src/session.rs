//! The prepared evaluation surface: [`Session`], [`EvalRequest`] and
//! pluggable [`ResultSink`]s.
//!
//! Koch's Arb system has exactly one evaluation algorithm — compile to
//! strict TMNF, run two linear scans — so the engine exposes exactly one
//! evaluation entry point: prepare a [`Session`] over compiled queries
//! (single-query is a batch of one), describe the run with an
//! [`EvalRequest`], and plug a [`ResultSink`] to choose the output shape.
//! Boolean verdicts, selection counts, node sets and marked-XML are sink
//! choices, not separate engine methods; custom sinks can stream the
//! phase-2 scan (document order) without materializing node sets.
//!
//! ```
//! use arb_engine::{CountSink, Database, EvalRequest};
//!
//! let mut db = Database::from_xml_str("<r><a/><b><a/></b></r>").unwrap();
//! let q = db.compile_tmnf("QUERY :- V.Label[a];").unwrap();
//! let session = db.prepare(&[q]);
//! let mut sink = CountSink::default();
//! session.eval(&EvalRequest::new(), &mut sink).unwrap();
//! assert_eq!(sink.counts(), &[2]);
//! ```

use crate::batch::{BatchOutcome, QueryBatch};
use crate::database::{Database, EngineError};
use crate::diskeval::Phase2Hook;
use crate::incremental::{RefreshReport, StandingEval};
use crate::output::XmlEmitter;
use crate::query::Query;
use crate::update::DocUpdate;
use crate::QueryOutcome;
use arb_core::AutomataPool;
use arb_storage::NodeRecord;
use arb_tree::{BinaryTree, LabelTable, NodeId, NodeSet};
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// Evaluation knobs, absorbing the engine-level options that used to
/// live in the (now removed) `Engine` struct.
#[derive(Debug, Clone, Default)]
pub struct EvalOptions {
    /// Force in-memory evaluation even for disk databases (materializes
    /// the tree first). Off by default.
    pub prefer_memory: bool,
    /// Worker threads for the two-phase pass; `0` and `1` mean
    /// sequential. `> 1` splits the work over a frontier of disjoint
    /// subtrees (paper §6.2) on **both** backends: in memory through
    /// [`arb_core::evaluate_tree_parallel`], on disk through the sharded
    /// kernel of [`crate::diskeval`] — workers run backward/forward
    /// *range scans* over their subtrees' record windows and read/write
    /// disjoint segments of the run's (uniquely named) `.sta` scratch
    /// file; verdict-only sinks shard the single backward pass the same
    /// way. Results are identical to sequential evaluation; documents
    /// with no useful frontier (tiny or degenerate) fall back
    /// automatically.
    pub parallelism: usize,
    /// Ask front ends and sinks for per-query statistics output on top
    /// of the results (the CLI's `--stats`); the engine always collects
    /// [`arb_core::EvalStats`] either way.
    pub verbose_stats: bool,
    /// The on-disk layout of the run's `.sta` state stream (see
    /// [`arb_storage::StaFormat`]): `None` (the default) defers to the
    /// `ARB_STA_FORMAT` environment variable, which itself defaults to
    /// the block-compressed layout. Only the disk backend consults it.
    pub sta_format: Option<arb_storage::StaFormat>,
}

/// A builder describing one evaluation run of a [`Session`].
#[derive(Debug, Clone, Default)]
pub struct EvalRequest {
    options: EvalOptions,
}

impl EvalRequest {
    /// A request with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// A request from pre-built options.
    pub fn with_options(options: EvalOptions) -> Self {
        EvalRequest { options }
    }

    /// Sets [`EvalOptions::prefer_memory`].
    pub fn prefer_memory(mut self, yes: bool) -> Self {
        self.options.prefer_memory = yes;
        self
    }

    /// Sets [`EvalOptions::parallelism`].
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.options.parallelism = threads;
        self
    }

    /// Sets [`EvalOptions::verbose_stats`].
    pub fn verbose_stats(mut self, yes: bool) -> Self {
        self.options.verbose_stats = yes;
        self
    }

    /// Sets [`EvalOptions::sta_format`] (the `.sta` stream layout).
    pub fn sta_format(mut self, format: arb_storage::StaFormat) -> Self {
        self.options.sta_format = Some(format);
        self
    }

    /// The assembled options.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }
}

/// How much of the two-phase pass a [`ResultSink`] needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkDemand {
    /// Only per-query root verdicts (document filtering, paper §1): the
    /// disk backend answers with a single backward scan and no `.sta`
    /// file.
    Verdicts,
    /// Full per-query outcomes — node sets, counts, statistics.
    Outcomes,
    /// Outcomes plus a per-node stream in document order during phase 2
    /// (marked-XML output, paper §6.3, without materializing node sets
    /// beyond what the engine computes anyway).
    Stream,
}

/// Context handed to [`ResultSink::begin`] before the pass starts.
#[derive(Debug, Clone, Copy)]
pub struct SinkContext<'a> {
    /// Number of queries in the session.
    pub queries: usize,
    /// Number of nodes in the database.
    pub nodes: u64,
    /// The options of the driving [`EvalRequest`].
    pub options: &'a EvalOptions,
}

/// Where evaluation results go.
///
/// A sink declares its [`SinkDemand`], then receives `begin`, the
/// per-node `node` stream (only for [`SinkDemand::Stream`]), `verdicts`
/// (always), `outcomes` (unless the demand was
/// [`Verdicts`](SinkDemand::Verdicts)), and `finish` — in that order,
/// each at most once except `node`.
pub trait ResultSink {
    /// What this sink needs from the pass.
    fn demand(&self) -> SinkDemand {
        SinkDemand::Outcomes
    }

    /// Called once before evaluation.
    fn begin(&mut self, _ctx: &SinkContext<'_>) -> io::Result<()> {
        Ok(())
    }

    /// Streamed for every node in document order during phase 2 with the
    /// node's record and one selected-flag per query ([`SinkDemand::Stream`]
    /// only).
    fn node(&mut self, _ix: u32, _rec: NodeRecord, _selected_by: &[bool]) -> io::Result<()> {
        Ok(())
    }

    /// Per-query root verdicts (document filtering): `verdicts[i]` is
    /// true iff a query predicate of query `i` holds at the root.
    fn verdicts(&mut self, _verdicts: &[bool]) -> io::Result<()> {
        Ok(())
    }

    /// The demultiplexed per-query outcomes of the shared pass.
    fn outcomes(&mut self, _outcome: &BatchOutcome) -> io::Result<()> {
        Ok(())
    }

    /// Called once after the pass completes.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Collects per-query boolean (accept/reject) verdicts; on disk
/// databases the whole run is a single backward scan.
#[derive(Debug, Default)]
pub struct BooleanSink {
    verdicts: Vec<bool>,
}

impl BooleanSink {
    /// Per-query verdicts, in session order.
    pub fn verdicts(&self) -> &[bool] {
        &self.verdicts
    }

    /// Consumes the sink into its verdicts.
    pub fn into_verdicts(self) -> Vec<bool> {
        self.verdicts
    }
}

impl ResultSink for BooleanSink {
    fn demand(&self) -> SinkDemand {
        SinkDemand::Verdicts
    }

    fn verdicts(&mut self, verdicts: &[bool]) -> io::Result<()> {
        self.verdicts = verdicts.to_vec();
        Ok(())
    }
}

/// Collects per-query selected-node counts.
#[derive(Debug, Default)]
pub struct CountSink {
    counts: Vec<u64>,
}

impl CountSink {
    /// Per-query selected-node counts, in session order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Consumes the sink into its counts.
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }
}

impl ResultSink for CountSink {
    fn outcomes(&mut self, outcome: &BatchOutcome) -> io::Result<()> {
        self.counts = outcome.outcomes.iter().map(|o| o.stats.selected).collect();
        Ok(())
    }
}

/// Collects per-query selected-node sets (preorder indexes).
#[derive(Debug, Default)]
pub struct NodeSetSink {
    sets: Vec<NodeSet>,
}

impl NodeSetSink {
    /// Per-query node sets, in session order.
    pub fn sets(&self) -> &[NodeSet] {
        &self.sets
    }

    /// Consumes the sink into its node sets.
    pub fn into_sets(self) -> Vec<NodeSet> {
        self.sets
    }
}

impl ResultSink for NodeSetSink {
    fn outcomes(&mut self, outcome: &BatchOutcome) -> io::Result<()> {
        self.sets = outcome
            .outcomes
            .iter()
            .map(|o| o.selected.clone())
            .collect();
        Ok(())
    }
}

/// Streams the whole document during phase 2 with nodes marked that any
/// query of the session selected (the paper's §6.3 default output mode),
/// wrapping [`XmlEmitter`]. Identical output on both backends.
pub struct XmlMarkSink<'l, W: Write> {
    emitter: Option<XmlEmitter<'l, W>>,
    out: Option<W>,
    started: bool,
}

impl<'l, W: Write> XmlMarkSink<'l, W> {
    /// A sink writing the marked document to `out`, resolving labels
    /// against the database's table (see [`Database::labels`]).
    pub fn new(labels: &'l LabelTable, out: W) -> Self {
        XmlMarkSink {
            emitter: Some(XmlEmitter::new(labels, out)),
            out: None,
            started: false,
        }
    }

    /// Recovers the writer after a completed run.
    pub fn into_inner(self) -> Option<W> {
        self.out
    }
}

impl<W: Write> ResultSink for XmlMarkSink<'_, W> {
    fn demand(&self) -> SinkDemand {
        SinkDemand::Stream
    }

    fn begin(&mut self, _ctx: &SinkContext<'_>) -> io::Result<()> {
        // One sink writes one document: a second run — even after a
        // failed first one — would append to a consumed or partially
        // written stream, so reject it up front.
        if self.started {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "XmlMarkSink already used by a run; create a new sink per run",
            ));
        }
        self.started = true;
        Ok(())
    }

    fn node(&mut self, _ix: u32, rec: NodeRecord, selected_by: &[bool]) -> io::Result<()> {
        let emitter = self.emitter.as_mut().expect("begin rejected reuse");
        emitter.node(rec, selected_by.iter().any(|&b| b))
    }

    fn finish(&mut self) -> io::Result<()> {
        if let Some(emitter) = self.emitter.take() {
            self.out = Some(emitter.finish()?);
        }
        Ok(())
    }
}

/// The result of one [`Session::eval`] run.
pub struct EvalReport {
    /// Per-query root verdicts (always computed; for
    /// [`SinkDemand::Verdicts`] sinks this is all the pass produces).
    pub verdicts: Vec<bool>,
    /// Shared-pass statistics and demultiplexed per-query outcomes;
    /// `None` when the sink demanded only verdicts and the pass could
    /// skip phase 2.
    pub batch: Option<BatchOutcome>,
}

enum BatchStore<'a> {
    Owned(Box<QueryBatch>),
    Borrowed(&'a QueryBatch),
}

/// A prepared evaluation session: compiled queries merged into one
/// multi-query TMNF program ([`QueryBatch`]), bound to the database they
/// were compiled against. Compile once, run many times — every run is
/// one shared two-phase pass (one backward and one forward linear scan
/// on disk) regardless of the query count.
///
/// # Build-once / eval-many automata lifecycle
///
/// The session owns an [`AutomataPool`]: the first [`eval`](Session::eval)
/// builds the merged program's `QueryAutomata` (interners, memoized δ
/// tables) and parks them in the pool; every later run — any sink, any
/// backend, sequential or sharded — takes warm automata back out, so
/// repeated evaluations pay zero construction cost and keep their
/// memoized transitions. Sharded runs draw per-worker automata from the
/// same pool and return them, so even worker tables stay warm across
/// runs. The per-run `automata_builds` / `automata_reused` counters on
/// [`arb_core::EvalStats`] prove the lifecycle engaged: a warm session
/// reports `automata_builds == 0`.
///
/// Create with [`Database::prepare`] (from compiled [`Query`]s) or
/// [`Database::prepare_batch`] (from an existing [`QueryBatch`]). Hosts
/// that cache prepared state across session objects (e.g. the resident
/// query service's window cache) can share one pool between sessions
/// over the same merged program via [`Session::with_pool`].
pub struct Session<'db> {
    db: &'db Database,
    batch: BatchStore<'db>,
    pool: Arc<AutomataPool>,
    /// Retained evaluation state of the batch as a standing query —
    /// primed on first [`refresh`](Session::refresh) (or explicitly via
    /// [`prime_standing`](Session::prime_standing)), then advanced
    /// incrementally per update.
    standing: Mutex<Option<StandingEval>>,
}

impl<'db> Session<'db> {
    pub(crate) fn new(db: &'db Database, queries: &[Query]) -> Self {
        Session {
            db,
            batch: BatchStore::Owned(Box::new(QueryBatch::new(queries))),
            pool: Arc::new(AutomataPool::new()),
            standing: Mutex::new(None),
        }
    }

    pub(crate) fn over(db: &'db Database, batch: &'db QueryBatch) -> Self {
        Session {
            db,
            batch: BatchStore::Borrowed(batch),
            pool: Arc::new(AutomataPool::new()),
            standing: Mutex::new(None),
        }
    }

    /// Replaces the session's [`AutomataPool`] with a shared one.
    ///
    /// **Precondition (unchecked):** the pool must only ever serve
    /// sessions over the *same* merged program — pooled automata resume
    /// with their interned tables intact, so a pool shared across
    /// different programs would step through the wrong δ tables. This is
    /// the same caller contract as [`QueryBatch::new`]'s label-space
    /// precondition.
    pub fn with_pool(mut self, pool: Arc<AutomataPool>) -> Self {
        self.pool = pool;
        self
    }

    /// The session's automata pool (shared with the server's window
    /// cache when the session came from a cached shape).
    pub fn automata_pool(&self) -> &Arc<AutomataPool> {
        &self.pool
    }

    /// The merged batch this session evaluates.
    pub fn batch(&self) -> &QueryBatch {
        match &self.batch {
            BatchStore::Owned(b) => b,
            BatchStore::Borrowed(b) => b,
        }
    }

    /// Number of queries in the session.
    pub fn len(&self) -> usize {
        self.batch().len()
    }

    /// True if the session holds no queries (evaluation errors).
    pub fn is_empty(&self) -> bool {
        self.batch().is_empty()
    }

    /// The database this session evaluates against.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// The tree backing the in-memory evaluation path: the current
    /// epoch's shared snapshot for memory databases, a materialization
    /// for disk databases under [`EvalOptions::prefer_memory`].
    fn materialized(&self) -> Result<Arc<BinaryTree>, EngineError> {
        self.db.snapshot_tree()
    }

    /// **The canonical evaluation entry point.** Runs the session's one
    /// shared two-phase pass as described by `req` and feeds `sink`.
    ///
    /// Backend choice: disk databases evaluate by two linear scans
    /// unless [`EvalOptions::prefer_memory`] materializes the tree
    /// first; when [`EvalOptions::parallelism`] exceeds 1 the pass is
    /// split over a subtree frontier on either backend (sharded range
    /// scans on disk). Sinks demanding only [`SinkDemand::Verdicts`]
    /// reduce the disk pass to a single backward pass (sharded too under
    /// parallelism).
    pub fn eval(
        &self,
        req: &EvalRequest,
        sink: &mut dyn ResultSink,
    ) -> Result<EvalReport, EngineError> {
        let batch = self.batch();
        let opts = req.options();
        sink.begin(&SinkContext {
            queries: batch.len(),
            nodes: self.db.node_count(),
            options: opts,
        })?;
        let disk = if opts.prefer_memory {
            None
        } else {
            self.db.as_disk()
        };
        let report = match sink.demand() {
            SinkDemand::Verdicts => {
                let verdicts = match disk {
                    Some(d) => crate::batch::evaluate_boolean_batch_pooled(
                        batch,
                        d,
                        opts.parallelism,
                        &self.pool,
                    )?,
                    None => crate::batch::evaluate_boolean_batch_tree(
                        batch,
                        self.materialized()?.as_ref(),
                        opts.parallelism,
                        &self.pool,
                    )?,
                };
                sink.verdicts(&verdicts)?;
                EvalReport {
                    verdicts,
                    batch: None,
                }
            }
            demand => {
                let mut sink_err: Option<io::Error> = None;
                let outcome = {
                    let mut hook_fn;
                    let hook: Option<Phase2Hook<'_>> = if demand == SinkDemand::Stream {
                        hook_fn = |ix: u32,
                                   rec: NodeRecord,
                                   _set: arb_logic::PredSetView<'_>,
                                   flags: &[bool]| {
                            if sink_err.is_none() {
                                if let Err(e) = sink.node(ix, rec, flags) {
                                    sink_err = Some(e);
                                }
                            }
                        };
                        Some(&mut hook_fn)
                    } else {
                        None
                    };
                    match disk {
                        Some(d) => crate::batch::evaluate_disk_batch_opts_sta(
                            batch,
                            d,
                            opts.parallelism,
                            hook,
                            opts.sta_format
                                .unwrap_or_else(arb_storage::StaFormat::from_env),
                            &self.pool,
                        )?,
                        None => crate::batch::evaluate_tree_batch_opts(
                            batch,
                            self.materialized()?.as_ref(),
                            opts.parallelism,
                            hook,
                            &self.pool,
                        )?,
                    }
                };
                if let Some(e) = sink_err {
                    return Err(e.into());
                }
                // The root is preorder node 0, so the per-query verdict
                // is a membership test on the demultiplexed sets.
                let verdicts: Vec<bool> = outcome
                    .outcomes
                    .iter()
                    .map(|o| o.selected.contains(NodeId(0)))
                    .collect();
                sink.verdicts(&verdicts)?;
                sink.outcomes(&outcome)?;
                EvalReport {
                    verdicts,
                    batch: Some(outcome),
                }
            }
        };
        sink.finish()?;
        Ok(report)
    }

    /// Primes the session's standing-query state: one full evaluation
    /// at the database's current epoch, after which every
    /// [`refresh`](Session::refresh) is incremental. Called implicitly
    /// by the first `refresh`; call it eagerly to move the priming cost
    /// off the first update's latency.
    pub fn prime_standing(&self) -> Result<(), EngineError> {
        let mut standing = self.standing.lock().expect("standing state poisoned");
        if standing.is_none() {
            *standing = Some(StandingEval::prime(self.db, self.batch(), &self.pool)?);
        }
        Ok(())
    }

    /// Applies `update` to the database **and** incrementally
    /// re-evaluates the session's queries over it: phase 1 reruns only
    /// over the edited record window and the changed part of its root
    /// spine, phase 2 only below the highest changed phase-1 state
    /// (pruned where old states survive). The report carries the full
    /// per-query outcomes at the new epoch plus per-query result
    /// *deltas*, and its stats expose the incremental path
    /// (`dirty_nodes`, `retained_sta_blocks`, `refreshes`; zero scan
    /// counts).
    ///
    /// The first call primes the standing state with one full
    /// evaluation (see [`prime_standing`](Session::prime_standing)).
    /// Errors if the database changed outside this session since the
    /// standing state's epoch.
    pub fn refresh(&self, update: &DocUpdate) -> Result<RefreshReport, EngineError> {
        let mut standing = self.standing.lock().expect("standing state poisoned");
        if standing.is_none() {
            *standing = Some(StandingEval::prime(self.db, self.batch(), &self.pool)?);
        }
        let se = standing.as_mut().expect("primed above");
        let applied = self.db.apply_update(update)?;
        se.refresh(&applied, self.batch(), self.db)
    }

    /// Evaluates with `req` and returns the per-query outcomes
    /// (convenience over [`eval`](Session::eval) with an outcome-only
    /// sink).
    pub fn run_with(&self, req: &EvalRequest) -> Result<BatchOutcome, EngineError> {
        struct Discard;
        impl ResultSink for Discard {}
        let report = self.eval(req, &mut Discard)?;
        Ok(report.batch.expect("outcome demand produces a batch"))
    }

    /// [`run_with`](Session::run_with) under default options.
    pub fn run(&self) -> Result<BatchOutcome, EngineError> {
        self.run_with(&EvalRequest::new())
    }

    /// Runs a single-query session and returns its one outcome; errors
    /// (before evaluating anything) if the session holds a different
    /// number of queries.
    pub fn run_one(&self) -> Result<QueryOutcome, EngineError> {
        if self.len() != 1 {
            return Err(EngineError::Query(format!(
                "run_one on a session of {} queries",
                self.len()
            )));
        }
        Ok(self.run()?.outcomes.remove(0))
    }

    /// Per-query boolean (document-filtering) verdicts: one shared
    /// backward scan on disk databases.
    pub fn run_boolean(&self) -> Result<Vec<bool>, EngineError> {
        let mut sink = BooleanSink::default();
        self.eval(&EvalRequest::new(), &mut sink)?;
        Ok(sink.into_verdicts())
    }

    /// Evaluates and writes the whole document once to `out`, marking
    /// every node any query of the session selected (streamed during
    /// phase 2 on disk databases).
    pub fn run_marked(&self, out: impl Write) -> Result<BatchOutcome, EngineError> {
        let mut sink = XmlMarkSink::new(self.db.labels(), out);
        let report = self.eval(&EvalRequest::new(), &mut sink)?;
        Ok(report.batch.expect("stream demand produces a batch"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        Database::from_xml_str("<r><a/><b><a>t</a></b></r>").unwrap()
    }

    #[test]
    fn sinks_over_one_session() {
        let mut db = db();
        let qs = [
            db.compile_tmnf("QUERY :- V.Label[a];").unwrap(),
            db.compile_xpath("//b").unwrap(),
        ];
        let session = db.prepare(&qs);
        assert_eq!(session.len(), 2);

        let mut counts = CountSink::default();
        let report = session.eval(&EvalRequest::new(), &mut counts).unwrap();
        assert_eq!(counts.counts(), &[2, 1]);
        assert_eq!(report.verdicts, vec![false, false]);
        assert_eq!(report.batch.unwrap().stats.backward_scans, 1);

        let mut sets = NodeSetSink::default();
        session.eval(&EvalRequest::new(), &mut sets).unwrap();
        assert_eq!(sets.sets()[0].to_vec().len(), 2);

        let mut bools = BooleanSink::default();
        let report = session.eval(&EvalRequest::new(), &mut bools).unwrap();
        assert!(report.batch.is_none(), "verdict sinks skip phase 2");
        assert_eq!(bools.verdicts(), &[false, false]);
    }

    #[test]
    fn xml_mark_sink_streams_the_document() {
        let mut db = db();
        let q = db.compile_tmnf("QUERY :- V.Label[a];").unwrap();
        let session = db.prepare(&[q]);
        let mut sink = XmlMarkSink::new(db.labels(), Vec::new());
        session.eval(&EvalRequest::new(), &mut sink).unwrap();
        let xml = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        assert_eq!(
            xml,
            "<r><a arb:selected=\"true\"></a><b><a arb:selected=\"true\">t</a></b></r>"
        );
    }

    #[test]
    fn xml_mark_sink_rejects_reuse() {
        let mut db = db();
        let q = db.compile_tmnf("QUERY :- V.Label[a];").unwrap();
        let session = db.prepare(&[q]);
        let mut sink = XmlMarkSink::new(db.labels(), Vec::new());
        session.eval(&EvalRequest::new(), &mut sink).unwrap();
        // A second run on the consumed sink is an error, not a panic.
        assert!(session.eval(&EvalRequest::new(), &mut sink).is_err());
    }

    #[test]
    fn boolean_sink_honors_parallelism() {
        let mut db = db();
        let q = db.compile_tmnf("QUERY :- Root, HasFirstChild;").unwrap();
        let session = db.prepare(&[q]);
        let mut seq = BooleanSink::default();
        session.eval(&EvalRequest::new(), &mut seq).unwrap();
        let mut par = BooleanSink::default();
        session
            .eval(&EvalRequest::new().parallelism(4), &mut par)
            .unwrap();
        assert_eq!(seq.verdicts(), &[true]);
        assert_eq!(seq.verdicts(), par.verdicts());
    }

    #[test]
    fn parallel_option_matches_sequential() {
        let mut db = db();
        let q = db.compile_tmnf("QUERY :- V.Label[a];").unwrap();
        let session = db.prepare(&[q]);
        let seq = session.run().unwrap();
        let par = session
            .run_with(&EvalRequest::new().parallelism(4))
            .unwrap();
        assert_eq!(
            seq.outcomes[0].selected.to_vec(),
            par.outcomes[0].selected.to_vec()
        );
    }

    #[test]
    fn session_reuses_automata_across_runs() {
        let mut db = db();
        let q = db.compile_tmnf("QUERY :- V.Label[a];").unwrap();
        let session = db.prepare(&[q]);
        let first = session.run().unwrap();
        assert_eq!(first.stats.automata_builds, 1);
        assert_eq!(first.stats.automata_reused, 0);
        let second = session.run().unwrap();
        assert_eq!(
            (second.stats.automata_builds, second.stats.automata_reused),
            (0, 1),
            "a warm session must not rebuild its automata"
        );
        assert_eq!(second.stats.automata_build_time, std::time::Duration::ZERO);
        // Per-query outcomes carry the same lifecycle counters.
        assert_eq!(second.outcomes[0].stats.automata_builds, 0);
        assert_eq!(
            first.outcomes[0].selected.to_vec(),
            second.outcomes[0].selected.to_vec()
        );
    }

    #[test]
    fn shared_pool_spans_sessions() {
        let mut db = db();
        let q = db.compile_tmnf("QUERY :- V.Label[a];").unwrap();
        let pool = std::sync::Arc::new(arb_core::AutomataPool::new());
        let qs = [q];
        let warmup = db.prepare(&qs).with_pool(pool.clone());
        warmup.run().unwrap();
        drop(warmup);
        // A second session over the same program and pool starts warm.
        let warm = db.prepare(&qs).with_pool(pool.clone());
        let out = warm.run().unwrap();
        assert_eq!(out.stats.automata_builds, 0);
        assert_eq!(out.stats.automata_reused, 1);
        assert_eq!(pool.builds(), 1);
    }

    #[test]
    fn empty_session_is_an_error() {
        let db = db();
        let session = db.prepare(&[]);
        assert!(session.is_empty());
        assert!(session.run().is_err());
        assert!(session.run_boolean().is_err());
    }

    #[test]
    fn run_one_rejects_multi_query_sessions() {
        let mut db = db();
        let qs = [
            db.compile_tmnf("QUERY :- V.Label[a];").unwrap(),
            db.compile_xpath("//b").unwrap(),
        ];
        assert!(db.prepare(&qs).run_one().is_err());
    }
}
