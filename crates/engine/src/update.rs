//! Document updates at the engine level.
//!
//! A [`DocUpdate`] names an edit site by preorder index and carries the
//! replacement/new subtree as an XML fragment. [`Database::apply_update`](crate::Database::apply_update) plans and applies it on either backing —
//! in place on disk (only the dirty record blocks are rewritten, see
//! [`arb_storage::ArbUpdater`]), by rebuilding the tree in memory — and
//! returns the [`AppliedUpdate`] an incremental
//! [`Session::refresh`](crate::Session::refresh) consumes.

use crate::database::EngineError;
use arb_storage::{EditPlan, NodeRecord};
use arb_tree::{BinaryTree, LabelTable};

/// One edit of a document, in the engine's surface vocabulary.
///
/// Positions are **preorder indexes of the binary tree** (the same index
/// space query results use). Fragments are XML with a single root
/// element; their tag names must already exist in the database's label
/// table — an update introducing new tags is rejected here (apply it
/// offline with `arb update`, which can grow the `.lab` file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocUpdate {
    /// Parse `xml` and append it as the **last child** of node `under`.
    AppendChild {
        /// Preorder index of the new parent.
        under: u32,
        /// The fragment (one root element).
        xml: String,
    },
    /// Parse `xml` and replace the subtree rooted at `at` with it.
    SpliceSubtree {
        /// Preorder index of the replaced subtree's root.
        at: u32,
        /// The fragment (one root element).
        xml: String,
    },
    /// Delete the subtree rooted at `at` (the root itself cannot be
    /// deleted).
    DeleteSubtree {
        /// Preorder index of the deleted subtree's root.
        at: u32,
    },
}

impl DocUpdate {
    /// The update's fragment XML, if it carries one.
    pub fn xml(&self) -> Option<&str> {
        match self {
            DocUpdate::AppendChild { xml, .. } | DocUpdate::SpliceSubtree { xml, .. } => Some(xml),
            DocUpdate::DeleteSubtree { .. } => None,
        }
    }
}

/// What [`Database::apply_update`](crate::Database::apply_update)
/// actually did — everything an incremental refresh needs to replay the
/// edit against its own mirrors.
#[derive(Debug, Clone)]
pub struct AppliedUpdate {
    /// The positional plan (window position/removed/inserted, the one
    /// changed child flag below it).
    pub plan: EditPlan,
    /// The fragment's records (raw: the plan's `frag_root_second` is
    /// applied when the edit is replayed). Empty for deletions.
    pub frag: Vec<NodeRecord>,
    /// Node count after the edit.
    pub new_nodes: u32,
    /// The document's epoch after the edit (update counter for memory
    /// backings, header epoch for disk).
    pub epoch: u64,
    /// Record blocks retained byte-for-byte on disk (0 in memory).
    pub retained_blocks: u32,
}

/// Flattens a binary tree into its preorder record stream — the shared
/// shape the update planner and the incremental evaluator work on.
pub(crate) fn tree_records(tree: &BinaryTree) -> Vec<NodeRecord> {
    tree.nodes()
        .map(|v| {
            let info = tree.info(v);
            NodeRecord {
                label: info.label,
                has_first: info.has_first,
                has_second: info.has_second,
            }
        })
        .collect()
}

/// Parses an update fragment against a database's label table without
/// growing it: new tag names are an error (the engine cannot rewrite a
/// shared label space under live readers; `arb update` applies such
/// edits offline).
pub(crate) fn parse_fragment(
    xml: &str,
    labels: &LabelTable,
) -> Result<Vec<NodeRecord>, EngineError> {
    let mut scratch = labels.clone();
    let tree = arb_xml::str_to_tree(xml, &mut scratch)
        .map_err(|e| EngineError::Create(format!("update fragment: {e}")))?;
    if scratch.tag_count() > labels.tag_count() {
        return Err(EngineError::Create(
            "update fragment introduces new tag names; apply it offline with `arb update`, \
             which can grow the label table"
                .into(),
        ));
    }
    let frag = tree_records(&tree);
    arb_storage::validate_fragment(&frag)?;
    Ok(frag)
}
