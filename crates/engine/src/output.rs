//! Streaming marked-XML output during phase 2.
//!
//! "As the default behavior of Arb, the entire XML document is returned
//! with selected nodes marked up in the usual XML fashion. This output
//! can be produced in the second (top-down traversal) phase of query
//! processing" (paper §6.3). The emitter consumes the forward record
//! stream in document order and writes the document incrementally, with
//! an open-element stack bounded by the XML depth.

use arb_storage::NodeRecord;
use arb_tree::{LabelId, LabelTable};
use std::io::{self, Write};

/// Incremental XML serializer over preorder `.arb` records.
pub struct XmlEmitter<'a, W: Write> {
    labels: &'a LabelTable,
    out: W,
    /// Open elements awaiting their close tag: (label, has_second).
    stack: Vec<(LabelId, bool)>,
    /// Inside a run of selected character nodes.
    char_run_selected: bool,
}

impl<'a, W: Write> XmlEmitter<'a, W> {
    /// A fresh emitter.
    pub fn new(labels: &'a LabelTable, out: W) -> Self {
        XmlEmitter {
            labels,
            out,
            stack: Vec::new(),
            char_run_selected: false,
        }
    }

    fn close_char_run(&mut self) -> io::Result<()> {
        if self.char_run_selected {
            self.out.write_all(b"</arb:selected>")?;
            self.char_run_selected = false;
        }
        Ok(())
    }

    fn emit_close(&mut self, label: LabelId) -> io::Result<()> {
        self.out.write_all(b"</")?;
        self.out.write_all(self.labels.name(label).as_bytes())?;
        self.out.write_all(b">")
    }

    /// Feeds the next node in document order; `selected` marks it.
    pub fn node(&mut self, rec: NodeRecord, selected: bool) -> io::Result<()> {
        let is_char = rec.label.is_text();
        if is_char {
            if selected != self.char_run_selected {
                if selected {
                    self.out.write_all(b"<arb:selected>")?;
                } else {
                    self.out.write_all(b"</arb:selected>")?;
                }
                self.char_run_selected = selected;
            }
            let b = rec.label.text_byte().expect("char label");
            match b {
                b'&' => self.out.write_all(b"&amp;")?,
                b'<' => self.out.write_all(b"&lt;")?,
                b'>' => self.out.write_all(b"&gt;")?,
                _ => self.out.write_all(&[b])?,
            }
        } else {
            self.close_char_run()?;
            self.out.write_all(b"<")?;
            self.out.write_all(self.labels.name(rec.label).as_bytes())?;
            if selected {
                self.out.write_all(b" arb:selected=\"true\"")?;
            }
            self.out.write_all(b">")?;
        }
        if rec.has_first {
            debug_assert!(!is_char, "character nodes are leaves");
            self.stack.push((rec.label, rec.has_second));
            return Ok(());
        }
        if !is_char {
            self.close_char_run()?;
            self.emit_close(rec.label)?;
        }
        // Unwind closed ancestors until one still expects a sibling.
        let mut has_second = rec.has_second;
        while !has_second {
            match self.stack.pop() {
                Some((label, hs)) => {
                    self.close_char_run()?;
                    self.emit_close(label)?;
                    has_second = hs;
                }
                None => break, // document complete
            }
        }
        Ok(())
    }

    /// Finishes, checking well-formedness, and returns the writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.close_char_run()?;
        if !self.stack.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "record stream ended with open elements",
            ));
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_storage::create::create_from_xml;
    use arb_storage::ArbDatabase;
    use arb_xml::XmlConfig;
    use std::io::Cursor;

    fn emit(xml: &str, selected: &[u32]) -> String {
        let dir = std::env::temp_dir().join(format!("arb-out-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let arb = dir.join(format!("o{}.arb", selected.len()));
        create_from_xml(Cursor::new(xml.as_bytes()), &XmlConfig::default(), &arb).unwrap();
        let db = ArbDatabase::open(&arb).unwrap();
        let mut em = XmlEmitter::new(db.labels(), Vec::new());
        let mut scan = db.forward_scan().unwrap();
        while let Some((ix, rec)) = scan.next_record().unwrap() {
            em.node(rec, selected.contains(&ix)).unwrap();
        }
        String::from_utf8(em.finish().unwrap()).unwrap()
    }

    #[test]
    fn roundtrips_unmarked() {
        let xml = "<a><b>x&amp;y</b><c></c></a>";
        assert_eq!(emit(xml, &[]), xml);
    }

    #[test]
    fn marks_selected_nodes() {
        // Nodes: 0=a 1=b 2='x' 3=c.
        let s = emit("<a><b>x</b><c/></a>", &[1, 2]);
        assert_eq!(
            s,
            "<a><b arb:selected=\"true\"><arb:selected>x</arb:selected></b><c></c></a>"
        );
    }
}
