//! Strict TMNF programs: the four rule templates over interned predicates.

use crate::edb::EdbAtom;
use arb_tree::LabelTable;
use std::collections::HashMap;
use std::fmt;

/// Index of an IDB predicate within a [`CoreProgram`].
pub type PredId = u32;

/// A strict TMNF rule (paper Section 2.2, templates (1)–(4)).
///
/// `k = 1` denotes the `FirstChild` relation, `k = 2` `SecondChild`
/// (a.k.a. `NextSibling`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoreRule {
    /// Template (1): `head(x) ← U(x)`.
    Edb {
        /// Head predicate.
        head: PredId,
        /// EDB index into [`CoreProgram::edbs`].
        edb: u32,
    },
    /// Template (2): `head(x) ← body(x0) ∧ B(x0, x)` — the head holds at
    /// the `k`-child of a node where the body holds (information flows
    /// *down*). Surface syntax `head :- body.FirstChild;`.
    Down {
        /// Head predicate (derived at the child).
        head: PredId,
        /// Body predicate (holds at the parent).
        body: PredId,
        /// Which child: 1 or 2.
        k: u8,
    },
    /// Template (3): `head(x0) ← body(x) ∧ B(x0, x)` — the head holds at
    /// the parent of a `k`-child where the body holds (information flows
    /// *up*). Surface syntax `head :- body.invFirstChild;`.
    Up {
        /// Head predicate (derived at the parent).
        head: PredId,
        /// Body predicate (holds at the `k`-child).
        body: PredId,
        /// Which child: 1 or 2.
        k: u8,
    },
    /// Template (4): `head(x) ← b1(x) ∧ b2(x)`.
    ///
    /// Following the paper's usage (Examples 2.2 and 4.3 write rules like
    /// `P4 :- P3, Leaf;`), conjunction operands may be EDB atoms as well
    /// as IDB predicates.
    And {
        /// Head predicate.
        head: PredId,
        /// First body operand.
        b1: BodyAtom,
        /// Second body operand (may equal `b1`, expressing a copy rule).
        b2: BodyAtom,
    },
}

/// An operand of a conjunctive (type-4) rule body.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BodyAtom {
    /// An IDB predicate.
    Pred(PredId),
    /// An EDB atom (index into [`CoreProgram::edbs`]).
    Edb(u32),
}

impl CoreRule {
    /// The head predicate of the rule.
    pub fn head(&self) -> PredId {
        match *self {
            CoreRule::Edb { head, .. }
            | CoreRule::Down { head, .. }
            | CoreRule::Up { head, .. }
            | CoreRule::And { head, .. } => head,
        }
    }
}

/// A strict TMNF program: interned predicate names, an EDB registry, the
/// rules, and the distinguished query predicates.
#[derive(Clone, Default)]
pub struct CoreProgram {
    pred_names: Vec<String>,
    pred_by_name: HashMap<String, PredId>,
    /// EDB atoms referenced by the program (indexed by `CoreRule::Edb::edb`).
    edbs: Vec<EdbAtom>,
    edb_by_atom: HashMap<EdbAtom, u32>,
    rules: Vec<CoreRule>,
    query_preds: Vec<PredId>,
    gensym: u32,
}

impl CoreProgram {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a predicate name.
    pub fn pred(&mut self, name: &str) -> PredId {
        if let Some(&p) = self.pred_by_name.get(name) {
            return p;
        }
        let id = self.pred_names.len() as PredId;
        self.pred_names.push(name.to_string());
        self.pred_by_name.insert(name.to_string(), id);
        id
    }

    /// A fresh auxiliary predicate with a unique name.
    pub fn fresh_pred(&mut self, hint: &str) -> PredId {
        loop {
            let name = format!("_{hint}{}", self.gensym);
            self.gensym += 1;
            if !self.pred_by_name.contains_key(&name) {
                return self.pred(&name);
            }
        }
    }

    /// Looks up a predicate by name.
    pub fn pred_id(&self, name: &str) -> Option<PredId> {
        self.pred_by_name.get(name).copied()
    }

    /// The name of a predicate.
    pub fn pred_name(&self, p: PredId) -> &str {
        &self.pred_names[p as usize]
    }

    /// Number of IDB predicates (the paper's `|IDB|` column).
    pub fn pred_count(&self) -> usize {
        self.pred_names.len()
    }

    /// Interns an EDB atom, returning its index.
    pub fn edb(&mut self, atom: EdbAtom) -> u32 {
        if let Some(&ix) = self.edb_by_atom.get(&atom) {
            return ix;
        }
        let ix = self.edbs.len() as u32;
        self.edbs.push(atom);
        self.edb_by_atom.insert(atom, ix);
        ix
    }

    /// The EDB registry.
    pub fn edbs(&self) -> &[EdbAtom] {
        &self.edbs
    }

    /// The EDB atom at an index.
    pub fn edb_atom(&self, ix: u32) -> EdbAtom {
        self.edbs[ix as usize]
    }

    /// Appends a rule.
    pub fn add_rule(&mut self, rule: CoreRule) {
        self.rules.push(rule);
    }

    /// The rules (the paper's `|P|` column counts these).
    pub fn rules(&self) -> &[CoreRule] {
        &self.rules
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Marks a predicate as a query predicate (TMNF programs can compute
    /// several node-selecting queries at once, paper §2.2/§7).
    pub fn add_query_pred(&mut self, p: PredId) {
        if !self.query_preds.contains(&p) {
            self.query_preds.push(p);
        }
    }

    /// The distinguished query predicates.
    pub fn query_preds(&self) -> &[PredId] {
        &self.query_preds
    }

    /// Convenience: the single query predicate, if exactly one is set.
    pub fn query_pred(&self) -> Option<PredId> {
        match self.query_preds.as_slice() {
            [p] => Some(*p),
            _ => None,
        }
    }

    /// Renders the program in Arb surface syntax.
    pub fn display<'a>(&'a self, labels: &'a LabelTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a CoreProgram, &'a LabelTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let p = self.0;
                for r in &p.rules {
                    match *r {
                        CoreRule::Edb { head, edb } => writeln!(
                            f,
                            "{} :- {};",
                            p.pred_name(head),
                            p.edb_atom(edb).display(self.1)
                        )?,
                        CoreRule::Down { head, body, k } => writeln!(
                            f,
                            "{} :- {}.{};",
                            p.pred_name(head),
                            p.pred_name(body),
                            if k == 1 { "FirstChild" } else { "SecondChild" }
                        )?,
                        CoreRule::Up { head, body, k } => writeln!(
                            f,
                            "{} :- {}.{};",
                            p.pred_name(head),
                            p.pred_name(body),
                            if k == 1 {
                                "invFirstChild"
                            } else {
                                "invSecondChild"
                            }
                        )?,
                        CoreRule::And { head, b1, b2 } => {
                            let show = |a: &BodyAtom| match *a {
                                BodyAtom::Pred(q) => p.pred_name(q).to_string(),
                                BodyAtom::Edb(e) => p.edb_atom(e).display(self.1).to_string(),
                            };
                            writeln!(f, "{} :- {}, {};", p.pred_name(head), show(&b1), show(&b2))?
                        }
                    }
                }
                Ok(())
            }
        }
        D(self, labels)
    }
}

impl fmt::Debug for CoreProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoreProgram")
            .field("preds", &self.pred_names)
            .field("rules", &self.rules)
            .field("query", &self.query_preds)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_and_rules() {
        let mut p = CoreProgram::new();
        let a = p.pred("A");
        let b = p.pred("B");
        assert_eq!(p.pred("A"), a);
        assert_ne!(a, b);
        let e = p.edb(EdbAtom::Root);
        assert_eq!(p.edb(EdbAtom::Root), e);
        p.add_rule(CoreRule::Edb { head: a, edb: e });
        p.add_rule(CoreRule::Down {
            head: b,
            body: a,
            k: 1,
        });
        assert_eq!(p.rule_count(), 2);
        assert_eq!(p.rules()[1].head(), b);
        p.add_query_pred(b);
        p.add_query_pred(b);
        assert_eq!(p.query_preds(), &[b]);
        assert_eq!(p.query_pred(), Some(b));
    }

    #[test]
    fn fresh_preds_unique() {
        let mut p = CoreProgram::new();
        let x = p.fresh_pred("s");
        let y = p.fresh_pred("s");
        assert_ne!(x, y);
        assert_ne!(p.pred_name(x), p.pred_name(y));
    }

    #[test]
    fn display_roundtrips_shapes() {
        let mut p = CoreProgram::new();
        let a = p.pred("A");
        let b = p.pred("B");
        let e = p.edb(EdbAtom::Leaf);
        p.add_rule(CoreRule::Edb { head: a, edb: e });
        p.add_rule(CoreRule::Up {
            head: b,
            body: a,
            k: 2,
        });
        p.add_rule(CoreRule::And {
            head: b,
            b1: BodyAtom::Pred(a),
            b2: BodyAtom::Pred(a),
        });
        let lt = LabelTable::new();
        let s = format!("{}", p.display(&lt));
        assert!(s.contains("A :- Leaf;"));
        assert!(s.contains("B :- A.invSecondChild;"));
        assert!(s.contains("B :- A, A;"));
    }
}
