//! Normalization of surface programs to strict TMNF.
//!
//! Caterpillar expressions are compiled to predicates via the **Glushkov
//! position automaton** (one IDB predicate per symbol occurrence, no
//! ε-states), yielding the linear-time translation promised in the paper
//! ("programs containing caterpillar expressions can be translated into
//! strict TMNF in linear time" \[9\]):
//!
//! * a *move* transition `q → p` becomes a type-(2)/(3) rule
//!   `S_p :- S_q.B` / `S_p :- S_q.invB`,
//! * a *test* transition becomes a type-(4) conjunction with the test
//!   predicate (EDB tests get a type-(1) auxiliary predicate),
//! * conjunctive bodies with more than two items are chained through
//!   fresh auxiliaries.

use crate::ast::{Move, Regex, StepSym, SurfaceProgram};
use crate::core::{BodyAtom, CoreProgram, CoreRule, PredId};
use crate::edb::EdbAtom;
use std::collections::HashMap;

/// Compilation context carrying per-program caches.
struct Ctx {
    prog: CoreProgram,
    /// Cache of type-(1) auxiliary predicates per EDB atom.
    edb_pred: HashMap<EdbAtom, PredId>,
    /// The "_any" predicate (`_any :- V`), created on demand.
    any_pred: Option<PredId>,
}

impl Ctx {
    fn edb_test(&mut self, atom: EdbAtom) -> PredId {
        if let Some(&p) = self.edb_pred.get(&atom) {
            return p;
        }
        let p = self.prog.fresh_pred("edb");
        let e = self.prog.edb(atom);
        self.prog.add_rule(CoreRule::Edb { head: p, edb: e });
        self.edb_pred.insert(atom, p);
        p
    }

    fn any(&mut self) -> PredId {
        if let Some(p) = self.any_pred {
            return p;
        }
        let p = self.edb_test(EdbAtom::V);
        self.any_pred = Some(p);
        p
    }

    /// Emits a copy rule `head :- from` as `head :- from, from`.
    fn copy(&mut self, head: PredId, from: PredId) {
        self.prog.add_rule(CoreRule::And {
            head,
            b1: BodyAtom::Pred(from),
            b2: BodyAtom::Pred(from),
        });
    }

    /// Emits the strict rule for a move from `body`'s nodes to `head`'s.
    fn transition_to_head(&mut self, body: PredId, m: Move, head: PredId) {
        let rule = match m {
            Move::FirstChild => CoreRule::Down { head, body, k: 1 },
            Move::SecondChild => CoreRule::Down { head, body, k: 2 },
            Move::InvFirstChild => CoreRule::Up { head, body, k: 1 },
            Move::InvSecondChild => CoreRule::Up { head, body, k: 2 },
        };
        self.prog.add_rule(rule);
    }

    /// Emits the rule for a transition into position symbol `sym`, deriving
    /// `to` from `from`.
    fn transition(&mut self, from: PredId, sym: &StepSym, to: PredId) {
        match sym {
            StepSym::Move(m) => self.transition_to_head(from, *m, to),
            StepSym::Edb(e) => {
                let edb = self.prog.edb(*e);
                self.prog.add_rule(CoreRule::And {
                    head: to,
                    b1: BodyAtom::Pred(from),
                    b2: BodyAtom::Edb(edb),
                });
            }
            StepSym::Pred(name) => {
                let p = self.prog.pred(name);
                self.prog.add_rule(CoreRule::And {
                    head: to,
                    b1: BodyAtom::Pred(from),
                    b2: BodyAtom::Pred(p),
                });
            }
        }
    }
}

/// Glushkov analysis result for a (sub)expression.
struct Gl {
    nullable: bool,
    first: Vec<usize>,
    last: Vec<usize>,
}

fn glushkov(r: &Regex, positions: &mut Vec<StepSym>, follow: &mut Vec<Vec<usize>>) -> Gl {
    match r {
        Regex::Eps => Gl {
            nullable: true,
            first: vec![],
            last: vec![],
        },
        Regex::Sym(s) => {
            let p = positions.len();
            positions.push(s.clone());
            follow.push(Vec::new());
            Gl {
                nullable: false,
                first: vec![p],
                last: vec![p],
            }
        }
        Regex::Cat(a, b) => {
            let ga = glushkov(a, positions, follow);
            let gb = glushkov(b, positions, follow);
            for &p in &ga.last {
                follow[p].extend_from_slice(&gb.first);
            }
            let mut first = ga.first;
            if ga.nullable {
                first.extend_from_slice(&gb.first);
            }
            let mut last = gb.last;
            if gb.nullable {
                last.extend_from_slice(&ga.last);
            }
            Gl {
                nullable: ga.nullable && gb.nullable,
                first,
                last,
            }
        }
        Regex::Alt(a, b) => {
            let ga = glushkov(a, positions, follow);
            let gb = glushkov(b, positions, follow);
            let mut first = ga.first;
            first.extend_from_slice(&gb.first);
            let mut last = ga.last;
            last.extend_from_slice(&gb.last);
            Gl {
                nullable: ga.nullable || gb.nullable,
                first,
                last,
            }
        }
        Regex::Star(a) | Regex::Plus(a) => {
            let ga = glushkov(a, positions, follow);
            for &p in &ga.last {
                let f = ga.first.clone();
                follow[p].extend(f);
            }
            Gl {
                nullable: matches!(r, Regex::Star(_)) || ga.nullable,
                first: ga.first,
                last: ga.last,
            }
        }
        Regex::Opt(a) => {
            let ga = glushkov(a, positions, follow);
            Gl {
                nullable: true,
                first: ga.first,
                last: ga.last,
            }
        }
    }
}

/// Flattens the left-associated `Cat` spine into a sequence of factors.
fn flatten_cat(r: &Regex, out: &mut Vec<Regex>) {
    match r {
        Regex::Cat(a, b) => {
            flatten_cat(a, out);
            flatten_cat(b, out);
        }
        Regex::Eps => {}
        other => out.push(other.clone()),
    }
}

/// Resolves a leading test symbol to its predicate, if the factor is one.
fn test_pred(ctx: &mut Ctx, r: &Regex) -> Option<PredId> {
    match r {
        Regex::Sym(StepSym::Pred(name)) => Some(ctx.prog.pred(name)),
        Regex::Sym(StepSym::Edb(e)) => Some(ctx.edb_test(*e)),
        _ => None,
    }
}

/// Peels leading test factors off an item, conjoining them into a start
/// predicate, and returns `(start, remaining factors)`. A leading `V`
/// test is absorbed into whatever follows (it holds everywhere).
fn peel_start(ctx: &mut Ctx, parts: &[Regex]) -> (Option<PredId>, usize) {
    let mut start: Option<PredId> = None;
    let mut i = 0;
    while i < parts.len() {
        if matches!(parts[i], Regex::Sym(StepSym::Edb(EdbAtom::V))) {
            i += 1;
            continue;
        }
        match (&parts[i], start) {
            // A leading EDB test with more walk to come conjoins with the
            // accumulated start directly (no auxiliary test predicate).
            (Regex::Sym(StepSym::Edb(e)), Some(q)) => {
                let h = ctx.prog.fresh_pred("and");
                let edb = ctx.prog.edb(*e);
                ctx.prog.add_rule(CoreRule::And {
                    head: h,
                    b1: BodyAtom::Pred(q),
                    b2: BodyAtom::Edb(edb),
                });
                start = Some(h);
            }
            _ => {
                let Some(p) = test_pred(ctx, &parts[i]) else {
                    break;
                };
                start = Some(match start {
                    None => p,
                    Some(q) => {
                        let h = ctx.prog.fresh_pred("and");
                        ctx.prog.add_rule(CoreRule::And {
                            head: h,
                            b1: BodyAtom::Pred(q),
                            b2: BodyAtom::Pred(p),
                        });
                        h
                    }
                });
            }
        }
        i += 1;
    }
    (start, i)
}

/// Compiles a body item (caterpillar expression) to the predicate that
/// holds exactly at the walk end points.
fn compile_item(ctx: &mut Ctx, regex: &Regex) -> PredId {
    let mut parts = Vec::new();
    flatten_cat(regex, &mut parts);
    let (start, consumed) = peel_start(ctx, &parts);
    let rest = Regex::seq(parts[consumed..].iter().cloned());
    if rest == Regex::Eps {
        return start.unwrap_or_else(|| ctx.any());
    }
    let start = start.unwrap_or_else(|| ctx.any());

    let mut positions: Vec<StepSym> = Vec::new();
    let mut follow: Vec<Vec<usize>> = Vec::new();
    let gl = glushkov(&rest, &mut positions, &mut follow);

    // One predicate per position.
    let preds: Vec<PredId> = (0..positions.len())
        .map(|_| ctx.prog.fresh_pred("s"))
        .collect();

    for &p in &gl.first {
        let sym = positions[p].clone();
        ctx.transition(start, &sym, preds[p]);
    }
    for (q, fs) in follow.iter().enumerate() {
        for &p in fs {
            let sym = positions[p].clone();
            ctx.transition(preds[q], &sym, preds[p]);
        }
    }

    // Accepting predicate.
    if gl.last.len() == 1 && !gl.nullable {
        return preds[gl.last[0]];
    }
    let acc = ctx.prog.fresh_pred("acc");
    for &p in &gl.last {
        ctx.copy(acc, preds[p]);
    }
    if gl.nullable {
        ctx.copy(acc, start);
    }
    acc
}

/// Compiles a body item to a conjunction operand, avoiding auxiliary
/// predicates for plain tests.
fn compile_item_atom(ctx: &mut Ctx, regex: &Regex) -> BodyAtom {
    match regex {
        Regex::Sym(StepSym::Edb(e)) => BodyAtom::Edb(ctx.prog.edb(*e)),
        Regex::Sym(StepSym::Pred(name)) => BodyAtom::Pred(ctx.prog.pred(name)),
        _ => BodyAtom::Pred(compile_item(ctx, regex)),
    }
}

/// Emits the rules for `head :- item;`, using the strict TMNF templates
/// directly when the item already has template shape (keeping Example 4.3
/// and friends verbatim).
fn compile_single_item_rule(ctx: &mut Ctx, head: PredId, regex: &Regex) {
    let mut parts = Vec::new();
    flatten_cat(regex, &mut parts);
    match parts.as_slice() {
        // head :- U;
        [Regex::Sym(StepSym::Edb(e))] => {
            let edb = ctx.prog.edb(*e);
            ctx.prog.add_rule(CoreRule::Edb { head, edb });
            return;
        }
        // head :- P;
        [Regex::Sym(StepSym::Pred(name))] => {
            let p = ctx.prog.pred(name);
            ctx.copy(head, p);
            return;
        }
        // head :- P.B; / head :- P.invB;
        [Regex::Sym(StepSym::Pred(name)), Regex::Sym(StepSym::Move(m))] => {
            let body = ctx.prog.pred(name);
            let m = *m;
            ctx.transition_to_head(body, m, head);
            return;
        }
        _ => {}
    }
    let p = compile_item(ctx, regex);
    ctx.copy(head, p);
}

/// Normalizes a surface program to strict TMNF.
///
/// Head predicates keep their surface names; auxiliary predicates get
/// `_`-prefixed names. Query predicates are *not* set here — callers
/// choose them (conventionally the head of the last rule, or `QUERY`).
pub fn normalize(ast: &SurfaceProgram) -> CoreProgram {
    let mut ctx = Ctx {
        prog: CoreProgram::new(),
        edb_pred: HashMap::new(),
        any_pred: None,
    };
    // Intern all heads first so surface predicates get the small ids.
    for r in &ast.rules {
        ctx.prog.pred(&r.head);
    }
    for r in &ast.rules {
        let head = ctx.prog.pred(&r.head);
        if let [item] = r.items.as_slice() {
            compile_single_item_rule(&mut ctx, head, &item.regex);
            continue;
        }
        let item_atoms: Vec<BodyAtom> = r
            .items
            .iter()
            .map(|it| compile_item_atom(&mut ctx, &it.regex))
            .collect();
        match item_atoms.as_slice() {
            [] => unreachable!("parser guarantees at least one item"),
            [a] => match *a {
                BodyAtom::Pred(p) => ctx.copy(head, p),
                BodyAtom::Edb(e) => ctx.prog.add_rule(CoreRule::Edb { head, edb: e }),
            },
            [a, b] => ctx.prog.add_rule(CoreRule::And {
                head,
                b1: *a,
                b2: *b,
            }),
            many => {
                // Chain: aux1 = a1 & a2; aux2 = aux1 & a3; ...
                let mut acc = many[0];
                for (i, &a) in many[1..].iter().enumerate() {
                    let is_final = i == many.len() - 2;
                    let h = if is_final {
                        head
                    } else {
                        ctx.prog.fresh_pred("and")
                    };
                    ctx.prog.add_rule(CoreRule::And {
                        head: h,
                        b1: acc,
                        b2: a,
                    });
                    acc = BodyAtom::Pred(h);
                }
            }
        }
    }
    ctx.prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use arb_tree::LabelTable;

    fn norm(src: &str) -> CoreProgram {
        let mut lt = LabelTable::new();
        let ast = parse_program(src, &mut lt).unwrap();
        normalize(&ast)
    }

    #[test]
    fn strict_rules_stay_small() {
        let p = norm("A :- Leaf; B :- A.FirstChild; C :- B.invNextSibling; D :- B, C;");
        // A :- Leaf (edb aux may add one pred), B/C/D direct.
        assert!(p.pred_count() <= 6, "pred_count = {}", p.pred_count());
        assert!(p
            .rules()
            .iter()
            .any(|r| matches!(r, CoreRule::Down { k: 1, .. })));
        assert!(p
            .rules()
            .iter()
            .any(|r| matches!(r, CoreRule::Up { k: 2, .. })));
    }

    #[test]
    fn star_generates_loop() {
        let p = norm("Q :- P.NextSibling*;");
        // Q reachable from P with zero or more SecondChild moves: the
        // automaton must contain a Down{k=2} self-loop.
        let loops: Vec<_> = p
            .rules()
            .iter()
            .filter(|r| matches!(r, CoreRule::Down { head, body, k: 2 } if head == body))
            .collect();
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn multi_item_conjunction_chains() {
        let p = norm("Q :- A, B, C, D;");
        let and_rules = p
            .rules()
            .iter()
            .filter(|r| matches!(r, CoreRule::And { .. }))
            .count();
        assert_eq!(and_rules, 3);
    }

    #[test]
    fn nullable_item_accepts_start() {
        // Q :- P? : every node qualifies (walk of length 0 from itself).
        let p = norm("Q :- A?;");
        // Must reference the V EDB through `_any`.
        assert!(p.edbs().contains(&EdbAtom::V));
    }

    #[test]
    fn treebank_query_size_is_linear() {
        let src = "QUERY :- V.Label[S].FirstChild.NextSibling*.Label[VP].\
                   (FirstChild.NextSibling*.Label[NP].FirstChild.NextSibling*.Label[PP])*.\
                   FirstChild.NextSibling*.Label[NP];";
        let p = norm(src);
        // Paper reports |IDB| = 14, |P| = 21 for size-5 queries; the
        // Glushkov construction lands in the same ballpark.
        assert!(p.pred_count() <= 22, "|IDB| = {}", p.pred_count());
        assert!(p.rule_count() <= 40, "|P| = {}", p.rule_count());
    }
}
