//! Canned TMNF programs from the paper, usable in examples, tests and
//! benchmarks.

/// Paper Example 2.2: assigns `Even` to exactly the nodes whose subtree
/// contains an even number of leaves labeled `a`, and `Odd` to the rest.
///
/// The program traverses bottom-up: leaves are annotated first, then
/// sibling lists are folded from the right (`SFR` = "siblings from
/// right"), and complete sums are pushed up through `invFirstChild`.
pub const EVEN_ODD: &str = "\
Even :- Leaf, -Label[a];
Odd :- Leaf, Label[a];

SFREven :- Even, LastSibling;
SFROdd :- Odd, LastSibling;

FSEven :- SFREven.invNextSibling;
FSOdd :- SFROdd.invNextSibling;
SFREven :- FSEven, Even;
SFROdd :- FSEven, Odd;
SFROdd :- FSOdd, Even;
SFREven :- FSOdd, Odd;

Even :- SFREven.invFirstChild;
Odd :- SFROdd.invFirstChild;
";

/// Paper Example 4.3: the six-rule running example of Section 4.
pub const EXAMPLE_4_3: &str = "\
P1 :- Root;
P2 :- P1.FirstChild;
P3 :- P2.FirstChild;
P4 :- P3, Leaf;
P5 :- P4.invFirstChild;
Q :- P5.invFirstChild;
";

/// Selects all nodes labeled `gene` that have a child labeled `sequence`
/// (the structural part of the paper's Section 1.3 bio-informatics
/// example; the regular-expression text matching is demonstrated in the
/// `dna_caterpillar` example).
pub const GENE_WITH_SEQUENCE: &str = "\
SeqChild :- V.Label[sequence].invNextSibling*.invFirstChild;
QUERY :- SeqChild, Label[gene];
";

/// The caterpillar expression `R` of the paper's ACGT-infix benchmark
/// (Section 6.2): walks the infix tree to the symbol immediately previous
/// in the sequence. Substitute into `w1.R.w2...` query builders.
pub const INFIX_PREVIOUS: &str = "(FirstChild.SecondChild*.-hasSecondChild \
| -hasFirstChild.invFirstChild*.invSecondChild)";

/// Selects `publication` nodes whose subtree contains an even number of
/// `page`-labeled nodes (the counting part of the paper's Section 1.3
/// example 3). Counts *all* nodes labeled `page` in the subtree via a
/// bottom-up parity fold over the binary tree.
pub const EVEN_PAGES: &str = "\
# BE/BO: parity of page-labeled nodes in the *binary* subtree of a node
# (even/odd), by structural recursion: own label XOR children parities.
# FE/FO: parity of the first child's binary subtree (even if absent).
FE :- Leaf;
FE :- BE.invFirstChild;
FO :- BO.invFirstChild;
# SE/SO: parity of the second child's binary subtree (even if absent).
SE :- LastSibling;
SE :- BE.invSecondChild;
SO :- BO.invSecondChild;
# CE/CO: combined parity of both children's binary subtrees.
CE :- FE, SE;
CE :- FO, SO;
CO :- FE, SO;
CO :- FO, SE;
# Fold in the node's own label.
BE :- CE, -Label[page];
BO :- CE, Label[page];
BO :- CO, -Label[page];
BE :- CO, Label[page];
# The *unranked* subtree of x is x plus the binary subtree of x's first
# child: parity = FE/FO XOR own label.
SubEven :- FE, -Label[page];
SubEven :- FO, Label[page];
QUERY :- SubEven, Label[publication];
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use arb_tree::LabelTable;

    #[test]
    fn all_programs_parse() {
        for (name, src) in [
            ("EVEN_ODD", EVEN_ODD),
            ("EXAMPLE_4_3", EXAMPLE_4_3),
            ("GENE_WITH_SEQUENCE", GENE_WITH_SEQUENCE),
            ("EVEN_PAGES", EVEN_PAGES),
        ] {
            let mut lt = LabelTable::new();
            let ast = parse_program(src, &mut lt)
                .unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            let prog = crate::normalize::normalize(&ast);
            assert!(prog.rule_count() > 0, "{name} has no rules");
        }
    }

    #[test]
    fn infix_previous_parses_in_context() {
        let mut lt = LabelTable::new();
        let src = format!("Q :- V.Label['A'].{INFIX_PREVIOUS}.Label['C'];");
        assert!(parse_program(&src, &mut lt).is_ok());
    }
}
