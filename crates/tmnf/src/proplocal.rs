//! `PropLocal(P)` — Definition 4.2 of the paper.
//!
//! The propositional projection of a strict TMNF program over the atoms
//! `σ ∪ {X_i, X_i^1, X_i^2}`, partitioned into the rule groups used by the
//! lazy automata:
//!
//! * **local rules** — from templates (1) and (4): `X_i ← R` and
//!   `X_i ← X_j ∧ X_k`;
//! * **left rules** — clauses mentioning left-child atoms: `X_i ← X_j^1`
//!   (from `invFirstChild`) and `X_i^1 ← X_j` (from `FirstChild`);
//! * **right rules** — the superscript-2 analogues;
//! * **downward rules k** — only the `X_i^k ← X_j` clauses (templates
//!   (5)/(6) of the definition), used by the top-down automaton.
//!
//! IDB predicate `X_i` maps to `Atom::local(i)`; the EDB predicate at
//! index `e` in the program's registry maps to `Atom::edb(e)`.

use crate::core::{BodyAtom, CoreProgram, CoreRule};
use arb_logic::{Atom, Rule};

/// The partitioned propositional projection of a TMNF program.
#[derive(Debug, Clone, Default)]
pub struct PropLocal {
    /// `local_rules`: clauses over local and EDB atoms only.
    pub local: Vec<Rule>,
    /// `left_rules`: clauses mentioning superscript-1 atoms.
    pub left: Vec<Rule>,
    /// `right_rules`: clauses mentioning superscript-2 atoms.
    pub right: Vec<Rule>,
    /// `downward_rules_1 ⊆ left_rules`.
    pub down1: Vec<Rule>,
    /// `downward_rules_2 ⊆ right_rules`.
    pub down2: Vec<Rule>,
}

impl PropLocal {
    /// Builds `PropLocal(P)` for a strict TMNF program.
    pub fn build(prog: &CoreProgram) -> PropLocal {
        let mut pl = PropLocal::default();
        for r in prog.rules() {
            match *r {
                // (1)  X_i :- R   =>   X_i ← R
                CoreRule::Edb { head, edb } => pl
                    .local
                    .push(Rule::new(Atom::local(head), vec![Atom::edb(edb)])),
                // (2)  X_i :- X_j, X_k   =>   X_i ← X_j ∧ X_k
                // (operands may be EDB atoms, as in Example 4.3's
                //  P4 ← P3 ∧ Leaf)
                CoreRule::And { head, b1, b2 } => {
                    let atom = |a: BodyAtom| match a {
                        BodyAtom::Pred(p) => Atom::local(p),
                        BodyAtom::Edb(e) => Atom::edb(e),
                    };
                    pl.local
                        .push(Rule::new(Atom::local(head), vec![atom(b1), atom(b2)]))
                }
                // (3)/(4)  X_i :- X_j.invB   =>   X_i ← X_j^k
                CoreRule::Up { head, body, k } => {
                    let rule = Rule::new(Atom::local(head), vec![Atom::sup(body, k)]);
                    if k == 1 {
                        pl.left.push(rule);
                    } else {
                        pl.right.push(rule);
                    }
                }
                // (5)/(6)  X_i :- X_j.B   =>   X_i^k ← X_j  (downward rules)
                CoreRule::Down { head, body, k } => {
                    let rule = Rule::new(Atom::sup(head, k), vec![Atom::local(body)]);
                    if k == 1 {
                        pl.left.push(rule.clone());
                        pl.down1.push(rule);
                    } else {
                        pl.right.push(rule.clone());
                        pl.down2.push(rule);
                    }
                }
            }
        }
        pl
    }

    /// Total number of propositional clauses.
    pub fn clause_count(&self) -> usize {
        self.local.len() + self.left.len() + self.right.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use arb_tree::LabelTable;

    /// Paper Example 4.3: PropLocal of the six-rule program.
    #[test]
    fn example_4_3_proplocal() {
        let mut lt = LabelTable::new();
        let src = "P1 :- Root;\n\
                   P2 :- P1.FirstChild;\n\
                   P3 :- P2.FirstChild;\n\
                   P4 :- P3, Leaf;\n\
                   P5 :- P4.invFirstChild;\n\
                   Q :- P5.invFirstChild;";
        let ast = parse_program(src, &mut lt).unwrap();
        let prog = crate::normalize::normalize(&ast);
        let pl = PropLocal::build(&prog);
        let id = |n: &str| prog.pred_id(n).unwrap();

        // Example 4.3 reports:
        //   local_rules = {P1 ← Root; P4 ← P3 ∧ Leaf}
        //   left_rules  = {P2^1 ← P1; P3^1 ← P2; P5 ← P4^1; Q ← P5^1}
        //   downward_rules_1 = {P2^1 ← P1; P3^1 ← P2}
        //   right_rules = downward_rules_2 = ∅.
        assert!(pl.right.is_empty());
        assert!(pl.down2.is_empty());
        assert_eq!(pl.down1.len(), 2);
        assert_eq!(pl.left.len(), 4);
        assert!(pl.left.contains(&Rule::new(
            Atom::sup1(id("P2")),
            vec![Atom::local(id("P1"))]
        )));
        assert!(pl.left.contains(&Rule::new(
            Atom::local(id("P5")),
            vec![Atom::sup1(id("P4"))]
        )));
        assert!(pl
            .left
            .contains(&Rule::new(Atom::local(id("Q")), vec![Atom::sup1(id("P5"))])));
        // local: exactly {P1 ← Root; P4 ← P3 ∧ Leaf} as in the paper.
        assert_eq!(pl.local.len(), 2);
        assert!(pl
            .local
            .iter()
            .any(|r| r.head == Atom::local(id("P1")) && r.body.len() == 1));
        assert!(pl
            .local
            .iter()
            .any(|r| r.head == Atom::local(id("P4")) && r.body.len() == 2));
    }

    #[test]
    fn downward_rules_are_subsets() {
        let mut lt = LabelTable::new();
        let ast = parse_program(
            "A :- Root; B :- A.FirstChild; C :- B.SecondChild; D :- C.invSecondChild;",
            &mut lt,
        )
        .unwrap();
        let prog = crate::normalize::normalize(&ast);
        let pl = PropLocal::build(&prog);
        for r in &pl.down1 {
            assert!(pl.left.contains(r));
        }
        for r in &pl.down2 {
            assert!(pl.right.contains(r));
        }
        assert_eq!(pl.clause_count(), prog.rule_count());
    }
}
