//! IR-level merging of strict TMNF programs (paper §7, multi-query
//! evaluation).
//!
//! "TMNF programs can evaluate several queries (each one defined by one
//! IDB predicate) in one program." A batch of k compiled queries is
//! merged into a single [`CoreProgram`] whose query predicates are the
//! concatenation of the inputs' query predicates, so one two-phase run
//! answers all k queries. Merging happens on interned predicate tables —
//! predicate ids are remapped with collision-free renaming, never by
//! source-text surgery — while EDB atoms are shared across the inputs
//! (the same `Label[l]` test is interned once in the merged program).

use crate::core::{BodyAtom, CoreProgram, CoreRule, PredId};

/// The result of merging a batch of programs: the combined program plus
/// enough bookkeeping to demultiplex results per input query.
#[derive(Debug)]
pub struct MergedProgram {
    /// The combined program. Its `query_preds()` are the inputs' query
    /// predicates in batch order (input 0's first, then input 1's, …).
    pub program: CoreProgram,
    /// For each input program, the merged ids of *its* query predicates,
    /// in the input's `query_preds()` order.
    pub query_preds: Vec<Vec<PredId>>,
}

impl MergedProgram {
    /// Number of input programs.
    pub fn len(&self) -> usize {
        self.query_preds.len()
    }

    /// True if the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.query_preds.is_empty()
    }
}

/// Merges `progs` into one program with remapped predicate tables.
///
/// Every input predicate receives a fresh id in the merged program; its
/// name is kept when still unique, else deterministically renamed to
/// `name@q<i>` (and `name@q<i>#<n>` if even that collides — e.g. when an
/// input already uses such a name). Predicates are never unified across
/// inputs: two queries both defining `QUERY` stay two distinct
/// predicates. EDB atoms, by contrast, are structural and *are* shared.
pub fn merge_programs(progs: &[&CoreProgram]) -> MergedProgram {
    let mut merged = CoreProgram::new();
    let mut query_preds = Vec::with_capacity(progs.len());

    for (i, prog) in progs.iter().enumerate() {
        // --- Predicate table: fresh ids, collision-free names ----------
        let mut map: Vec<PredId> = Vec::with_capacity(prog.pred_count());
        for p in 0..prog.pred_count() as PredId {
            let name = prog.pred_name(p);
            let merged_id = if merged.pred_id(name).is_none() {
                merged.pred(name)
            } else {
                let mut candidate = format!("{name}@q{i}");
                let mut n = 0u32;
                while merged.pred_id(&candidate).is_some() {
                    n += 1;
                    candidate = format!("{name}@q{i}#{n}");
                }
                merged.pred(&candidate)
            };
            map.push(merged_id);
        }

        // --- Rules: remap heads/bodies, re-intern EDB atoms ------------
        for rule in prog.rules() {
            let mapped = match *rule {
                CoreRule::Edb { head, edb } => CoreRule::Edb {
                    head: map[head as usize],
                    edb: merged.edb(prog.edb_atom(edb)),
                },
                CoreRule::Down { head, body, k } => CoreRule::Down {
                    head: map[head as usize],
                    body: map[body as usize],
                    k,
                },
                CoreRule::Up { head, body, k } => CoreRule::Up {
                    head: map[head as usize],
                    body: map[body as usize],
                    k,
                },
                CoreRule::And { head, b1, b2 } => {
                    let map_atom = |a: BodyAtom, merged: &mut CoreProgram| match a {
                        BodyAtom::Pred(p) => BodyAtom::Pred(map[p as usize]),
                        BodyAtom::Edb(e) => BodyAtom::Edb(merged.edb(prog.edb_atom(e))),
                    };
                    CoreRule::And {
                        head: map[head as usize],
                        b1: map_atom(b1, &mut merged),
                        b2: map_atom(b2, &mut merged),
                    }
                }
            };
            merged.add_rule(mapped);
        }

        // --- Query predicates ------------------------------------------
        let qs: Vec<PredId> = prog
            .query_preds()
            .iter()
            .map(|&q| map[q as usize])
            .collect();
        for &q in &qs {
            merged.add_query_pred(q);
        }
        query_preds.push(qs);
    }

    MergedProgram {
        program: merged,
        query_preds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{normalize, parse_program};
    use arb_tree::LabelTable;

    fn compile(src: &str, lt: &mut LabelTable) -> CoreProgram {
        let ast = parse_program(src, lt).unwrap();
        let mut prog = normalize(&ast);
        let q = prog.pred_id("QUERY").unwrap();
        prog.add_query_pred(q);
        prog
    }

    #[test]
    fn merge_keeps_queries_distinct() {
        let mut lt = LabelTable::new();
        let p1 = compile("QUERY :- V.Label[a];", &mut lt);
        let p2 = compile("QUERY :- V.Label[b];", &mut lt);
        let m = merge_programs(&[&p1, &p2]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.program.query_preds().len(), 2);
        // Both inputs named their query QUERY; the merged program keeps
        // them as two distinct predicates.
        let [q1, q2] = m.program.query_preds() else {
            panic!("two query preds");
        };
        assert_ne!(q1, q2);
        assert_eq!(m.program.pred_name(*q1), "QUERY");
        assert_eq!(m.program.pred_name(*q2), "QUERY@q1");
        assert_eq!(m.query_preds[0], vec![*q1]);
        assert_eq!(m.query_preds[1], vec![*q2]);
        // Rule count is the sum; predicate count too (no unification).
        assert_eq!(m.program.rule_count(), p1.rule_count() + p2.rule_count());
        assert_eq!(m.program.pred_count(), p1.pred_count() + p2.pred_count());
    }

    #[test]
    fn merge_shares_edb_atoms() {
        let mut lt = LabelTable::new();
        let p1 = compile("QUERY :- V.Label[a];", &mut lt);
        let p2 = compile("QUERY :- V.Label[a], Leaf;", &mut lt);
        let m = merge_programs(&[&p1, &p2]);
        // `Label[a]` appears in both inputs but is interned once.
        let label_a = p1.edbs()[0];
        let occurrences = m.program.edbs().iter().filter(|&&e| e == label_a).count();
        assert_eq!(occurrences, 1);
    }

    #[test]
    fn merged_naive_semantics_match_inputs() {
        let mut lt = LabelTable::new();
        let p1 = compile("A :- Root; QUERY :- A.FirstChild;", &mut lt);
        let p2 = compile("A :- Leaf, Leaf; QUERY :- A, A;", &mut lt);
        let tree = {
            let a = lt.intern("a").unwrap();
            let mut b = arb_tree::TreeBuilder::new();
            b.open(a);
            b.leaf(a);
            b.leaf(a);
            b.close();
            b.finish().unwrap()
        };
        let m = merge_programs(&[&p1, &p2]);
        let merged_res = crate::naive::evaluate(&m.program, &tree);
        for (i, prog) in [&p1, &p2].into_iter().enumerate() {
            let res = crate::naive::evaluate(prog, &tree);
            let q_in = prog.query_preds()[0];
            let q_merged = m.query_preds[i][0];
            for v in tree.nodes() {
                assert_eq!(
                    merged_res.holds(q_merged, v),
                    res.holds(q_in, v),
                    "input {i}, node {}",
                    v.0
                );
            }
        }
    }

    #[test]
    fn empty_batch_merges_to_empty_program() {
        let m = merge_programs(&[]);
        assert!(m.is_empty());
        assert_eq!(m.program.rule_count(), 0);
    }

    #[test]
    fn triple_collision_renames_deterministically() {
        let mut lt = LabelTable::new();
        // Input 1 already uses the name the collision scheme would pick
        // for input 2's QUERY — the #<n> fallback must kick in.
        let mut p1 = compile("QUERY :- V.Label[a];", &mut lt);
        let aux = p1.pred("QUERY@q1");
        let root = p1.edb(crate::EdbAtom::Root);
        p1.add_rule(CoreRule::Edb {
            head: aux,
            edb: root,
        });
        let p2 = compile("QUERY :- V.Label[b];", &mut lt);
        let m = merge_programs(&[&p1, &p2]);
        let q2 = m.query_preds[1][0];
        assert_eq!(m.program.pred_name(q2), "QUERY@q1#1");
    }
}
