//! DTD conformance as a node-selecting query (paper Section 1.3, item 4):
//!
//! > "the selection of nodes based on universal properties, such as
//! > conformance of their subtrees with a DTD, can also be expressed."
//!
//! A [`Dtd`] maps element tags to regular content models over child tags
//! and `#PCDATA`. [`conformance_program`] compiles it to a strict TMNF
//! program whose query predicate `Conf` holds at exactly the nodes whose
//! subtree conforms: the children word must be in the content model's
//! language *and* every element child must itself conform — mutual
//! recursion that the bottom-up automaton phase resolves in one scan.

use crate::core::{BodyAtom, CoreProgram, CoreRule, PredId};
use crate::edb::EdbAtom;
use arb_tree::{BinaryTree, LabelId, LabelTable, NodeId, NodeSet};
use std::collections::HashMap;
use std::fmt;

/// A content-model symbol.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Sym {
    /// A child element with this tag.
    Tag(String),
    /// Character data.
    Pcdata,
}

/// A regular content model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ContentModel {
    /// `EMPTY` — no children.
    Empty,
    /// A single symbol (tag name or `#PCDATA`).
    Sym(String),
    /// Sequence `a, b`.
    Cat(Box<ContentModel>, Box<ContentModel>),
    /// Choice `a | b`.
    Alt(Box<ContentModel>, Box<ContentModel>),
    /// `a*`.
    Star(Box<ContentModel>),
    /// `a+`.
    Plus(Box<ContentModel>),
    /// `a?`.
    Opt(Box<ContentModel>),
}

/// A document type definition: one content model per declared tag.
#[derive(Clone, Debug, Default)]
pub struct Dtd {
    decls: Vec<(String, ContentModel)>,
}

/// Errors from [`Dtd::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtdError {
    /// Description.
    pub message: String,
    /// Byte offset.
    pub offset: usize,
}

impl fmt::Display for DtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DTD error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for DtdError {}

impl Dtd {
    /// Parses a compact DTD syntax, one declaration per element:
    ///
    /// ```text
    /// book    = (title, author+, chapter*);
    /// title   = #PCDATA*;
    /// author  = #PCDATA*;
    /// chapter = (#PCDATA | emph)*;
    /// emph    = #PCDATA*;
    /// ```
    ///
    /// `EMPTY` denotes no children; `#` starts a comment line.
    pub fn parse(src: &str) -> Result<Dtd, DtdError> {
        let mut p = DtdParser {
            src: src.as_bytes(),
            pos: 0,
        };
        let mut dtd = Dtd::default();
        loop {
            p.ws();
            if p.pos >= p.src.len() {
                return Ok(dtd);
            }
            let name = p.name()?;
            p.expect(b'=')?;
            let cm = p.alt()?;
            p.expect(b';')?;
            if dtd.decls.iter().any(|(n, _)| n == &name) {
                return Err(p.err(format!("duplicate declaration for {name:?}")));
            }
            dtd.decls.push((name, cm));
        }
    }

    /// The declarations, in source order.
    pub fn declarations(&self) -> &[(String, ContentModel)] {
        &self.decls
    }

    /// The content model of a tag, if declared.
    pub fn model(&self, tag: &str) -> Option<&ContentModel> {
        self.decls.iter().find(|(n, _)| n == tag).map(|(_, m)| m)
    }

    /// **Direct oracle**: checks conformance of every node's subtree by
    /// recursive NFA simulation over the children lists. Used to
    /// differential-test the TMNF compilation.
    pub fn check_tree(&self, tree: &BinaryTree, labels: &LabelTable) -> NodeSet {
        let mut conforms = NodeSet::new(tree.len());
        // Children before parents: reverse preorder.
        for ix in (0..tree.len() as u32).rev() {
            let v = NodeId(ix);
            let label = tree.label(v);
            if label.is_text() {
                conforms.insert(v);
                continue;
            }
            let Some(model) = self.model(&labels.name(label)) else {
                continue; // undeclared tags do not conform (strict mode)
            };
            // All element children must conform, and the children word
            // must be in L(model).
            let children = tree.unranked_children(v);
            let ok_children = children.iter().all(|&c| conforms.contains(c));
            if ok_children && nfa_match(model, &children, tree, labels) {
                conforms.insert(v);
            }
        }
        conforms
    }
}

/// Backtracking-free NFA match of a children word against a content model
/// (Glushkov subset simulation).
fn nfa_match(
    model: &ContentModel,
    children: &[NodeId],
    tree: &BinaryTree,
    labels: &LabelTable,
) -> bool {
    let mut positions = Vec::new();
    let mut follow = Vec::new();
    let gl = glushkov_cm(model, &mut positions, &mut follow);
    let matches_sym = |sym: &Sym, v: NodeId| -> bool {
        let l = tree.label(v);
        match sym {
            Sym::Pcdata => l.is_text(),
            Sym::Tag(t) => !l.is_text() && labels.name(l) == t.as_str(),
        }
    };
    // Subset simulation: current = set of positions just consumed.
    let mut current: Option<Vec<usize>> = None; // None = at the start
    for &c in children {
        let sources: Vec<usize> = match &current {
            None => gl.first.clone(),
            Some(cur) => {
                let mut out: Vec<usize> = cur
                    .iter()
                    .flat_map(|&q| follow[q].iter().copied())
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            }
        };
        let next: Vec<usize> = sources
            .into_iter()
            .filter(|&p| matches_sym(&positions[p], c))
            .collect();
        if next.is_empty() {
            return false;
        }
        current = Some(next);
    }
    match current {
        None => gl.nullable,
        Some(cur) => cur.iter().any(|q| gl.last.contains(q)),
    }
}

struct GlCm {
    nullable: bool,
    first: Vec<usize>,
    last: Vec<usize>,
}

fn glushkov_cm(m: &ContentModel, positions: &mut Vec<Sym>, follow: &mut Vec<Vec<usize>>) -> GlCm {
    match m {
        ContentModel::Empty => GlCm {
            nullable: true,
            first: vec![],
            last: vec![],
        },
        ContentModel::Sym(s) => {
            let p = positions.len();
            positions.push(if s == "#PCDATA" {
                Sym::Pcdata
            } else {
                Sym::Tag(s.clone())
            });
            follow.push(Vec::new());
            GlCm {
                nullable: false,
                first: vec![p],
                last: vec![p],
            }
        }
        ContentModel::Cat(a, b) => {
            let ga = glushkov_cm(a, positions, follow);
            let gb = glushkov_cm(b, positions, follow);
            for &p in &ga.last {
                follow[p].extend_from_slice(&gb.first);
            }
            let mut first = ga.first;
            if ga.nullable {
                first.extend_from_slice(&gb.first);
            }
            let mut last = gb.last;
            if gb.nullable {
                last.extend_from_slice(&ga.last);
            }
            GlCm {
                nullable: ga.nullable && gb.nullable,
                first,
                last,
            }
        }
        ContentModel::Alt(a, b) => {
            let ga = glushkov_cm(a, positions, follow);
            let gb = glushkov_cm(b, positions, follow);
            let mut first = ga.first;
            first.extend_from_slice(&gb.first);
            let mut last = ga.last;
            last.extend_from_slice(&gb.last);
            GlCm {
                nullable: ga.nullable || gb.nullable,
                first,
                last,
            }
        }
        ContentModel::Star(a) | ContentModel::Plus(a) => {
            let ga = glushkov_cm(a, positions, follow);
            for &p in &ga.last {
                let fs = ga.first.clone();
                follow[p].extend(fs);
            }
            GlCm {
                nullable: matches!(m, ContentModel::Star(_)) || ga.nullable,
                first: ga.first,
                last: ga.last,
            }
        }
        ContentModel::Opt(a) => {
            let ga = glushkov_cm(a, positions, follow);
            GlCm {
                nullable: true,
                first: ga.first,
                last: ga.last,
            }
        }
    }
}

struct DtdParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl DtdParser<'_> {
    fn err(&self, message: impl Into<String>) -> DtdError {
        DtdError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn ws(&mut self) {
        loop {
            while self.src.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
                self.pos += 1;
            }
            if self.src.get(self.pos) == Some(&b'#') && self.src.get(self.pos + 1) != Some(&b'P') {
                while self.src.get(self.pos).is_some_and(|&b| b != b'\n') {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), DtdError> {
        self.ws();
        if self.src.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn name(&mut self) -> Result<String, DtdError> {
        self.ws();
        let start = self.pos;
        if self.src.get(self.pos) == Some(&b'#') {
            self.pos += 1; // #PCDATA
        }
        while self
            .src
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn alt(&mut self) -> Result<ContentModel, DtdError> {
        let mut m = self.cat()?;
        loop {
            self.ws();
            if self.src.get(self.pos) == Some(&b'|') {
                self.pos += 1;
                m = ContentModel::Alt(Box::new(m), Box::new(self.cat()?));
            } else {
                return Ok(m);
            }
        }
    }

    fn cat(&mut self) -> Result<ContentModel, DtdError> {
        let mut m = self.postfix()?;
        loop {
            self.ws();
            if self.src.get(self.pos) == Some(&b',') {
                self.pos += 1;
                m = ContentModel::Cat(Box::new(m), Box::new(self.postfix()?));
            } else {
                return Ok(m);
            }
        }
    }

    fn postfix(&mut self) -> Result<ContentModel, DtdError> {
        let mut m = self.primary()?;
        loop {
            self.ws();
            match self.src.get(self.pos) {
                Some(b'*') => {
                    self.pos += 1;
                    m = ContentModel::Star(Box::new(m));
                }
                Some(b'+') => {
                    self.pos += 1;
                    m = ContentModel::Plus(Box::new(m));
                }
                Some(b'?') => {
                    self.pos += 1;
                    m = ContentModel::Opt(Box::new(m));
                }
                _ => return Ok(m),
            }
        }
    }

    fn primary(&mut self) -> Result<ContentModel, DtdError> {
        self.ws();
        if self.src.get(self.pos) == Some(&b'(') {
            self.pos += 1;
            let m = self.alt()?;
            self.expect(b')')?;
            return Ok(m);
        }
        let n = self.name()?;
        if n == "EMPTY" {
            Ok(ContentModel::Empty)
        } else {
            Ok(ContentModel::Sym(n))
        }
    }
}

/// Compiles a DTD into a strict TMNF program whose query predicate
/// (`Conf`) selects exactly the nodes whose subtree conforms.
///
/// For each declared tag `t`, a Glushkov automaton over its content model
/// is turned into suffix predicates `S_{t,q}(y)` — "the sibling list from
/// `y` on can be consumed from state `q`, with every consumed element
/// child itself conforming" — derived right-to-left along sibling chains
/// and handed to the parent through `invFirstChild`.
pub fn conformance_program(dtd: &Dtd, labels: &mut LabelTable) -> CoreProgram {
    let mut prog = CoreProgram::new();
    let conf = prog.pred("Conf");
    let text_edb = prog.edb(EdbAtom::Text);
    // Character nodes always conform.
    prog.add_rule(CoreRule::Edb {
        head: conf,
        edb: text_edb,
    });

    // Per-tag label ids (and per-symbol tests).
    let mut label_of: HashMap<&str, LabelId> = HashMap::new();
    for (tag, _) in &dtd.decls {
        let l = labels.intern(tag).expect("valid tag name");
        label_of.insert(tag.as_str(), l);
    }

    for (tag, model) in &dtd.decls {
        let mut positions = Vec::new();
        let mut follow = Vec::new();
        let gl = glushkov_cm(model, &mut positions, &mut follow);
        let tag_label = label_of[tag.as_str()];

        // Suffix predicate per position: "this child matched position p
        // and the rest of the list completes the word".
        let spreds: Vec<PredId> = (0..positions.len())
            .map(|p| prog.fresh_pred(&format!("s_{tag}_{p}")))
            .collect();
        // OkSym_p(y): y matches position p's symbol and conforms.
        let okpreds: Vec<PredId> = (0..positions.len())
            .map(|p| prog.fresh_pred(&format!("ok_{tag}_{p}")))
            .collect();
        for (p, sym) in positions.iter().enumerate() {
            match sym {
                Sym::Pcdata => {
                    // Character child: conforms trivially.
                    prog.add_rule(CoreRule::Edb {
                        head: okpreds[p],
                        edb: text_edb,
                    });
                }
                Sym::Tag(t) => {
                    let l = match label_of.get(t.as_str()) {
                        Some(&l) => l,
                        None => labels.intern(t).expect("valid tag name"),
                    };
                    let e = prog.edb(EdbAtom::Label(l));
                    prog.add_rule(CoreRule::And {
                        head: okpreds[p],
                        b1: BodyAtom::Pred(conf),
                        b2: BodyAtom::Edb(e),
                    });
                }
            }
        }
        // Last positions close the word at the last sibling.
        let last_sib = prog.edb(EdbAtom::LastSibling);
        for &p in &gl.last {
            prog.add_rule(CoreRule::And {
                head: spreds[p],
                b1: BodyAtom::Pred(okpreds[p]),
                b2: BodyAtom::Edb(last_sib),
            });
        }
        // Interior transitions: S_p(y) if ok_p(y) and the next sibling
        // starts a suffix from some follower q.
        for (p, fs) in follow.iter().enumerate() {
            for &q in fs {
                // ns(y) := S_q(next(y))
                let ns = prog.fresh_pred(&format!("ns_{tag}_{p}_{q}"));
                prog.add_rule(CoreRule::Up {
                    head: ns,
                    body: spreds[q],
                    k: 2,
                });
                prog.add_rule(CoreRule::And {
                    head: spreds[p],
                    b1: BodyAtom::Pred(okpreds[p]),
                    b2: BodyAtom::Pred(ns),
                });
            }
        }
        // Conformance of a t-labeled node.
        let tag_edb = prog.edb(EdbAtom::Label(tag_label));
        if gl.nullable {
            let leaf = prog.edb(EdbAtom::Leaf);
            let no_kids = prog.fresh_pred(&format!("nokids_{tag}"));
            prog.add_rule(CoreRule::Edb {
                head: no_kids,
                edb: leaf,
            });
            prog.add_rule(CoreRule::And {
                head: conf,
                b1: BodyAtom::Pred(no_kids),
                b2: BodyAtom::Edb(tag_edb),
            });
        }
        // First child starts the word at some first position.
        for &p in &gl.first {
            let fc = prog.fresh_pred(&format!("fc_{tag}_{p}"));
            prog.add_rule(CoreRule::Up {
                head: fc,
                body: spreds[p],
                k: 1,
            });
            prog.add_rule(CoreRule::And {
                head: conf,
                b1: BodyAtom::Pred(fc),
                b2: BodyAtom::Edb(tag_edb),
            });
        }
    }
    prog.add_query_pred(conf);
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use arb_tree::TreeBuilder;

    const BOOK_DTD: &str = "
        # a small document type
        book    = (title, author+, chapter*);
        title   = #PCDATA*;
        author  = #PCDATA*;
        chapter = (#PCDATA | emph)*;
        emph    = #PCDATA*;
    ";

    fn build(xml_ops: &dyn Fn(&mut TreeBuilder, &mut LabelTable)) -> (BinaryTree, LabelTable) {
        let mut lt = LabelTable::new();
        let mut b = TreeBuilder::new();
        xml_ops(&mut b, &mut lt);
        (b.finish().unwrap(), lt)
    }

    #[test]
    fn parse_and_model_access() {
        let dtd = Dtd::parse(BOOK_DTD).unwrap();
        assert_eq!(dtd.declarations().len(), 5);
        assert!(dtd.model("book").is_some());
        assert!(dtd.model("missing").is_none());
        assert!(Dtd::parse("a = (b;").is_err());
        assert!(Dtd::parse("a = b; a = c;").is_err());
    }

    #[test]
    fn direct_checker_semantics() {
        let dtd = Dtd::parse(BOOK_DTD).unwrap();
        // Conforming book.
        let (tree, lt) = build(&|b, lt| {
            let t = |lt: &mut LabelTable, n: &str| lt.intern(n).unwrap();
            b.open(t(lt, "book"));
            b.open(t(lt, "title"));
            b.text(b"T");
            b.close();
            b.open(t(lt, "author"));
            b.text(b"A");
            b.close();
            b.open(t(lt, "chapter"));
            b.text(b"x");
            b.open(t(lt, "emph"));
            b.text(b"y");
            b.close();
            b.close();
            b.close();
        });
        let ok = dtd.check_tree(&tree, &lt);
        assert!(ok.contains(NodeId(0)), "book conforms");
        // Non-conforming: book without author.
        let (tree2, lt2) = build(&|b, lt| {
            let t = |lt: &mut LabelTable, n: &str| lt.intern(n).unwrap();
            b.open(t(lt, "book"));
            b.open(t(lt, "title"));
            b.close();
            b.close();
        });
        let ok2 = dtd.check_tree(&tree2, &lt2);
        assert!(!ok2.contains(NodeId(0)), "book without author");
        assert!(ok2.contains(NodeId(1)), "empty title still conforms");
    }

    type TreeCase = Box<dyn Fn(&mut TreeBuilder, &mut LabelTable)>;

    #[test]
    fn compiled_program_matches_direct_checker() {
        let dtd = Dtd::parse(BOOK_DTD).unwrap();
        let cases: Vec<TreeCase> = vec![
            // conforming full book
            Box::new(|b, lt| {
                let t = |lt: &mut LabelTable, n: &str| lt.intern(n).unwrap();
                b.open(t(lt, "book"));
                b.open(t(lt, "title"));
                b.text(b"T");
                b.close();
                b.open(t(lt, "author"));
                b.close();
                b.open(t(lt, "author"));
                b.close();
                b.open(t(lt, "chapter"));
                b.close();
                b.close();
            }),
            // chapter with a bad child
            Box::new(|b, lt| {
                let t = |lt: &mut LabelTable, n: &str| lt.intern(n).unwrap();
                b.open(t(lt, "book"));
                b.open(t(lt, "title"));
                b.close();
                b.open(t(lt, "author"));
                b.close();
                b.open(t(lt, "chapter"));
                b.open(t(lt, "title")) /* title not allowed in chapter */;
                b.close();
                b.close();
                b.close();
            }),
            // wrong order
            Box::new(|b, lt| {
                let t = |lt: &mut LabelTable, n: &str| lt.intern(n).unwrap();
                b.open(t(lt, "book"));
                b.open(t(lt, "author"));
                b.close();
                b.open(t(lt, "title"));
                b.close();
                b.close();
            }),
            // undeclared tag
            Box::new(|b, lt| {
                let t = |lt: &mut LabelTable, n: &str| lt.intern(n).unwrap();
                b.open(t(lt, "pamphlet"));
                b.close();
            }),
        ];
        for (i, case) in cases.iter().enumerate() {
            let (tree, mut lt) = build(case);
            let expected = dtd.check_tree(&tree, &lt);
            let prog = conformance_program(&dtd, &mut lt);
            let res = naive::evaluate(&prog, &tree);
            let conf = prog.query_pred().unwrap();
            for v in tree.nodes() {
                assert_eq!(
                    res.holds(conf, v),
                    expected.contains(v),
                    "case {i}, node {}",
                    v.0
                );
            }
        }
    }

    /// Conformance marking through the full two-phase automaton pipeline.
    #[test]
    fn conformance_via_automata() {
        let dtd = Dtd::parse("pair = (item, item); item = EMPTY;").unwrap();
        let (tree, mut lt) = build(&|b, lt| {
            let t = |lt: &mut LabelTable, n: &str| lt.intern(n).unwrap();
            b.open(t(lt, "pair"));
            b.leaf(t(lt, "item"));
            b.leaf(t(lt, "item"));
            b.close();
        });
        let prog = conformance_program(&dtd, &mut lt);
        let expected = dtd.check_tree(&tree, &lt);
        assert!(expected.contains(NodeId(0)));
        let res = naive::evaluate(&prog, &tree);
        let conf = prog.query_pred().unwrap();
        assert!(res.holds(conf, NodeId(0)));
        assert!(res.holds(conf, NodeId(1)));
    }
}
