//! TMNF program optimization.
//!
//! The Glushkov/XPath compilation pipelines generate auxiliary predicates
//! freely (copy rules from accepting states, `_and` chains, unused
//! negative-pair halves). Since automaton construction cost scales with
//! `|IDB|` and `|P|` (every rule becomes a propositional clause carried
//! through LTUR at every transition), shrinking the program before
//! building `PropLocal(P)` pays off directly.
//!
//! Passes (all semantics-preserving for the query predicates, verified by
//! differential property tests):
//!
//! 1. **copy propagation** — a predicate defined by a single copy rule
//!    `P :- Q, Q;` and nothing else is replaced by `Q` everywhere;
//! 2. **dead-code elimination** — rules whose heads cannot reach a query
//!    predicate through the rule dependency graph are dropped, then
//!    unused predicates are compacted away (renumbering).

use crate::core::{BodyAtom, CoreProgram, CoreRule, PredId};

/// Optimizes a program; the result computes the same extents for every
/// query predicate. Predicate ids are renumbered (names preserved).
pub fn optimize(prog: &CoreProgram) -> CoreProgram {
    let copied = copy_propagate(prog);
    eliminate_dead(&copied)
}

/// Applies copy propagation: predicates whose *only* defining rule is a
/// single self-conjunction copy `P :- Q, Q;` (and which are not query
/// predicates) are aliased to `Q`.
fn copy_propagate(prog: &CoreProgram) -> CoreProgram {
    let np = prog.pred_count() as u32;
    // Collect defining-rule counts and the candidate source.
    let mut def_count = vec![0u32; np as usize];
    let mut copy_src: Vec<Option<PredId>> = vec![None; np as usize];
    for r in prog.rules() {
        let h = r.head() as usize;
        def_count[h] += 1;
        copy_src[h] = match *r {
            CoreRule::And {
                b1: BodyAtom::Pred(p),
                b2: BodyAtom::Pred(q),
                ..
            } if p == q => Some(p),
            _ => None,
        };
    }
    // Resolve alias chains (P -> Q -> R) with cycle protection.
    let mut alias: Vec<PredId> = (0..np).collect();
    for p in 0..np {
        if def_count[p as usize] == 1
            && copy_src[p as usize].is_some()
            && !prog.query_preds().contains(&p)
        {
            alias[p as usize] = copy_src[p as usize].expect("checked");
        }
    }
    let resolve = |alias: &[PredId], mut p: PredId| -> PredId {
        let mut hops = 0;
        while alias[p as usize] != p && hops <= np {
            p = alias[p as usize];
            hops += 1;
        }
        p
    };

    let mut out = CoreProgram::new();
    // Preserve names and ids 1:1 (compaction happens in the DCE pass).
    for p in 0..np {
        out.pred(prog.pred_name(p));
    }
    for r in prog.rules() {
        let head = resolve(&alias, r.head());
        if head != r.head() {
            continue; // the defining copy rule itself disappears
        }
        let map_atom = |a: BodyAtom| match a {
            BodyAtom::Pred(p) => BodyAtom::Pred(resolve(&alias, p)),
            e => e,
        };
        let rule = match *r {
            CoreRule::Edb { edb, .. } => CoreRule::Edb {
                head,
                edb: out.edb(prog.edb_atom(edb)),
            },
            CoreRule::Down { body, k, .. } => CoreRule::Down {
                head,
                body: resolve(&alias, body),
                k,
            },
            CoreRule::Up { body, k, .. } => CoreRule::Up {
                head,
                body: resolve(&alias, body),
                k,
            },
            CoreRule::And { b1, b2, .. } => {
                let (b1, b2) = (map_atom(b1), map_atom(b2));
                let (b1, b2) = match (b1, b2) {
                    (BodyAtom::Edb(e), BodyAtom::Edb(e2)) => (
                        BodyAtom::Edb(out.edb(prog.edb_atom(e))),
                        BodyAtom::Edb(out.edb(prog.edb_atom(e2))),
                    ),
                    (BodyAtom::Edb(e), p) => (BodyAtom::Edb(out.edb(prog.edb_atom(e))), p),
                    (p, BodyAtom::Edb(e)) => (p, BodyAtom::Edb(out.edb(prog.edb_atom(e)))),
                    other => other,
                };
                CoreRule::And { head, b1, b2 }
            }
        };
        out.add_rule(rule);
    }
    for &q in prog.query_preds() {
        out.add_query_pred(resolve(&alias, q));
    }
    out
}

/// Drops rules that cannot contribute to a query predicate and compacts
/// predicate ids.
fn eliminate_dead(prog: &CoreProgram) -> CoreProgram {
    let np = prog.pred_count();
    // Reverse reachability from the query predicates over "head depends
    // on body" edges.
    let mut needed = vec![false; np];
    let mut work: Vec<PredId> = prog.query_preds().to_vec();
    for &q in &work {
        needed[q as usize] = true;
    }
    while let Some(p) = work.pop() {
        for r in prog.rules() {
            if r.head() != p {
                continue;
            }
            let push = |b: PredId, needed: &mut Vec<bool>, work: &mut Vec<PredId>| {
                if !needed[b as usize] {
                    needed[b as usize] = true;
                    work.push(b);
                }
            };
            match *r {
                CoreRule::Edb { .. } => {}
                CoreRule::Down { body, .. } | CoreRule::Up { body, .. } => {
                    push(body, &mut needed, &mut work)
                }
                CoreRule::And { b1, b2, .. } => {
                    if let BodyAtom::Pred(b) = b1 {
                        push(b, &mut needed, &mut work);
                    }
                    if let BodyAtom::Pred(b) = b2 {
                        push(b, &mut needed, &mut work);
                    }
                }
            }
        }
    }

    // Compact: new ids for needed predicates only.
    let mut out = CoreProgram::new();
    let mut remap: Vec<Option<PredId>> = vec![None; np];
    for p in 0..np as u32 {
        if needed[p as usize] {
            remap[p as usize] = Some(out.pred(prog.pred_name(p)));
        }
    }
    let m = |p: PredId, remap: &[Option<PredId>]| remap[p as usize].expect("needed pred");
    for r in prog.rules() {
        if !needed[r.head() as usize] {
            continue;
        }
        let rule = match *r {
            CoreRule::Edb { head, edb } => CoreRule::Edb {
                head: m(head, &remap),
                edb: out.edb(prog.edb_atom(edb)),
            },
            CoreRule::Down { head, body, k } => CoreRule::Down {
                head: m(head, &remap),
                body: m(body, &remap),
                k,
            },
            CoreRule::Up { head, body, k } => CoreRule::Up {
                head: m(head, &remap),
                body: m(body, &remap),
                k,
            },
            CoreRule::And { head, b1, b2 } => {
                let map_atom = |a: BodyAtom, out: &mut CoreProgram| match a {
                    BodyAtom::Pred(p) => BodyAtom::Pred(m(p, &remap)),
                    BodyAtom::Edb(e) => BodyAtom::Edb(out.edb(prog.edb_atom(e))),
                };
                let b1 = map_atom(b1, &mut out);
                let b2 = map_atom(b2, &mut out);
                CoreRule::And {
                    head: m(head, &remap),
                    b1,
                    b2,
                }
            }
        };
        out.add_rule(rule);
    }
    for &q in prog.query_preds() {
        out.add_query_pred(m(q, &remap));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive, normalize, parse_program};
    use arb_tree::{LabelTable, TreeBuilder};

    fn compile(src: &str, lt: &mut LabelTable) -> CoreProgram {
        let ast = parse_program(src, lt).unwrap();
        let mut p = normalize(&ast);
        let last = p.rules().last().unwrap().head();
        p.add_query_pred(last);
        p
    }

    #[test]
    fn removes_dead_rules_and_preds() {
        let mut lt = LabelTable::new();
        let prog = compile(
            "Dead1 :- Root; Dead2 :- Dead1.FirstChild;\n\
             Live :- Leaf; QUERY :- Live, Label[a];",
            &mut lt,
        );
        let opt = optimize(&prog);
        assert!(opt.pred_count() < prog.pred_count());
        assert!(opt.rule_count() < prog.rule_count());
        assert!(opt.pred_id("Dead1").is_none());
        assert!(opt.pred_id("QUERY").is_some());
    }

    #[test]
    fn copy_chains_collapse() {
        let mut lt = LabelTable::new();
        // A <- copy of B <- copy of C.
        let prog = compile("C :- Root; B :- C; A :- B; QUERY :- A.FirstChild;", &mut lt);
        let opt = optimize(&prog);
        // B and A vanish; QUERY :- C.FirstChild remains.
        assert!(opt.pred_count() <= 2);
        assert_eq!(opt.rule_count(), 2);
    }

    #[test]
    fn optimized_program_is_equivalent() {
        let mut lt = LabelTable::new();
        let srcs = [
            "QUERY :- V.Label[S].FirstChild.NextSibling*.Label[NP];",
            "A :- Leaf; B :- A.invNextSibling; C :- Root; QUERY :- B, A;",
            "X :- V.Label[a].(FirstChild|SecondChild)+; QUERY :- X, Leaf;",
        ];
        for src in srcs {
            let prog = compile(src, &mut lt);
            let opt = optimize(&prog);
            assert!(opt.rule_count() <= prog.rule_count());

            let mut b = TreeBuilder::new();
            let s = lt.intern("S").unwrap();
            let np = lt.intern("NP").unwrap();
            let a = lt.intern("a").unwrap();
            b.open(s);
            b.open(np);
            b.leaf(a);
            b.leaf(np);
            b.close();
            b.open(a);
            b.leaf(np);
            b.close();
            b.close();
            let tree = b.finish().unwrap();

            let r1 = naive::evaluate(&prog, &tree);
            let r2 = naive::evaluate(&opt, &tree);
            let q1 = prog.query_pred().unwrap();
            let q2 = opt.query_pred().unwrap();
            for v in tree.nodes() {
                assert_eq!(r1.holds(q1, v), r2.holds(q2, v), "{src} at {}", v.0);
            }
        }
    }

    #[test]
    fn query_preds_never_aliased_away() {
        let mut lt = LabelTable::new();
        let prog = compile("A :- Root; QUERY :- A;", &mut lt);
        let opt = optimize(&prog);
        assert!(opt.pred_id("QUERY").is_some());
        assert_eq!(opt.query_preds().len(), 1);
    }
}
