//! The unary EDB schema σ (paper Section 2.1).
//!
//! A monadic datalog program over binary trees may use the unary relations
//! `V`, `Root`, `HasFirstChild`, `HasSecondChild`, `Label[l]` (for each
//! label `l`) and, for each of these, its complement `−U`. The paper's
//! aliases `Leaf = −HasFirstChild` and `LastSibling = −HasSecondChild` are
//! normalized to the complements here.

use arb_tree::{LabelId, LabelTable, NodeInfo};
use std::fmt;

/// A unary EDB atom, evaluable from a node's [`NodeInfo`] alone.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EdbAtom {
    /// `V` — every node.
    V,
    /// `Root` / `−Root`.
    Root,
    /// Complement of [`EdbAtom::Root`].
    NotRoot,
    /// `HasFirstChild`.
    HasFirstChild,
    /// `−HasFirstChild`, a.k.a. `Leaf`.
    Leaf,
    /// `HasSecondChild` (a.k.a. `NextSibling` existence).
    HasSecondChild,
    /// `−HasSecondChild`, a.k.a. `LastSibling`.
    LastSibling,
    /// `Label[l]` — the node carries label `l`.
    Label(LabelId),
    /// `−Label[l]`.
    NotLabel(LabelId),
    /// Extension: the node is a text character node (any label `< 256`).
    Text,
    /// Complement of [`EdbAtom::Text`]: an element node.
    NotText,
}

impl EdbAtom {
    /// Evaluates the atom at a node.
    #[inline]
    pub fn eval(self, info: &NodeInfo) -> bool {
        match self {
            EdbAtom::V => true,
            EdbAtom::Root => info.is_root,
            EdbAtom::NotRoot => !info.is_root,
            EdbAtom::HasFirstChild => info.has_first,
            EdbAtom::Leaf => !info.has_first,
            EdbAtom::HasSecondChild => info.has_second,
            EdbAtom::LastSibling => !info.has_second,
            EdbAtom::Label(l) => info.label == l,
            EdbAtom::NotLabel(l) => info.label != l,
            EdbAtom::Text => info.label.is_text(),
            EdbAtom::NotText => !info.label.is_text(),
        }
    }

    /// The complement atom `−U`.
    pub fn complement(self) -> EdbAtom {
        match self {
            EdbAtom::V => panic!("-V is unsatisfiable and not part of the schema"),
            EdbAtom::Root => EdbAtom::NotRoot,
            EdbAtom::NotRoot => EdbAtom::Root,
            EdbAtom::HasFirstChild => EdbAtom::Leaf,
            EdbAtom::Leaf => EdbAtom::HasFirstChild,
            EdbAtom::HasSecondChild => EdbAtom::LastSibling,
            EdbAtom::LastSibling => EdbAtom::HasSecondChild,
            EdbAtom::Label(l) => EdbAtom::NotLabel(l),
            EdbAtom::NotLabel(l) => EdbAtom::Label(l),
            EdbAtom::Text => EdbAtom::NotText,
            EdbAtom::NotText => EdbAtom::Text,
        }
    }

    /// Renders the atom in Arb surface syntax.
    pub fn display<'a>(&'a self, labels: &'a LabelTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a EdbAtom, &'a LabelTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    EdbAtom::V => write!(f, "V"),
                    EdbAtom::Root => write!(f, "Root"),
                    EdbAtom::NotRoot => write!(f, "-Root"),
                    EdbAtom::HasFirstChild => write!(f, "HasFirstChild"),
                    EdbAtom::Leaf => write!(f, "Leaf"),
                    EdbAtom::HasSecondChild => write!(f, "HasSecondChild"),
                    EdbAtom::LastSibling => write!(f, "LastSibling"),
                    EdbAtom::Label(l) => write!(f, "Label[{}]", self.1.name(*l)),
                    EdbAtom::NotLabel(l) => write!(f, "-Label[{}]", self.1.name(*l)),
                    EdbAtom::Text => write!(f, "Text"),
                    EdbAtom::NotText => write!(f, "-Text"),
                }
            }
        }
        D(self, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(label: LabelId, has_first: bool, has_second: bool, is_root: bool) -> NodeInfo {
        NodeInfo {
            label,
            has_first,
            has_second,
            is_root,
        }
    }

    #[test]
    fn eval_matches_info() {
        let tag = LabelId(300);
        let i = info(tag, true, false, true);
        assert!(EdbAtom::V.eval(&i));
        assert!(EdbAtom::Root.eval(&i));
        assert!(!EdbAtom::NotRoot.eval(&i));
        assert!(EdbAtom::HasFirstChild.eval(&i));
        assert!(!EdbAtom::Leaf.eval(&i));
        assert!(!EdbAtom::HasSecondChild.eval(&i));
        assert!(EdbAtom::LastSibling.eval(&i));
        assert!(EdbAtom::Label(tag).eval(&i));
        assert!(!EdbAtom::Label(LabelId(301)).eval(&i));
        assert!(EdbAtom::NotLabel(LabelId(301)).eval(&i));
        assert!(EdbAtom::NotText.eval(&i));
        let c = info(LabelId::from_char_byte(b'A'), false, true, false);
        assert!(EdbAtom::Text.eval(&c));
    }

    #[test]
    fn complements_are_involutions() {
        let atoms = [
            EdbAtom::Root,
            EdbAtom::HasFirstChild,
            EdbAtom::HasSecondChild,
            EdbAtom::Label(LabelId(300)),
            EdbAtom::Text,
        ];
        let i = info(LabelId(300), false, true, false);
        for a in atoms {
            assert_eq!(a.complement().complement(), a);
            assert_ne!(a.eval(&i), a.complement().eval(&i));
        }
    }
}
