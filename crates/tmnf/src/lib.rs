//! # arb-tmnf
//!
//! TMNF — *tree-marking normal form* (paper Section 2.2) — the internal
//! query language of the Arb system: a restricted monadic datalog over
//! binary trees with exactly the expressive power of unary MSO
//! (Proposition 2.1, \[9\]).
//!
//! Strict TMNF rules take the four template forms
//!
//! ```text
//! P(x)  ← U(x).                      (1)   P :- U;
//! P(x)  ← P0(x0) ∧ B(x0, x).         (2)   P :- P0.B;
//! P(x0) ← P0(x) ∧ B(x0, x).          (3)   P :- P0.invB;
//! P(x)  ← P1(x) ∧ P2(x).             (4)   P :- P1, P2;
//! ```
//!
//! where `U` ranges over the unary EDB relations (`Root`, `HasFirstChild`,
//! `Label[l]`, … and complements) and `B` over `FirstChild`/`SecondChild`.
//!
//! The crate provides:
//!
//! * [`edb::EdbAtom`] — the unary EDB schema σ,
//! * [`core::CoreProgram`] — strict TMNF programs over interned predicates,
//! * [`ast`] / [`parser`] — the Arb surface syntax, including *caterpillar
//!   expressions* (regular expressions over tree relations, §2.2),
//! * [`normalize()`] — linear-time compilation of surface programs to strict
//!   TMNF via Glushkov position automata,
//! * [`merge_programs()`] — IR-level merging of k compiled programs into one
//!   multi-query program (paper §7) with collision-free predicate renaming,
//! * [`proplocal`] — `PropLocal(P)` (Definition 4.2): the propositional
//!   projection partitioned into local/left/right/downward rule groups,
//! * [`naive`] — a semi-naive datalog fixpoint evaluator over in-memory
//!   trees: the correctness oracle and the "conventional" baseline,
//! * [`programs`] — canned example programs from the paper.

pub mod ast;
pub mod core;
pub mod dtd;
pub mod edb;
pub mod merge;
pub mod naive;
pub mod normalize;
pub mod optimize;
pub mod parser;
pub mod programs;
pub mod proplocal;

pub use crate::core::{CoreProgram, CoreRule, PredId};
pub use ast::{BodyItem, Move, Regex, StepSym, SurfaceProgram, SurfaceRule};
pub use dtd::{conformance_program, ContentModel, Dtd};
pub use edb::EdbAtom;
pub use merge::{merge_programs, MergedProgram};
pub use naive::NaiveResult;
pub use normalize::normalize;
pub use optimize::optimize;
pub use parser::{parse_program, ParseError};
pub use proplocal::PropLocal;

use arb_tree::LabelTable;

/// One-stop compilation: parse Arb surface syntax and normalize to strict
/// TMNF. Tag labels mentioned in the program are interned into `labels`.
pub fn compile(src: &str, labels: &mut LabelTable) -> Result<CoreProgram, ParseError> {
    let ast = parse_program(src, labels)?;
    Ok(normalize(&ast))
}
