//! Parser for the Arb surface syntax.
//!
//! Grammar (whitespace and `#`-to-end-of-line comments ignored):
//!
//! ```text
//! program  := rule*
//! rule     := IDENT ":-" item ("," item)* ";"
//! item     := alt
//! alt      := cat ("|" cat)*
//! cat      := postfix ("." postfix)*
//! postfix  := primary ("*" | "+" | "?")*
//! primary  := "(" alt ")" | "-"? name
//! name     := EDB name | move name | Label "[" label "]" | predicate
//! ```
//!
//! EDB and move names are recognized case-insensitively: `V`, `Root`,
//! `HasFirstChild`, `HasSecondChild`, `Leaf`, `LastSibling`, `Text`,
//! `FirstChild`, `SecondChild`, `NextSibling`, `invFirstChild`,
//! `invSecondChild`, `invNextSibling`. `Label[x]` tests a tag label;
//! `Label['c']` tests a character label. Everything else is an IDB
//! predicate name (case-sensitive).

use crate::ast::{BodyItem, Move, Regex, SurfaceProgram, SurfaceRule};
use crate::edb::EdbAtom;
use arb_tree::{LabelId, LabelTable};
use std::fmt;

/// A parse error with 1-based line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    /// `Label[...]` / `-Label[...]` content, pre-resolved.
    Label(LabelId),
    ColonDash,
    Dot,
    Comma,
    Semi,
    Pipe,
    Star,
    Plus,
    Question,
    LParen,
    RParen,
    Minus,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = *self.src.get(self.pos)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn ident(&mut self, first: u8) -> String {
        let mut s = String::new();
        s.push(first as char);
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                s.push(b as char);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    /// Reads the `[...]` part of a `Label[...]` token.
    fn label_body(&mut self, labels: &mut LabelTable) -> Result<LabelId, ParseError> {
        match self.peek() {
            Some(b'\'') => {
                self.bump();
                let c = self
                    .bump()
                    .ok_or_else(|| self.err("unterminated character label"))?;
                if self.bump() != Some(b'\'') {
                    return Err(self.err("character label must be a single byte in quotes"));
                }
                if self.bump() != Some(b']') {
                    return Err(self.err("expected ']' after character label"));
                }
                Ok(LabelId::from_char_byte(c))
            }
            _ => {
                let mut name = String::new();
                loop {
                    match self.bump() {
                        Some(b']') => break,
                        Some(b) if !b.is_ascii_whitespace() => name.push(b as char),
                        Some(_) => return Err(self.err("whitespace in label name")),
                        None => return Err(self.err("unterminated Label[...]")),
                    }
                }
                if name.is_empty() {
                    return Err(self.err("empty label name"));
                }
                labels
                    .intern(&name)
                    .map_err(|e| self.err(format!("bad label: {e}")))
            }
        }
    }

    fn next(&mut self, labels: &mut LabelTable) -> Result<Tok, ParseError> {
        self.skip_trivia();
        let Some(b) = self.bump() else {
            return Ok(Tok::Eof);
        };
        Ok(match b {
            b'.' => Tok::Dot,
            b',' => Tok::Comma,
            b';' => Tok::Semi,
            b'|' => Tok::Pipe,
            b'*' => Tok::Star,
            b'+' => Tok::Plus,
            b'?' => Tok::Question,
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'-' => Tok::Minus,
            b':' => {
                if self.bump() == Some(b'-') {
                    Tok::ColonDash
                } else {
                    return Err(self.err("expected ':-'"));
                }
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let id = self.ident(b);
                if id.eq_ignore_ascii_case("label") && self.peek() == Some(b'[') {
                    self.bump();
                    Tok::Label(self.label_body(labels)?)
                } else {
                    Tok::Ident(id)
                }
            }
            other => return Err(self.err(format!("unexpected character {:?}", other as char))),
        })
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    labels: &'a mut LabelTable,
    tok: Tok,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, labels: &'a mut LabelTable) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let (line, col) = (lexer.line, lexer.col);
        let tok = lexer.next(labels)?;
        Ok(Parser {
            lexer,
            labels,
            tok,
            line,
            col,
        })
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn advance(&mut self) -> Result<Tok, ParseError> {
        self.line = self.lexer.line;
        self.col = self.lexer.col;
        let next = self.lexer.next(self.labels)?;
        Ok(std::mem::replace(&mut self.tok, next))
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<(), ParseError> {
        if self.tok == t {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.tok)))
        }
    }

    fn program(&mut self) -> Result<SurfaceProgram, ParseError> {
        let mut rules = Vec::new();
        while self.tok != Tok::Eof {
            rules.push(self.rule()?);
        }
        Ok(SurfaceProgram { rules })
    }

    fn rule(&mut self) -> Result<SurfaceRule, ParseError> {
        let head = match self.advance()? {
            Tok::Ident(name) => {
                if reserved(&name).is_some() {
                    return Err(self.err(format!(
                        "{name:?} is a reserved EDB/move name and cannot be a rule head"
                    )));
                }
                name
            }
            other => return Err(self.err(format!("expected rule head, found {other:?}"))),
        };
        self.expect(Tok::ColonDash, "':-'")?;
        let mut items = vec![BodyItem { regex: self.alt()? }];
        while self.tok == Tok::Comma {
            self.advance()?;
            items.push(BodyItem { regex: self.alt()? });
        }
        self.expect(Tok::Semi, "';'")?;
        Ok(SurfaceRule { head, items })
    }

    fn alt(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.cat()?;
        while self.tok == Tok::Pipe {
            self.advance()?;
            r = Regex::alt(r, self.cat()?);
        }
        Ok(r)
    }

    fn cat(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.postfix()?;
        while self.tok == Tok::Dot {
            self.advance()?;
            r = Regex::cat(r, self.postfix()?);
        }
        Ok(r)
    }

    fn postfix(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.primary()?;
        loop {
            match self.tok {
                Tok::Star => {
                    self.advance()?;
                    r = Regex::Star(Box::new(r));
                }
                Tok::Plus => {
                    self.advance()?;
                    r = Regex::Plus(Box::new(r));
                }
                Tok::Question => {
                    self.advance()?;
                    r = Regex::Opt(Box::new(r));
                }
                _ => return Ok(r),
            }
        }
    }

    fn primary(&mut self) -> Result<Regex, ParseError> {
        match self.advance()? {
            Tok::LParen => {
                let r = self.alt()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(r)
            }
            Tok::Minus => match self.advance()? {
                Tok::Ident(name) => match reserved(&name) {
                    Some(Name::Edb(e)) => {
                        if e == EdbAtom::V {
                            Err(self.err("-V is unsatisfiable"))
                        } else {
                            Ok(Regex::edb(e.complement()))
                        }
                    }
                    Some(Name::Move(_)) => {
                        Err(self.err(format!("cannot complement move {name:?}")))
                    }
                    None => Err(self.err(format!(
                        "'-' may only complement EDB relations, found {name:?}"
                    ))),
                },
                Tok::Label(l) => Ok(Regex::edb(EdbAtom::NotLabel(l))),
                other => Err(self.err(format!("expected EDB name after '-', found {other:?}"))),
            },
            Tok::Label(l) => Ok(Regex::edb(EdbAtom::Label(l))),
            Tok::Ident(name) => match reserved(&name) {
                Some(Name::Edb(e)) => Ok(Regex::edb(e)),
                Some(Name::Move(m)) => Ok(Regex::mv(m)),
                None => Ok(Regex::pred(name)),
            },
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

enum Name {
    Edb(EdbAtom),
    Move(Move),
}

/// Recognizes reserved EDB relation and move names (case-insensitive).
fn reserved(name: &str) -> Option<Name> {
    let lower = name.to_ascii_lowercase();
    Some(match lower.as_str() {
        "v" => Name::Edb(EdbAtom::V),
        "root" => Name::Edb(EdbAtom::Root),
        "hasfirstchild" => Name::Edb(EdbAtom::HasFirstChild),
        "hassecondchild" => Name::Edb(EdbAtom::HasSecondChild),
        "leaf" => Name::Edb(EdbAtom::Leaf),
        "lastsibling" => Name::Edb(EdbAtom::LastSibling),
        "text" => Name::Edb(EdbAtom::Text),
        "firstchild" => Name::Move(Move::FirstChild),
        "secondchild" | "nextsibling" => Name::Move(Move::SecondChild),
        "invfirstchild" => Name::Move(Move::InvFirstChild),
        "invsecondchild" | "invnextsibling" => Name::Move(Move::InvSecondChild),
        _ => return None,
    })
}

/// Parses an Arb surface program. Tag labels are interned into `labels`.
pub fn parse_program(src: &str, labels: &mut LabelTable) -> Result<SurfaceProgram, ParseError> {
    Parser::new(src, labels)?.program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::StepSym;

    fn parse(src: &str) -> SurfaceProgram {
        let mut lt = LabelTable::new();
        parse_program(src, &mut lt).expect("parse failed")
    }

    #[test]
    fn strict_tmnf_forms() {
        let p = parse(
            "Even :- Leaf, -Label[a];\n\
             FSEven :- SFREven.invNextSibling;\n\
             SFREven :- FSEven, Even;\n\
             Even :- SFREven.invFirstChild;",
        );
        assert_eq!(p.rules.len(), 4);
        assert_eq!(p.rules[0].head, "Even");
        assert_eq!(p.rules[0].items.len(), 2);
        assert_eq!(p.rules[0].items[0].regex, Regex::edb(EdbAtom::Leaf));
        // -Label[a]
        match &p.rules[0].items[1].regex {
            Regex::Sym(StepSym::Edb(EdbAtom::NotLabel(_))) => {}
            other => panic!("expected -Label, got {other:?}"),
        }
        // path item
        match &p.rules[1].items[0].regex {
            Regex::Cat(a, b) => {
                assert_eq!(**a, Regex::pred("SFREven"));
                assert_eq!(**b, Regex::mv(Move::InvSecondChild));
            }
            other => panic!("expected cat, got {other:?}"),
        }
    }

    #[test]
    fn caterpillar_with_star_and_parens() {
        let p = parse(
            "QUERY :- V.Label[S].FirstChild.NextSibling*.Label[VP].\
             (FirstChild.NextSibling*.Label[NP])*.Label[NP];",
        );
        assert_eq!(p.rules.len(), 1);
        assert!(p.rules[0].items[0].regex.size() >= 8);
    }

    #[test]
    fn alternation_and_complements() {
        // The paper's ACGT-infix caterpillar.
        let p = parse(
            "Prev :- X.(FirstChild.SecondChild*.-hasSecondChild \
             | -hasFirstChild.invFirstChild*.invSecondChild);",
        );
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn char_labels() {
        let mut lt = LabelTable::new();
        let p = parse_program("Q :- Label['A'];", &mut lt).unwrap();
        assert_eq!(
            p.rules[0].items[0].regex,
            Regex::edb(EdbAtom::Label(LabelId::from_char_byte(b'A')))
        );
    }

    #[test]
    fn comments_and_whitespace() {
        let p = parse("# a comment\nQ :- Root; # trailing\n");
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn errors_have_positions() {
        let mut lt = LabelTable::new();
        let e = parse_program("Q :- ;", &mut lt).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.col > 1);
        assert!(parse_program("Root :- V;", &mut lt).is_err());
        assert!(parse_program("Q :- -V;", &mut lt).is_err());
        assert!(parse_program("Q :- -FirstChild;", &mut lt).is_err());
        assert!(parse_program("Q :- Label[a b];", &mut lt).is_err());
        assert!(parse_program("Q :- A.B", &mut lt).is_err()); // missing ';'
    }

    #[test]
    fn reserved_names_case_insensitive() {
        let p = parse("Q :- lastsibling; R :- LASTSIBLING;");
        assert_eq!(p.rules[0].items[0].regex, Regex::edb(EdbAtom::LastSibling));
        assert_eq!(p.rules[1].items[0].regex, Regex::edb(EdbAtom::LastSibling));
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The parser never panics: any input either parses or returns a
        /// positioned error.
        #[test]
        fn parser_total_on_arbitrary_input(src in "[ -~\\n]{0,80}") {
            let mut lt = LabelTable::new();
            let _ = parse_program(&src, &mut lt);
        }

        /// Inputs built from plausible token soup also never panic, and
        /// exercise deeper parser paths than raw bytes.
        #[test]
        fn parser_total_on_token_soup(
            toks in proptest::collection::vec(0..12u8, 0..40)
        ) {
            let parts = [
                "P", ":-", ".", ",", ";", "(", ")", "*", "Label[a]",
                "-", "FirstChild", "invNextSibling",
            ];
            let src: String = toks
                .iter()
                .map(|&t| parts[t as usize])
                .collect::<Vec<_>>()
                .join(" ");
            let mut lt = LabelTable::new();
            let _ = parse_program(&src, &mut lt);
        }
    }
}
