//! Surface AST for the Arb rule syntax (paper Section 2.2).
//!
//! A surface rule is `Head :- item, …, item;` where each item is a
//! *caterpillar expression*: a regular expression over moves
//! (`FirstChild`, `SecondChild`/`NextSibling` and their inverses) and
//! node tests (EDB atoms and IDB predicates). Strict TMNF rules are the
//! special cases `P :- U;`, `P :- P0.B;`, `P :- P0.invB;`, `P :- P1, P2;`.

use crate::edb::EdbAtom;

/// A binary tree move (an edge relation or its inverse).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Move {
    /// `FirstChild`.
    FirstChild,
    /// `SecondChild`, written `NextSibling` in the unranked reading.
    SecondChild,
    /// `invFirstChild`.
    InvFirstChild,
    /// `invSecondChild`, written `invNextSibling` in the unranked reading.
    InvSecondChild,
}

impl Move {
    /// The inverse move.
    pub fn inverse(self) -> Move {
        match self {
            Move::FirstChild => Move::InvFirstChild,
            Move::SecondChild => Move::InvSecondChild,
            Move::InvFirstChild => Move::FirstChild,
            Move::InvSecondChild => Move::SecondChild,
        }
    }
}

/// A symbol of a caterpillar expression: a move or a node test that must
/// hold at the current node of the walk.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StepSym {
    /// Move along an edge.
    Move(Move),
    /// EDB test at the current node.
    Edb(EdbAtom),
    /// IDB predicate test at the current node (the leading predicate of a
    /// path item, or an intermediate condition).
    Pred(String),
}

/// A regular expression over [`StepSym`]s.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Regex {
    /// ε — the empty walk.
    Eps,
    /// A single symbol.
    Sym(StepSym),
    /// Concatenation.
    Cat(Box<Regex>, Box<Regex>),
    /// Alternation.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
    /// One or more.
    Plus(Box<Regex>),
    /// Zero or one.
    Opt(Box<Regex>),
}

impl Regex {
    /// Concatenation constructor that simplifies ε.
    pub fn cat(a: Regex, b: Regex) -> Regex {
        match (a, b) {
            (Regex::Eps, b) => b,
            (a, Regex::Eps) => a,
            (a, b) => Regex::Cat(Box::new(a), Box::new(b)),
        }
    }

    /// Alternation constructor.
    pub fn alt(a: Regex, b: Regex) -> Regex {
        Regex::Alt(Box::new(a), Box::new(b))
    }

    /// Concatenates a sequence of expressions.
    pub fn seq(parts: impl IntoIterator<Item = Regex>) -> Regex {
        parts.into_iter().fold(Regex::Eps, Regex::cat)
    }

    /// A move symbol.
    pub fn mv(m: Move) -> Regex {
        Regex::Sym(StepSym::Move(m))
    }

    /// An EDB test symbol.
    pub fn edb(e: EdbAtom) -> Regex {
        Regex::Sym(StepSym::Edb(e))
    }

    /// An IDB predicate test symbol.
    pub fn pred(name: impl Into<String>) -> Regex {
        Regex::Sym(StepSym::Pred(name.into()))
    }

    /// Number of symbol occurrences (Glushkov positions).
    pub fn size(&self) -> usize {
        match self {
            Regex::Eps => 0,
            Regex::Sym(_) => 1,
            Regex::Cat(a, b) | Regex::Alt(a, b) => a.size() + b.size(),
            Regex::Star(a) | Regex::Plus(a) | Regex::Opt(a) => a.size(),
        }
    }
}

/// One body item of a surface rule: a caterpillar expression. The item
/// holds at node `x` iff some walk matching the expression ends at `x`
/// (tests constrain the walk's intermediate nodes; the walk may start at
/// any node satisfying its leading tests).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BodyItem {
    /// The caterpillar expression.
    pub regex: Regex,
}

/// A surface rule `head :- items;`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SurfaceRule {
    /// Head predicate name.
    pub head: String,
    /// Conjunctive body items.
    pub items: Vec<BodyItem>,
}

/// A parsed surface program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SurfaceProgram {
    /// Rules in source order.
    pub rules: Vec<SurfaceRule>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cat_simplifies_eps() {
        let r = Regex::cat(Regex::Eps, Regex::mv(Move::FirstChild));
        assert_eq!(r, Regex::mv(Move::FirstChild));
        let r = Regex::cat(Regex::mv(Move::FirstChild), Regex::Eps);
        assert_eq!(r, Regex::mv(Move::FirstChild));
    }

    #[test]
    fn seq_builds_catenation() {
        let r = Regex::seq([
            Regex::mv(Move::FirstChild),
            Regex::mv(Move::SecondChild),
            Regex::edb(EdbAtom::Leaf),
        ]);
        assert_eq!(r.size(), 3);
    }

    #[test]
    fn inverse_involution() {
        for m in [
            Move::FirstChild,
            Move::SecondChild,
            Move::InvFirstChild,
            Move::InvSecondChild,
        ] {
            assert_eq!(m.inverse().inverse(), m);
        }
    }
}
