//! Semi-naive datalog evaluation of strict TMNF over in-memory trees.
//!
//! This computes the least fixpoint `P(T)` directly — predicate extents as
//! node sets — in time `O(|P| · |T|)`. It serves two roles:
//!
//! 1. **Correctness oracle**: property tests assert that the two-phase
//!    automaton evaluation (paper Theorem 4.1) produces exactly the same
//!    predicate assignments on every node;
//! 2. **Baseline**: it represents the conventional "evaluate the datalog
//!    program over the materialized tree" strategy the paper's automata
//!    replace — requiring the whole tree in memory and touching each node
//!    once per rule per derivation wave.

use crate::core::{BodyAtom, CoreProgram, CoreRule, PredId};
use arb_tree::{BinaryTree, NodeId, NodeSet};

/// The evaluation result: one node set per IDB predicate.
pub struct NaiveResult {
    extents: Vec<NodeSet>,
    /// Number of (pred, node) derivation events (work measure).
    pub derivations: u64,
}

impl NaiveResult {
    /// Extent of a predicate.
    pub fn extent(&self, p: PredId) -> &NodeSet {
        &self.extents[p as usize]
    }

    /// True if predicate `p` holds at `v` in the least fixpoint.
    pub fn holds(&self, p: PredId, v: NodeId) -> bool {
        self.extents[p as usize].contains(v)
    }

    /// All predicates holding at `v`, in predicate order.
    pub fn preds_at(&self, v: NodeId) -> Vec<PredId> {
        (0..self.extents.len() as PredId)
            .filter(|&p| self.holds(p, v))
            .collect()
    }
}

/// Evaluates a strict TMNF program over a tree by semi-naive iteration.
pub fn evaluate(prog: &CoreProgram, tree: &BinaryTree) -> NaiveResult {
    let np = prog.pred_count();
    let n = tree.len();
    let mut extents: Vec<NodeSet> = (0..np).map(|_| NodeSet::new(n)).collect();
    let mut worklist: Vec<(PredId, NodeId)> = Vec::new();
    let mut derivations = 0u64;

    // Rule indexes by body predicate.
    let mut by_body: Vec<Vec<usize>> = vec![Vec::new(); np];
    for (i, r) in prog.rules().iter().enumerate() {
        match *r {
            CoreRule::Edb { .. } => {}
            CoreRule::Down { body, .. } | CoreRule::Up { body, .. } => {
                by_body[body as usize].push(i)
            }
            CoreRule::And { b1, b2, .. } => {
                if let BodyAtom::Pred(p) = b1 {
                    by_body[p as usize].push(i);
                }
                if let BodyAtom::Pred(p) = b2 {
                    if b2 != b1 {
                        by_body[p as usize].push(i);
                    }
                }
            }
        }
    }

    let derive = |extents: &mut Vec<NodeSet>,
                  worklist: &mut Vec<(PredId, NodeId)>,
                  derivations: &mut u64,
                  p: PredId,
                  v: NodeId| {
        if extents[p as usize].insert(v) {
            *derivations += 1;
            worklist.push((p, v));
        }
    };

    // Seed with EDB rules and with conjunctions over EDB atoms only
    // (which no predicate derivation would ever trigger).
    for r in prog.rules() {
        match *r {
            CoreRule::Edb { head, edb } => {
                let atom = prog.edb_atom(edb);
                for v in tree.nodes() {
                    if atom.eval(&tree.info(v)) {
                        derive(&mut extents, &mut worklist, &mut derivations, head, v);
                    }
                }
            }
            CoreRule::And {
                head,
                b1: BodyAtom::Edb(e1),
                b2: BodyAtom::Edb(e2),
            } => {
                let (a1, a2) = (prog.edb_atom(e1), prog.edb_atom(e2));
                for v in tree.nodes() {
                    let info = tree.info(v);
                    if a1.eval(&info) && a2.eval(&info) {
                        derive(&mut extents, &mut worklist, &mut derivations, head, v);
                    }
                }
            }
            _ => {}
        }
    }

    // Propagate.
    while let Some((p, v)) = worklist.pop() {
        for &ri in &by_body[p as usize] {
            match prog.rules()[ri] {
                CoreRule::Edb { .. } => unreachable!("not indexed by body"),
                CoreRule::Down { head, k, .. } => {
                    let child = if k == 1 {
                        tree.first_child(v)
                    } else {
                        tree.second_child(v)
                    };
                    if let Some(c) = child {
                        derive(&mut extents, &mut worklist, &mut derivations, head, c);
                    }
                }
                CoreRule::Up { head, k, .. } => {
                    // Head at parent if v is the k-child.
                    if let Some(parent) = tree.parent(v) {
                        let is_k = if k == 1 {
                            tree.is_first_child(v)
                        } else {
                            !tree.is_first_child(v)
                        };
                        if is_k {
                            derive(&mut extents, &mut worklist, &mut derivations, head, parent);
                        }
                    }
                }
                CoreRule::And { head, b1, b2 } => {
                    let other = if b1 == BodyAtom::Pred(p) { b2 } else { b1 };
                    let other_true = match other {
                        BodyAtom::Pred(q) => extents[q as usize].contains(v),
                        BodyAtom::Edb(e) => prog.edb_atom(e).eval(&tree.info(v)),
                    };
                    if other_true {
                        derive(&mut extents, &mut worklist, &mut derivations, head, v);
                    }
                }
            }
        }
    }

    NaiveResult {
        extents,
        derivations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use arb_tree::{LabelTable, TreeBuilder};

    fn tiny_tree(labels: &mut LabelTable) -> BinaryTree {
        // <a><a><a/></a></a> — the three-node chain of paper Example 4.5.
        let a = labels.intern("a").unwrap();
        let mut b = TreeBuilder::new();
        b.open(a);
        b.open(a);
        b.open(a);
        b.close();
        b.close();
        b.close();
        b.finish().unwrap()
    }

    /// Paper Example 4.3 / 4.7: the six-rule program on the three-node
    /// chain derives {P1, Q} at v0, {P2, P5} at v1, {P3, P4} at v2.
    #[test]
    fn example_4_3_fixpoint() {
        let mut lt = LabelTable::new();
        let tree = tiny_tree(&mut lt);
        let src = "P1 :- Root;\n\
                   P2 :- P1.FirstChild;\n\
                   P3 :- P2.FirstChild;\n\
                   P4 :- P3, Leaf;\n\
                   P5 :- P4.invFirstChild;\n\
                   Q :- P5.invFirstChild;";
        let ast = parse_program(src, &mut lt).unwrap();
        let prog = crate::normalize::normalize(&ast);
        let res = evaluate(&prog, &tree);
        let name = |p: &str| prog.pred_id(p).unwrap();
        let at = |v: u32| -> Vec<String> {
            res.preds_at(NodeId(v))
                .into_iter()
                .map(|p| prog.pred_name(p).to_string())
                .filter(|n| !n.starts_with('_'))
                .collect()
        };
        assert_eq!(at(0), vec!["P1", "Q"]);
        assert_eq!(at(1), vec!["P2", "P5"]);
        assert_eq!(at(2), vec!["P3", "P4"]);
        assert!(res.holds(name("Q"), NodeId(0)));
        assert!(!res.holds(name("Q"), NodeId(1)));
    }

    /// Paper Example 2.2: even/odd counting of 'a'-labeled leaves.
    #[test]
    fn example_2_2_even_odd() {
        let mut lt = LabelTable::new();
        let src = crate::programs::EVEN_ODD;
        let ast = parse_program(src, &mut lt).unwrap();
        let prog = crate::normalize::normalize(&ast);
        let a = lt.get("a").unwrap();
        let b = lt.intern("b").unwrap();

        // Tree: root(b) with children [a, a, b(a)] — subtree of root has
        // 3 'a' leaves => Odd; subtree of inner b has 1 => Odd; each a leaf
        // itself => Odd; the b leaf... wait, inner b has child a.
        let mut tb = TreeBuilder::new();
        tb.open(b);
        tb.leaf(a);
        tb.leaf(a);
        tb.open(b);
        tb.leaf(a);
        tb.close();
        tb.close();
        let tree = tb.finish().unwrap();
        let res = evaluate(&prog, &tree);
        let even = prog.pred_id("Even").unwrap();
        let odd = prog.pred_id("Odd").unwrap();
        // Root: 3 'a' leaves => Odd.
        assert!(res.holds(odd, NodeId(0)));
        assert!(!res.holds(even, NodeId(0)));
        // First a-leaf (node 1): odd (itself).
        assert!(res.holds(odd, NodeId(1)));
        // Inner b (node 3): one 'a' leaf below => Odd.
        assert!(res.holds(odd, NodeId(3)));
        // Now a tree with 2 'a' leaves: root(b) with [a, a].
        let mut tb = TreeBuilder::new();
        tb.open(b);
        tb.leaf(a);
        tb.leaf(a);
        tb.close();
        let tree = tb.finish().unwrap();
        let res = evaluate(&prog, &tree);
        assert!(res.holds(even, NodeId(0)));
        assert!(!res.holds(odd, NodeId(0)));
    }

    #[test]
    fn caterpillar_descendant() {
        let mut lt = LabelTable::new();
        // Select all nodes with an 'x'-labeled ancestor... expressed
        // top-down: Q :- Label[x].(FirstChild|SecondChild)+ restricted to
        // descendants in the binary tree — here used just as a smoke test
        // of star/alt compilation against hand-computed sets.
        let src = "Q :- V.Label[x].(FirstChild | SecondChild)+;";
        let ast = parse_program(src, &mut lt).unwrap();
        let prog = crate::normalize::normalize(&ast);
        let x = lt.get("x").unwrap();
        let y = lt.intern("y").unwrap();
        // x(y(y), y)
        let mut tb = TreeBuilder::new();
        tb.open(x);
        tb.open(y);
        tb.leaf(y);
        tb.close();
        tb.leaf(y);
        tb.close();
        let tree = tb.finish().unwrap();
        let res = evaluate(&prog, &tree);
        let q = prog.pred_id("Q").unwrap();
        // Binary-tree descendants of the x root: all other nodes.
        assert!(!res.holds(q, NodeId(0)));
        for v in 1..4 {
            assert!(res.holds(q, NodeId(v)), "node {v}");
        }
    }
}
