//! LTUR — Minoux's linear-time unit resolution \[13\] and the residual
//! program construction of paper Section 4.1.
//!
//! Given a propositional Horn program `P`, `LTUR(P)` is computed as:
//!
//! 1. compute the set `M` of all predicates derivable from the facts of
//!    `P` using the rules of `P`;
//! 2. drop all rules whose heads are true (in `M`) or which contain an EDB
//!    predicate in the body that is not in `M`;
//! 3. remove all body predicates of remaining rules that are true;
//! 4. insert each *IDB* predicate `p ∈ M` as a new fact `p ←`.
//!
//! The implementation is the standard counter/watch-list unit propagation,
//! linear in the total size of the program. A reusable [`LturScratch`]
//! avoids per-call allocations — important because the lazy automata call
//! LTUR once per *transition*, and transitions number in the hundreds of
//! thousands on the ACGT-infix workloads (paper Figure 6).

use crate::atom::Atom;
use crate::program::{Program, Rule};

/// Reusable scratch space for [`ltur`]. Create once per evaluation and
/// pass to every call.
#[derive(Default)]
pub struct LturScratch {
    /// Epoch-stamped truth marks, indexed by raw atom id.
    truth: Vec<u32>,
    epoch: u32,
    /// Per-rule counters of not-yet-true body atoms.
    counters: Vec<u32>,
    /// Flattened watch lists: for each atom, the head of its edge list.
    watch_heads: Vec<u32>,
    /// Worklist of newly-true atoms.
    queue: Vec<Atom>,
    /// Derived IDB atoms of the current call, in derivation order.
    derived: Vec<Atom>,
    /// Watcher edge lists (one edge per (rule, body atom) pair).
    edge_next: Vec<u32>,
    edge_rule: Vec<u32>,
}

impl LturScratch {
    /// Fresh scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn is_true(&self, a: Atom) -> bool {
        self.truth
            .get(a.0 as usize)
            .is_some_and(|&e| e == self.epoch)
    }

    #[inline]
    fn mark_true(&mut self, a: Atom) -> bool {
        let ix = a.0 as usize;
        if ix >= self.truth.len() {
            self.truth.resize(ix + 1, 0);
        }
        if self.truth[ix] == self.epoch {
            false
        } else {
            self.truth[ix] = self.epoch;
            true
        }
    }
}

const NO_RULE: u32 = u32::MAX;

/// Runs LTUR over the concatenation of the given rule slices (the lazy
/// automata assemble their input programs from several fixed parts, e.g.
/// `local_rules ∪ left_rules ∪ PushDown₁(P¹res)`; passing slices avoids
/// building a combined vector).
///
/// Returns the residual program: EDB-free conditional rules with true body
/// atoms removed, plus facts for every derived IDB atom (local or
/// superscripted).
pub fn ltur(parts: &[&[Rule]], scratch: &mut LturScratch) -> Program {
    let mut out = Vec::new();
    ltur_residual(parts, scratch, &mut out);
    Program::canonical(out)
}

/// LTUR variant that appends the raw (non-canonicalized) residual rules
/// to `out`. Used when contraction follows immediately: canonicalizing
/// the large intermediate program would be wasted work (the paper's
/// pipeline only interns the *contracted* result).
pub fn ltur_residual(parts: &[&[Rule]], scratch: &mut LturScratch, out: &mut Vec<Rule>) {
    propagate(parts, scratch);
    residual(parts, scratch, out);
}

/// Unit propagation: computes the derivable set `M` into the scratch.
fn propagate(parts: &[&[Rule]], scratch: &mut LturScratch) {
    // --- setup: bump epoch, clear per-call state --------------------------
    scratch.epoch = scratch.epoch.wrapping_add(1);
    if scratch.epoch == 0 {
        // Extremely rare wrap-around: clear marks and restart epochs.
        scratch.truth.clear();
        scratch.epoch = 1;
    }
    scratch.queue.clear();
    scratch.derived.clear();
    scratch.counters.clear();
    scratch.watch_heads.clear();
    scratch.edge_next.clear();
    scratch.edge_rule.clear();

    let n_rules: usize = parts.iter().map(|p| p.len()).sum();
    scratch.counters.reserve(n_rules);

    // Determine atom universe bound for the watch-head table.
    let mut max_atom = 0u32;
    for p in parts {
        for r in p.iter() {
            max_atom = max_atom.max(r.head.0);
            for a in r.body.iter() {
                max_atom = max_atom.max(a.0);
            }
        }
    }
    scratch.watch_heads.resize(max_atom as usize + 1, NO_RULE);

    // --- phase 1: unit propagation (compute M) ---------------------------
    let rule_at = |ix: u32| -> &Rule {
        let mut ix = ix as usize;
        for p in parts {
            if ix < p.len() {
                return &p[ix];
            }
            ix -= p.len();
        }
        unreachable!("rule index out of range")
    };

    // Watcher lists as a flat edge adjacency: each (rule, body atom) pair
    // is one edge; `watch_heads[atom]` heads a linked list through
    // `edge_next`. Bodies are deduplicated by `Rule::new`, so each edge
    // decrements its rule counter at most once.
    {
        let mut rid = 0u32;
        for p in parts {
            for r in p.iter() {
                scratch.counters.push(r.body.len() as u32);
                if r.body.is_empty() {
                    scratch.queue.push(r.head);
                }
                for a in r.body.iter() {
                    let slot = &mut scratch.watch_heads[a.0 as usize];
                    scratch.edge_next.push(*slot);
                    scratch.edge_rule.push(rid);
                    *slot = (scratch.edge_next.len() - 1) as u32;
                }
                rid += 1;
            }
        }
    }

    let mut qhead = 0usize;
    while qhead < scratch.queue.len() {
        let a = scratch.queue[qhead];
        qhead += 1;
        if !scratch.mark_true(a) {
            continue;
        }
        scratch.derived.push(a);
        // Wake rules watching `a`.
        let mut e = scratch.watch_heads[a.0 as usize];
        while e != NO_RULE {
            let rid = scratch.edge_rule[e as usize] as usize;
            scratch.counters[rid] -= 1;
            if scratch.counters[rid] == 0 {
                let head = rule_at(rid as u32).head;
                if !scratch.is_true(head) {
                    scratch.queue.push(head);
                }
            }
            e = scratch.edge_next[e as usize];
        }
    }
}

/// Builds the residual rules from a propagated scratch.
fn residual(parts: &[&[Rule]], scratch: &LturScratch, out: &mut Vec<Rule>) {
    for p in parts {
        'rules: for r in p.iter() {
            if scratch.is_true(r.head) {
                continue; // head already true
            }
            let mut body: Vec<Atom> = Vec::with_capacity(r.body.len());
            for &a in r.body.iter() {
                if scratch.is_true(a) {
                    continue; // drop satisfied body atom
                }
                if a.is_edb() {
                    continue 'rules; // false EDB atom: rule can never fire
                }
                body.push(a);
            }
            debug_assert!(
                !body.is_empty(),
                "empty residual body implies head should be true"
            );
            out.push(Rule::new(r.head, body));
        }
    }
    // Facts for derived IDB atoms (EDB facts are dropped per footnote 11).
    for &a in &scratch.derived {
        if !a.is_edb() {
            out.push(Rule::fact(a));
        }
    }
}

/// LTUR variant computing only the derived (true) IDB atoms — phase 2 of
/// the two-phase algorithm needs nothing else (`TruePreds(LTUR(P))`).
pub fn ltur_facts(parts: &[&[Rule]], scratch: &mut LturScratch, out: &mut Vec<Atom>) {
    propagate(parts, scratch);
    out.extend(scratch.derived.iter().copied().filter(|a| !a.is_edb()));
}

/// Convenience wrapper: LTUR over a single rule set with fresh scratch.
pub fn ltur_once(rules: &[Rule]) -> Program {
    ltur(&[rules], &mut LturScratch::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> Atom {
        Atom::local(i)
    }
    fn e(i: u32) -> Atom {
        Atom::edb(i)
    }

    #[test]
    fn derives_transitively() {
        // P0<-; P1<-P0; P2<-P1&P3  => facts P0,P1; residual P2<-P3.
        let rules = vec![
            Rule::fact(l(0)),
            Rule::new(l(1), vec![l(0)]),
            Rule::new(l(2), vec![l(1), l(3)]),
        ];
        let res = ltur_once(&rules);
        let facts: Vec<Atom> = res.true_preds().collect();
        assert_eq!(facts, vec![l(0), l(1)]);
        let cond: Vec<&Rule> = res.rules().iter().filter(|r| !r.is_fact()).collect();
        assert_eq!(cond.len(), 1);
        assert_eq!(cond[0].head, l(2));
        assert_eq!(&*cond[0].body, &[l(3)]);
    }

    #[test]
    fn false_edb_kills_rule() {
        // P0 <- E0; P1 <- E1; E1 <-   => P1 fact, P0 rule dropped, E1 fact dropped.
        let rules = vec![
            Rule::new(l(0), vec![e(0)]),
            Rule::new(l(1), vec![e(1)]),
            Rule::fact(e(1)),
        ];
        let res = ltur_once(&rules);
        assert_eq!(res.len(), 1);
        assert_eq!(res.rules()[0], Rule::fact(l(1)));
    }

    #[test]
    fn duplicate_body_atoms_ok() {
        // Rule::new dedups, but double-check propagation with shared atoms.
        let rules = vec![
            Rule::new(l(1), vec![l(0), l(0)]),
            Rule::fact(l(0)),
            Rule::new(l(2), vec![l(0), l(1)]),
        ];
        let res = ltur_once(&rules);
        let facts: std::collections::BTreeSet<Atom> = res.true_preds().collect();
        assert!(facts.contains(&l(0)) && facts.contains(&l(1)) && facts.contains(&l(2)));
    }

    #[test]
    fn paper_example_4_5_leaf() {
        // PropLocal of Example 4.3 at leaf v2 with labels
        // {-HasFirstChild, -HasSecondChild, a}: local rules are
        // P1<-Root; P4<-P3&Leaf. Root false, Leaf true.
        // EDB ids: 0=Root, 1=Leaf.
        let local = vec![
            Rule::new(l(0), vec![e(0)]),       // P1 <- Root
            Rule::new(l(3), vec![l(2), e(1)]), // P4 <- P3 & Leaf
        ];
        let labels = vec![Rule::fact(e(1))]; // Leaf is true
        let res = ltur(&[&local, &labels], &mut LturScratch::new());
        // Expect exactly {P4 <- P3} (paper: ρA(v2) = {P4 ← P3}).
        assert_eq!(res.len(), 1);
        assert_eq!(res.rules()[0], Rule::new(l(3), vec![l(2)]));
    }

    #[test]
    fn multiple_parts_concatenate() {
        let a = vec![Rule::fact(l(0))];
        let b = vec![Rule::new(l(1), vec![l(0)])];
        let res = ltur(&[&a, &b], &mut LturScratch::new());
        assert_eq!(res.true_preds().count(), 2);
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let mut s = LturScratch::new();
        let r1 = vec![Rule::fact(l(0)), Rule::new(l(1), vec![l(0)])];
        let p1 = ltur(&[&r1], &mut s);
        assert_eq!(p1.true_preds().count(), 2);
        // Second call must not see stale truth.
        let r2 = vec![Rule::new(l(1), vec![l(0)])];
        let p2 = ltur(&[&r2], &mut s);
        assert_eq!(p2.true_preds().count(), 0);
        assert_eq!(p2.len(), 1);
    }

    #[test]
    fn cyclic_rules_do_not_derive() {
        // P0 <- P1; P1 <- P0 — no facts, nothing derived.
        let rules = vec![Rule::new(l(0), vec![l(1)]), Rule::new(l(1), vec![l(0)])];
        let res = ltur_once(&rules);
        assert_eq!(res.true_preds().count(), 0);
        assert_eq!(res.len(), 2);
    }
}
