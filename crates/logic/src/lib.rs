//! # arb-logic
//!
//! Propositional Horn program machinery (paper Section 4.1).
//!
//! The key observation behind the paper's scalability is that the *set of
//! reachable states* of a nondeterministic selecting tree automaton at a
//! node can be represented as a single **residual propositional logic
//! program** (Horn formula), which in practice stays very small. This crate
//! implements everything needed to manipulate such programs:
//!
//! * [`Atom`] — propositional predicates, with the paper's child
//!   superscripts `X¹`/`X²` and EDB predicates,
//! * [`Rule`] / [`Program`] — canonical (sorted, deduplicated,
//!   subsumption-reduced) Horn programs,
//! * [`ltur()`] — Minoux's linear-time unit resolution (LTUR, \[13\]) and the
//!   residual-program construction of Section 4.1,
//! * [`contract()`] — the `ContractProgram` procedure: SLD-style unfolding of
//!   superscripted predicates until only *local* rules remain,
//! * [`intern`] — hash-consing of programs and predicate sets into dense
//!   `u32` state identifiers (the automaton state spaces `Q_A ⊆ 2^{2^IDB}`
//!   and `Q_B = 2^IDB`),
//! * [`fxhash`] — a small fast hasher for the transition hash tables,
//! * [`oatable`] — raw open-addressing id tables (fx hash, quadratic
//!   probing) backing the interners and transition caches.

pub mod atom;
pub mod contract;
pub mod fxhash;
pub mod intern;
pub mod ltur;
pub mod oatable;
pub mod program;

pub use atom::{Atom, Tag};
pub use contract::{contract, contract_rules};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use intern::{PredSet, PredSetId, PredSetInterner, PredSetView, ProgramId, ProgramInterner};
pub use ltur::{ltur, ltur_facts, ltur_once, ltur_residual, LturScratch};
pub use oatable::{fx_hash, FxCache, RawTable};
pub use program::{Program, Rule};
