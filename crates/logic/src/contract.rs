//! `ContractProgram` (paper Section 4.1).
//!
//! After LTUR, the program at a tree node mixes *local* atoms (about the
//! node itself) and *superscripted* atoms (about its children). The
//! residual automaton state must only constrain the node's own predicates,
//! so superscripted predicates are *unfolded away*:
//!
//! > "We unfold two rules r₁ and r₂ if head(r₂) ∈ body(r₁) and head(r₂)
//! > has a superscript (1 or 2). This is done until no new rules can be
//! > computed. Then, all rules containing a predicate with superscript 1
//! > or 2 are removed. The rules that remain are all local."
//!
//! The implementation performs SLD-style resolution: each pending rule
//! resolves its *first* superscripted body atom against every rule with
//! that head. Selecting a single atom per step is complete for Horn
//! programs and avoids enumerating redundant unfolding orders. A seen-set
//! guarantees termination (the rule space is finite); final
//! canonicalization applies subsumption, keeping residual programs small —
//! the property the paper's practicality rests on.

use crate::atom::Atom;
use crate::fxhash::FxHashSet;
use crate::program::{Program, Rule};

/// Contracts a program to its local-only residual.
pub fn contract(p: &Program) -> Program {
    contract_rules(p.rules())
}

/// [`contract`] over a raw (possibly non-canonical) rule slice — used to
/// fuse LTUR's residual directly into contraction without canonicalizing
/// the large intermediate program.
pub fn contract_rules(rules: &[Rule]) -> Program {
    // Index rules by superscripted head.
    let mut by_head: std::collections::BTreeMap<Atom, Vec<&Rule>> = Default::default();
    let mut out: Vec<Rule> = Vec::new();
    let mut pending: Vec<Rule> = Vec::new();
    for r in rules {
        if r.head.is_sup() {
            by_head.entry(r.head).or_default().push(r);
        }
    }
    for r in rules {
        if !r.head.is_sup() {
            if r.body.iter().any(|a| a.is_sup()) {
                pending.push(r.clone());
            } else {
                out.push(r.clone());
            }
        }
    }

    let mut seen: FxHashSet<Rule> = FxHashSet::default();
    // Also track unfolded sup-headed rules so cyclic chains terminate.
    while let Some(r) = pending.pop() {
        // Find the first superscripted body atom.
        let Some(pos) = r.body.iter().position(|a| a.is_sup()) else {
            out.push(r);
            continue;
        };
        let b = r.body[pos];
        let Some(defs) = by_head.get(&b) else {
            continue; // no rule derives b: the rule can never fire
        };
        for r2 in defs {
            // Unfold: body := (body \ {b}) ∪ body(r2).
            let mut body: Vec<Atom> = Vec::with_capacity(r.body.len() - 1 + r2.body.len());
            body.extend(r.body.iter().copied().filter(|&a| a != b));
            body.extend(r2.body.iter().copied());
            let nr = Rule::new(r.head, body);
            if nr.is_tautology() {
                continue;
            }
            // Resolving may reintroduce b through r2's body (cycles): the
            // seen-set cuts repetition.
            if seen.insert(nr.clone()) {
                pending.push(nr);
            }
        }
    }

    // The sup-headed rules themselves are dropped ("all rules containing a
    // predicate with superscript 1 or 2 are removed").
    Program::canonical(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> Atom {
        Atom::local(i)
    }
    fn s1(i: u32) -> Atom {
        Atom::sup1(i)
    }
    fn s2(i: u32) -> Atom {
        Atom::sup2(i)
    }

    /// Paper Example 4.4.
    #[test]
    fn example_4_4() {
        let p = Program::canonical(vec![
            Rule::new(l(0), vec![l(1), l(2)]),    // P0 <- P1 & P2
            Rule::new(l(1), vec![s1(3)]),         // P1 <- P3^1
            Rule::new(l(2), vec![s1(4)]),         // P2 <- P4^1
            Rule::new(s1(3), vec![s1(5)]),        // P3^1 <- P5^1
            Rule::new(s1(4), vec![s1(5), s1(6)]), // P4^1 <- P5^1 & P6^1
            Rule::new(s1(5), vec![l(7)]),         // P5^1 <- P7
            Rule::new(s1(6), vec![l(7), l(8)]),   // P6^1 <- P7 & P8
            Rule::new(l(8), vec![s2(9), s2(10)]), // P8 <- P9^2 & P10^2
            Rule::new(s2(9), vec![l(11)]),        // P9^2 <- P11
        ]);
        let c = contract(&p);
        let expect = Program::canonical(vec![
            Rule::new(l(0), vec![l(1), l(2)]),
            Rule::new(l(1), vec![l(7)]),
            Rule::new(l(2), vec![l(7), l(8)]),
        ]);
        assert_eq!(c, expect);
    }

    /// Paper Example 4.5, node v1: contract
    /// {P2^1<-P1; P3^1<-P2; P5<-P4^1; Q<-P5^1; P4^1<-P3^1} to {P5<-P2}.
    /// (Predicate numbering: P1..P5 = 0..4, Q = 5.)
    #[test]
    fn example_4_5_v1() {
        let p = Program::canonical(vec![
            Rule::new(s1(1), vec![l(0)]),  // P2^1 <- P1
            Rule::new(s1(2), vec![l(1)]),  // P3^1 <- P2
            Rule::new(l(4), vec![s1(3)]),  // P5 <- P4^1
            Rule::new(l(5), vec![s1(4)]),  // Q <- P5^1
            Rule::new(s1(3), vec![s1(2)]), // P4^1 <- P3^1
        ]);
        let c = contract(&p);
        let expect = Program::canonical(vec![Rule::new(l(4), vec![l(1)])]);
        assert_eq!(c, expect);
    }

    #[test]
    fn dead_sup_atom_kills_rule() {
        // P0 <- P1^1 and nothing derives P1^1.
        let p = Program::canonical(vec![Rule::new(l(0), vec![s1(1)])]);
        assert!(contract(&p).is_empty());
    }

    #[test]
    fn sup_fact_discharges() {
        // P0 <- P1^1; P1^1 <-.  => P0 <-.
        let p = Program::canonical(vec![Rule::new(l(0), vec![s1(1)]), Rule::fact(s1(1))]);
        let c = contract(&p);
        assert_eq!(c, Program::canonical(vec![Rule::fact(l(0))]));
    }

    #[test]
    fn cyclic_sup_rules_terminate() {
        // P0 <- P1^1; P1^1 <- P2^1; P2^1 <- P1^1  (cycle, no base case).
        let p = Program::canonical(vec![
            Rule::new(l(0), vec![s1(1)]),
            Rule::new(s1(1), vec![s1(2)]),
            Rule::new(s1(2), vec![s1(1)]),
        ]);
        assert!(contract(&p).is_empty());
    }

    #[test]
    fn cyclic_with_base_case() {
        // P0 <- P1^1; P1^1 <- P2^1; P2^1 <- P1^1; P2^1 <- P3. => P0 <- P3.
        let p = Program::canonical(vec![
            Rule::new(l(0), vec![s1(1)]),
            Rule::new(s1(1), vec![s1(2)]),
            Rule::new(s1(2), vec![s1(1)]),
            Rule::new(s1(2), vec![l(3)]),
        ]);
        let c = contract(&p);
        assert_eq!(c, Program::canonical(vec![Rule::new(l(0), vec![l(3)])]));
    }

    #[test]
    fn local_rules_pass_through() {
        let p = Program::canonical(vec![Rule::new(l(0), vec![l(1)]), Rule::fact(l(2))]);
        assert_eq!(contract(&p), p);
    }

    #[test]
    fn mixed_sup_body() {
        // P0 <- P1^1 & P2^2; P1^1 <- P3; P2^2 <- P4.  => P0 <- P3 & P4.
        let p = Program::canonical(vec![
            Rule::new(l(0), vec![s1(1), s2(2)]),
            Rule::new(s1(1), vec![l(3)]),
            Rule::new(s2(2), vec![l(4)]),
        ]);
        let c = contract(&p);
        assert_eq!(
            c,
            Program::canonical(vec![Rule::new(l(0), vec![l(3), l(4)])])
        );
    }

    #[test]
    fn alternative_derivations_kept() {
        // P0 <- P1^1; P1^1 <- P2; P1^1 <- P3.  => P0 <- P2; P0 <- P3.
        let p = Program::canonical(vec![
            Rule::new(l(0), vec![s1(1)]),
            Rule::new(s1(1), vec![l(2)]),
            Rule::new(s1(1), vec![l(3)]),
        ]);
        let c = contract(&p);
        assert_eq!(
            c,
            Program::canonical(vec![
                Rule::new(l(0), vec![l(2)]),
                Rule::new(l(0), vec![l(3)])
            ])
        );
    }
}
