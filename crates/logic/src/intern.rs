//! Hash-consing of residual programs and predicate sets on arena-backed
//! open-addressing tables.
//!
//! The deterministic bottom-up automaton `A` has states `Q_A ⊆ 2^{2^IDB}`
//! represented as residual programs, and the top-down automaton `B` has
//! states `Q_B = 2^IDB` represented as sets of true predicates. Interning
//! both into dense `u32` identifiers makes transition-table keys small and
//! lets the evaluator stream 4-byte state ids to disk between the two
//! phases (paper footnote 12: "we write the pointer to the internal data
//! structure of the residual program ρA(v) for each node").
//!
//! Interning sits on the hot path — every lazily computed transition ends
//! in an intern, and every parallel worker re-interns its states into the
//! master tables — so the layout avoids the two costs of the original
//! map-based design:
//!
//! * **no per-entry `Arc`**: programs live contiguously in a `Vec`
//!   arena, predicate sets as spans of one flat `Atom` arena (no
//!   per-set allocation at all);
//! * **no double lookup**: a [`RawTable`] keyed by stored hashes probes
//!   once per intern — the failed lookup *is* the insertion slot walk,
//!   and the candidate's hash is computed exactly once.
//!
//! [`PredSetInterner::get`] hands out borrowed [`PredSetView`]s into the
//! arena; the owned [`PredSet`] remains as the build/transfer format
//! (e.g. for moving states across worker interners).

use crate::atom::Atom;
use crate::oatable::{fx_hash, RawTable};
use crate::program::Program;

/// Identifier of an interned [`Program`] (a state of automaton `A`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProgramId(pub u32);

/// Interner for canonical residual programs.
#[derive(Default)]
pub struct ProgramInterner {
    /// Arena of interned programs, indexed by id.
    items: Vec<Program>,
    /// Fx hash of each interned program (id-parallel; pre-filters
    /// equality and re-places entries when the table grows).
    hashes: Vec<u64>,
    table: RawTable,
    bytes: usize,
}

impl ProgramInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn find(&self, hash: u64, p: &Program) -> Option<u32> {
        let items = &self.items;
        let hashes = &self.hashes;
        self.table.find(hash, |id| {
            hashes[id as usize] == hash && items[id as usize] == *p
        })
    }

    fn insert(&mut self, hash: u64, p: Program) -> u32 {
        let id = self.items.len() as u32;
        self.bytes += p.byte_size();
        self.items.push(p);
        self.hashes.push(hash);
        let hashes = &self.hashes;
        self.table.insert(hash, id, |i| hashes[i as usize]);
        id
    }

    /// Interns a program, returning its id (allocating one if new).
    pub fn intern(&mut self, p: Program) -> ProgramId {
        let hash = fx_hash(&p);
        match self.find(hash, &p) {
            Some(id) => ProgramId(id),
            None => ProgramId(self.insert(hash, p)),
        }
    }

    /// Interns by reference, cloning only on a miss — the remap pattern
    /// of parallel evaluation (worker states are usually already in the
    /// master tables).
    pub fn intern_ref(&mut self, p: &Program) -> ProgramId {
        let hash = fx_hash(p);
        match self.find(hash, p) {
            Some(id) => ProgramId(id),
            None => ProgramId(self.insert(hash, p.clone())),
        }
    }

    /// Looks up a program by id.
    ///
    /// # Panics
    /// Panics on an id not produced by this interner.
    #[inline]
    pub fn get(&self, id: ProgramId) -> &Program {
        &self.items[id.0 as usize]
    }

    /// Number of distinct programs interned (the automaton's state count).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Approximate heap footprint of all interned programs, in bytes.
    pub fn byte_size(&self) -> usize {
        self.bytes
    }

    /// Heap footprint of the index structures (slot array + stored
    /// hashes + arena slack), in bytes — reported separately so the
    /// `mem` statistics can split payload from table pressure. The
    /// occupied arena slots are already counted by
    /// [`byte_size`](ProgramInterner::byte_size) (each program's
    /// `byte_size` includes its inline struct).
    pub fn table_bytes(&self) -> usize {
        self.table.byte_size()
            + self.hashes.capacity() * std::mem::size_of::<u64>()
            + (self.items.capacity() - self.items.len()) * std::mem::size_of::<Program>()
    }

    /// Longest probe sequence any intern has walked.
    pub fn max_probe(&self) -> u32 {
        self.table.max_probe()
    }
}

/// Identifier of an interned [`PredSet`] (a state of automaton `B`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PredSetId(pub u32);

/// A sorted set of local IDB atoms — a state of the top-down automaton
/// `B = 2^IDB` (the set of predicates true at a node).
///
/// This is the owned build/transfer form; interned sets live in the
/// [`PredSetInterner`] arena and are read through [`PredSetView`].
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct PredSet {
    atoms: Box<[Atom]>,
}

impl PredSet {
    /// Builds a set from atoms (sorted and deduplicated; all atoms must be
    /// local IDB atoms).
    pub fn new(mut atoms: Vec<Atom>) -> Self {
        debug_assert!(atoms.iter().all(|a| a.is_local()));
        atoms.sort_unstable();
        atoms.dedup();
        PredSet {
            atoms: atoms.into_boxed_slice(),
        }
    }

    /// The empty predicate set.
    pub fn empty() -> Self {
        PredSet::default()
    }

    /// Sorted member atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// A borrowed view of this set (the interface interned sets share).
    pub fn view(&self) -> PredSetView<'_> {
        PredSetView { atoms: &self.atoms }
    }

    /// Membership test.
    pub fn contains(&self, a: Atom) -> bool {
        self.atoms.binary_search(&a).is_ok()
    }

    /// Number of predicates in the set.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        std::mem::size_of::<PredSet>() + self.atoms.len() * std::mem::size_of::<Atom>()
    }
}

impl FromIterator<Atom> for PredSet {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        PredSet::new(iter.into_iter().collect())
    }
}

/// A borrowed predicate set: a sorted atom span inside a
/// [`PredSetInterner`] arena (or of an owned [`PredSet`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredSetView<'a> {
    atoms: &'a [Atom],
}

impl<'a> PredSetView<'a> {
    /// Sorted member atoms.
    #[inline]
    pub fn atoms(self) -> &'a [Atom] {
        self.atoms
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, a: Atom) -> bool {
        self.atoms.binary_search(&a).is_ok()
    }

    /// Number of predicates in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.atoms.len()
    }

    /// True if the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.atoms.is_empty()
    }

    /// Copies the span out into an owned [`PredSet`] (for transfer across
    /// interners / threads).
    pub fn to_owned(self) -> PredSet {
        PredSet {
            atoms: self.atoms.into(),
        }
    }
}

/// Interner for predicate sets: all member atoms live concatenated in one
/// flat arena; a set is a span `[ends[id-1], ends[id])` of it. Interning
/// a set that is already present allocates nothing.
#[derive(Default)]
pub struct PredSetInterner {
    /// Flat arena of every interned set's atoms, in id order.
    atoms: Vec<Atom>,
    /// `ends[id]` = exclusive end offset of set `id` in `atoms`.
    ends: Vec<u32>,
    /// Fx hash of each interned set (id-parallel).
    hashes: Vec<u64>,
    table: RawTable,
}

impl PredSetInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn span(&self, id: u32) -> &[Atom] {
        let end = self.ends[id as usize] as usize;
        let start = match id.checked_sub(1) {
            Some(prev) => self.ends[prev as usize] as usize,
            None => 0,
        };
        &self.atoms[start..end]
    }

    /// Interns a **sorted, deduplicated** atom slice, returning its id.
    /// This is the zero-allocation hot path: on a hit nothing is copied.
    pub fn intern_sorted(&mut self, atoms: &[Atom]) -> PredSetId {
        debug_assert!(atoms.windows(2).all(|w| w[0] < w[1]), "unsorted pred set");
        let hash = fx_hash(atoms);
        let found = {
            let hashes = &self.hashes;
            self.table.find(hash, |id| {
                hashes[id as usize] == hash && self.span(id) == atoms
            })
        };
        if let Some(id) = found {
            return PredSetId(id);
        }
        let id = self.ends.len() as u32;
        self.atoms.extend_from_slice(atoms);
        self.ends.push(self.atoms.len() as u32);
        self.hashes.push(hash);
        let hashes = &self.hashes;
        self.table.insert(hash, id, |i| hashes[i as usize]);
        PredSetId(id)
    }

    /// Interns a predicate set, returning its id.
    pub fn intern(&mut self, s: PredSet) -> PredSetId {
        self.intern_sorted(s.atoms())
    }

    /// Looks up a set by id.
    ///
    /// # Panics
    /// Panics on an id not produced by this interner.
    #[inline]
    pub fn get(&self, id: PredSetId) -> PredSetView<'_> {
        PredSetView {
            atoms: self.span(id.0),
        }
    }

    /// Number of distinct sets interned.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Approximate heap footprint of the interned sets themselves
    /// (the atom arena plus per-set span bookkeeping), in bytes.
    pub fn byte_size(&self) -> usize {
        self.atoms.len() * std::mem::size_of::<Atom>()
            + self.ends.len() * std::mem::size_of::<u32>()
    }

    /// Heap footprint of the index structures (slot array + stored
    /// hashes + arena slack), in bytes.
    pub fn table_bytes(&self) -> usize {
        self.table.byte_size()
            + self.hashes.capacity() * std::mem::size_of::<u64>()
            + (self.atoms.capacity() - self.atoms.len()) * std::mem::size_of::<Atom>()
    }

    /// Longest probe sequence any intern has walked.
    pub fn max_probe(&self) -> u32 {
        self.table.max_probe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Rule;

    #[test]
    fn program_interning_dedups() {
        let mut i = ProgramInterner::new();
        let p1 = Program::canonical(vec![Rule::new(Atom::local(0), vec![Atom::local(1)])]);
        let p2 = Program::canonical(vec![Rule::new(Atom::local(0), vec![Atom::local(1)])]);
        let id1 = i.intern(p1);
        let id2 = i.intern(p2);
        assert_eq!(id1, id2);
        assert_eq!(i.len(), 1);
        let id3 = i.intern(Program::empty());
        assert_ne!(id1, id3);
        assert_eq!(i.get(id3), &Program::empty());
        assert!(i.byte_size() > 0);
    }

    #[test]
    fn program_intern_ref_clones_only_on_miss() {
        let mut i = ProgramInterner::new();
        let p = Program::canonical(vec![Rule::fact(Atom::local(4))]);
        let a = i.intern_ref(&p);
        let b = i.intern_ref(&p);
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
        assert_eq!(i.get(a), &p);
    }

    #[test]
    fn predset_sorted_dedup() {
        let s = PredSet::new(vec![Atom::local(3), Atom::local(1), Atom::local(3)]);
        assert_eq!(s.atoms(), &[Atom::local(1), Atom::local(3)]);
        assert!(s.contains(Atom::local(1)));
        assert!(!s.contains(Atom::local(2)));
        assert_eq!(s.view().atoms(), s.atoms());
    }

    #[test]
    fn predset_interning() {
        let mut i = PredSetInterner::new();
        let a = i.intern(PredSet::new(vec![Atom::local(1), Atom::local(0)]));
        let b = i.intern(PredSet::new(vec![Atom::local(0), Atom::local(1)]));
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
        let c = i.intern(PredSet::empty());
        assert_ne!(a, c);
        assert!(i.get(c).is_empty());
        // Views read the arena spans back verbatim.
        assert_eq!(i.get(a).atoms(), &[Atom::local(0), Atom::local(1)]);
        assert!(i.get(a).contains(Atom::local(1)));
        assert_eq!(i.get(a).to_owned().atoms(), i.get(a).atoms());
    }

    #[test]
    fn predset_spans_do_not_alias() {
        // Prefix/suffix-sharing sets must intern distinctly even though
        // they sit adjacent in the flat arena.
        let mut i = PredSetInterner::new();
        let ab = i.intern_sorted(&[Atom::local(0), Atom::local(1)]);
        let b = i.intern_sorted(&[Atom::local(1)]);
        let bc = i.intern_sorted(&[Atom::local(1), Atom::local(2)]);
        assert_ne!(ab, b);
        assert_ne!(b, bc);
        assert_eq!(i.get(b).atoms(), &[Atom::local(1)]);
        assert_eq!(i.get(bc).atoms(), &[Atom::local(1), Atom::local(2)]);
        assert_eq!(i.intern_sorted(&[Atom::local(1)]), b);
    }
}
