//! Hash-consing of residual programs and predicate sets.
//!
//! The deterministic bottom-up automaton `A` has states `Q_A ⊆ 2^{2^IDB}`
//! represented as residual programs, and the top-down automaton `B` has
//! states `Q_B = 2^IDB` represented as sets of true predicates. Interning
//! both into dense `u32` identifiers makes transition-table keys small and
//! lets the evaluator stream 4-byte state ids to disk between the two
//! phases (paper footnote 12: "we write the pointer to the internal data
//! structure of the residual program ρA(v) for each node").

use crate::atom::Atom;
use crate::fxhash::FxHashMap;
use crate::program::Program;
use std::sync::Arc;

/// Identifier of an interned [`Program`] (a state of automaton `A`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProgramId(pub u32);

/// Interner for canonical residual programs.
#[derive(Default)]
pub struct ProgramInterner {
    items: Vec<Arc<Program>>,
    map: FxHashMap<Arc<Program>, u32>,
    bytes: usize,
}

impl ProgramInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a program, returning its id (allocating one if new).
    pub fn intern(&mut self, p: Program) -> ProgramId {
        if let Some(&id) = self.map.get(&p) {
            return ProgramId(id);
        }
        let id = self.items.len() as u32;
        let arc = Arc::new(p);
        self.bytes += arc.byte_size();
        self.items.push(arc.clone());
        self.map.insert(arc, id);
        ProgramId(id)
    }

    /// Looks up a program by id.
    ///
    /// # Panics
    /// Panics on an id not produced by this interner.
    pub fn get(&self, id: ProgramId) -> &Program {
        &self.items[id.0 as usize]
    }

    /// Number of distinct programs interned (the automaton's state count).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Approximate heap footprint of all interned programs, in bytes.
    pub fn byte_size(&self) -> usize {
        self.bytes
    }
}

/// Identifier of an interned [`PredSet`] (a state of automaton `B`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PredSetId(pub u32);

/// A sorted set of local IDB atoms — a state of the top-down automaton
/// `B = 2^IDB` (the set of predicates true at a node).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct PredSet {
    atoms: Box<[Atom]>,
}

impl PredSet {
    /// Builds a set from atoms (sorted and deduplicated; all atoms must be
    /// local IDB atoms).
    pub fn new(mut atoms: Vec<Atom>) -> Self {
        debug_assert!(atoms.iter().all(|a| a.is_local()));
        atoms.sort_unstable();
        atoms.dedup();
        PredSet {
            atoms: atoms.into_boxed_slice(),
        }
    }

    /// The empty predicate set.
    pub fn empty() -> Self {
        PredSet::default()
    }

    /// Sorted member atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Membership test.
    pub fn contains(&self, a: Atom) -> bool {
        self.atoms.binary_search(&a).is_ok()
    }

    /// Number of predicates in the set.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        std::mem::size_of::<PredSet>() + self.atoms.len() * std::mem::size_of::<Atom>()
    }
}

impl FromIterator<Atom> for PredSet {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        PredSet::new(iter.into_iter().collect())
    }
}

/// Interner for predicate sets.
#[derive(Default)]
pub struct PredSetInterner {
    items: Vec<Arc<PredSet>>,
    map: FxHashMap<Arc<PredSet>, u32>,
    bytes: usize,
}

impl PredSetInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a predicate set, returning its id.
    pub fn intern(&mut self, s: PredSet) -> PredSetId {
        if let Some(&id) = self.map.get(&s) {
            return PredSetId(id);
        }
        let id = self.items.len() as u32;
        let arc = Arc::new(s);
        self.bytes += arc.byte_size();
        self.items.push(arc.clone());
        self.map.insert(arc, id);
        PredSetId(id)
    }

    /// Looks up a set by id.
    pub fn get(&self, id: PredSetId) -> &PredSet {
        &self.items[id.0 as usize]
    }

    /// Number of distinct sets interned.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Rule;

    #[test]
    fn program_interning_dedups() {
        let mut i = ProgramInterner::new();
        let p1 = Program::canonical(vec![Rule::new(Atom::local(0), vec![Atom::local(1)])]);
        let p2 = Program::canonical(vec![Rule::new(Atom::local(0), vec![Atom::local(1)])]);
        let id1 = i.intern(p1);
        let id2 = i.intern(p2);
        assert_eq!(id1, id2);
        assert_eq!(i.len(), 1);
        let id3 = i.intern(Program::empty());
        assert_ne!(id1, id3);
        assert_eq!(i.get(id3), &Program::empty());
        assert!(i.byte_size() > 0);
    }

    #[test]
    fn predset_sorted_dedup() {
        let s = PredSet::new(vec![Atom::local(3), Atom::local(1), Atom::local(3)]);
        assert_eq!(s.atoms(), &[Atom::local(1), Atom::local(3)]);
        assert!(s.contains(Atom::local(1)));
        assert!(!s.contains(Atom::local(2)));
    }

    #[test]
    fn predset_interning() {
        let mut i = PredSetInterner::new();
        let a = i.intern(PredSet::new(vec![Atom::local(1), Atom::local(0)]));
        let b = i.intern(PredSet::new(vec![Atom::local(0), Atom::local(1)]));
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
        let c = i.intern(PredSet::empty());
        assert_ne!(a, c);
        assert!(i.get(c).is_empty());
    }
}
