//! Canonical propositional Horn programs.
//!
//! Residual programs serve as *states* of the deterministic bottom-up tree
//! automaton (paper Section 4.2), so they must have a canonical form under
//! which logically-identical programs compare equal and hash identically:
//!
//! * rule bodies are sorted and deduplicated,
//! * tautological rules (head appears in the body) are dropped,
//! * rules are sorted and deduplicated,
//! * *subsumption-reduced*: a rule is dropped if another rule with the same
//!   head has a subset body (in particular, a fact `X ←` subsumes every
//!   other rule with head `X`).

use crate::atom::Atom;
use std::fmt;

/// A propositional Horn clause `head ← body₁ ∧ … ∧ bodyₙ`.
/// An empty body makes the rule a *fact*.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rule {
    /// Head atom.
    pub head: Atom,
    /// Body atoms, sorted and deduplicated.
    pub body: Box<[Atom]>,
}

impl Rule {
    /// Builds a rule, sorting and deduplicating the body.
    pub fn new(head: Atom, mut body: Vec<Atom>) -> Self {
        body.sort_unstable();
        body.dedup();
        Rule {
            head,
            body: body.into_boxed_slice(),
        }
    }

    /// A fact `head ←`.
    pub fn fact(head: Atom) -> Self {
        Rule {
            head,
            body: Box::new([]),
        }
    }

    /// True if the body is empty.
    #[inline]
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// True if the head occurs in the body (the rule derives nothing new).
    #[inline]
    pub fn is_tautology(&self) -> bool {
        self.body.binary_search(&self.head).is_ok()
    }

    /// True if `self`'s body is a subset of `other`'s body (bodies sorted).
    fn body_subset_of(&self, other: &Rule) -> bool {
        if self.body.len() > other.body.len() {
            return false;
        }
        let mut it = other.body.iter();
        'outer: for a in self.body.iter() {
            for b in it.by_ref() {
                match b.cmp(a) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Approximate heap size in bytes (for the memory statistics of the
    /// benchmark tables).
    pub fn byte_size(&self) -> usize {
        std::mem::size_of::<Rule>() + self.body.len() * std::mem::size_of::<Atom>()
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} <-", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, " &")?;
            }
            write!(f, " {a:?}")?;
        }
        Ok(())
    }
}

/// A canonical propositional Horn program: the hash-consable unit used as
/// an automaton state.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Program {
    rules: Box<[Rule]>,
}

impl Program {
    /// The empty program (no constraints: every truth assignment is a
    /// model — the automaton state carrying no information).
    pub fn empty() -> Self {
        Program::default()
    }

    /// Canonicalizes a set of rules: sorts/dedups bodies and rules, drops
    /// tautologies, and applies subsumption reduction.
    pub fn canonical(rules: Vec<Rule>) -> Self {
        let mut rules: Vec<Rule> = rules.into_iter().filter(|r| !r.is_tautology()).collect();
        // Sort so that for equal heads, shorter bodies come first: then a
        // single forward pass can apply subsumption against kept rules.
        rules.sort_unstable_by(|a, b| {
            a.head
                .cmp(&b.head)
                .then(a.body.len().cmp(&b.body.len()))
                .then(a.body.cmp(&b.body))
        });
        rules.dedup();
        let mut kept: Vec<Rule> = Vec::with_capacity(rules.len());
        let mut group_start = 0usize;
        for r in rules {
            if kept.get(group_start).is_some_and(|g| g.head != r.head) {
                group_start = kept.len();
            }
            let subsumed = kept[group_start..].iter().any(|k| k.body_subset_of(&r));
            if !subsumed {
                kept.push(r);
            }
        }
        Program {
            rules: kept.into_boxed_slice(),
        }
    }

    /// The rules, in canonical order.
    #[inline]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// `TruePreds` (paper §4.1): the atoms already known true, i.e. the
    /// heads of facts.
    pub fn true_preds(&self) -> impl Iterator<Item = Atom> + '_ {
        self.rules.iter().filter(|r| r.is_fact()).map(|r| r.head)
    }

    /// `PredsAsRules` (paper §4.1): a set of atoms as a set of facts.
    pub fn preds_as_rules(preds: impl IntoIterator<Item = Atom>) -> Vec<Rule> {
        preds.into_iter().map(Rule::fact).collect()
    }

    /// `PushDown_k` (paper §4.1): adds superscript `k` to every atom. All
    /// atoms must be local.
    pub fn push_down(&self, k: u8) -> Vec<Rule> {
        let mut out = Vec::new();
        self.push_down_into(k, &mut out);
        out
    }

    /// [`push_down`](Program::push_down) appending into a caller-owned
    /// buffer — the lazy automata call this once per transition miss, so
    /// reusing the vector keeps allocation off the hot path.
    pub fn push_down_into(&self, k: u8, out: &mut Vec<Rule>) {
        out.reserve(self.rules.len());
        out.extend(self.rules.iter().map(|r| Rule {
            head: r.head.push_down(k),
            body: r.body.iter().map(|a| a.push_down(k)).collect(),
        }));
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        std::mem::size_of::<Program>() + self.rules.iter().map(Rule::byte_size).sum::<usize>()
    }

    /// Checks a truth assignment (set of true atoms, sorted) against the
    /// program: every rule whose body is satisfied must have a true head.
    /// Used by tests relating residual programs to STA state sets.
    pub fn is_model(&self, true_atoms: &[Atom]) -> bool {
        let truth = |a: &Atom| true_atoms.binary_search(a).is_ok();
        self.rules
            .iter()
            .all(|r| !r.body.iter().all(&truth) || truth(&r.head))
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.rules.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> Atom {
        Atom::local(i)
    }

    #[test]
    fn rule_body_canonicalized() {
        let r = Rule::new(l(0), vec![l(3), l(1), l(3)]);
        assert_eq!(&*r.body, &[l(1), l(3)]);
    }

    #[test]
    fn tautologies_dropped() {
        let p = Program::canonical(vec![Rule::new(l(0), vec![l(0), l(1)])]);
        assert!(p.is_empty());
    }

    #[test]
    fn subsumption_fact_beats_rules() {
        let p = Program::canonical(vec![
            Rule::new(l(0), vec![l(1), l(2)]),
            Rule::fact(l(0)),
            Rule::new(l(0), vec![l(1)]),
        ]);
        assert_eq!(p.len(), 1);
        assert!(p.rules()[0].is_fact());
    }

    #[test]
    fn subsumption_subset_body() {
        let p = Program::canonical(vec![
            Rule::new(l(0), vec![l(1), l(2), l(3)]),
            Rule::new(l(0), vec![l(1), l(3)]),
            Rule::new(l(4), vec![l(1), l(2)]),
        ]);
        assert_eq!(p.len(), 2);
        assert_eq!(&*p.rules()[0].body, &[l(1), l(3)]);
    }

    #[test]
    fn canonical_equal_programs_hash_equal() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let p1 = Program::canonical(vec![
            Rule::new(l(0), vec![l(2), l(1)]),
            Rule::new(l(3), vec![l(4)]),
        ]);
        let p2 = Program::canonical(vec![
            Rule::new(l(3), vec![l(4)]),
            Rule::new(l(0), vec![l(1), l(2), l(2)]),
        ]);
        assert_eq!(p1, p2);
        let h = |p: &Program| {
            let mut h = DefaultHasher::new();
            p.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(&p1), h(&p2));
    }

    #[test]
    fn push_down_and_true_preds() {
        let p = Program::canonical(vec![Rule::fact(l(0)), Rule::new(l(1), vec![l(2)])]);
        assert_eq!(p.true_preds().collect::<Vec<_>>(), vec![l(0)]);
        let down = p.push_down(1);
        assert!(down.iter().all(|r| r.head.is_sup()));
        assert_eq!(down[0].head, Atom::sup1(0));
    }

    #[test]
    fn model_check() {
        // P0 <- P1 & P2
        let p = Program::canonical(vec![Rule::new(l(0), vec![l(1), l(2)])]);
        assert!(p.is_model(&[])); // body unsatisfied
        assert!(p.is_model(&[l(1)]));
        assert!(p.is_model(&[l(0), l(1), l(2)]));
        assert!(!p.is_model(&[l(1), l(2)]));
    }
}
