//! Propositional atoms with child superscripts.
//!
//! Definition 4.2 of the paper works with propositional predicates
//! `σ ∪ {X_i, X_i^1, X_i^2}`: for each IDB predicate `X_i` of the TMNF
//! program there is a *local* atom `X_i`, a *left-child* atom `X_i^1` and a
//! *right-child* atom `X_i^2`; EDB predicates (relation names such as
//! `Root` or `Label[a]`) are a separate namespace.

use std::fmt;

/// The four kinds of propositional atoms.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Tag {
    /// Local IDB predicate `X_i` (no superscript).
    Local = 0,
    /// Left-child predicate `X_i^1`.
    Sup1 = 1,
    /// Right-child predicate `X_i^2`.
    Sup2 = 2,
    /// EDB predicate (a relation name from the schema σ).
    Edb = 3,
}

/// A propositional atom: a predicate index and a [`Tag`], packed into a
/// `u32` (`index << 2 | tag`). IDB and EDB predicates use independent
/// dense index spaces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom(pub u32);

impl Atom {
    /// Local IDB atom `X_i`.
    #[inline]
    pub fn local(pred: u32) -> Self {
        Atom(pred << 2)
    }

    /// Left-child atom `X_i^1`.
    #[inline]
    pub fn sup1(pred: u32) -> Self {
        Atom((pred << 2) | 1)
    }

    /// Right-child atom `X_i^2`.
    #[inline]
    pub fn sup2(pred: u32) -> Self {
        Atom((pred << 2) | 2)
    }

    /// Child atom `X_i^k` for `k ∈ {1, 2}`.
    #[inline]
    pub fn sup(pred: u32, k: u8) -> Self {
        debug_assert!(k == 1 || k == 2);
        Atom((pred << 2) | k as u32)
    }

    /// EDB atom with the given EDB index.
    #[inline]
    pub fn edb(pred: u32) -> Self {
        Atom((pred << 2) | 3)
    }

    /// Predicate index (meaningful within the atom's namespace).
    #[inline]
    pub fn pred(self) -> u32 {
        self.0 >> 2
    }

    /// The atom's tag.
    #[inline]
    pub fn tag(self) -> Tag {
        match self.0 & 3 {
            0 => Tag::Local,
            1 => Tag::Sup1,
            2 => Tag::Sup2,
            _ => Tag::Edb,
        }
    }

    /// True for `X_i` (local IDB, no superscript).
    #[inline]
    pub fn is_local(self) -> bool {
        self.0 & 3 == 0
    }

    /// True for `X_i^1` or `X_i^2`.
    #[inline]
    pub fn is_sup(self) -> bool {
        matches!(self.0 & 3, 1 | 2)
    }

    /// True for EDB atoms.
    #[inline]
    pub fn is_edb(self) -> bool {
        self.0 & 3 == 3
    }

    /// `PushDown_k`: adds superscript `k` to a local atom (paper §4.1).
    ///
    /// # Panics
    /// Panics (debug) if the atom is not local.
    #[inline]
    pub fn push_down(self, k: u8) -> Self {
        debug_assert!(self.is_local(), "PushDown requires local atoms");
        debug_assert!(k == 1 || k == 2);
        Atom(self.0 | k as u32)
    }

    /// `PushUpFrom_k`: removes a superscript (paper §4.1).
    ///
    /// # Panics
    /// Panics (debug) if the atom is not superscripted.
    #[inline]
    pub fn push_up(self) -> Self {
        debug_assert!(self.is_sup(), "PushUpFrom requires superscripted atoms");
        Atom(self.0 & !3)
    }

    /// The superscript `k ∈ {1, 2}`, if any.
    #[inline]
    pub fn sup_k(self) -> Option<u8> {
        match self.0 & 3 {
            1 => Some(1),
            2 => Some(2),
            _ => None,
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tag() {
            Tag::Local => write!(f, "P{}", self.pred()),
            Tag::Sup1 => write!(f, "P{}^1", self.pred()),
            Tag::Sup2 => write!(f, "P{}^2", self.pred()),
            Tag::Edb => write!(f, "E{}", self.pred()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack() {
        let a = Atom::local(7);
        assert_eq!(a.pred(), 7);
        assert_eq!(a.tag(), Tag::Local);
        assert!(a.is_local() && !a.is_sup() && !a.is_edb());

        let b = Atom::sup1(7);
        assert_eq!(b.tag(), Tag::Sup1);
        assert_eq!(b.sup_k(), Some(1));
        assert_eq!(b.push_up(), a);

        let c = a.push_down(2);
        assert_eq!(c, Atom::sup2(7));
        assert_eq!(c.sup_k(), Some(2));

        let e = Atom::edb(3);
        assert!(e.is_edb());
        assert_eq!(e.pred(), 3);
        assert_eq!(e.sup_k(), None);
    }

    #[test]
    fn ordering_groups_by_pred_then_tag() {
        assert!(Atom::local(1) < Atom::sup1(1));
        assert!(Atom::sup2(1) < Atom::local(2));
    }
}
