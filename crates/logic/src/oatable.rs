//! Raw open-addressing tables for the automata hot path.
//!
//! The paper's "four hash tables" are hit once (or twice) per tree node,
//! so their constant factors bound phase-1 throughput on every worker.
//! `std::collections::HashMap` pays for generality the automata never
//! use: tombstone-capable control bytes, per-entry key storage even when
//! the keys already live in an arena, and a double lookup on the
//! miss-then-insert pattern of interning. The two building blocks here
//! strip all of that:
//!
//! * [`RawTable`] — a bare id index: power-of-two slot array holding
//!   `u32` entry ids, [`FxHasher`] hashing, triangular
//!   (quadratic) probing, no deletions. Keys live elsewhere (an interner
//!   arena, a key vector); equality is a caller closure. One probe
//!   sequence serves both lookup and insertion, so interning an item
//!   hashes it exactly once.
//! * [`FxCache`] — a `Copy`-key memo table (`K → u32`) built on
//!   [`RawTable`]: keys and values in parallel vectors, ids in the slot
//!   array. This is the shape of the transition tables δ_A and δ_B and
//!   of the per-node schema-symbol memo.
//!
//! Both report probe-length statistics so evaluation runs can expose
//! interning pressure (see `EvalStats` in `arb-core`).

use crate::fxhash::FxHasher;
use std::hash::{Hash, Hasher};

/// Hashes a value with [`FxHasher`] (the shared hash of every table in
/// this module — mixing for slot indexing happens inside the tables).
#[inline]
pub fn fx_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

const EMPTY: u32 = u32::MAX;
/// Grow when occupancy would exceed 3/4 — short probes beat the extra
/// 4 bytes/slot these tables cost at lower load.
const MAX_LOAD_NUM: usize = 3;
const MAX_LOAD_DEN: usize = 4;

/// Folds the high hash bits into the slot index. Fx multiplies last, so
/// its low bits are weak for small integer keys; the xor-shift spreads
/// the well-mixed high half over the masked range.
#[inline]
fn slot_of(hash: u64, mask: usize) -> usize {
    (hash ^ (hash >> 32)) as usize & mask
}

/// A bare open-addressing id index over externally stored keys.
///
/// Entries are dense `u32` ids (`0..len`, assigned by the caller);
/// deletion is unsupported — automaton state spaces and transition
/// tables only ever grow within a run.
#[derive(Default)]
pub struct RawTable {
    /// Power-of-two slot array of entry ids; `EMPTY` marks a free slot.
    slots: Box<[u32]>,
    len: usize,
    max_probe: u32,
}

impl RawTable {
    /// An empty table (no allocation until the first insert).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Heap footprint of the slot array, in bytes.
    pub fn byte_size(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u32>()
    }

    /// Longest probe sequence any lookup or insert has walked (a load /
    /// clustering indicator; 0 or 1 on a healthy table).
    pub fn max_probe(&self) -> u32 {
        self.max_probe
    }

    /// Looks up the entry with this `hash` for which `eq` holds.
    ///
    /// `eq` receives candidate entry ids (same-hash or colliding slots)
    /// and must compare the caller-stored key.
    #[inline]
    pub fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut pos = slot_of(hash, mask);
        let mut step = 0usize;
        loop {
            match self.slots[pos] {
                EMPTY => return None,
                id if eq(id) => return Some(id),
                _ => {}
            }
            // Triangular probing: offsets 1, 3, 6, … visit every slot of
            // a power-of-two table exactly once.
            step += 1;
            debug_assert!(step <= mask, "open-addressing table overfull");
            pos = (pos + step) & mask;
        }
    }

    /// Inserts entry `id` under `hash`. The entry must be absent (pair a
    /// failed [`find`](RawTable::find) with this call). `rehash` maps an
    /// existing entry id back to its hash when the table grows.
    pub fn insert(&mut self, hash: u64, id: u32, mut rehash: impl FnMut(u32) -> u64) {
        if (self.len + 1) * MAX_LOAD_DEN > self.slots.len() * MAX_LOAD_NUM {
            self.grow(&mut rehash);
        }
        let probe = Self::place(&mut self.slots, hash, id);
        self.max_probe = self.max_probe.max(probe);
        self.len += 1;
    }

    /// Probes for the first empty slot and writes `id`; returns the
    /// probe length.
    fn place(slots: &mut [u32], hash: u64, id: u32) -> u32 {
        let mask = slots.len() - 1;
        let mut pos = slot_of(hash, mask);
        let mut step = 0usize;
        while slots[pos] != EMPTY {
            step += 1;
            debug_assert!(step <= mask, "open-addressing table overfull");
            pos = (pos + step) & mask;
        }
        slots[pos] = id;
        step as u32
    }

    fn grow(&mut self, rehash: &mut impl FnMut(u32) -> u64) {
        let new_cap = (self.slots.len() * 2).max(16);
        let mut slots = vec![EMPTY; new_cap].into_boxed_slice();
        for &id in self.slots.iter().filter(|&&id| id != EMPTY) {
            let probe = Self::place(&mut slots, rehash(id), id);
            self.max_probe = self.max_probe.max(probe);
        }
        self.slots = slots;
    }
}

/// A `K → u32` memo table with inline `Copy` keys — the transition-table
/// shape (δ_A, δ_B, schema-symbol memo).
#[derive(Default)]
pub struct FxCache<K> {
    keys: Vec<K>,
    vals: Vec<u32>,
    table: RawTable,
}

impl<K: Copy + Eq + Hash> FxCache<K> {
    /// An empty cache.
    pub fn new() -> Self {
        FxCache {
            keys: Vec::new(),
            vals: Vec::new(),
            table: RawTable::new(),
        }
    }

    /// The memoized value for `key`, if present.
    #[inline]
    pub fn get(&self, key: &K) -> Option<u32> {
        let keys = &self.keys;
        self.table
            .find(fx_hash(key), |id| keys[id as usize] == *key)
            .map(|id| self.vals[id as usize])
    }

    /// Memoizes `key → val`. The key must be absent (the automata always
    /// probe before computing a transition).
    pub fn insert(&mut self, key: K, val: u32) {
        debug_assert!(self.get(&key).is_none(), "FxCache key inserted twice");
        let id = self.keys.len() as u32;
        let hash = fx_hash(&key);
        self.keys.push(key);
        self.vals.push(val);
        let keys = &self.keys;
        self.table.insert(hash, id, |i| fx_hash(&keys[i as usize]));
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Heap footprint (keys, values, slot array), in bytes.
    pub fn byte_size(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<K>()
            + self.vals.capacity() * std::mem::size_of::<u32>()
            + self.table.byte_size()
    }

    /// Longest probe sequence observed (see [`RawTable::max_probe`]).
    pub fn max_probe(&self) -> u32 {
        self.table.max_probe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_table_find_insert_roundtrip() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 7 + 1).collect();
        let mut t = RawTable::new();
        for (id, &k) in keys.iter().enumerate() {
            assert_eq!(t.find(fx_hash(&k), |i| keys[i as usize] == k), None);
            t.insert(fx_hash(&k), id as u32, |i| fx_hash(&keys[i as usize]));
        }
        assert_eq!(t.len(), 1000);
        assert!(t.capacity().is_power_of_two());
        for (id, &k) in keys.iter().enumerate() {
            assert_eq!(
                t.find(fx_hash(&k), |i| keys[i as usize] == k),
                Some(id as u32),
                "key {k}"
            );
        }
        // Absent keys miss even under heavy load.
        for k in (5000u64..5100).map(|i| i * 13) {
            assert_eq!(t.find(fx_hash(&k), |i| keys[i as usize] == k), None);
        }
        assert!(t.byte_size() >= t.capacity() * 4);
    }

    #[test]
    fn cache_transition_key_shape() {
        let mut c: FxCache<(u32, u32, u32)> = FxCache::new();
        for s1 in 0..20u32 {
            for s2 in 0..20u32 {
                assert_eq!(c.get(&(s1, s2, 7)), None);
                c.insert((s1, s2, 7), s1 * 100 + s2);
            }
        }
        assert_eq!(c.len(), 400);
        for s1 in 0..20u32 {
            for s2 in 0..20u32 {
                assert_eq!(c.get(&(s1, s2, 7)), Some(s1 * 100 + s2));
                assert_eq!(c.get(&(s1, s2, 8)), None);
            }
        }
        assert!(c.byte_size() > 0);
        // 3/4 max load keeps clustering — and therefore probes — short.
        assert!(c.max_probe() < 32, "max probe {}", c.max_probe());
    }

    #[test]
    fn sequential_ids_do_not_cluster() {
        // The automata's keys are dense sequential ids — the worst case
        // for a multiply-only hash indexed by its low bits.
        let mut c: FxCache<u32> = FxCache::new();
        for k in 0..10_000u32 {
            c.insert(k, k);
        }
        assert!(c.max_probe() < 64, "max probe {}", c.max_probe());
    }
}
