//! A small, fast, non-cryptographic hasher for the automaton transition
//! tables (the paper's "four hash tables").
//!
//! This is the Fx algorithm used by rustc (multiply–rotate–xor over
//! machine words). Implemented in-repo to keep the dependency set to the
//! approved offline list; HashDoS resistance is irrelevant here because
//! keys are internally generated state identifiers.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx word-at-a-time hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&500), Some(&1000));
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn distinct_inputs_distinct_hashes_mostly() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_stream_tail_handled() {
        let mut h1 = FxHasher::default();
        h1.write(b"abcdefghij"); // 8 + 2 bytes
        let mut h2 = FxHasher::default();
        h2.write(b"abcdefghik");
        assert_ne!(h1.finish(), h2.finish());
    }
}
