//! Semantic property tests for the propositional machinery, against
//! brute-force model enumeration over small atom universes.
//!
//! These pin down the two lemmas the two-phase algorithm's correctness
//! rests on (paper Section 4):
//!
//! 1. **LTUR** computes the least model: an IDB atom is derivable iff it
//!    is true in every model, and the residual program has the same
//!    models as the input.
//! 2. **ContractProgram** preserves the *local projection* of the model
//!    set: an assignment of the local atoms is a model of `contract(P)`
//!    iff it extends to a model of `P` over the superscripted atoms.

use arb_logic::{contract, ltur_once, Atom, Program, Rule};
use proptest::prelude::*;

const N_LOCAL: u32 = 4;
const N_SUP: u32 = 3;

/// All atoms of the test universe, in a fixed order.
fn universe() -> Vec<Atom> {
    let mut u: Vec<Atom> = (0..N_LOCAL).map(Atom::local).collect();
    u.extend((0..N_SUP).map(Atom::sup1));
    u
}

/// Decodes a bitmask over [`universe`] into a sorted atom set.
fn assignment(mask: u32) -> Vec<Atom> {
    let mut atoms: Vec<Atom> = universe()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, a)| a)
        .collect();
    atoms.sort_unstable();
    atoms
}

/// All models of a program, as masks.
fn models(p: &Program) -> Vec<u32> {
    let n = universe().len();
    (0..1u32 << n)
        .filter(|&m| p.is_model(&assignment(m)))
        .collect()
}

/// Strategy: a random Horn program over the universe (no EDB atoms).
fn random_rules() -> impl Strategy<Value = Vec<Rule>> {
    let n = universe().len();
    let rule = (0..n, proptest::collection::vec(0..n, 0..3usize));
    proptest::collection::vec(rule, 0..10).prop_map(|rs| {
        let u = universe();
        rs.into_iter()
            .map(|(h, body)| Rule::new(u[h], body.into_iter().map(|b| u[b]).collect()))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// LTUR's derived facts = intersection of all models (the least
    /// model), and the residual program is model-equivalent.
    #[test]
    fn ltur_computes_least_model(rules in random_rules()) {
        let input = Program::canonical(rules.clone());
        let residual = ltur_once(&rules);
        // Model-equivalence.
        prop_assert_eq!(models(&input), models(&residual));
        // Facts = atoms true in all models.
        let ms = models(&input);
        for (i, a) in universe().into_iter().enumerate() {
            let in_all = ms.iter().all(|m| m & (1 << i) != 0);
            let derived = residual.true_preds().any(|f| f == a);
            prop_assert_eq!(derived, in_all, "atom {:?}", a);
        }
    }

    /// Contraction preserves the local projection of the model set:
    /// local models of contract(P) = { m|local : m model of P }.
    #[test]
    fn contract_preserves_local_projection(rules in random_rules()) {
        let p = Program::canonical(rules);
        let c = contract(&p);
        // contract output must be local-only.
        for r in c.rules() {
            prop_assert!(r.head.is_local());
            prop_assert!(r.body.iter().all(|a| a.is_local()));
        }
        let local_mask = (1u32 << N_LOCAL) - 1;
        let projected: std::collections::BTreeSet<u32> =
            models(&p).into_iter().map(|m| m & local_mask).collect();
        let local_models: std::collections::BTreeSet<u32> = (0..1u32 << N_LOCAL)
            .filter(|&m| c.is_model(&assignment(m)))
            .collect();
        prop_assert_eq!(local_models, projected);
    }

    /// Canonicalization (incl. subsumption) is semantics-preserving and
    /// idempotent.
    #[test]
    fn canonical_is_sound_and_idempotent(rules in random_rules()) {
        let p1 = Program::canonical(rules.clone());
        let p2 = Program::canonical(p1.rules().to_vec());
        prop_assert_eq!(&p1, &p2);
        let raw = Program::canonical(rules); // same path, sanity
        prop_assert_eq!(models(&raw), models(&p1));
    }
}
