//! A conventional node-at-a-time Core XPath evaluator.
//!
//! This is the class of engine the paper's introduction criticizes:
//! every location step walks the axis from each frontier node, and every
//! qualifier re-evaluates its subexpression per candidate node — so parts
//! of the tree are visited many times (up to exponentially often in naive
//! engines; here memoized per (condition, node) to the \[10\]-style
//! polynomial bound). It doubles as a differential-testing oracle for the
//! TMNF compilation.

use crate::ast::{Axis, Expr, LocationPath, NodeTest, Step};
use arb_tree::{BinaryTree, LabelTable, NodeId, NodeSet};
use std::collections::HashMap;

/// Evaluation context: a tree node or the virtual document node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Ctx {
    Doc,
    Node(NodeId),
}

/// The direct evaluator.
pub struct DirectEvaluator<'t> {
    tree: &'t BinaryTree,
    labels: &'t LabelTable,
    /// Memo for qualifier expressions: (expr identity, node) → bool.
    memo: HashMap<(usize, NodeId), bool>,
    /// Count of axis-node visits (work measure for the baseline
    /// comparison).
    pub visits: u64,
}

impl<'t> DirectEvaluator<'t> {
    /// A fresh evaluator for one tree.
    pub fn new(tree: &'t BinaryTree, labels: &'t LabelTable) -> Self {
        DirectEvaluator {
            tree,
            labels,
            memo: HashMap::new(),
            visits: 0,
        }
    }

    /// Evaluates a location path from the document node, returning the
    /// selected tree nodes in preorder.
    pub fn evaluate(&mut self, path: &LocationPath) -> NodeSet {
        // The memo keys by AST node address, which is only stable within
        // one path's evaluation.
        self.memo.clear();
        let frontier = self.eval_steps(vec![Ctx::Doc], &path.steps);
        let mut out = NodeSet::new(self.tree.len());
        for c in frontier {
            if let Ctx::Node(v) = c {
                out.insert(v);
            }
        }
        out
    }

    fn eval_steps(&mut self, mut frontier: Vec<Ctx>, steps: &[Step]) -> Vec<Ctx> {
        for step in steps {
            let mut next: Vec<Ctx> = Vec::new();
            let mut seen = NodeSet::new(self.tree.len());
            let mut doc_in = false;
            for &c in &frontier {
                for target in self.axis_members(c, step.axis) {
                    match target {
                        Ctx::Doc => {
                            // The document survives only unconstrained
                            // node() steps (mirrors the compiler).
                            if !doc_in
                                && step.test == NodeTest::AnyNode
                                && step.predicates.is_empty()
                            {
                                doc_in = true;
                                next.push(Ctx::Doc);
                            }
                        }
                        Ctx::Node(v) => {
                            if seen.contains(v) {
                                continue;
                            }
                            if !self.test(v, &step.test) {
                                continue;
                            }
                            if step.predicates.iter().any(|p| !self.eval_expr(v, p)) {
                                continue;
                            }
                            seen.insert(v);
                            next.push(Ctx::Node(v));
                        }
                    }
                }
            }
            next.sort_by_key(|c| match c {
                Ctx::Doc => u32::MAX,
                Ctx::Node(v) => v.0,
            });
            frontier = next;
        }
        frontier
    }

    fn test(&self, v: NodeId, test: &NodeTest) -> bool {
        match test {
            NodeTest::Name(n) => self.labels.get(n) == Some(self.tree.label(v)),
            NodeTest::AnyElement => !self.tree.label(v).is_text(),
            NodeTest::Text => self.tree.label(v).is_text(),
            NodeTest::AnyNode => true,
        }
    }

    fn eval_expr(&mut self, v: NodeId, expr: &Expr) -> bool {
        let key = (expr as *const Expr as usize, v);
        if let Some(&b) = self.memo.get(&key) {
            return b;
        }
        let r = match expr {
            Expr::And(a, b) => self.eval_expr(v, a) && self.eval_expr(v, b),
            Expr::Or(a, b) => self.eval_expr(v, a) || self.eval_expr(v, b),
            Expr::Not(e) => !self.eval_expr(v, e),
            Expr::Path(lp) => {
                let start = if lp.absolute { Ctx::Doc } else { Ctx::Node(v) };
                !self.eval_steps(vec![start], &lp.steps).is_empty()
            }
            Expr::ContainsText(text) => {
                let bytes = text.as_bytes();
                let mut descendants = Vec::new();
                self.collect_descendants(v, &mut descendants);
                descendants.iter().any(|&y| self.spells(y, bytes))
            }
        };
        self.memo.insert(key, r);
        r
    }

    /// The members of an axis from a context, in document order.
    fn axis_members(&mut self, c: Ctx, axis: Axis) -> Vec<Ctx> {
        let t = self.tree;
        let out: Vec<Ctx> = match c {
            Ctx::Doc => match axis {
                Axis::Child => vec![Ctx::Node(t.root())],
                Axis::Descendant => t.nodes().map(Ctx::Node).collect(),
                Axis::DescendantOrSelf => std::iter::once(Ctx::Doc)
                    .chain(t.nodes().map(Ctx::Node))
                    .collect(),
                Axis::SelfAxis | Axis::AncestorOrSelf => vec![Ctx::Doc],
                _ => vec![],
            },
            Ctx::Node(v) => match axis {
                Axis::SelfAxis => vec![Ctx::Node(v)],
                Axis::Child => t.unranked_children(v).into_iter().map(Ctx::Node).collect(),
                Axis::Descendant => {
                    let mut out = Vec::new();
                    self.collect_descendants(v, &mut out);
                    out.into_iter().map(Ctx::Node).collect()
                }
                Axis::DescendantOrSelf => {
                    let mut out = vec![v];
                    self.collect_descendants(v, &mut out);
                    out.into_iter().map(Ctx::Node).collect()
                }
                Axis::Parent => t.unranked_parent(v).map(Ctx::Node).into_iter().collect(),
                Axis::Ancestor => {
                    let mut out = Vec::new();
                    let mut cur = t.unranked_parent(v);
                    while let Some(p) = cur {
                        out.push(Ctx::Node(p));
                        cur = t.unranked_parent(p);
                    }
                    out
                }
                Axis::AncestorOrSelf => {
                    let mut out = vec![Ctx::Node(v)];
                    let mut cur = t.unranked_parent(v);
                    while let Some(p) = cur {
                        out.push(Ctx::Node(p));
                        cur = t.unranked_parent(p);
                    }
                    out
                }
                Axis::FollowingSibling => {
                    let mut out = Vec::new();
                    let mut cur = t.second_child(v);
                    while let Some(s) = cur {
                        out.push(Ctx::Node(s));
                        cur = t.second_child(s);
                    }
                    out
                }
                Axis::PrecedingSibling => {
                    // Walk from the first sibling forward until v.
                    let mut out = Vec::new();
                    if let Some(p) = t.unranked_parent(v) {
                        let mut cur = t.first_child(p);
                        while let Some(s) = cur {
                            if s == v {
                                break;
                            }
                            out.push(Ctx::Node(s));
                            cur = t.second_child(s);
                        }
                    }
                    out
                }
                Axis::Following => {
                    let mut out = Vec::new();
                    for a in self.axis_members(Ctx::Node(v), Axis::AncestorOrSelf) {
                        for fs in self.axis_members(a, Axis::FollowingSibling) {
                            for d in self.axis_members(fs, Axis::DescendantOrSelf) {
                                out.push(d);
                            }
                        }
                    }
                    out
                }
                Axis::Preceding => {
                    let mut out = Vec::new();
                    for a in self.axis_members(Ctx::Node(v), Axis::AncestorOrSelf) {
                        for ps in self.axis_members(a, Axis::PrecedingSibling) {
                            for d in self.axis_members(ps, Axis::DescendantOrSelf) {
                                out.push(d);
                            }
                        }
                    }
                    out
                }
            },
        };
        self.visits += out.len() as u64;
        out
    }

    /// True if the consecutive character siblings starting at `y` spell
    /// `bytes`.
    fn spells(&self, y: NodeId, bytes: &[u8]) -> bool {
        let mut cur = Some(y);
        for &b in bytes {
            match cur {
                Some(c) if self.tree.label(c).text_byte() == Some(b) => {
                    cur = self.tree.second_child(c);
                }
                _ => return false,
            }
        }
        true
    }

    fn collect_descendants(&self, v: NodeId, out: &mut Vec<NodeId>) {
        for c in self.tree.unranked_children(v) {
            out.push(c);
            self.collect_descendants(c, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xpath;
    use arb_tree::TreeBuilder;

    fn sample() -> (BinaryTree, LabelTable) {
        let mut lt = LabelTable::new();
        let r = lt.intern("r").unwrap();
        let a = lt.intern("a").unwrap();
        let b = lt.intern("b").unwrap();
        let mut t = TreeBuilder::new();
        t.open(r);
        t.open(a);
        t.leaf(b);
        t.close();
        t.leaf(b);
        t.close();
        (t.finish().unwrap(), lt)
    }

    #[test]
    fn direct_basics() {
        let (tree, lt) = sample();
        let mut ev = DirectEvaluator::new(&tree, &lt);
        let sel = ev.evaluate(&parse_xpath("//b").unwrap());
        assert_eq!(sel.to_vec(), vec![NodeId(2), NodeId(3)]);
        let sel = ev.evaluate(&parse_xpath("/r/a[b]").unwrap());
        assert_eq!(sel.to_vec(), vec![NodeId(1)]);
        let sel = ev.evaluate(&parse_xpath("//b[not(..)]").unwrap());
        assert!(sel.is_empty());
        assert!(ev.visits > 0);
    }

    /// The direct evaluator and the TMNF compilation must agree.
    #[test]
    fn agrees_with_compilation() {
        let (tree, mut lt) = sample();
        for src in [
            "//b",
            "//a/b",
            "/r/*",
            "//*[b]",
            "//*[not(b)]",
            "//b/ancestor::*",
            "//b/following::node()",
            "//b/preceding::node()",
            "//*[following-sibling::b]",
        ] {
            let path = parse_xpath(src).unwrap();
            let mut ev = DirectEvaluator::new(&tree, &lt);
            let direct = ev.evaluate(&path);
            let prog = crate::compile::compile_path(&path, &mut lt);
            let res = arb_tmnf::naive::evaluate(&prog, &tree);
            let q = prog.query_pred().unwrap();
            for v in tree.nodes() {
                assert_eq!(direct.contains(v), res.holds(q, v), "{src} at node {}", v.0);
            }
        }
    }
}
