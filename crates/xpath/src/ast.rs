//! Core XPath abstract syntax.

/// The eleven structural axes of Core XPath.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Axis {
    /// `child::`
    Child,
    /// `descendant::`
    Descendant,
    /// `descendant-or-self::`
    DescendantOrSelf,
    /// `self::`
    SelfAxis,
    /// `parent::`
    Parent,
    /// `ancestor::`
    Ancestor,
    /// `ancestor-or-self::`
    AncestorOrSelf,
    /// `following-sibling::`
    FollowingSibling,
    /// `preceding-sibling::`
    PrecedingSibling,
    /// `following::`
    Following,
    /// `preceding::`
    Preceding,
}

impl Axis {
    /// All axes (for exhaustive tests).
    pub const ALL: [Axis; 11] = [
        Axis::Child,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::SelfAxis,
        Axis::Parent,
        Axis::Ancestor,
        Axis::AncestorOrSelf,
        Axis::FollowingSibling,
        Axis::PrecedingSibling,
        Axis::Following,
        Axis::Preceding,
    ];

    /// The XPath name of the axis.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::SelfAxis => "self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
        }
    }
}

/// A node test.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NodeTest {
    /// A tag name. Attribute nodes (databases created with
    /// `attributes_as_nodes`) are addressed by their `@`-prefixed tag,
    /// e.g. `@id` parses to `Name("@id")`.
    Name(String),
    /// `*` — any element node.
    AnyElement,
    /// `text()` — character nodes.
    Text,
    /// `node()` — any node.
    AnyNode,
}

/// One location step: `axis::test[pred]…`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Zero or more qualifier expressions.
    pub predicates: Vec<Expr>,
}

/// A location path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocationPath {
    /// Absolute paths start at the (virtual) document node. Top-level
    /// queries are always evaluated from the document, so this flag only
    /// matters inside predicates.
    pub absolute: bool,
    /// The steps.
    pub steps: Vec<Step>,
}

/// A qualifier expression (Core XPath conditions).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// Existential path condition.
    Path(LocationPath),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Extension: `contains-text("s")` — some run of consecutive
    /// character descendants spells the literal string `s` (possible
    /// because text is stored as character sibling nodes, paper §1.3
    /// example 2).
    ContainsText(String),
}
