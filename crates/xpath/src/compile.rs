//! Compilation of Core XPath to strict TMNF.
//!
//! Every axis is a *caterpillar expression* over the binary encoding
//! (`child = FirstChild.NextSibling*`, `parent =
//! invNextSibling*.invFirstChild`, …). Location steps chain these
//! forward; predicates compile to **positive/negative predicate pairs**
//! `(C, C̄)` so that `not(·)` is a swap. The negative sides of the
//! branching axes are universal statements ("no child satisfies D"),
//! expressed with the sibling-list and subtree folds of paper
//! Example 2.2.
//!
//! The document node (the virtual parent of the root element) is modeled
//! symbolically: it flows through leading `/` and
//! `descendant-or-self::node()` steps and contributes the root element to
//! `child::` steps; it is never itself selectable.

use crate::ast::{Axis, Expr, LocationPath, NodeTest, Step};
use arb_tmnf::ast::{BodyItem, Move, Regex, SurfaceProgram, SurfaceRule};
use arb_tmnf::{normalize, CoreProgram, EdbAtom};
use arb_tree::LabelTable;

/// Compilation context: accumulated surface rules plus a name counter.
struct Ctx<'l> {
    rules: Vec<SurfaceRule>,
    n: u32,
    labels: &'l mut LabelTable,
}

impl Ctx<'_> {
    fn fresh(&mut self, hint: &str) -> String {
        self.n += 1;
        format!("_x{}{}", hint, self.n)
    }

    /// Adds `head :- items;` (conjunction).
    fn rule(&mut self, head: &str, items: Vec<Regex>) {
        debug_assert!(!items.is_empty());
        self.rules.push(SurfaceRule {
            head: head.to_string(),
            items: items.into_iter().map(|regex| BodyItem { regex }).collect(),
        });
    }

    fn label_atom(&mut self, name: &str) -> EdbAtom {
        EdbAtom::Label(self.labels.intern(name).expect("valid tag name"))
    }
}

/// The forward caterpillar expression of an axis: a walk from the context
/// node to each axis member.
pub fn axis_regex(axis: Axis) -> Regex {
    use Move::*;
    let child = || {
        Regex::cat(
            Regex::mv(FirstChild),
            Regex::Star(Box::new(Regex::mv(SecondChild))),
        )
    };
    let parent = || {
        Regex::cat(
            Regex::Star(Box::new(Regex::mv(InvSecondChild))),
            Regex::mv(InvFirstChild),
        )
    };
    let descendant = || {
        Regex::cat(
            Regex::mv(FirstChild),
            Regex::Star(Box::new(Regex::alt(
                Regex::mv(FirstChild),
                Regex::mv(SecondChild),
            ))),
        )
    };
    match axis {
        Axis::Child => child(),
        Axis::Parent => parent(),
        Axis::Descendant => descendant(),
        Axis::DescendantOrSelf => Regex::Opt(Box::new(descendant())),
        Axis::SelfAxis => Regex::Eps,
        Axis::Ancestor => Regex::Plus(Box::new(parent())),
        Axis::AncestorOrSelf => Regex::Star(Box::new(parent())),
        Axis::FollowingSibling => Regex::Plus(Box::new(Regex::mv(SecondChild))),
        Axis::PrecedingSibling => Regex::Plus(Box::new(Regex::mv(InvSecondChild))),
        Axis::Following => Regex::seq([
            Regex::Star(Box::new(parent())),
            Regex::Plus(Box::new(Regex::mv(SecondChild))),
            Regex::Opt(Box::new(descendant())),
        ]),
        Axis::Preceding => Regex::seq([
            Regex::Star(Box::new(parent())),
            Regex::Plus(Box::new(Regex::mv(InvSecondChild))),
            Regex::Opt(Box::new(descendant())),
        ]),
    }
}

/// Reverses a caterpillar expression: the reversed expression walks from
/// the target back to the source (moves inverted, tests unchanged).
pub fn reverse_regex(r: &Regex) -> Regex {
    use arb_tmnf::ast::StepSym;
    match r {
        Regex::Eps => Regex::Eps,
        Regex::Sym(StepSym::Move(m)) => Regex::mv(m.inverse()),
        Regex::Sym(s) => Regex::Sym(s.clone()),
        Regex::Cat(a, b) => Regex::cat(reverse_regex(b), reverse_regex(a)),
        Regex::Alt(a, b) => Regex::alt(reverse_regex(a), reverse_regex(b)),
        Regex::Star(a) => Regex::Star(Box::new(reverse_regex(a))),
        Regex::Plus(a) => Regex::Plus(Box::new(reverse_regex(a))),
        Regex::Opt(a) => Regex::Opt(Box::new(reverse_regex(a))),
    }
}

/// The EDB test of a node test, if any (`node()` is unconstrained).
fn test_atom(ctx: &mut Ctx, test: &NodeTest) -> Option<EdbAtom> {
    match test {
        NodeTest::Name(n) => Some(ctx.label_atom(n)),
        NodeTest::AnyElement => Some(EdbAtom::NotText),
        NodeTest::Text => Some(EdbAtom::Text),
        NodeTest::AnyNode => None,
    }
}

// --------------------------------------------------------------------------
// Existential / universal axis combinators
// --------------------------------------------------------------------------

/// `∃ y ∈ axis(x): D(y)` — by walking the reversed axis from D-nodes.
fn ex_axis_pos(ctx: &mut Ctx, axis: Axis, d: &str) -> String {
    let out = ctx.fresh("ex");
    let walk = Regex::cat(Regex::pred(d), reverse_regex(&axis_regex(axis)));
    ctx.rule(&out, vec![walk]);
    out
}

/// `∀ y ∈ axis(x): N(y)` — the universal dual, given the *negative*
/// predicate `N = ¬D`. Uses the structural-recursion idioms of paper
/// Example 2.2 for the branching axes.
fn all_axis_neg(ctx: &mut Ctx, axis: Axis, nd: &str) -> String {
    use Move::*;
    let child_walk = || {
        Regex::cat(
            Regex::mv(FirstChild),
            Regex::Star(Box::new(Regex::mv(SecondChild))),
        )
    };
    match axis {
        Axis::SelfAxis => nd.to_string(),
        Axis::Child => {
            // NFR(y): y and all its following siblings satisfy N.
            let nfr = ctx.fresh("nfr");
            ctx.rule(
                &nfr,
                vec![Regex::pred(nd), Regex::edb(EdbAtom::LastSibling)],
            );
            let fs = ctx.fresh("fs");
            ctx.rule(
                &fs,
                vec![Regex::cat(Regex::pred(&nfr), Regex::mv(InvSecondChild))],
            );
            ctx.rule(&nfr, vec![Regex::pred(nd), Regex::pred(&fs)]);
            let out = ctx.fresh("nochild");
            ctx.rule(&out, vec![Regex::edb(EdbAtom::Leaf)]);
            ctx.rule(
                &out,
                vec![Regex::cat(Regex::pred(&nfr), Regex::mv(InvFirstChild))],
            );
            out
        }
        Axis::Descendant => {
            // BinNone(v): every node of v's *binary* subtree satisfies N.
            let bn = ctx.fresh("bn");
            let a1 = ctx.fresh("a1");
            ctx.rule(&a1, vec![Regex::edb(EdbAtom::Leaf)]);
            ctx.rule(
                &a1,
                vec![Regex::cat(Regex::pred(&bn), Regex::mv(InvFirstChild))],
            );
            let a2 = ctx.fresh("a2");
            ctx.rule(&a2, vec![Regex::edb(EdbAtom::LastSibling)]);
            ctx.rule(
                &a2,
                vec![Regex::cat(Regex::pred(&bn), Regex::mv(InvSecondChild))],
            );
            ctx.rule(
                &bn,
                vec![Regex::pred(nd), Regex::pred(&a1), Regex::pred(&a2)],
            );
            // Descendants of x = binary subtree of x's first child.
            let out = ctx.fresh("nodesc");
            ctx.rule(&out, vec![Regex::edb(EdbAtom::Leaf)]);
            ctx.rule(
                &out,
                vec![Regex::cat(Regex::pred(&bn), Regex::mv(InvFirstChild))],
            );
            out
        }
        Axis::DescendantOrSelf => {
            let nodesc = all_axis_neg(ctx, Axis::Descendant, nd);
            let out = ctx.fresh("nodos");
            ctx.rule(&out, vec![Regex::pred(nd), Regex::pred(&nodesc)]);
            out
        }
        Axis::Parent => {
            let out = ctx.fresh("nopar");
            ctx.rule(&out, vec![Regex::edb(EdbAtom::Root)]);
            ctx.rule(&out, vec![Regex::cat(Regex::pred(nd), child_walk())]);
            out
        }
        Axis::Ancestor => {
            // NoAnc(x) = Root(x) ∨ (N(parent) ∧ NoAnc(parent)).
            let noanc = ctx.fresh("noanc");
            ctx.rule(&noanc, vec![Regex::edb(EdbAtom::Root)]);
            let g = ctx.fresh("g");
            ctx.rule(&g, vec![Regex::pred(&noanc), Regex::pred(nd)]);
            ctx.rule(&noanc, vec![Regex::cat(Regex::pred(&g), child_walk())]);
            noanc
        }
        Axis::AncestorOrSelf => {
            let noanc = all_axis_neg(ctx, Axis::Ancestor, nd);
            let out = ctx.fresh("noaos");
            ctx.rule(&out, vec![Regex::pred(nd), Regex::pred(&noanc)]);
            out
        }
        Axis::FollowingSibling => {
            // NR(x) = LastSibling(x) ∨ (N(next) ∧ NR(next)).
            let nr = ctx.fresh("nr");
            ctx.rule(&nr, vec![Regex::edb(EdbAtom::LastSibling)]);
            let g = ctx.fresh("g");
            ctx.rule(&g, vec![Regex::pred(&nr), Regex::pred(nd)]);
            ctx.rule(
                &nr,
                vec![Regex::cat(Regex::pred(&g), Regex::mv(InvSecondChild))],
            );
            nr
        }
        Axis::PrecedingSibling => {
            // NL(x) = FirstSib(x) ∨ (N(prev) ∧ NL(prev)).
            let firstsib = ctx.fresh("fsib");
            ctx.rule(&firstsib, vec![Regex::edb(EdbAtom::Root)]);
            ctx.rule(
                &firstsib,
                vec![Regex::cat(Regex::edb(EdbAtom::V), Regex::mv(FirstChild))],
            );
            let nl = ctx.fresh("nl");
            ctx.rule(&nl, vec![Regex::pred(&firstsib), Regex::pred(&firstsib)]);
            let g = ctx.fresh("g");
            ctx.rule(&g, vec![Regex::pred(&nl), Regex::pred(nd)]);
            ctx.rule(
                &nl,
                vec![Regex::cat(Regex::pred(&g), Regex::mv(SecondChild))],
            );
            nl
        }
        Axis::Following => {
            // ∀ a ∈ anc-or-self(x): ∀ b ∈ fs(a): subtree-or-self(b) ⊆ N.
            let no_sub = all_axis_neg(ctx, Axis::DescendantOrSelf, nd);
            let no_fs = all_axis_neg(ctx, Axis::FollowingSibling, &no_sub);
            all_axis_neg(ctx, Axis::AncestorOrSelf, &no_fs)
        }
        Axis::Preceding => {
            let no_sub = all_axis_neg(ctx, Axis::DescendantOrSelf, nd);
            let no_ps = all_axis_neg(ctx, Axis::PrecedingSibling, &no_sub);
            all_axis_neg(ctx, Axis::AncestorOrSelf, &no_ps)
        }
    }
}

// --------------------------------------------------------------------------
// Conditions: positive/negative pairs
// --------------------------------------------------------------------------

/// Compiles a qualifier expression at a context node into a
/// `(pos, neg)` predicate pair.
fn compile_expr(ctx: &mut Ctx, expr: &Expr) -> (String, String) {
    match expr {
        Expr::And(a, b) => {
            let (ap, an) = compile_expr(ctx, a);
            let (bp, bn) = compile_expr(ctx, b);
            let pos = ctx.fresh("and");
            ctx.rule(&pos, vec![Regex::pred(&ap), Regex::pred(&bp)]);
            let neg = ctx.fresh("nand");
            ctx.rule(&neg, vec![Regex::pred(&an), Regex::pred(&an)]);
            ctx.rule(&neg, vec![Regex::pred(&bn), Regex::pred(&bn)]);
            (pos, neg)
        }
        Expr::Or(a, b) => {
            let (ap, an) = compile_expr(ctx, a);
            let (bp, bn) = compile_expr(ctx, b);
            let pos = ctx.fresh("or");
            ctx.rule(&pos, vec![Regex::pred(&ap), Regex::pred(&ap)]);
            ctx.rule(&pos, vec![Regex::pred(&bp), Regex::pred(&bp)]);
            let neg = ctx.fresh("nor");
            ctx.rule(&neg, vec![Regex::pred(&an), Regex::pred(&bn)]);
            (pos, neg)
        }
        Expr::Not(e) => {
            let (p, n) = compile_expr(ctx, e);
            (n, p)
        }
        Expr::ContainsText(text) => compile_contains_text(ctx, text),
        Expr::Path(lp) if lp.absolute => compile_absolute_condition(ctx, lp),
        Expr::Path(lp) => compile_exists(ctx, &lp.steps, 0),
    }
}

/// `(pos, neg)` for `contains-text("s")`: some run of consecutive
/// character descendants spells `s`. Positive side: a suffix-predicate
/// chain `M_i(y)` = "`s[i..]` is spelled starting at `y`" walked
/// backwards from the last character. Negative side: the dual chain
/// `N_i(y)` = "`s[i..]` does *not* start at `y`" (wrong character, or the
/// sibling list ends early, or the rest fails), folded over all
/// descendants with the subtree scan.
fn compile_contains_text(ctx: &mut Ctx, text: &str) -> (String, String) {
    use arb_tree::LabelId;
    let bytes = text.as_bytes();
    debug_assert!(!bytes.is_empty(), "parser rejects empty strings");
    let mut m_next: Option<String> = None;
    let mut n_next: Option<String> = None;
    for (i, &b) in bytes.iter().enumerate().rev() {
        let ci = EdbAtom::Label(LabelId::from_char_byte(b));
        let m = ctx.fresh("ct");
        let nn = ctx.fresh("nct");
        match &m_next {
            // Last character: the label alone suffices.
            None => ctx.rule(&m, vec![Regex::edb(ci)]),
            Some(mn) => ctx.rule(
                &m,
                vec![
                    Regex::cat(Regex::pred(mn), Regex::mv(Move::InvSecondChild)),
                    Regex::edb(ci),
                ],
            ),
        }
        match &n_next {
            None => ctx.rule(&nn, vec![Regex::edb(ci.complement())]),
            Some(nx) => {
                ctx.rule(&nn, vec![Regex::edb(ci.complement())]);
                ctx.rule(&nn, vec![Regex::edb(EdbAtom::LastSibling)]);
                ctx.rule(
                    &nn,
                    vec![Regex::cat(Regex::pred(nx), Regex::mv(Move::InvSecondChild))],
                );
            }
        }
        let _ = i;
        m_next = Some(m);
        n_next = Some(nn);
    }
    let m0 = m_next.expect("nonempty string");
    let n0 = n_next.expect("nonempty string");
    let pos = ex_axis_pos(ctx, Axis::Descendant, &m0);
    let neg = all_axis_neg(ctx, Axis::Descendant, &n0);
    (pos, neg)
}

/// `(pos, neg)` for "some walk along `steps[i..]` from the context node
/// succeeds".
fn compile_exists(ctx: &mut Ctx, steps: &[Step], i: usize) -> (String, String) {
    let step = &steps[i];
    // Target pair D / ¬D: the target must pass the test, every
    // qualifier, and the rest of the path.
    let mut pos_items: Vec<Regex> = Vec::new();
    let mut neg_alts: Vec<Regex> = Vec::new();
    if let Some(atom) = test_atom(ctx, &step.test) {
        pos_items.push(Regex::edb(atom));
        neg_alts.push(Regex::edb(atom.complement()));
    }
    for p in &step.predicates {
        let (pp, pn) = compile_expr(ctx, p);
        pos_items.push(Regex::pred(&pp));
        neg_alts.push(Regex::pred(&pn));
    }
    if i + 1 < steps.len() {
        let (rp, rn) = compile_exists(ctx, steps, i + 1);
        pos_items.push(Regex::pred(&rp));
        neg_alts.push(Regex::pred(&rn));
    }
    let dpos = ctx.fresh("d");
    if pos_items.is_empty() {
        ctx.rule(&dpos, vec![Regex::edb(EdbAtom::V)]);
    } else {
        ctx.rule(&dpos, pos_items);
    }
    let dneg = ctx.fresh("nd");
    for alt in neg_alts {
        ctx.rule(&dneg, vec![alt.clone(), alt]);
    }
    // (If neg_alts was empty, dneg has no rules: the target never fails,
    // and the universal dual correctly only holds where the axis is
    // empty.)
    let pos = ex_axis_pos(ctx, step.axis, &dpos);
    let neg = all_axis_neg(ctx, step.axis, &dneg);
    (pos, neg)
}

/// An absolute path inside a condition is a *global* boolean: it holds at
/// every node iff the path matches anywhere in the document. Both sides
/// are computed at the root and broadcast down.
fn compile_absolute_condition(ctx: &mut Ctx, lp: &LocationPath) -> (String, String) {
    use Move::*;
    let broadcast = |ctx: &mut Ctx, at_root: &str| -> String {
        let out = ctx.fresh("bc");
        ctx.rule(
            &out,
            vec![Regex::cat(
                Regex::pred(at_root),
                Regex::Star(Box::new(Regex::alt(
                    Regex::mv(FirstChild),
                    Regex::mv(SecondChild),
                ))),
            )],
        );
        out
    };
    // Evaluate the path as an existential from the document. The document
    // relates to the root element: child(document) = {root},
    // descendant(-or-self)(document) ⊇ all tree nodes.
    let (pos_at, neg_at) = match lp.steps.first().map(|s| s.axis) {
        None => {
            // Bare "/": matches the document itself — always true.
            let t = ctx.fresh("true");
            ctx.rule(&t, vec![Regex::edb(EdbAtom::V)]);
            return (t.clone(), ctx.fresh("false"));
        }
        Some(Axis::Child) => {
            // D must hold at the root.
            let (dp, dn) = compile_exists_target(ctx, &lp.steps, 0);
            let p = ctx.fresh("absp");
            ctx.rule(&p, vec![Regex::pred(&dp), Regex::edb(EdbAtom::Root)]);
            let n = ctx.fresh("absn");
            ctx.rule(&n, vec![Regex::pred(&dn), Regex::edb(EdbAtom::Root)]);
            (p, n)
        }
        Some(Axis::Descendant | Axis::DescendantOrSelf) => {
            // Some/no node in the whole tree satisfies D: evaluate the
            // descendant-or-self combinators at the root.
            let (dp, dn) = compile_exists_target(ctx, &lp.steps, 0);
            let some = ex_axis_pos(ctx, Axis::DescendantOrSelf, &dp);
            let none = all_axis_neg(ctx, Axis::DescendantOrSelf, &dn);
            let p = ctx.fresh("absp");
            ctx.rule(&p, vec![Regex::pred(&some), Regex::edb(EdbAtom::Root)]);
            let n = ctx.fresh("absn");
            ctx.rule(&n, vec![Regex::pred(&none), Regex::edb(EdbAtom::Root)]);
            (p, n)
        }
        Some(_) => {
            // Other axes are empty from the document: always false.
            let n = ctx.fresh("true");
            ctx.rule(&n, vec![Regex::edb(EdbAtom::V)]);
            return (ctx.fresh("false"), n);
        }
    };
    (broadcast(ctx, &pos_at), broadcast(ctx, &neg_at))
}

/// The target pair `(D, ¬D)` of `steps[i]` (test ∧ predicates ∧ rest),
/// *without* the axis move — used when the context is known directly.
fn compile_exists_target(ctx: &mut Ctx, steps: &[Step], i: usize) -> (String, String) {
    let step = &steps[i];
    let mut pos_items: Vec<Regex> = Vec::new();
    let mut neg_alts: Vec<Regex> = Vec::new();
    if let Some(atom) = test_atom(ctx, &step.test) {
        pos_items.push(Regex::edb(atom));
        neg_alts.push(Regex::edb(atom.complement()));
    }
    for p in &step.predicates {
        let (pp, pn) = compile_expr(ctx, p);
        pos_items.push(Regex::pred(&pp));
        neg_alts.push(Regex::pred(&pn));
    }
    if i + 1 < steps.len() {
        let (rp, rn) = compile_exists(ctx, steps, i + 1);
        pos_items.push(Regex::pred(&rp));
        neg_alts.push(Regex::pred(&rn));
    }
    let dpos = ctx.fresh("d");
    if pos_items.is_empty() {
        ctx.rule(&dpos, vec![Regex::edb(EdbAtom::V)]);
    } else {
        ctx.rule(&dpos, pos_items);
    }
    let dneg = ctx.fresh("nd");
    for alt in neg_alts {
        ctx.rule(&dneg, vec![alt.clone(), alt]);
    }
    (dpos, dneg)
}

// --------------------------------------------------------------------------
// Main path (node selection)
// --------------------------------------------------------------------------

/// Compiles the top-level location path to a strict TMNF program whose
/// query predicate `QUERY` selects the result nodes. Top-level queries
/// are evaluated from the document node (relative queries are treated as
/// document-relative).
pub fn compile_path(path: &LocationPath, labels: &mut LabelTable) -> CoreProgram {
    compile_union(std::slice::from_ref(path), labels)
}

/// Compiles a union query `p1 | p2 | …`: `QUERY` selects the union of
/// the paths' results.
pub fn compile_union(paths: &[LocationPath], labels: &mut LabelTable) -> CoreProgram {
    let mut ctx = Ctx {
        rules: Vec::new(),
        n: 0,
        labels,
    };
    let mut finals: Vec<Option<String>> = Vec::new();
    for path in paths {
        finals.push(compile_main(&mut ctx, path));
    }
    let any_rule = finals.iter().flatten().count() > 0;
    if any_rule {
        for c in finals.into_iter().flatten() {
            ctx.rule("QUERY", vec![Regex::pred(&c), Regex::pred(&c)]);
        }
    } else {
        // Only "/" paths: the document node is not selectable.
        let never = ctx.fresh("never");
        ctx.rule("QUERY", vec![Regex::pred(&never), Regex::pred(&never)]);
    }
    let program = SurfaceProgram { rules: ctx.rules };
    let mut prog = normalize(&program);
    let q = prog.pred_id("QUERY").expect("QUERY rule emitted");
    prog.add_query_pred(q);
    prog
}

/// Compiles one main path inside a shared context; returns the final
/// step predicate (`None` for the bare document path `/`).
fn compile_main(ctx: &mut Ctx, path: &LocationPath) -> Option<String> {
    // Context: a predicate for the tree-node part, plus a flag for the
    // virtual document node.
    let mut cur: Option<String> = None;
    let mut includes_doc = true;

    for step in &path.steps {
        let s = ctx.fresh("step");
        // Gather the local constraints of the step target.
        let test = test_atom(ctx, &step.test);
        let mut constraint_items: Vec<Regex> = Vec::new();
        if let Some(atom) = test {
            constraint_items.push(Regex::edb(atom));
        }
        for p in &step.predicates {
            let (pp, _pn) = compile_expr(ctx, p);
            constraint_items.push(Regex::pred(&pp));
        }

        // From tree-node contexts: walk the axis.
        if let Some(c) = &cur {
            let mut items = vec![Regex::cat(Regex::pred(c), axis_regex(step.axis))];
            items.extend(constraint_items.iter().cloned());
            ctx.rule(&s, items);
        }
        // From the document: child ⇒ root; descendant(-or-self) ⇒ any.
        if includes_doc {
            match step.axis {
                Axis::Child => {
                    let mut items = vec![Regex::edb(EdbAtom::Root)];
                    items.extend(constraint_items.iter().cloned());
                    ctx.rule(&s, items);
                }
                Axis::Descendant | Axis::DescendantOrSelf => {
                    let mut items = constraint_items.clone();
                    if items.is_empty() {
                        items.push(Regex::edb(EdbAtom::V));
                    }
                    ctx.rule(&s, items);
                }
                _ => {}
            }
        }
        includes_doc = includes_doc
            && matches!(
                step.axis,
                Axis::DescendantOrSelf | Axis::SelfAxis | Axis::AncestorOrSelf
            )
            && step.test == NodeTest::AnyNode
            && step.predicates.is_empty();
        cur = Some(s);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xpath;
    use arb_tmnf::naive;
    use arb_tree::TreeBuilder;

    fn sample() -> (arb_tree::BinaryTree, LabelTable) {
        // <r><a><b/><c/></a><b>t</b></r>   nodes: 0=r 1=a 2=b 3=c 4=b 5='t'
        let mut lt = LabelTable::new();
        let r = lt.intern("r").unwrap();
        let a = lt.intern("a").unwrap();
        let b = lt.intern("b").unwrap();
        let c = lt.intern("c").unwrap();
        let mut t = TreeBuilder::new();
        t.open(r);
        t.open(a);
        t.leaf(b);
        t.leaf(c);
        t.close();
        t.open(b);
        t.text(b"t");
        t.close();
        t.close();
        (t.finish().unwrap(), lt)
    }

    fn eval(src: &str) -> Vec<u32> {
        let (tree, mut lt) = sample();
        let path = parse_xpath(src).unwrap();
        let prog = compile_path(&path, &mut lt);
        let res = naive::evaluate(&prog, &tree);
        let q = prog.query_pred().unwrap();
        tree.nodes()
            .filter(|&v| res.holds(q, v))
            .map(|v| v.0)
            .collect()
    }

    #[test]
    fn basic_paths() {
        assert_eq!(eval("/r"), vec![0]);
        assert_eq!(eval("/a"), Vec::<u32>::new());
        assert_eq!(eval("//b"), vec![2, 4]);
        assert_eq!(eval("/r/a/b"), vec![2]);
        assert_eq!(eval("/r/*"), vec![1, 4]);
        assert_eq!(eval("//text()"), vec![5]);
        assert_eq!(eval("//node()"), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn predicates() {
        assert_eq!(eval("//a[b]"), vec![1]);
        assert_eq!(eval("//a[d]"), Vec::<u32>::new());
        assert_eq!(eval("/r[a]/b"), vec![4]);
        assert_eq!(eval("//b[text()]"), vec![4]);
        assert_eq!(eval("//*[b and c]"), vec![1]);
        // r (node 0) has a b child (node 4) too.
        assert_eq!(eval("//*[b or c]"), vec![0, 1]);
    }

    #[test]
    fn negation() {
        // Elements with no b child: r has children a,b — a has b child...
        // not(b): r? r has child b (node 4) => excluded. a has b => excluded.
        // b,c,t have no b children => b(2), c(3), b(4)... node 4's children:
        // only 't' — no b. So //*[not(b)] = {2,3,4}.
        assert_eq!(eval("//*[not(b)]"), vec![2, 3, 4]);
        // Double negation cancels.
        assert_eq!(eval("//*[not(not(b))]"), eval("//*[b]"));
        // not over descendant axis.
        assert_eq!(eval("//*[not(.//text())]"), vec![1, 2, 3]);
    }

    #[test]
    fn upward_and_sideways() {
        assert_eq!(eval("//b/.."), vec![0, 1]);
        assert_eq!(eval("//c/parent::a"), vec![1]);
        // b@2 has following sibling c@3; b@4 is last among r's children.
        assert_eq!(eval("//b/following-sibling::*"), vec![3]);
        assert_eq!(eval("//c/preceding-sibling::b"), vec![2]);
        assert_eq!(eval("//b/ancestor::r"), vec![0]);
        assert_eq!(eval("//c/ancestor-or-self::*"), vec![0, 1, 3]);
    }

    #[test]
    fn following_preceding() {
        // following(b@2) = c(3), b(4), t(5); following(a@1) = b(4), t(5).
        assert_eq!(eval("//a/following::*"), vec![4]);
        assert_eq!(eval("//c/following::node()"), vec![4, 5]);
        assert_eq!(eval("//b[not(following::c)]"), vec![4]);
        // preceding(b@4) = a(1), b(2), c(3) (not r: ancestor).
        assert_eq!(eval("/r/b/preceding::node()"), vec![1, 2, 3]);
    }

    #[test]
    fn absolute_condition() {
        // Global: the document has a c somewhere, so every a qualifies.
        assert_eq!(eval("//a[//c]"), vec![1]);
        assert_eq!(eval("//a[//missing]"), Vec::<u32>::new());
        assert_eq!(eval("//a[not(//missing)]"), vec![1]);
    }

    #[test]
    fn reverse_regex_is_involution_on_moves() {
        for axis in Axis::ALL {
            let r = axis_regex(axis);
            let rr = reverse_regex(&reverse_regex(&r));
            assert_eq!(format!("{r:?}"), format!("{rr:?}"), "{}", axis.name());
        }
    }
}
