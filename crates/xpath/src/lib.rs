//! # arb-xpath
//!
//! A Core XPath front end for Arb-rs.
//!
//! The paper's Section 1.3 notes that MSO "subsumes the XPath fragments
//! usually considered in the streaming XML context, and much larger ones
//! that support all XPath axes [...] and branching through paths combined
//! using 'and', 'or', and 'not' in conditions" — the fragment called
//! *Core XPath* in \[10\]. This crate implements that fragment:
//!
//! * [`parser`] — location paths with all eleven structural axes,
//!   abbreviations (`//`, `.`, `..`, default `child::`), node tests
//!   (`name`, `*`, `text()`, `node()`) and predicates built from relative
//!   paths with `and`, `or`, `not(·)`;
//! * [`compile`](compile()) — translation to strict TMNF. Axes become
//!   caterpillar expressions over the binary tree encoding; `not(·)` is
//!   compiled via *positive/negative predicate pairs*, where the
//!   universal duals of the axes are expressed with the sibling/subtree
//!   scan idiom of paper Example 2.2;
//! * [`direct`] — a conventional node-at-a-time XPath evaluator over
//!   in-memory trees, used as a differential-testing oracle and as the
//!   baseline engine class the paper argues against (it revisits nodes
//!   per step; the automaton approach visits each node exactly twice).

pub mod ast;
pub mod compile;
pub mod direct;
pub mod parser;

pub use ast::{Axis, Expr, LocationPath, NodeTest, Step};
pub use compile::{compile_path, compile_union};
pub use direct::DirectEvaluator;
pub use parser::{parse_xpath, parse_xpath_union, XPathError};

use arb_tmnf::CoreProgram;
use arb_tree::LabelTable;

/// Parses and compiles a Core XPath query to strict TMNF. The result
/// program has its query predicate set to the path's result predicate.
pub fn compile(src: &str, labels: &mut LabelTable) -> Result<CoreProgram, XPathError> {
    let paths = parse_xpath_union(src)?;
    Ok(compile_union(&paths, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_tmnf::naive;
    use arb_tree::NodeId;

    #[test]
    fn end_to_end_child_query() {
        let mut labels = LabelTable::new();
        let tree = {
            // <r><a/><b><a/></b></r>
            let r = labels.intern("r").unwrap();
            let a = labels.intern("a").unwrap();
            let b = labels.intern("b").unwrap();
            let mut t = arb_tree::TreeBuilder::new();
            t.open(r);
            t.leaf(a);
            t.open(b);
            t.leaf(a);
            t.close();
            t.close();
            t.finish().unwrap()
        };
        let prog = compile("//a", &mut labels).unwrap();
        let res = naive::evaluate(&prog, &tree);
        let q = prog.query_pred().unwrap();
        assert!(res.holds(q, NodeId(1)));
        assert!(res.holds(q, NodeId(3)));
        assert!(!res.holds(q, NodeId(0)));
        assert!(!res.holds(q, NodeId(2)));
    }
}
