//! Recursive-descent parser for Core XPath.
//!
//! ```text
//! path    := '/' relpath? | '//' relpath | relpath
//! relpath := step (('/' | '//') step)*
//! step    := '.' | '..' | (axis '::')? test predicate*
//! test    := NAME | '*' | 'text' '(' ')' | 'node' '(' ')'
//! predicate := '[' expr ']'
//! expr    := and_expr ('or' and_expr)*
//! and_expr := unary ('and' unary)*
//! unary   := 'not' '(' expr ')' | '(' expr ')' | path
//! ```
//!
//! `//` abbreviates `/descendant-or-self::node()/`; `.` is
//! `self::node()` and `..` is `parent::node()`.

use crate::ast::{Axis, Expr, LocationPath, NodeTest, Step};
use std::fmt;

/// XPath parse/compile error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// Description.
    pub message: String,
    /// Byte offset in the source.
    pub offset: usize,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XPathError {}

struct P<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, m: impl Into<String>) -> XPathError {
        XPathError {
            message: m.into(),
            offset: self.pos,
        }
    }

    fn ws(&mut self) {
        while self.src.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        self.ws();
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// Consumes a keyword only if not followed by a name character.
    fn eat_kw(&mut self, s: &str) -> bool {
        self.ws();
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            let after = self.src.get(self.pos + s.len());
            if !after.is_some_and(|&b| is_name_char(b)) {
                self.pos += s.len();
                return true;
            }
        }
        false
    }

    fn name(&mut self) -> Option<String> {
        self.ws();
        let start = self.pos;
        while self.src.get(self.pos).is_some_and(|&b| is_name_char(b)) {
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            Some(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
        }
    }

    fn path(&mut self) -> Result<LocationPath, XPathError> {
        let mut steps = Vec::new();
        let absolute;
        if self.eat("//") {
            absolute = true;
            steps.push(Step {
                axis: Axis::DescendantOrSelf,
                test: NodeTest::AnyNode,
                predicates: vec![],
            });
        } else if self.eat("/") {
            absolute = true;
            if self.peek().is_none() {
                return Ok(LocationPath {
                    absolute,
                    steps, // "/" alone: the document — selects nothing
                });
            }
        } else {
            absolute = false;
        }
        steps.push(self.step()?);
        loop {
            if self.eat("//") {
                steps.push(Step {
                    axis: Axis::DescendantOrSelf,
                    test: NodeTest::AnyNode,
                    predicates: vec![],
                });
                steps.push(self.step()?);
            } else if self.eat("/") {
                steps.push(self.step()?);
            } else {
                break;
            }
        }
        Ok(LocationPath { absolute, steps })
    }

    fn step(&mut self) -> Result<Step, XPathError> {
        self.ws();
        if self.eat("..") {
            return Ok(Step {
                axis: Axis::Parent,
                test: NodeTest::AnyNode,
                predicates: self.predicates()?,
            });
        }
        if self.eat(".") {
            return Ok(Step {
                axis: Axis::SelfAxis,
                test: NodeTest::AnyNode,
                predicates: self.predicates()?,
            });
        }
        // Attribute abbreviation: `@name` = `child::@name` over the
        // attributes-as-nodes encoding.
        if self.eat("@") {
            let n = self
                .name()
                .ok_or_else(|| self.err("expected attribute name"))?;
            return Ok(Step {
                axis: Axis::Child,
                test: NodeTest::Name(format!("@{n}")),
                predicates: self.predicates()?,
            });
        }
        // Optional axis.
        let mut axis = Axis::Child;
        let save = self.pos;
        if let Some(n) = self.name() {
            if self.eat("::") {
                axis = Axis::ALL
                    .into_iter()
                    .find(|a| a.name() == n)
                    .ok_or_else(|| self.err(format!("unknown axis {n:?}")))?;
            } else {
                self.pos = save;
            }
        } else {
            self.pos = save;
        }
        // Node test.
        let test = if self.eat("*") {
            NodeTest::AnyElement
        } else if self.eat_kw("text") {
            if !(self.eat("(") && self.eat(")")) {
                return Err(self.err("expected text()"));
            }
            NodeTest::Text
        } else if self.eat_kw("node") {
            if !(self.eat("(") && self.eat(")")) {
                return Err(self.err("expected node()"));
            }
            NodeTest::AnyNode
        } else if let Some(n) = self.name() {
            NodeTest::Name(n)
        } else {
            return Err(self.err("expected a node test"));
        };
        Ok(Step {
            axis,
            test,
            predicates: self.predicates()?,
        })
    }

    fn predicates(&mut self) -> Result<Vec<Expr>, XPathError> {
        let mut out = Vec::new();
        while self.eat("[") {
            out.push(self.expr()?);
            if !self.eat("]") {
                return Err(self.err("expected ']'"));
            }
        }
        Ok(out)
    }

    fn expr(&mut self) -> Result<Expr, XPathError> {
        let mut e = self.and_expr()?;
        while self.eat_kw("or") {
            e = Expr::Or(Box::new(e), Box::new(self.and_expr()?));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, XPathError> {
        let mut e = self.unary()?;
        while self.eat_kw("and") {
            e = Expr::And(Box::new(e), Box::new(self.unary()?));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, XPathError> {
        if self.eat_kw("contains-text") {
            if !self.eat("(") {
                return Err(self.err("expected '(' after contains-text"));
            }
            self.ws();
            if self.src.get(self.pos) != Some(&b'"') {
                return Err(self.err("contains-text expects a quoted string"));
            }
            self.pos += 1;
            let start = self.pos;
            while self.src.get(self.pos).is_some_and(|&b| b != b'"') {
                self.pos += 1;
            }
            if self.pos >= self.src.len() {
                return Err(self.err("unterminated string"));
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.pos += 1;
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            if text.is_empty() {
                return Err(self.err("contains-text requires a nonempty string"));
            }
            return Ok(Expr::ContainsText(text));
        }
        if self.eat_kw("not") {
            if !self.eat("(") {
                return Err(self.err("expected '(' after not"));
            }
            let e = self.expr()?;
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(Expr::Not(Box::new(e)));
        }
        if self.eat("(") {
            let e = self.expr()?;
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(e);
        }
        Ok(Expr::Path(self.path()?))
    }
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-'
}

/// Parses a Core XPath query (a single location path).
pub fn parse_xpath(src: &str) -> Result<LocationPath, XPathError> {
    match parse_xpath_union(src)?.as_slice() {
        [one] => Ok(one.clone()),
        _ => Err(XPathError {
            message: "expected a single path (use parse_xpath_union for '|')".into(),
            offset: 0,
        }),
    }
}

/// Parses a union query `path ('|' path)*`.
pub fn parse_xpath_union(src: &str) -> Result<Vec<LocationPath>, XPathError> {
    let mut p = P {
        src: src.as_bytes(),
        pos: 0,
    };
    let mut paths = vec![p.path()?];
    while p.eat("|") {
        paths.push(p.path()?);
    }
    p.ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbreviations() {
        let p = parse_xpath("//a").unwrap();
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].axis, Axis::DescendantOrSelf);
        assert_eq!(p.steps[1].test, NodeTest::Name("a".into()));

        let p = parse_xpath("a/b//c").unwrap();
        assert!(!p.absolute);
        assert_eq!(p.steps.len(), 4);

        let p = parse_xpath("../x").unwrap();
        assert_eq!(p.steps[0].axis, Axis::Parent);
    }

    #[test]
    fn explicit_axes() {
        for a in Axis::ALL {
            let src = format!("/{}::*", a.name());
            let p = parse_xpath(&src).unwrap();
            assert_eq!(p.steps[0].axis, a, "{src}");
        }
        assert!(parse_xpath("/bogus::*").is_err());
    }

    #[test]
    fn predicates_and_booleans() {
        let p = parse_xpath("//a[b and not(c or .//d)][text()]").unwrap();
        let step = &p.steps[1];
        assert_eq!(step.predicates.len(), 2);
        match &step.predicates[0] {
            Expr::And(l, r) => {
                assert!(matches!(**l, Expr::Path(_)));
                assert!(matches!(**r, Expr::Not(_)));
            }
            other => panic!("expected And, got {other:?}"),
        }
        match &step.predicates[1] {
            Expr::Path(lp) => assert_eq!(lp.steps[0].test, NodeTest::Text),
            other => panic!("expected Path, got {other:?}"),
        }
    }

    #[test]
    fn hyphenated_names_vs_axes() {
        let p = parse_xpath("//following-sibling::a").unwrap();
        assert_eq!(p.steps[1].axis, Axis::FollowingSibling);
        let p = parse_xpath("//my-tag").unwrap();
        assert_eq!(p.steps[1].test, NodeTest::Name("my-tag".into()));
    }

    #[test]
    fn attribute_steps() {
        let p = parse_xpath("//book[@id]/@lang").unwrap();
        assert_eq!(p.steps[2].test, NodeTest::Name("@lang".into()));
        match &p.steps[1].predicates[0] {
            Expr::Path(lp) => assert_eq!(lp.steps[0].test, NodeTest::Name("@id".into())),
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse_xpath("").is_err());
        assert!(parse_xpath("//a[").is_err());
        assert!(parse_xpath("//a]").is_err());
        assert!(parse_xpath("//a[not b]").is_err());
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The XPath parser is total: parse or positioned error, never a
        /// panic.
        #[test]
        fn parser_total_on_arbitrary_input(src in "[ -~]{0,60}") {
            let _ = parse_xpath_union(&src);
        }

        /// Token-soup inputs reach deeper grammar productions.
        #[test]
        fn parser_total_on_token_soup(
            toks in proptest::collection::vec(0..14u8, 0..30)
        ) {
            let parts = [
                "/", "//", "a", "*", "[", "]", "(", ")", "and", "or",
                "not", "::", "text()", "|",
            ];
            let src: String = toks.iter().map(|&t| parts[t as usize]).collect();
            let _ = parse_xpath_union(&src);
        }
    }
}
