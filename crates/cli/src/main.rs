//! The `arb` command-line tool — the Rust counterpart of the paper's Arb
//! system binary.
//!
//! ```text
//! arb create <input.xml> <output.arb> [--attrs] [--trim]
//! arb query  <db.arb> (--tmnf <program> | --xpath <path> | --file <prog.arb-q>)
//!            [--count | --nodes | --mark [out.xml]] [--stats]
//! arb stats  <db.arb>
//! arb check  <db.arb>
//! arb cat    <db.arb>
//! ```

use arb_engine::{Database, Query, QueryBatch};
use arb_xml::XmlConfig;
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("arb: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage:\n  arb create <input.xml> <output.arb> [--attrs] [--trim]\n  \
     arb query <db.arb> (--tmnf/-q <program> | --xpath <path> | --file <path>)... \
     [--batch] [--count | --nodes | --boolean | --explain | --mark [out.xml]] [--stats]\n  \
     arb stats <db.arb>\n  arb check <db.arb>\n  arb cat <db.arb>\n\n\
     Repeating --tmnf/-q/--xpath/--file submits all queries as one batch\n\
     evaluated with a single shared two-scan pass; --count/--nodes/--boolean\n\
     print one result per query, --mark writes one document marking the\n\
     union of the batch (add --stats for per-query rows)."
        .to_string()
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("create") => create(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("cat") => cat(&args[1..]),
        _ => Err(usage()),
    }
}

fn create(args: &[String]) -> Result<(), String> {
    let mut paths = Vec::new();
    let mut config = XmlConfig::default();
    for a in args {
        match a.as_str() {
            "--attrs" => config.attributes_as_nodes = true,
            "--trim" => config.trim_whitespace_text = true,
            other => paths.push(other.to_string()),
        }
    }
    let [xml, arb] = paths.as_slice() else {
        return Err(usage());
    };
    let (_db, stats) =
        Database::create_arb_from_xml(xml, arb, &config).map_err(|e| e.to_string())?;
    println!("{}", arb_storage::CreationStats::table_header());
    println!("{}", stats.table_row(arb));
    Ok(())
}

/// Compiles every `--tmnf`/`-q`/`--xpath`/`--file` argument (they may
/// repeat — a multi-query batch), returning the queries in argument
/// order plus the unconsumed flags.
fn compile(db: &mut Database, args: &[String]) -> Result<(Vec<Query>, Vec<String>), String> {
    let mut rest = Vec::new();
    let mut queries: Vec<Query> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tmnf" | "-q" | "--xpath" | "--file" => {
                let src = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{} needs an argument", args[i]))?;
                let q = match args[i].as_str() {
                    "--tmnf" | "-q" => db.compile_tmnf(src),
                    "--xpath" => db.compile_xpath(src),
                    _ => {
                        let text =
                            std::fs::read_to_string(src).map_err(|e| format!("{src}: {e}"))?;
                        db.compile_tmnf(&text)
                    }
                }
                .map_err(|e| e.to_string())?;
                if let Some(name) = &q.implicit_query_pred {
                    eprintln!(
                        "arb: note: query {} has no QUERY predicate; \
                         selecting the head of its last rule: {name}",
                        queries.len()
                    );
                }
                queries.push(q);
                i += 2;
            }
            other => {
                rest.push(other.to_string());
                i += 1;
            }
        }
    }
    if queries.is_empty() {
        return Err("no query given (use --tmnf/-q/--xpath/--file)".to_string());
    }
    Ok((queries, rest))
}

fn query(args: &[String]) -> Result<(), String> {
    let db_path = args.first().ok_or_else(usage)?;
    let mut db = Database::open_arb(db_path).map_err(|e| e.to_string())?;
    let (queries, rest) = compile(&mut db, &args[1..])?;

    let mut mode = "count";
    let mut mark_out: Option<String> = None;
    let mut show_stats = false;
    let mut force_batch = false;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--count" => mode = "count",
            "--nodes" => mode = "nodes",
            "--boolean" => mode = "boolean",
            "--explain" => mode = "explain",
            "--stats" => show_stats = true,
            "--batch" => force_batch = true,
            "--mark" => {
                mode = "mark";
                if let Some(next) = rest.get(i + 1) {
                    if !next.starts_with("--") {
                        mark_out = Some(next.clone());
                        i += 1;
                    }
                }
            }
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }

    if queries.len() > 1 || force_batch {
        return query_batch(&db, queries, mode, mark_out, show_stats);
    }
    let q = queries.into_iter().next().expect("one query");

    if mode == "explain" {
        println!(
            "# {} query compiled to strict TMNF ({} predicates, {} rules):",
            match q.language {
                arb_engine::QueryLanguage::Tmnf => "TMNF",
                arb_engine::QueryLanguage::XPath => "XPath",
            },
            q.idb_count(),
            q.rule_count()
        );
        print!("{}", q.program().display(db.labels()));
        return Ok(());
    }
    if mode == "boolean" {
        // Document filtering: a single backward scan (no phase 2).
        let accepted = db.evaluate_boolean(&q).map_err(|e| e.to_string())?;
        println!("{}", if accepted { "accept" } else { "reject" });
        return Ok(());
    }
    let outcome = match mode {
        "mark" => {
            let stdout = std::io::stdout();
            match &mark_out {
                Some(path) => {
                    let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
                    let mut w = std::io::BufWriter::new(f);
                    let o = db.evaluate_marked(&q, &mut w).map_err(|e| e.to_string())?;
                    w.flush().map_err(|e| e.to_string())?;
                    o
                }
                None => {
                    let mut lock = stdout.lock();
                    let o = db
                        .evaluate_marked(&q, &mut lock)
                        .map_err(|e| e.to_string())?;
                    writeln!(lock).ok();
                    o
                }
            }
        }
        _ => db.evaluate(&q).map_err(|e| e.to_string())?,
    };

    match mode {
        "count" => println!("{} nodes selected", outcome.stats.selected),
        "nodes" => {
            for v in outcome.selected.iter() {
                println!("{}", v.0);
            }
        }
        _ => {}
    }
    if show_stats {
        println!("{}", arb_core::EvalStats::table_header());
        println!("{}", outcome.stats.table_row());
    }
    Ok(())
}

/// Batched evaluation: all queries share one two-scan pass over the
/// database; results are printed per query, prefixed `q<i>:`.
fn query_batch(
    db: &Database,
    queries: Vec<Query>,
    mode: &str,
    mark_out: Option<String>,
    show_stats: bool,
) -> Result<(), String> {
    let batch = QueryBatch::new(&queries);
    if mode == "explain" {
        println!(
            "# batch of {} queries merged into one TMNF program \
             ({} predicates, {} rules):",
            batch.len(),
            batch.merged_program().pred_count(),
            batch.merged_program().rule_count()
        );
        print!("{}", batch.merged_program().display(db.labels()));
        return Ok(());
    }
    if mode == "boolean" {
        let verdicts = db
            .evaluate_boolean_batch(&batch)
            .map_err(|e| e.to_string())?;
        for (i, accepted) in verdicts.iter().enumerate() {
            println!("q{i}: {}", if *accepted { "accept" } else { "reject" });
        }
        return Ok(());
    }

    let out = match mode {
        "mark" => match &mark_out {
            Some(path) => {
                let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
                let mut w = std::io::BufWriter::new(f);
                let o = db
                    .evaluate_batch_marked(&batch, &mut w)
                    .map_err(|e| e.to_string())?;
                w.flush().map_err(|e| e.to_string())?;
                o
            }
            None => {
                let stdout = std::io::stdout();
                let mut lock = stdout.lock();
                let o = db
                    .evaluate_batch_marked(&batch, &mut lock)
                    .map_err(|e| e.to_string())?;
                writeln!(lock).ok();
                o
            }
        },
        _ => db.evaluate_batch(&batch).map_err(|e| e.to_string())?,
    };

    match mode {
        "count" => {
            for (i, o) in out.outcomes.iter().enumerate() {
                println!("q{i}: {} nodes selected", o.stats.selected);
            }
        }
        "nodes" => {
            for (i, o) in out.outcomes.iter().enumerate() {
                for v in o.selected.iter() {
                    println!("q{i}: {}", v.0);
                }
            }
        }
        _ => {}
    }
    if show_stats {
        println!("{}", arb_core::EvalStats::table_header());
        for o in &out.outcomes {
            println!("{}", o.stats.table_row());
        }
        println!(
            "# shared pass: {} backward scan(s), {} forward scan(s) for {} queries",
            out.stats.backward_scans,
            out.stats.forward_scans,
            batch.len()
        );
    }
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let db_path = args.first().ok_or_else(usage)?;
    let db = Database::open_arb(db_path).map_err(|e| e.to_string())?;
    println!("nodes:  {}", db.node_count());
    println!("tags:   {}", db.labels().tag_count());
    println!(
        "bytes:  {}",
        db.node_count() * arb_storage::format::RECORD_BYTES as u64
    );
    if args.iter().any(|a| a == "--full") {
        let disk = db.as_disk().ok_or("not a disk database")?;
        let p = arb_storage::profile(disk).map_err(|e| e.to_string())?;
        println!("elements:   {}", p.elem_nodes);
        println!("characters: {}", p.char_nodes);
        println!("max depth:  {}", p.max_depth);
        println!("max fanout: {}", p.max_fanout);
        println!("leaf elems: {}", p.leaf_elems);
        println!("top tags:");
        for (name, count) in p.top_tags(disk, 10) {
            println!("  {name:<20} {count}");
        }
    }
    Ok(())
}

fn check(args: &[String]) -> Result<(), String> {
    let db_path = args.first().ok_or_else(usage)?;
    let db = Database::open_arb(db_path).map_err(|e| e.to_string())?;
    let disk = db.as_disk().ok_or("not a disk database")?;
    let report = disk.validate().map_err(|e| format!("INVALID: {e}"))?;
    println!(
        "OK: {} nodes ({} elements, {} characters), {} tags",
        report.nodes,
        report.elem_nodes,
        report.char_nodes,
        db.labels().tag_count()
    );
    Ok(())
}

fn cat(args: &[String]) -> Result<(), String> {
    let db_path = args.first().ok_or_else(usage)?;
    let db = Database::open_arb(db_path).map_err(|e| e.to_string())?;
    let disk = db.as_disk().ok_or("not a disk database")?;
    let mut emitter = arb_engine::XmlEmitter::new(db.labels(), std::io::stdout().lock());
    let mut scan = disk.forward_scan().map_err(|e| e.to_string())?;
    while let Some((_ix, rec)) = scan.next_record().map_err(|e| e.to_string())? {
        emitter.node(rec, false).map_err(|e| e.to_string())?;
    }
    let mut out = emitter.finish().map_err(|e| e.to_string())?;
    writeln!(out).ok();
    Ok(())
}
