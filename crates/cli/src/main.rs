//! The `arb` command-line tool — the Rust counterpart of the paper's Arb
//! system binary, built on the engine's prepared [`Session`] /
//! [`EvalRequest`] / [`arb_engine::ResultSink`] surface.
//!
//! ```text
//! arb create <input.xml> <output.arb> [--attrs] [--trim] [--format v1|v2]
//! arb query  <db.arb> (--tmnf <program> | --xpath <path> | --file <prog.arb-q>)...
//!            [--output bool|count|nodes|xml] [--mark [out.xml]] [--stats]
//!            [--memory] [--threads N] [--batch] [--explain]
//! arb stats  <db.arb>
//! arb check  <db.arb>
//! arb cat    <db.arb>
//! arb serve  --listen <addr> [--batch-window MS] [--max-batch N] [--queue-cap N]
//!            [--cache-budget BYTES] [--workers N] [--no-sweep] <db.arb>...
//! arb client <addr> [<db> (--tmnf <program> | --xpath <path>)
//!            [--output bool|count|nodes|xml] [--stats]] [--server-stats]
//!            [--ping] [--shutdown]
//! arb update <db.arb> (--append <under> <frag> | --splice <at> <frag>
//!            | --delete <at>)...
//! arb watch  <addr> <db> (--tmnf <program> | --xpath <path>)...
//! ```
//!
//! `serve` keeps databases hot in a resident process; concurrent
//! `client` queries landing in one admission window share a single
//! two-scan pass (see the `arb_server` crate docs for the protocol).
//!
//! `update` edits a v2 `.arb` file **offline and in place**: the storage
//! layer rewrites only the record blocks the edit window touches and
//! bumps the file's epoch. Fragments may introduce new tags — the `.lab`
//! file grows to match. `watch` is the online counterpart: it registers
//! a standing query batch on a running server, then reads edit commands
//! (`append <under> <xml>` / `splice <at> <xml>` / `delete <at>`) from
//! stdin and prints the result deltas the server pushes back after each
//! incremental refresh.

use arb_engine::{
    BooleanSink, CountSink, Database, EvalRequest, NodeSetSink, Query, QueryBatch, Session,
    XmlMarkSink,
};
use arb_server::protocol::{OutputKind, QueryResult, WireLanguage};
use arb_server::{Client, Server, ServerConfig};
use arb_xml::XmlConfig;
use std::collections::HashSet;
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("arb: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage:\n  arb create <input.xml> <output.arb> [--attrs] [--trim] [--format v1|v2]\n  \
     arb query <db.arb> (--tmnf/-q <program> | --xpath <path> | --file <path>)... \
     [--output bool|count|nodes|xml] [--mark [out.xml]] [--stats]\n            \
     [--memory] [--threads N] [--batch] [--explain]\n  \
     arb stats <db.arb>\n  arb check <db.arb>\n  arb cat <db.arb>\n  \
     arb serve --listen <addr> [--batch-window MS] [--max-batch N] [--queue-cap N]\n            \
     [--cache-budget BYTES] [--workers N] [--no-sweep] <db.arb>...\n  \
     arb client <addr> [<db> (--tmnf <program> | --xpath <path>)\n            \
     [--output bool|count|nodes|xml] [--stats]] [--server-stats] [--ping] [--shutdown]\n  \
     arb update <db.arb> (--append <under> <frag> | --splice <at> <frag> | --delete <at>)...\n  \
     arb watch <addr> <db> (--tmnf <program> | --xpath <path>)...\n\n\
     Repeating --tmnf/-q/--xpath/--file submits all queries as one prepared\n\
     session evaluated with a single shared two-scan pass. --output picks the\n\
     result sink: bool/count/nodes print one line per query, xml writes one\n\
     document marking the union of the session (--mark [file] is shorthand\n\
     for --output xml with an output path). --threads N shards the pass over\n\
     N workers on either backend (disjoint subtree range scans on disk, no\n\
     --memory needed); --memory materializes the tree first. The legacy\n\
     --count/--nodes/--boolean flags are aliases for --output.\n\
     arb serve --workers N applies the same sharding to every dispatched\n\
     admission window."
        .to_string()
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("create") => create(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("cat") => cat(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        Some("update") => update(&args[1..]),
        Some("watch") => watch(&args[1..]),
        _ => Err(usage()),
    }
}

fn create(args: &[String]) -> Result<(), String> {
    let mut paths = Vec::new();
    let mut config = XmlConfig::default();
    let mut format = arb_storage::FormatVersion::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--attrs" => config.attributes_as_nodes = true,
            "--trim" => config.trim_whitespace_text = true,
            "--format" => {
                let v = args.get(i + 1).ok_or("--format needs an argument")?;
                format = match v.as_str() {
                    "v1" | "1" => arb_storage::FormatVersion::V1,
                    "v2" | "2" => arb_storage::FormatVersion::V2,
                    other => return Err(format!("unknown format {other:?} (use v1 or v2)")),
                };
                i += 1;
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    let [xml, arb] = paths.as_slice() else {
        return Err(usage());
    };
    let (_db, stats) =
        Database::create_arb_from_xml_with(xml, arb, &config, format).map_err(|e| e.to_string())?;
    println!("{}", arb_storage::CreationStats::table_header());
    println!("{}", stats.table_row(arb));
    Ok(())
}

/// Compiles every `--tmnf`/`-q`/`--xpath`/`--file` argument (they may
/// repeat — a multi-query session), returning the queries in argument
/// order plus the unconsumed flags. The implicit-QUERY-predicate note is
/// printed once per *distinct* program text, not once per occurrence.
fn compile(db: &mut Database, args: &[String]) -> Result<(Vec<Query>, Vec<String>), String> {
    let mut rest = Vec::new();
    let mut queries: Vec<Query> = Vec::new();
    let mut warned: HashSet<String> = HashSet::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tmnf" | "-q" | "--xpath" | "--file" => {
                let src = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{} needs an argument", args[i]))?;
                let q = match args[i].as_str() {
                    "--tmnf" | "-q" => db.compile_tmnf(src),
                    "--xpath" => db.compile_xpath(src),
                    _ => {
                        let text =
                            std::fs::read_to_string(src).map_err(|e| format!("{src}: {e}"))?;
                        db.compile_tmnf(&text)
                    }
                }
                .map_err(|e| e.to_string())?;
                if let Some(name) = &q.implicit_query_pred {
                    if warned.insert(q.source.clone()) {
                        eprintln!(
                            "arb: note: query {} has no QUERY predicate; \
                             selecting the head of its last rule: {name}",
                            queries.len()
                        );
                    }
                }
                queries.push(q);
                i += 2;
            }
            other => {
                rest.push(other.to_string());
                i += 1;
            }
        }
    }
    if queries.is_empty() {
        return Err("no query given (use --tmnf/-q/--xpath/--file)".to_string());
    }
    Ok((queries, rest))
}

/// The output shape, mapped onto the engine's provided sinks.
#[derive(Clone, Copy, PartialEq)]
enum Output {
    Bool,
    Count,
    Nodes,
    Xml,
}

/// Everything `arb query` parsed from its flags.
struct QueryArgs {
    output: Output,
    explain: bool,
    mark_out: Option<String>,
    show_stats: bool,
    force_batch: bool,
    memory: bool,
    threads: usize,
}

fn parse_query_flags(rest: &[String]) -> Result<QueryArgs, String> {
    let mut parsed = QueryArgs {
        output: Output::Count,
        explain: false,
        mark_out: None,
        show_stats: false,
        force_batch: false,
        memory: false,
        threads: 1,
    };
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--output" => {
                let mode = rest
                    .get(i + 1)
                    .ok_or_else(|| "--output needs bool|count|nodes|xml".to_string())?;
                parsed.output = match mode.as_str() {
                    "bool" | "boolean" => Output::Bool,
                    "count" => Output::Count,
                    "nodes" => Output::Nodes,
                    "xml" | "mark" => Output::Xml,
                    other => return Err(format!("unknown output mode {other:?}")),
                };
                i += 1;
            }
            // Legacy aliases for --output.
            "--count" => parsed.output = Output::Count,
            "--nodes" => parsed.output = Output::Nodes,
            "--boolean" => parsed.output = Output::Bool,
            "--explain" => parsed.explain = true,
            "--stats" => parsed.show_stats = true,
            "--batch" => parsed.force_batch = true,
            "--memory" => parsed.memory = true,
            "--threads" => {
                let n = rest
                    .get(i + 1)
                    .and_then(|v| v.parse::<usize>().ok())
                    .ok_or_else(|| "--threads needs a number".to_string())?;
                parsed.threads = n.max(1);
                i += 1;
            }
            "--mark" => {
                parsed.output = Output::Xml;
                if let Some(next) = rest.get(i + 1) {
                    if !next.starts_with("--") {
                        parsed.mark_out = Some(next.clone());
                        i += 1;
                    }
                }
            }
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    Ok(parsed)
}

fn query(args: &[String]) -> Result<(), String> {
    let db_path = args.first().ok_or_else(usage)?;
    let mut db = Database::open_arb(db_path).map_err(|e| e.to_string())?;
    let (queries, rest) = compile(&mut db, &args[1..])?;
    let parsed = parse_query_flags(&rest)?;

    // Per-query output lines carry a `q<i>:` prefix for multi-query
    // sessions (or when --batch forces batch formatting).
    let prefixed = queries.len() > 1 || parsed.force_batch;

    if parsed.explain {
        return explain(&db, &queries, prefixed);
    }

    let batch = QueryBatch::new(&queries);
    let session = db.prepare_batch(&batch);
    let req = EvalRequest::new()
        .prefer_memory(parsed.memory)
        .parallelism(parsed.threads)
        .verbose_stats(parsed.show_stats);

    let label = |i: usize| {
        if prefixed {
            format!("q{i}: ")
        } else {
            String::new()
        }
    };

    match parsed.output {
        Output::Bool => {
            let mut sink = BooleanSink::default();
            session.eval(&req, &mut sink).map_err(|e| e.to_string())?;
            for (i, accepted) in sink.verdicts().iter().enumerate() {
                println!(
                    "{}{}",
                    label(i),
                    if *accepted { "accept" } else { "reject" }
                );
            }
            Ok(())
        }
        Output::Count => {
            let mut sink = CountSink::default();
            let report = session.eval(&req, &mut sink).map_err(|e| e.to_string())?;
            for (i, count) in sink.counts().iter().enumerate() {
                println!("{}{count} nodes selected", label(i));
            }
            print_stats(&session, &report, &req, prefixed);
            Ok(())
        }
        Output::Nodes => {
            let mut sink = NodeSetSink::default();
            let report = session.eval(&req, &mut sink).map_err(|e| e.to_string())?;
            for (i, set) in sink.sets().iter().enumerate() {
                for v in set.iter() {
                    println!("{}{}", label(i), v.0);
                }
            }
            print_stats(&session, &report, &req, prefixed);
            Ok(())
        }
        Output::Xml => {
            let report = match &parsed.mark_out {
                Some(path) => {
                    let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
                    let mut w = std::io::BufWriter::new(f);
                    let mut sink = XmlMarkSink::new(db.labels(), &mut w);
                    let report = session.eval(&req, &mut sink).map_err(|e| e.to_string())?;
                    w.flush().map_err(|e| e.to_string())?;
                    report
                }
                None => {
                    let stdout = std::io::stdout();
                    let mut lock = stdout.lock();
                    let mut sink = XmlMarkSink::new(db.labels(), &mut lock);
                    let report = session.eval(&req, &mut sink).map_err(|e| e.to_string())?;
                    writeln!(lock).ok();
                    report
                }
            };
            print_stats(&session, &report, &req, prefixed);
            Ok(())
        }
    }
}

/// Prints the Figure-6 statistics rows when the request's
/// `verbose_stats` option (the CLI's `--stats`) asked for them: one row
/// per query, plus the shared-pass note in batch formatting.
fn print_stats(
    session: &Session<'_>,
    report: &arb_engine::EvalReport,
    req: &EvalRequest,
    prefixed: bool,
) {
    if !req.options().verbose_stats {
        return;
    }
    let Some(batch) = &report.batch else { return };
    println!("{}", arb_core::EvalStats::table_header());
    for o in &batch.outcomes {
        println!("{}", o.stats.table_row());
    }
    if prefixed {
        println!(
            "# shared pass: {} backward scan(s), {} forward scan(s) for {} queries",
            batch.stats.backward_scans,
            batch.stats.forward_scans,
            session.len()
        );
    }
    if batch.stats.sta_encoded_bytes > 0 {
        println!(
            "# .sta stream: {} bytes encoded for {} bytes of states read back ({:.2} B/node)",
            batch.stats.sta_encoded_bytes,
            batch.stats.sta_decoded_bytes,
            batch.stats.sta_encoded_bytes as f64 / batch.stats.nodes.max(1) as f64,
        );
    }
}

/// `--explain`: print the compiled program(s) without evaluating.
fn explain(db: &Database, queries: &[Query], prefixed: bool) -> Result<(), String> {
    if !prefixed {
        let q = &queries[0];
        println!(
            "# {} query compiled to strict TMNF ({} predicates, {} rules):",
            match q.language {
                arb_engine::QueryLanguage::Tmnf => "TMNF",
                arb_engine::QueryLanguage::XPath => "XPath",
            },
            q.idb_count(),
            q.rule_count()
        );
        print!("{}", q.program().display(db.labels()));
        return Ok(());
    }
    let batch = QueryBatch::new(queries);
    println!(
        "# batch of {} queries merged into one TMNF program \
         ({} predicates, {} rules):",
        batch.len(),
        batch.merged_program().pred_count(),
        batch.merged_program().rule_count()
    );
    print!("{}", batch.merged_program().display(db.labels()));
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let db_path = args.first().ok_or_else(usage)?;
    let db = Database::open_arb(db_path).map_err(|e| e.to_string())?;
    println!("nodes:  {}", db.node_count());
    println!("tags:   {}", db.labels().tag_count());
    if let Some(disk) = db.as_disk() {
        println!("format: v{}", disk.format_version());
        println!("bytes:  {}", disk.file_bytes());
        let (appends, splices, deletes) = disk.update_counters();
        println!(
            "epoch:  {} ({appends} appends, {splices} splices, {deletes} deletes)",
            disk.epoch()
        );
    }
    if args.iter().any(|a| a == "--full") {
        let disk = db.as_disk().ok_or("not a disk database")?;
        let p = arb_storage::profile(disk).map_err(|e| e.to_string())?;
        println!("elements:   {}", p.elem_nodes);
        println!("characters: {}", p.char_nodes);
        println!("max depth:  {}", p.max_depth);
        println!("max fanout: {}", p.max_fanout);
        println!("leaf elems: {}", p.leaf_elems);
        println!("top tags:");
        for (name, count) in p.top_tags(disk, 10) {
            println!("  {name:<20} {count}");
        }
    }
    Ok(())
}

fn check(args: &[String]) -> Result<(), String> {
    let db_path = args.first().ok_or_else(usage)?;
    let db = Database::open_arb(db_path).map_err(|e| e.to_string())?;
    let disk = db.as_disk().ok_or("not a disk database")?;
    let report = disk.validate().map_err(|e| format!("INVALID: {e}"))?;
    println!(
        "OK: {} nodes ({} elements, {} characters), {} tags",
        report.nodes,
        report.elem_nodes,
        report.char_nodes,
        db.labels().tag_count()
    );
    Ok(())
}

fn serve(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig::default();
    let mut dbs: Vec<String> = Vec::new();
    let mut i = 0;
    let num = |args: &[String], i: usize, flag: &str| -> Result<u64, String> {
        args.get(i + 1)
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| format!("{flag} needs a number"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                config.listen = args.get(i + 1).ok_or("--listen needs an address")?.clone();
                i += 1;
            }
            "--batch-window" => {
                config.batch_window =
                    std::time::Duration::from_millis(num(args, i, "--batch-window")?);
                i += 1;
            }
            "--max-batch" => {
                config.max_batch = num(args, i, "--max-batch")?.max(1) as usize;
                i += 1;
            }
            "--queue-cap" => {
                config.queue_cap = num(args, i, "--queue-cap")?.max(1) as usize;
                i += 1;
            }
            "--cache-budget" => {
                config.cache_budget = num(args, i, "--cache-budget")? as usize;
                i += 1;
            }
            "--workers" => {
                config.workers = num(args, i, "--workers")?.max(1) as usize;
                i += 1;
            }
            "--no-sweep" => config.sweep_scratch = false,
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag:?}")),
            db => dbs.push(db.to_string()),
        }
        i += 1;
    }
    if dbs.is_empty() {
        return Err("serve needs at least one <db.arb>".to_string());
    }
    let handle = Server::start(config, &dbs).map_err(|e| e.to_string())?;
    println!("arb-server listening on {}", handle.local_addr());
    for db in &dbs {
        let stem = std::path::Path::new(db)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(db);
        println!("  serving {stem} ({db})");
    }
    handle.wait();
    println!("arb-server: shut down");
    Ok(())
}

fn client(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or_else(usage)?;
    let mut c = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
    let rest = &args[1..];
    if rest.iter().any(|a| a == "--ping") {
        c.ping().map_err(|e| e.to_string())?;
        println!("pong");
        return Ok(());
    }
    if rest.iter().any(|a| a == "--server-stats") {
        let s = c.server_stats().map_err(|e| e.to_string())?;
        println!("requests:        {}", s.requests);
        println!("batches:         {}", s.batches);
        println!("max batch:       {}", s.max_batch);
        println!("backward scans:  {}", s.backward_scans);
        println!("forward scans:   {}", s.forward_scans);
        println!("overloaded:      {}", s.overloaded);
        println!("cache hits:      {}", s.cache_hits);
        println!("cache misses:    {}", s.cache_misses);
        println!("cache evictions: {}", s.cache_evictions);
        println!("cache bytes:     {}", s.cache_bytes);
        println!("open databases:  {}", s.open_databases);
        println!("automata builds: {}", s.automata_builds);
        println!("automata reused: {}", s.automata_reused);
        println!("automata build time: {} us", s.automata_build_us);
        println!("standing registered: {}", s.standing_registered);
        println!("standing active: {}", s.standing_active);
        println!("doc updates:     {}", s.doc_updates);
        println!("delta pushes:    {}", s.delta_pushes);
        return Ok(());
    }
    if rest.iter().any(|a| a == "--shutdown") {
        c.shutdown().map_err(|e| e.to_string())?;
        println!("server shutting down");
        return Ok(());
    }
    // A query round trip: arb client <addr> <db> --tmnf/--xpath <src>.
    let db = rest.first().ok_or_else(usage)?;
    let mut language = None;
    let mut source = None;
    let mut output = OutputKind::Count;
    let mut show_stats = false;
    let mut i = 1;
    while i < rest.len() {
        match rest[i].as_str() {
            "--tmnf" | "-q" | "--xpath" => {
                language = Some(if rest[i] == "--xpath" {
                    WireLanguage::XPath
                } else {
                    WireLanguage::Tmnf
                });
                source = Some(
                    rest.get(i + 1)
                        .ok_or_else(|| format!("{} needs an argument", rest[i]))?
                        .clone(),
                );
                i += 1;
            }
            "--output" => {
                let mode = rest
                    .get(i + 1)
                    .ok_or_else(|| "--output needs bool|count|nodes|xml".to_string())?;
                output = match mode.as_str() {
                    "bool" | "boolean" => OutputKind::Bool,
                    "count" => OutputKind::Count,
                    "nodes" => OutputKind::Nodes,
                    "xml" | "mark" => OutputKind::Xml,
                    other => return Err(format!("unknown output mode {other:?}")),
                };
                i += 1;
            }
            "--stats" => show_stats = true,
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    let (language, source) = language
        .zip(source)
        .ok_or("no query given (use --tmnf/-q/--xpath)")?;
    let reply = c
        .query(db, language, output, &source)
        .map_err(|e| e.to_string())?;
    match reply.result {
        QueryResult::Bool(v) => println!("{}", if v { "accept" } else { "reject" }),
        QueryResult::Count(n) => println!("{n} nodes selected"),
        QueryResult::Nodes(nodes) => {
            for v in nodes {
                println!("{v}");
            }
        }
        QueryResult::Xml(bytes) => {
            std::io::stdout()
                .write_all(&bytes)
                .map_err(|e| e.to_string())?;
            println!();
        }
    }
    if show_stats {
        let s = reply.stats;
        println!(
            "# shared pass: batch of {} (queue wait {} us), {} backward + {} forward scan(s), \
             {} selected of {} nodes, cache {}, automata {} built / {} reused",
            s.batch_size,
            s.queue_wait_us,
            s.backward_scans,
            s.forward_scans,
            s.selected,
            s.nodes,
            if s.cache_hit { "hit" } else { "miss" },
            s.automata_builds,
            s.automata_reused
        );
    }
    Ok(())
}

/// `arb update`: offline in-place edits on a v2 `.arb` file. Fragments
/// are inline XML (or `@file` to read one from disk) and may introduce
/// new tags — the `.lab` file is rewritten to the grown label table
/// before the edit commits.
fn update(args: &[String]) -> Result<(), String> {
    let db_path = args.first().ok_or_else(usage)?;
    let path = std::path::Path::new(db_path);
    enum Op {
        Append(u32, String),
        Splice(u32, String),
        Delete(u32),
    }
    let mut ops = Vec::new();
    let mut i = 1;
    let pos = |args: &[String], i: usize, flag: &str| -> Result<u32, String> {
        args.get(i + 1)
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| format!("{flag} needs a preorder index"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--append" | "--splice" => {
                let at = pos(args, i, &args[i])?;
                let frag = args
                    .get(i + 2)
                    .ok_or_else(|| format!("{} needs <pos> <fragment>", args[i]))?;
                let xml = match frag.strip_prefix('@') {
                    Some(file) => {
                        std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?
                    }
                    None => frag.clone(),
                };
                ops.push(if args[i] == "--append" {
                    Op::Append(at, xml)
                } else {
                    Op::Splice(at, xml)
                });
                i += 2;
            }
            "--delete" => {
                ops.push(Op::Delete(pos(args, i, "--delete")?));
                i += 1;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    if ops.is_empty() {
        return Err("update needs at least one --append/--splice/--delete".to_string());
    }
    let mut updater = arb_storage::ArbUpdater::open(path).map_err(|e| e.to_string())?;
    let mut labels = arb_storage::ArbDatabase::open(path)
        .map_err(|e| e.to_string())?
        .labels()
        .clone();
    let base_tags = labels.tag_count();
    // Parses a fragment against the database's label table, growing the
    // `.lab` file first when the fragment interns new tags (the header's
    // tag count follows via `set_tag_count`, so readers of the updated
    // file see a consistent label space).
    let frag_records = |updater: &mut arb_storage::ArbUpdater,
                        labels: &mut arb_xml::LabelTable,
                        xml: &str|
     -> Result<Vec<arb_storage::NodeRecord>, String> {
        let tree = arb_xml::str_to_tree(xml, labels).map_err(|e| e.to_string())?;
        if labels.tag_count() != base_tags {
            std::fs::write(path.with_extension("lab"), labels.to_lab_string())
                .map_err(|e| e.to_string())?;
        }
        updater.set_tag_count(labels.tag_count() as u32);
        Ok(tree
            .nodes()
            .map(|v| {
                let info = tree.info(v);
                arb_storage::NodeRecord {
                    label: info.label,
                    has_first: info.has_first,
                    has_second: info.has_second,
                }
            })
            .collect())
    };
    for op in &ops {
        let report = match op {
            Op::Append(under, xml) => {
                let frag = frag_records(&mut updater, &mut labels, xml)?;
                updater.append_subtree(*under, &frag)
            }
            Op::Splice(at, xml) => {
                let frag = frag_records(&mut updater, &mut labels, xml)?;
                updater.splice_subtree(*at, &frag)
            }
            Op::Delete(at) => updater.delete_subtree(*at),
        }
        .map_err(|e| e.to_string())?;
        println!(
            "epoch {}: window at {} (-{} +{} records), {} -> {} nodes, \
             {} block(s) retained / {} rewritten",
            report.epoch,
            report.plan.pos,
            report.plan.removed,
            report.plan.inserted,
            report.old_nodes,
            report.new_nodes,
            report.retained_blocks,
            report.rewritten_blocks
        );
    }
    Ok(())
}

/// `arb watch`: register a standing query batch on a running server,
/// then stream edit commands from stdin and print the per-query result
/// deltas the server pushes back after each incremental refresh.
fn watch(args: &[String]) -> Result<(), String> {
    use arb_server::protocol::WireUpdate;
    use std::io::BufRead;

    let addr = args.first().ok_or_else(usage)?;
    let db = args.get(1).ok_or_else(usage)?;
    let mut language = None;
    let mut sources: Vec<String> = Vec::new();
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--tmnf" | "-q" | "--xpath" => {
                let lang = if args[i] == "--xpath" {
                    WireLanguage::XPath
                } else {
                    WireLanguage::Tmnf
                };
                if *language.get_or_insert(lang) != lang {
                    return Err("watch queries must share one language".to_string());
                }
                sources.push(
                    args.get(i + 1)
                        .ok_or_else(|| format!("{} needs an argument", args[i]))?
                        .clone(),
                );
                i += 1;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    let language = language.ok_or("no query given (use --tmnf/-q/--xpath)")?;
    let mut c = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let reg = c.register(db, language, &refs).map_err(|e| e.to_string())?;
    println!(
        "registered handle {} at epoch {} ({} queries)",
        reg.handle,
        reg.epoch,
        reg.initial.len()
    );
    for (i, set) in reg.initial.iter().enumerate() {
        println!("q{i}: {} nodes initially selected", set.len());
    }
    println!("# commands: append <under> <xml> | splice <at> <xml> | delete <at> | quit");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let verb = parts.next().unwrap_or_default();
        let at: u32 = match parts.next().and_then(|p| p.parse().ok()) {
            Some(v) => v,
            None => {
                eprintln!("arb: {verb} needs a preorder index");
                continue;
            }
        };
        let update = match (verb, parts.next()) {
            ("append", Some(xml)) => WireUpdate::AppendChild {
                under: at,
                xml: xml.to_string(),
            },
            ("splice", Some(xml)) => WireUpdate::SpliceSubtree {
                at,
                xml: xml.to_string(),
            },
            ("delete", None) => WireUpdate::DeleteSubtree { at },
            _ => {
                eprintln!("arb: unknown command {line:?}");
                continue;
            }
        };
        let reply = match c.update_doc(db, update) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("arb: {e}");
                continue;
            }
        };
        println!(
            "epoch {}: window at {} (-{} +{}), {} nodes, {} dirty, {} .sta block(s) retained",
            reply.epoch,
            reply.pos,
            reply.removed,
            reply.inserted,
            reply.nodes,
            reply.dirty_nodes,
            reply.retained_sta_blocks
        );
        for push in reply.pushes.iter().filter(|p| p.handle == reg.handle) {
            for (i, d) in push.queries.iter().enumerate() {
                println!(
                    "q{i}: +{} -{} nodes, verdict {}{}",
                    d.added.len(),
                    d.removed.len(),
                    if d.verdict { "accept" } else { "reject" },
                    if d.verdict_changed { " (flipped)" } else { "" }
                );
            }
        }
    }
    c.unregister(db, reg.handle).map_err(|e| e.to_string())?;
    println!("unregistered handle {}", reg.handle);
    Ok(())
}

fn cat(args: &[String]) -> Result<(), String> {
    let db_path = args.first().ok_or_else(usage)?;
    let db = Database::open_arb(db_path).map_err(|e| e.to_string())?;
    let disk = db.as_disk().ok_or("not a disk database")?;
    let mut emitter = arb_engine::XmlEmitter::new(db.labels(), std::io::stdout().lock());
    let mut scan = disk.forward_scan().map_err(|e| e.to_string())?;
    while let Some((_ix, rec)) = scan.next_record().map_err(|e| e.to_string())? {
        emitter.node(rec, false).map_err(|e| e.to_string())?;
    }
    let mut out = emitter.finish().map_err(|e| e.to_string())?;
    writeln!(out).ok();
    Ok(())
}
