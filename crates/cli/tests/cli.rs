//! Integration tests of the `arb` command-line binary.

/// The `arb` CLI: create, stats, query, cat.
#[test]
fn cli_smoke() {
    let exe = env!("CARGO_BIN_EXE_arb", "arb CLI binary");
    let dir = std::env::temp_dir().join(format!("arb-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let xml_path = dir.join("doc.xml");
    std::fs::write(&xml_path, "<d><k>v</k><k/></d>").unwrap();
    let arb_path = dir.join("doc.arb");

    let run = |args: &[&str]| {
        let out = std::process::Command::new(exe)
            .args(args)
            .output()
            .expect("spawn arb");
        assert!(
            out.status.success(),
            "arb {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    let out = run(&[
        "create",
        xml_path.to_str().unwrap(),
        arb_path.to_str().unwrap(),
    ]);
    assert!(out.contains("elem nodes"));

    let out = run(&["stats", arb_path.to_str().unwrap()]);
    assert!(out.contains("nodes:  4"));

    let out = run(&[
        "query",
        arb_path.to_str().unwrap(),
        "--xpath",
        "//k",
        "--count",
    ]);
    assert!(out.contains("2 nodes selected"));

    let out = run(&[
        "query",
        arb_path.to_str().unwrap(),
        "--tmnf",
        "QUERY :- V.Label[k], Leaf;",
        "--nodes",
        "--stats",
    ]);
    assert!(out.contains('3'), "output: {out}"); // the empty <k/> is node 3
    assert!(out.contains("|IDB|"));

    let out = run(&["cat", arb_path.to_str().unwrap()]);
    assert!(out.contains("<d><k>v</k><k></k></d>"));

    let out = run(&[
        "query",
        arb_path.to_str().unwrap(),
        "--xpath",
        "//k[not(text())]",
        "--mark",
    ]);
    assert!(out.contains("<k arb:selected=\"true\"></k>"));

    let out = run(&["check", arb_path.to_str().unwrap()]);
    assert!(out.contains("OK: 4 nodes"), "output: {out}");

    let out = run(&[
        "query",
        arb_path.to_str().unwrap(),
        "--xpath",
        "//k",
        "--boolean",
    ]);
    assert!(out.contains("reject"), "root is not a k: {out}");
    let out = run(&[
        "query",
        arb_path.to_str().unwrap(),
        "--xpath",
        "//d[k]",
        "--boolean",
    ]);
    assert!(out.contains("accept"), "output: {out}");

    // Errors are reported, not panicked.
    let out = std::process::Command::new(exe)
        .args(["query", arb_path.to_str().unwrap(), "--tmnf", "bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

/// Batched multi-query evaluation: repeated query flags submit one batch
/// evaluated in a single shared pass, with per-query output lines.
#[test]
fn cli_batch_queries() {
    let exe = env!("CARGO_BIN_EXE_arb", "arb CLI binary");
    let dir = std::env::temp_dir().join(format!("arb-cli-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let xml_path = dir.join("doc.xml");
    std::fs::write(&xml_path, "<d><k>v</k><k/><m/></d>").unwrap();
    let arb_path = dir.join("doc.arb");
    let arb = arb_path.to_str().unwrap();

    let run = |args: &[&str]| {
        let out = std::process::Command::new(exe)
            .args(args)
            .output()
            .expect("spawn arb");
        assert!(
            out.status.success(),
            "arb {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8(out.stdout).unwrap(),
            String::from_utf8(out.stderr).unwrap(),
        )
    };

    run(&["create", xml_path.to_str().unwrap(), arb]);

    // Mixed TMNF + XPath batch, per-query counts.
    let (out, _) = run(&[
        "query",
        arb,
        "-q",
        "QUERY :- V.Label[k];",
        "--xpath",
        "//m",
        "--count",
    ]);
    assert!(out.contains("q0: 2 nodes selected"), "output: {out}");
    assert!(out.contains("q1: 1 nodes selected"), "output: {out}");

    // Per-query node listings and the shared-pass stats note.
    let (out, _) = run(&[
        "query",
        arb,
        "-q",
        "QUERY :- V.Label[m];",
        "-q",
        "QUERY :- Text;",
        "--nodes",
        "--stats",
    ]);
    assert!(out.contains("q0: 4"), "output: {out}");
    assert!(out.contains("q1: 2"), "output: {out}");
    assert!(
        out.contains("1 backward scan(s), 1 forward scan(s) for 2 queries"),
        "output: {out}"
    );

    // Per-query boolean verdicts from one shared backward scan.
    let (out, _) = run(&[
        "query",
        arb,
        "--xpath",
        "//d[k]",
        "--xpath",
        "//k[m]",
        "--boolean",
    ]);
    assert!(out.contains("q0: accept"), "output: {out}");
    assert!(out.contains("q1: reject"), "output: {out}");

    // --batch forces batch formatting even for a single query.
    let (out, _) = run(&["query", arb, "--xpath", "//k", "--batch", "--count"]);
    assert!(out.contains("q0: 2 nodes selected"), "output: {out}");

    // A query without a QUERY predicate triggers the explicit note.
    let (out, err) = run(&[
        "query",
        arb,
        "--tmnf",
        "A :- V.Label[k]; B :- A.FirstChild;",
        "--count",
    ]);
    assert!(out.contains("nodes selected"), "output: {out}");
    assert!(
        err.contains("no QUERY predicate") && err.contains("B"),
        "stderr: {err}"
    );

    // The note prints once per *distinct* program, not once per
    // occurrence: the same program twice warns once, a different
    // QUERY-less program warns again.
    let (_, err) = run(&[
        "query",
        arb,
        "--tmnf",
        "A :- V.Label[k]; B :- A.FirstChild;",
        "--tmnf",
        "A :- V.Label[k]; B :- A.FirstChild;",
        "--tmnf",
        "C :- V.Label[m];",
        "--count",
    ]);
    assert_eq!(
        err.matches("no QUERY predicate").count(),
        2,
        "stderr: {err}"
    );
}

/// The unified `--output` flag maps onto the engine's result sinks; the
/// `EvalOptions` knobs (`--memory`, `--threads`) ride on the same
/// prepared session and must not change results.
#[test]
fn cli_output_flag_and_options() {
    let exe = env!("CARGO_BIN_EXE_arb", "arb CLI binary");
    let dir = std::env::temp_dir().join(format!("arb-cli-out-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let xml_path = dir.join("doc.xml");
    std::fs::write(&xml_path, "<d><k>v</k><k/><m/></d>").unwrap();
    let arb_path = dir.join("doc.arb");
    let arb = arb_path.to_str().unwrap();

    let run = |args: &[&str]| {
        let out = std::process::Command::new(exe)
            .args(args)
            .output()
            .expect("spawn arb");
        assert!(
            out.status.success(),
            "arb {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    run(&["create", xml_path.to_str().unwrap(), arb]);

    let out = run(&["query", arb, "--xpath", "//k", "--output", "count"]);
    assert!(out.contains("2 nodes selected"), "output: {out}");

    let out = run(&["query", arb, "--xpath", "//k", "--output", "nodes"]);
    assert!(out.contains('1') && out.contains('3'), "output: {out}");

    let out = run(&["query", arb, "--xpath", "//d[k]", "--output", "bool"]);
    assert!(out.contains("accept"), "output: {out}");

    let out = run(&["query", arb, "--xpath", "//m", "--output", "xml"]);
    assert!(out.contains("<m arb:selected=\"true\">"), "output: {out}");

    // Options: in-memory (materialized) and parallel evaluation give the
    // same answers through the same session surface.
    let out = run(&[
        "query",
        arb,
        "--xpath",
        "//k",
        "--output",
        "count",
        "--memory",
        "--threads",
        "4",
    ]);
    assert!(out.contains("2 nodes selected"), "output: {out}");

    // --threads no longer requires --memory: the disk path shards (or,
    // for documents this tiny, falls back to the sequential kernel) and
    // answers identically.
    let out = run(&[
        "query",
        arb,
        "--xpath",
        "//k",
        "--output",
        "count",
        "--threads",
        "4",
    ]);
    assert!(out.contains("2 nodes selected"), "output: {out}");
    let out = run(&[
        "query",
        arb,
        "--xpath",
        "//d[k]",
        "--output",
        "bool",
        "--threads",
        "2",
    ]);
    assert!(out.contains("accept"), "output: {out}");

    // Unknown output modes are reported, not panicked.
    let out = std::process::Command::new(exe)
        .args(["query", arb, "--xpath", "//k", "--output", "jpeg"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
