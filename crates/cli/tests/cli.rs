//! Integration tests of the `arb` command-line binary.

/// The `arb` CLI: create, stats, query, cat.
#[test]
fn cli_smoke() {
    let exe = env!("CARGO_BIN_EXE_arb", "arb CLI binary");
    let dir = std::env::temp_dir().join(format!("arb-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let xml_path = dir.join("doc.xml");
    std::fs::write(&xml_path, "<d><k>v</k><k/></d>").unwrap();
    let arb_path = dir.join("doc.arb");

    let run = |args: &[&str]| {
        let out = std::process::Command::new(exe)
            .args(args)
            .output()
            .expect("spawn arb");
        assert!(
            out.status.success(),
            "arb {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    let out = run(&[
        "create",
        xml_path.to_str().unwrap(),
        arb_path.to_str().unwrap(),
    ]);
    assert!(out.contains("elem nodes"));

    let out = run(&["stats", arb_path.to_str().unwrap()]);
    assert!(out.contains("nodes:  4"));

    let out = run(&[
        "query",
        arb_path.to_str().unwrap(),
        "--xpath",
        "//k",
        "--count",
    ]);
    assert!(out.contains("2 nodes selected"));

    let out = run(&[
        "query",
        arb_path.to_str().unwrap(),
        "--tmnf",
        "QUERY :- V.Label[k], Leaf;",
        "--nodes",
        "--stats",
    ]);
    assert!(out.contains('3'), "output: {out}"); // the empty <k/> is node 3
    assert!(out.contains("|IDB|"));

    let out = run(&["cat", arb_path.to_str().unwrap()]);
    assert!(out.contains("<d><k>v</k><k></k></d>"));

    let out = run(&[
        "query",
        arb_path.to_str().unwrap(),
        "--xpath",
        "//k[not(text())]",
        "--mark",
    ]);
    assert!(out.contains("<k arb:selected=\"true\"></k>"));

    let out = run(&["check", arb_path.to_str().unwrap()]);
    assert!(out.contains("OK: 4 nodes"), "output: {out}");

    let out = run(&[
        "query",
        arb_path.to_str().unwrap(),
        "--xpath",
        "//k",
        "--boolean",
    ]);
    assert!(out.contains("reject"), "root is not a k: {out}");
    let out = run(&[
        "query",
        arb_path.to_str().unwrap(),
        "--xpath",
        "//d[k]",
        "--boolean",
    ]);
    assert!(out.contains("accept"), "output: {out}");

    // Errors are reported, not panicked.
    let out = std::process::Command::new(exe)
        .args(["query", arb_path.to_str().unwrap(), "--tmnf", "bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
