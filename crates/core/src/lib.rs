//! # arb-core
//!
//! The paper's primary contribution: **two-phase query evaluation with
//! tree automata** (Sections 3 and 4).
//!
//! A TMNF program is evaluated on a binary tree in two deterministic
//! automaton runs:
//!
//! 1. **Bottom-up phase** — a deterministic bottom-up tree automaton `A`
//!    whose states are *residual propositional Horn programs* representing
//!    the sets of reachable states of the equivalent nondeterministic
//!    selecting tree automaton (STA). Its transition function
//!    `ComputeReachableStates` (paper Figure 2) is computed lazily.
//! 2. **Top-down phase** — a deterministic top-down automaton `B` over the
//!    tree of phase-1 state assignments; its states are the sets of *true
//!    predicates* per node, computed by `ComputeTruePreds` (paper
//!    Figure 3).
//!
//! By Theorem 4.1 the result equals the least-fixpoint semantics of the
//! TMNF program: `P ∈ ρB(v) ⇔ P(v) ∈ P(T)`.
//!
//! Module map:
//!
//! * [`automata`] — classical nondeterministic/deterministic bottom-up
//!   tree automata and weak top-down automata (Definition 3.1),
//! * [`ops`] — determinization, boolean combinations, complement and
//!   emptiness (the \[4\] toolbox),
//! * [`sta`] — selecting tree automata (Definition 3.2), run enumeration,
//!   and the TMNF→STA translation for small programs,
//! * [`alphabet`] — dense interning of schema symbols (the automaton
//!   input alphabet `Σ_A = 2^σ`, arbitrary EDB width),
//! * [`lazy`] — the lazily-computed deterministic automata `A` and `B`
//!   (`ComputeReachableStates` / `ComputeTruePreds`) with interned states
//!   and transition hash tables,
//! * [`twophase`] — Algorithm 4.6 over in-memory trees,
//! * [`frontier`] — subtree extents and frontier picking, the split
//!   planning shared by every parallel evaluator (in-memory and the
//!   engine's sharded disk path),
//! * [`parallel`] — parallel bottom-up evaluation over balanced trees
//!   (the Section 6.2 parallelism case study),
//! * [`stats`] — transition counts, state counts and memory accounting
//!   (the paper's Figure 6 columns).

pub mod alphabet;
pub mod automata;
pub mod frontier;
pub mod lazy;
pub mod ops;
pub mod parallel;
pub mod sta;
pub mod stats;
pub mod twophase;

pub use alphabet::{AlphabetId, AlphabetInterner};
pub use frontier::SubtreeIndex;
pub use lazy::{AutomataPool, InternStats, QueryAutomata};
pub use parallel::{evaluate_tree_parallel, evaluate_tree_parallel_with};
pub use stats::EvalStats;
pub use twophase::{
    evaluate_tree, evaluate_tree_batch, evaluate_tree_with, BatchTreeEvalResult, TreeEvalResult,
    TreeEvalRun,
};
