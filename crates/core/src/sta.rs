//! Selecting tree automata (paper Definition 3.2) and the TMNF→STA
//! translation.
//!
//! An STA is a nondeterministic bottom-up tree automaton with a set `S` of
//! *selecting* states; the unary query it defines selects node `v` iff
//! **every** accepting run is in a selecting state at `v`. STAs capture
//! exactly the unary MSO queries (Proposition 3.3, \[8\]).
//!
//! The explicit translation from TMNF enumerates truth assignments to the
//! IDB predicates, so it is exponential in `|IDB|` and only usable for
//! small programs — which is precisely why the production path represents
//! *sets* of STA states as residual programs instead (Section 4). Here it
//! serves as the semantic ground truth for differential tests.

use arb_logic::Atom;
use arb_tmnf::core::{BodyAtom, CoreProgram, CoreRule, PredId};
use arb_tree::{BinaryTree, NodeId, NodeInfo, NodeSet};

/// An explicit selecting tree automaton over TMNF truth assignments.
///
/// States are bitmasks over the IDB predicates; the transition relation is
/// evaluated symbolically from the program rather than tabulated (the
/// alphabet `2^σ` is large).
pub struct Sta<'p> {
    prog: &'p CoreProgram,
    /// Selecting states: assignments containing the query predicate.
    select_pred: PredId,
}

impl<'p> Sta<'p> {
    /// Builds the STA for a program and its query predicate. Panics if
    /// the program has more than 20 IDB predicates (state space 2^20).
    pub fn from_tmnf(prog: &'p CoreProgram, select_pred: PredId) -> Self {
        assert!(
            prog.pred_count() <= 20,
            "explicit STA is exponential; use the residual-program evaluator"
        );
        Sta { prog, select_pred }
    }

    /// Checks whether assignment `q` at a node with `info` is consistent
    /// with child assignments `q1`, `q2` (`None` = ⊥): every rule instance
    /// relating the node and its children must be satisfied. This is the
    /// membership test `q ∈ δ(q1, q2, σ)`.
    pub fn locally_consistent(
        &self,
        q: u32,
        q1: Option<u32>,
        q2: Option<u32>,
        info: &NodeInfo,
    ) -> bool {
        let has = |mask: u32, p: PredId| mask & (1 << p) != 0;
        for r in self.prog.rules() {
            let ok = match *r {
                CoreRule::Edb { head, edb } => !self.prog.edb_atom(edb).eval(info) || has(q, head),
                CoreRule::And { head, b1, b2 } => {
                    let truth = |a: BodyAtom| match a {
                        BodyAtom::Pred(p) => has(q, p),
                        BodyAtom::Edb(e) => self.prog.edb_atom(e).eval(info),
                    };
                    !(truth(b1) && truth(b2)) || has(q, head)
                }
                // Down: body at this node forces head at the k-child.
                CoreRule::Down { head, body, k } => {
                    let child = if k == 1 { q1 } else { q2 };
                    match child {
                        Some(c) => !has(q, body) || has(c, head),
                        None => true,
                    }
                }
                // Up: body at the k-child forces head at this node.
                CoreRule::Up { head, body, k } => {
                    let child = if k == 1 { q1 } else { q2 };
                    match child {
                        Some(c) => !has(c, body) || has(q, head),
                        None => true,
                    }
                }
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Enumerates all runs (assignment per node consistent at every node)
    /// and applies the STA selection criterion:
    /// `A(T) = { v | ρ(v) ∈ S for every accepting run ρ }`.
    ///
    /// In the TMNF→STA translation all states are accepting (`F = Q`), so
    /// accepting runs = runs. Exponential — tiny trees only.
    pub fn select(&self, tree: &BinaryTree) -> NodeSet {
        let n = tree.len();
        let n_states: u32 = 1 << self.prog.pred_count();
        // Enumerate runs by assigning states in reverse preorder.
        let mut partials: Vec<Vec<u32>> = vec![vec![0; n]];
        for ix in (0..n as u32).rev() {
            let v = NodeId(ix);
            let info = tree.info(v);
            let mut next: Vec<Vec<u32>> = Vec::new();
            for partial in &partials {
                let q1 = tree.first_child(v).map(|c| partial[c.ix()]);
                let q2 = tree.second_child(v).map(|c| partial[c.ix()]);
                for q in 0..n_states {
                    if self.locally_consistent(q, q1, q2, &info) {
                        let mut p = partial.clone();
                        p[v.ix()] = q;
                        next.push(p);
                    }
                }
            }
            partials = next;
        }
        // Selection: v selected iff every run has the query predicate at v.
        let mut out = NodeSet::new(n);
        let bit = 1u32 << self.select_pred;
        for v in tree.nodes() {
            if !partials.is_empty() && partials.iter().all(|r| r[v.ix()] & bit != 0) {
                out.insert(v);
            }
        }
        out
    }

    /// Number of runs on a tree (for tests demonstrating nondeterminism).
    pub fn run_count(&self, tree: &BinaryTree) -> usize {
        let n = tree.len();
        let n_states: u32 = 1 << self.prog.pred_count();
        let mut partials: Vec<Vec<u32>> = vec![vec![0; n]];
        for ix in (0..n as u32).rev() {
            let v = NodeId(ix);
            let info = tree.info(v);
            let mut next = Vec::new();
            for partial in &partials {
                let q1 = tree.first_child(v).map(|c| partial[c.ix()]);
                let q2 = tree.second_child(v).map(|c| partial[c.ix()]);
                for q in 0..n_states {
                    if self.locally_consistent(q, q1, q2, &info) {
                        let mut p = partial.clone();
                        p[v.ix()] = q;
                        next.push(p);
                    }
                }
            }
            partials = next;
        }
        partials.len()
    }
}

/// Reads a residual program as a set of STA states: the assignments that
/// are models of the program (paper Example 4.5: a residual program at a
/// node "encodes" all assignments not violating its rules).
pub fn models_of_residual(program: &arb_logic::Program, n_preds: usize) -> Vec<u32> {
    assert!(n_preds <= 20);
    let mut out = Vec::new();
    for mask in 0u32..(1 << n_preds) {
        let atoms: Vec<Atom> = (0..n_preds as u32)
            .filter(|p| mask & (1 << p) != 0)
            .map(Atom::local)
            .collect();
        if program.is_model(&atoms) {
            out.push(mask);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twophase::evaluate_tree;
    use arb_tmnf::{naive, normalize, parse_program};
    use arb_tree::{LabelTable, TreeBuilder};

    fn chain_tree(lt: &mut LabelTable, n: usize) -> BinaryTree {
        let a = lt.get("a").unwrap_or_else(|| lt.intern("a").unwrap());
        let mut b = TreeBuilder::new();
        for _ in 0..n {
            b.open(a);
        }
        for _ in 0..n {
            b.close();
        }
        b.finish().unwrap()
    }

    /// STA selection == naive fixpoint == two-phase result (Theorem 4.1 &
    /// Proposition 3.3) on the Example 4.3 program.
    #[test]
    fn sta_matches_fixpoint_and_two_phase() {
        let mut lt = LabelTable::new();
        let ast = parse_program(arb_tmnf::programs::EXAMPLE_4_3, &mut lt).unwrap();
        let prog = normalize(&ast);
        let tree = chain_tree(&mut lt, 3);
        let q = prog.pred_id("Q").unwrap();

        let sta = Sta::from_tmnf(&prog, q);
        let selected = sta.select(&tree);

        let oracle = naive::evaluate(&prog, &tree);
        let two = evaluate_tree(&prog, &tree);
        for v in tree.nodes() {
            assert_eq!(selected.contains(v), oracle.holds(q, v), "node {}", v.0);
            assert_eq!(selected.contains(v), two.holds(q, v), "node {}", v.0);
        }
        // Q holds exactly at the root.
        assert_eq!(selected.to_vec(), vec![NodeId(0)]);
    }

    /// The STA is genuinely nondeterministic: any superset of the least
    /// model consistent with the rules is a run.
    #[test]
    fn sta_has_many_runs() {
        let mut lt = LabelTable::new();
        let ast = parse_program("P :- Root;", &mut lt).unwrap();
        let prog = normalize(&ast);
        let tree = chain_tree(&mut lt, 2);
        let p = prog.pred_id("P").unwrap();
        let sta = Sta::from_tmnf(&prog, p);
        // 1 predicate, 2 nodes: root must have P (1 choice... plus the
        // superset is itself), child free: total runs = 1 * 2 = 2.
        assert_eq!(sta.run_count(&tree), 2);
    }

    /// Residual programs encode state sets: paper Example 4.5 counts 48
    /// states for {P4 ← P3} over 6 predicates.
    #[test]
    fn residual_encodes_48_states() {
        use arb_logic::{Program, Rule};
        let p = Program::canonical(vec![Rule::new(Atom::local(3), vec![Atom::local(2)])]);
        let models = models_of_residual(&p, 6);
        assert_eq!(models.len(), 48);
    }
}
