//! Classical tree automata on binary trees (paper Definition 3.1).
//!
//! These explicit-table automata ground the semantics: the lazy,
//! hash-table-driven machinery of [`crate::lazy`] is an implementation of
//! exactly these devices with `Q_A` = residual programs. The explicit
//! variants run on in-memory trees and are used by the test suite, by the
//! STA semantics in [`crate::sta`], and by documentation examples.

use arb_logic::FxHashMap;
use arb_tree::{BinaryTree, NodeId};

/// State index of an explicit automaton.
pub type State = u32;

/// Alphabet symbol index (callers map node labels/infos to symbols).
pub type Symbol = u32;

/// Key for a bottom-up transition: `(left, right, symbol)` where missing
/// children are the pseudo-state `⊥` (`None`).
pub type BuKey = (Option<State>, Option<State>, Symbol);

/// A nondeterministic bottom-up tree automaton
/// `A = (Q, Σ, F, δ)` with `δ : (Q ∪ {⊥}) × (Q ∪ {⊥}) × Σ → 2^Q`.
#[derive(Clone, Debug)]
pub struct Nta {
    /// Number of states.
    pub n_states: u32,
    /// Accepting states.
    pub accepting: Vec<State>,
    /// Transition table; missing keys mean the empty set.
    pub delta: FxHashMap<BuKey, Vec<State>>,
}

impl Nta {
    /// The possible states at a node given child states and symbol.
    pub fn step(&self, s1: Option<State>, s2: Option<State>, sym: Symbol) -> &[State] {
        self.delta.get(&(s1, s2, sym)).map_or(&[], Vec::as_slice)
    }

    /// Enumerates **all runs** on a tree (exponential; small trees only).
    /// A run maps each node to a state consistent with `δ`.
    pub fn runs(&self, tree: &BinaryTree, symbol_of: &dyn Fn(NodeId) -> Symbol) -> Vec<Vec<State>> {
        let n = tree.len();
        // Assign states node-by-node in reverse preorder (children first),
        // keeping every partial assignment consistent with δ.
        let mut partials: Vec<Vec<Option<State>>> = vec![vec![None; n]];
        for v in (0..n as u32).rev() {
            let v = NodeId(v);
            let mut next: Vec<Vec<Option<State>>> = Vec::new();
            for partial in &partials {
                let s1 = tree
                    .first_child(v)
                    .map(|c| partial[c.ix()].expect("child assigned"));
                let s2 = tree
                    .second_child(v)
                    .map(|c| partial[c.ix()].expect("child assigned"));
                for &q in self.step(s1, s2, symbol_of(v)) {
                    let mut p = partial.clone();
                    p[v.ix()] = Some(q);
                    next.push(p);
                }
            }
            partials = next;
        }
        partials
            .into_iter()
            .map(|p| p.into_iter().map(|s| s.expect("complete run")).collect())
            .collect()
    }

    /// Enumerates the **accepting** runs (root state in `F`).
    pub fn accepting_runs(
        &self,
        tree: &BinaryTree,
        symbol_of: &dyn Fn(NodeId) -> Symbol,
    ) -> Vec<Vec<State>> {
        self.runs(tree, symbol_of)
            .into_iter()
            .filter(|r| self.accepting.contains(&r[0]))
            .collect()
    }

    /// Boolean acceptance: does some accepting run exist? Computed in
    /// linear time by the reachable-state powerset construction (no run
    /// enumeration).
    pub fn accepts(&self, tree: &BinaryTree, symbol_of: &dyn Fn(NodeId) -> Symbol) -> bool {
        let n = tree.len();
        let mut reach: Vec<Vec<State>> = vec![Vec::new(); n];
        for v in (0..n as u32).rev() {
            let v = NodeId(v);
            let mut out: Vec<State> = Vec::new();
            let c1 = tree.first_child(v).map(|c| c.ix());
            let c2 = tree.second_child(v).map(|c| c.ix());
            let opts1: Vec<Option<State>> = match c1 {
                None => vec![None],
                Some(c) => reach[c].iter().map(|&s| Some(s)).collect(),
            };
            let opts2: Vec<Option<State>> = match c2 {
                None => vec![None],
                Some(c) => reach[c].iter().map(|&s| Some(s)).collect(),
            };
            for &s1 in &opts1 {
                for &s2 in &opts2 {
                    for &q in self.step(s1, s2, symbol_of(v)) {
                        if !out.contains(&q) {
                            out.push(q);
                        }
                    }
                }
            }
            reach[v.ix()] = out;
        }
        reach[0].iter().any(|q| self.accepting.contains(q))
    }
}

/// A deterministic bottom-up tree automaton: `δ` maps to a single state.
#[derive(Clone, Debug)]
pub struct Dta {
    /// Number of states.
    pub n_states: u32,
    /// Accepting states.
    pub accepting: Vec<State>,
    /// Total transition table.
    pub delta: FxHashMap<BuKey, State>,
}

impl Dta {
    /// The unique run on a tree: state per node (preorder-indexed).
    /// Returns `None` if a transition is missing (partial table).
    pub fn run(
        &self,
        tree: &BinaryTree,
        symbol_of: &dyn Fn(NodeId) -> Symbol,
    ) -> Option<Vec<State>> {
        let n = tree.len();
        let mut states = vec![0 as State; n];
        for v in (0..n as u32).rev() {
            let v = NodeId(v);
            let s1 = tree.first_child(v).map(|c| states[c.ix()]);
            let s2 = tree.second_child(v).map(|c| states[c.ix()]);
            states[v.ix()] = *self.delta.get(&(s1, s2, symbol_of(v)))?;
        }
        Some(states)
    }

    /// Boolean acceptance.
    pub fn accepts(&self, tree: &BinaryTree, symbol_of: &dyn Fn(NodeId) -> Symbol) -> bool {
        self.run(tree, symbol_of)
            .is_some_and(|r| self.accepting.contains(&r[0]))
    }
}

/// A weak deterministic top-down tree automaton
/// `B = (Q, Σ, s, δ₁, δ₂)` without acceptance condition (paper Section 3):
/// its sole purpose is to annotate nodes with states via its run.
#[derive(Clone, Debug)]
pub struct TopDown {
    /// Number of states.
    pub n_states: u32,
    /// Start state assigned to the root.
    pub start: State,
    /// `δ_k : Q × Σ → Q` for `k ∈ {1, 2}`; key `(state, symbol, k)`.
    pub delta: FxHashMap<(State, Symbol, u8), State>,
}

impl TopDown {
    /// The run: assigns a state to every node top-down. The symbol used
    /// for a child transition is the **child's** symbol (matching the
    /// paper's phase 2, where `Σ_B = Q_A` labels each node with its
    /// phase-1 state). Returns `None` on a missing transition.
    pub fn run(
        &self,
        tree: &BinaryTree,
        symbol_of: &dyn Fn(NodeId) -> Symbol,
    ) -> Option<Vec<State>> {
        let n = tree.len();
        let mut states = vec![0 as State; n];
        states[0] = self.start;
        for v in tree.nodes() {
            let q = states[v.ix()];
            if let Some(c) = tree.first_child(v) {
                states[c.ix()] = *self.delta.get(&(q, symbol_of(c), 1))?;
            }
            if let Some(c) = tree.second_child(v) {
                states[c.ix()] = *self.delta.get(&(q, symbol_of(c), 2))?;
            }
        }
        Some(states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_tree::{LabelId, TreeBuilder};

    /// Builds a small binary tree a(b, c) directly: root a with children
    /// b (first) and c (second child of b in binary encoding).
    fn abc_tree() -> BinaryTree {
        let mut b = TreeBuilder::new();
        let (a, bb, c) = (LabelId(300), LabelId(301), LabelId(302));
        b.open(a);
        b.leaf(bb);
        b.leaf(c);
        b.close();
        b.finish().unwrap()
    }

    fn sym(tree: &BinaryTree) -> impl Fn(NodeId) -> Symbol + '_ {
        |v| tree.label(v).0 as Symbol - 300
    }

    /// A DTA counting the parity of leaves modulo 2 over symbols {0,1,2}:
    /// states: 0 = even #leaves, 1 = odd.
    #[test]
    fn dta_parity_of_leaves() {
        let tree = abc_tree();
        let mut delta: FxHashMap<BuKey, State> = FxHashMap::default();
        for s in 0..3 {
            // Leaf: one leaf => odd.
            delta.insert((None, None, s), 1);
            for q1 in 0..2 {
                for q2 in 0..2 {
                    delta.insert((Some(q1), Some(q2), s), (q1 + q2) % 2);
                }
                delta.insert((Some(q1), None, s), q1 % 2);
                delta.insert((None, Some(q1), s), q1 % 2);
            }
        }
        let dta = Dta {
            n_states: 2,
            accepting: vec![0],
            delta,
        };
        let symf = sym(&tree);
        let run = dta.run(&tree, &symf).unwrap();
        // Only c is a *binary* leaf (b has a second child, a has a first
        // child), so every subtree sees exactly one leaf: all odd.
        assert_eq!(run[2], 1);
        assert_eq!(run[1], 1);
        assert_eq!(run[0], 1);
        assert!(!dta.accepts(&tree, &symf));
    }

    /// A nondeterministic automaton guessing one leaf to mark: state 1 =
    /// "marked leaf in my subtree", 0 = "no mark". Exactly one mark must
    /// reach the root.
    #[test]
    fn nta_runs_enumeration() {
        let tree = abc_tree();
        let mut delta: FxHashMap<BuKey, Vec<State>> = FxHashMap::default();
        for s in 0..3 {
            delta.insert((None, None, s), vec![0, 1]); // leaf: unmarked or marked
            for q1 in 0..2u32 {
                for q2 in 0..2u32 {
                    // Both subtree marks propagate; >1 total is dead.
                    let total = q1 + q2;
                    let succ = if total <= 1 { vec![total] } else { vec![] };
                    delta.insert((Some(q1), Some(q2), s), succ);
                }
                // A node with only a right sibling subtree may itself be a
                // marked unranked leaf: add its own mark if none yet.
                let opts = if q1 == 0 { vec![0, 1] } else { vec![1] };
                delta.insert((None, Some(q1), s), opts);
                delta.insert((Some(q1), None, s), vec![q1]);
            }
        }
        let nta = Nta {
            n_states: 2,
            accepting: vec![1],
            delta,
        };
        let symf = sym(&tree);
        let runs = nta.runs(&tree, &symf);
        // Each leaf can be 0/1 except both-1 (dead): 3 runs.
        assert_eq!(runs.len(), 3);
        let acc = nta.accepting_runs(&tree, &symf);
        // Accepting: exactly one leaf marked: 2 runs.
        assert_eq!(acc.len(), 2);
        assert!(nta.accepts(&tree, &symf));
    }

    #[test]
    fn top_down_annotates_depth() {
        let tree = abc_tree();
        // States = depth mod 4; symbols ignored except range.
        let mut delta = FxHashMap::default();
        for q in 0..4u32 {
            for s in 0..3 {
                delta.insert((q, s, 1u8), (q + 1) % 4);
                delta.insert((q, s, 2u8), (q + 1) % 4);
            }
        }
        let td = TopDown {
            n_states: 4,
            start: 0,
            delta,
        };
        let symf = sym(&tree);
        let run = td.run(&tree, &symf).unwrap();
        assert_eq!(run, vec![0, 1, 2]);
    }
}
