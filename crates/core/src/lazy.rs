//! The lazily-computed deterministic automata `A` and `B` (paper
//! Section 4, Figures 2 and 3).
//!
//! States of the bottom-up automaton `A` are interned residual programs;
//! states of the top-down automaton `B` are interned predicate sets.
//! Transitions are computed on demand by `ComputeReachableStates` and
//! `ComputeTruePreds` and memoized in hash tables — the paper's "in total,
//! we use four hash tables to store and quickly access the states and
//! transitions of the two automata", and its remedy for the potentially
//! exponential automaton sizes ("they are best computed lazily").
//!
//! Because these tables are consulted once or twice per tree node, their
//! layout bounds phase-1 throughput on every worker. The hot path is
//! allocation-free end to end:
//!
//! * schema symbols are dense [`AlphabetId`]s behind a packed-`NodeInfo`
//!   memo ([`AlphabetInterner`]), so the δ_A key is 12 bytes and programs
//!   of any EDB width (merged batches included) evaluate correctly;
//! * δ_A / δ_B are raw open-addressing [`FxCache`]s, the state interners
//!   arena-backed open-addressing tables (see `arb_logic::intern`);
//! * transition *misses* assemble their LTUR input in reusable scratch
//!   buffers (`AutomataScratch`) instead of allocating fresh vectors
//!   per miss.

use crate::alphabet::{AlphabetId, AlphabetInterner};
use arb_logic::{
    contract_rules, ltur, ltur_facts, ltur_residual, Atom, FxCache, LturScratch, PredSetId,
    PredSetInterner, ProgramId, ProgramInterner, Rule,
};
use arb_tmnf::{CoreProgram, PropLocal};
use arb_tree::NodeInfo;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Interning pressure of one [`QueryAutomata`] — the footprint and probe
/// behavior of the four hash tables plus the alphabet memo (surfaced
/// through `EvalStats::interning`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Payload bytes of the interned states (program rules + predicate
    /// set atoms — the arenas themselves).
    pub arena_bytes: usize,
    /// Index bytes: slot arrays, stored hashes, transition key/value
    /// vectors, the alphabet memo.
    pub table_bytes: usize,
    /// Longest probe sequence any table walked (clustering indicator).
    pub max_probe: u32,
    /// Distinct schema symbols seen (`|Σ_A|` reached — paper §4 argues
    /// this stays tiny under the schema abstraction).
    pub alphabet_symbols: usize,
    /// Memoized δ_A transitions.
    pub bu_entries: usize,
    /// Memoized δ_B transitions.
    pub td_entries: usize,
}

impl InternStats {
    /// Accumulates another automata's pressure (parallel runs report the
    /// master and all workers combined).
    pub fn absorb(&mut self, other: &InternStats) {
        self.arena_bytes += other.arena_bytes;
        self.table_bytes += other.table_bytes;
        self.max_probe = self.max_probe.max(other.max_probe);
        self.alphabet_symbols = self.alphabet_symbols.max(other.alphabet_symbols);
        self.bu_entries += other.bu_entries;
        self.td_entries += other.td_entries;
    }
}

/// Reusable per-transition scratch buffers: every vector the miss paths
/// of `bottom_up` / `top_down` would otherwise allocate fresh (the same
/// role [`LturScratch`] plays inside LTUR).
#[derive(Default)]
struct AutomataScratch {
    /// `PushDown₁(P¹res)` of the current bottom-up miss.
    down1: Vec<Rule>,
    /// `PushDown₂(P²res)` of the current bottom-up miss.
    down2: Vec<Rule>,
    /// Raw (pre-contraction) LTUR residual.
    raw: Vec<Rule>,
    /// `PredsAsRules(parent_preds)` of the current top-down miss.
    facts: Vec<Rule>,
    /// `PushDown_k(P_res)` of the current top-down miss.
    pushed: Vec<Rule>,
    /// Atoms derived by `ltur_facts`.
    derived: Vec<Atom>,
    /// The assembled predicate set, sorted for interning.
    set: Vec<Atom>,
}

/// The lazy automata pair for one TMNF program: everything that persists
/// across the two phases of Algorithm 4.6. Holds the four hash tables
/// (two state interners + two transition tables) plus the partitioned
/// `PropLocal(P)` clause groups, the schema-symbol interner and the
/// scratch space.
pub struct QueryAutomata {
    /// The compiled propositional clause groups (Definition 4.2).
    pl: PropLocal,
    /// EDB atom registry from the program (index = `Atom::edb` index).
    edbs: Vec<arb_tmnf::EdbAtom>,
    /// Interner for residual programs — the states `Q_A`.
    pub programs: ProgramInterner,
    /// Interner for true-predicate sets — the states `Q_B`.
    pub predsets: PredSetInterner,
    /// Dense schema symbols (the input alphabet `Σ_A`).
    alphabet: AlphabetInterner,
    /// δ_A: `(s1+1|0 ‖ s2+1|0, symbol) → state id` (child states packed
    /// into one word so a probe hashes two words, not three).
    bu_cache: FxCache<(u64, u32)>,
    /// Fused per-node front of δ_A: `(s1+1|0 ‖ s2+1|0, packed NodeInfo)
    /// → state id`. The transition is a function of the node's *symbol*,
    /// and the symbol a function of its packed `NodeInfo`, so this memo
    /// answers the steady-state per-node lookup with a single probe
    /// (symbol memo + δ_A probe otherwise). δ_A stays authoritative:
    /// `bu_transitions` counts its misses only.
    bu_fast: FxCache<(u64, u32)>,
    /// δ_B: `(parent predset ‖ child program state, k) → predset id`.
    td_cache: FxCache<(u64, u8)>,
    /// `local_rules` specialized per schema symbol, dense by symbol id.
    local_by_sym: Vec<Option<Box<[Rule]>>>,
    scratch: LturScratch,
    buf: AutomataScratch,
    /// Memoization switch (true in production; the `ablation` benchmark
    /// disables it to quantify the paper's lazy-hash-table design).
    cache_enabled: bool,
    /// Lazily computed transitions of `A` (paper Fig. 6 column 5).
    pub bu_transitions: u64,
    /// Lazily computed transitions of `B` (paper Fig. 6 column 7).
    pub td_transitions: u64,
}

impl QueryAutomata {
    /// Compiles the automata skeleton for a strict TMNF program.
    pub fn new(prog: &CoreProgram) -> Self {
        QueryAutomata {
            pl: PropLocal::build(prog),
            edbs: prog.edbs().to_vec(),
            programs: ProgramInterner::new(),
            predsets: PredSetInterner::new(),
            alphabet: AlphabetInterner::new(prog.edbs().len()),
            bu_cache: FxCache::new(),
            bu_fast: FxCache::new(),
            td_cache: FxCache::new(),
            local_by_sym: Vec::new(),
            scratch: LturScratch::new(),
            buf: AutomataScratch::default(),
            cache_enabled: true,
            bu_transitions: 0,
            td_transitions: 0,
        }
    }

    /// The automaton input symbol of a node: the interned truth vector of
    /// the program's EDB schema σ at that node (the alphabet Σ_A = 2^σ of
    /// paper Section 4). Nodes that agree on every EDB atom *mentioned by
    /// the query* share a symbol — this is what keeps the number of
    /// lazily computed transitions tiny even on databases with hundreds
    /// of distinct labels (paper Figure 6, Treebank).
    #[inline]
    pub fn schema_symbol(&mut self, info: &NodeInfo) -> AlphabetId {
        self.alphabet.symbol(&self.edbs, info)
    }

    /// Specializes `local_rules ∪ PredsAsRules(labels)` for a schema
    /// symbol: rules whose bodies contain a *false* EDB atom are dropped,
    /// *true* EDB atoms are stripped. Equivalent to inserting the label
    /// facts and letting LTUR prune (paper Figure 2), but computed once
    /// per distinct symbol.
    fn ensure_local_rules(&mut self, sym: AlphabetId) {
        let ix = sym.0 as usize;
        if self.local_by_sym.len() <= ix {
            self.local_by_sym.resize_with(ix + 1, || None);
        }
        if self.local_by_sym[ix].is_some() {
            return;
        }
        let mut out: Vec<Rule> = Vec::with_capacity(self.pl.local.len());
        'rules: for r in &self.pl.local {
            let mut body: Vec<Atom> = Vec::with_capacity(r.body.len());
            for &a in r.body.iter() {
                if a.is_edb() {
                    if self.alphabet.bit(sym, a.pred()) {
                        continue; // true EDB atom: strip
                    }
                    continue 'rules; // false EDB atom: drop rule
                }
                body.push(a);
            }
            out.push(Rule::new(r.head, body));
        }
        self.local_by_sym[ix] = Some(out.into_boxed_slice());
    }

    /// `ComputeReachableStates` (paper Figure 2), memoized: the transition
    /// function δ_A of the deterministic bottom-up automaton. `None`
    /// encodes the pseudo-state ⊥ for a missing child.
    pub fn bottom_up(
        &mut self,
        s1: Option<ProgramId>,
        s2: Option<ProgramId>,
        info: NodeInfo,
    ) -> ProgramId {
        let children = (s1.map_or(0, |s| s.0 as u64 + 1)) << 32 | s2.map_or(0, |s| s.0 as u64 + 1);
        let fast_key = (children, crate::alphabet::pack(&info));
        if self.cache_enabled {
            if let Some(id) = self.bu_fast.get(&fast_key) {
                return ProgramId(id);
            }
        }
        let sym = self.alphabet.symbol(&self.edbs, &info);
        let key = (children, sym.0);
        if self.cache_enabled {
            if let Some(id) = self.bu_cache.get(&key) {
                self.bu_fast.insert(fast_key, id);
                return ProgramId(id);
            }
        }
        self.bu_transitions += 1;
        self.ensure_local_rules(sym);

        let Self {
            pl,
            programs,
            local_by_sym,
            scratch,
            buf,
            bu_cache,
            bu_fast,
            cache_enabled,
            ..
        } = self;
        // P := local_rules ∪ PredsAsRules(labels)  [pre-specialized]
        let local: &[Rule] = local_by_sym[sym.0 as usize]
            .as_deref()
            .expect("specialized");

        // if (P^1_res ≠ ⊥) then P := P ∪ left_rules ∪ PushDown₁(P¹res)
        let mut parts: [&[Rule]; 5] = [&[]; 5];
        let mut np = 0;
        parts[np] = local;
        np += 1;
        buf.down1.clear();
        buf.down2.clear();
        if let Some(s1) = s1 {
            parts[np] = &pl.left;
            np += 1;
            programs.get(s1).push_down_into(1, &mut buf.down1);
            parts[np] = &buf.down1;
            np += 1;
        }
        if let Some(s2) = s2 {
            parts[np] = &pl.right;
            np += 1;
            programs.get(s2).push_down_into(2, &mut buf.down2);
            parts[np] = &buf.down2;
            np += 1;
        }

        // P := LTUR(P); contract if any child exists. The two steps are
        // fused: the large pre-contraction residual is never
        // canonicalized (only the contracted result is interned).
        let res = if s1.is_some() || s2.is_some() {
            buf.raw.clear();
            ltur_residual(&parts[..np], scratch, &mut buf.raw);
            contract_rules(&buf.raw)
        } else {
            ltur(&parts[..np], scratch)
        };
        let id = programs.intern(res);
        if *cache_enabled {
            bu_cache.insert(key, id.0);
            bu_fast.insert(fast_key, id.0);
        }
        id
    }

    /// The start state `s_B = ⋂ ρ_A(Root)` of the top-down automaton: the
    /// predicates true in all reachable states at the root, i.e. the facts
    /// of the root's residual program (`TruePreds`).
    pub fn start_state(&mut self, root: ProgramId) -> PredSetId {
        let Self {
            programs,
            predsets,
            buf,
            ..
        } = self;
        buf.set.clear();
        buf.set.extend(programs.get(root).true_preds());
        buf.set.sort_unstable();
        buf.set.dedup();
        predsets.intern_sorted(&buf.set)
    }

    /// `ComputeTruePreds` (paper Figure 3), memoized: the transition
    /// functions δ_B^k of the top-down automaton. Given the parent's true
    /// predicates and the child's phase-1 residual program, returns the
    /// child's true predicates.
    pub fn top_down(&mut self, parent: PredSetId, child: ProgramId, k: u8) -> PredSetId {
        debug_assert!(k == 1 || k == 2);
        let key = ((parent.0 as u64) << 32 | child.0 as u64, k);
        if self.cache_enabled {
            if let Some(id) = self.td_cache.get(&key) {
                return PredSetId(id);
            }
        }
        self.td_transitions += 1;

        let Self {
            pl,
            programs,
            predsets,
            scratch,
            buf,
            td_cache,
            cache_enabled,
            ..
        } = self;
        // P := downward_rules_k ∪ PredsAsRules(parent_preds) ∪ PushDown_k(P_res)
        let downward: &[Rule] = if k == 1 { &pl.down1 } else { &pl.down2 };
        buf.facts.clear();
        buf.facts
            .extend(predsets.get(parent).atoms().iter().map(|&a| Rule::fact(a)));
        buf.pushed.clear();
        programs.get(child).push_down_into(k, &mut buf.pushed);
        // S := TruePreds(LTUR(P)); return PushUpFrom_k(Preds_k(S)).
        // Only the derived facts are needed — the residual is discarded.
        buf.derived.clear();
        ltur_facts(
            &[downward, &buf.facts, &buf.pushed],
            scratch,
            &mut buf.derived,
        );
        buf.set.clear();
        buf.set.extend(
            buf.derived
                .iter()
                .copied()
                .filter(|a| a.sup_k() == Some(k))
                .map(Atom::push_up),
        );
        buf.set.sort_unstable();
        buf.set.dedup();
        let id = predsets.intern_sorted(&buf.set);
        if *cache_enabled {
            td_cache.insert(key, id.0);
        }
        id
    }

    /// True-predicate set membership helper.
    pub fn predset_contains(&self, id: PredSetId, pred: u32) -> bool {
        self.predsets.get(id).contains(Atom::local(pred))
    }

    /// Approximate main-memory footprint of the automata (interned states
    /// plus transition tables), in bytes — the paper's `mem` column.
    pub fn memory_bytes(&self) -> usize {
        let s = self.intern_stats();
        s.arena_bytes
            + s.table_bytes
            + self
                .local_by_sym
                .iter()
                .flatten()
                .map(|v| v.iter().map(Rule::byte_size).sum::<usize>())
                .sum::<usize>()
    }

    /// Interning pressure of the four hash tables + alphabet memo.
    pub fn intern_stats(&self) -> InternStats {
        InternStats {
            arena_bytes: self.programs.byte_size() + self.predsets.byte_size(),
            table_bytes: self.programs.table_bytes()
                + self.predsets.table_bytes()
                + self.bu_cache.byte_size()
                + self.bu_fast.byte_size()
                + self.td_cache.byte_size()
                + self.alphabet.byte_size(),
            max_probe: self
                .programs
                .max_probe()
                .max(self.predsets.max_probe())
                .max(self.bu_cache.max_probe())
                .max(self.bu_fast.max_probe())
                .max(self.td_cache.max_probe())
                .max(self.alphabet.max_probe()),
            alphabet_symbols: self.alphabet.len(),
            bu_entries: self.bu_cache.len(),
            td_entries: self.td_cache.len(),
        }
    }

    /// Disables (or re-enables) transition memoization. With memoization
    /// off, every node recomputes its transition from scratch **and the
    /// δ tables stay empty** — the configuration the paper's lazy hash
    /// tables avoid, measured by the `ablation` benchmark. (State
    /// interning and the schema-symbol memo stay on: dense ids are what
    /// give states and symbols their identity.)
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
    }

    /// Number of interned bottom-up states.
    pub fn bu_state_count(&self) -> usize {
        self.programs.len()
    }

    /// Number of interned top-down states.
    pub fn td_state_count(&self) -> usize {
        self.predsets.len()
    }

    /// Clears **per-run** state while keeping everything that is a pure
    /// function of the program warm: the state interners, the memoized
    /// δ_A/δ_B tables, the specialized local-rule groups and the alphabet
    /// memo all survive, so a reset automata steps the next evaluation at
    /// full memoization from its first node. Only the two per-run
    /// transition counters (paper Fig. 6 columns 5 and 7) are zeroed —
    /// a warm rerun over the same tree legitimately reports ~0 lazily
    /// computed transitions.
    pub fn reset(&mut self) {
        self.bu_transitions = 0;
        self.td_transitions = 0;
    }
}

/// Upper bound on idle automata an [`AutomataPool`] keeps warm; returns
/// beyond this are dropped (bounds memory after a wide sharded run).
const POOL_IDLE_CAP: usize = 32;

/// A shared pool of warm [`QueryAutomata`] **for one compiled program**.
///
/// Construction of a `QueryAutomata` is cheap, but its value compounds:
/// every evaluation it survives keeps the interned states, δ tables and
/// specialized rule groups of the previous runs, so repeated evaluations
/// skip straight to memoized transitions. The pool makes that reuse safe
/// across threads (sharded workers [`take`](AutomataPool::take) and
/// [`put`](AutomataPool::put) concurrently) and across evaluations (a
/// `Session` or a server window keeps one pool alive between runs).
///
/// The pool does **not** hold the program. Like
/// `QueryBatch::new`, the caller guarantees that every `take(prog)` of
/// one pool passes the same program the pooled automata were built for —
/// mixing programs in one pool yields wrong answers, not a panic.
///
/// The `builds` / `reused` counters are cumulative over the pool's
/// lifetime; callers snapshot them around a run to attribute per-run
/// `EvalStats::{automata_builds, automata_reused}`.
#[derive(Default)]
pub struct AutomataPool {
    idle: Mutex<Vec<QueryAutomata>>,
    builds: AtomicU64,
    reused: AtomicU64,
    build_nanos: AtomicU64,
}

impl AutomataPool {
    /// An empty pool. Automata are built lazily by the first `take`.
    pub fn new() -> Self {
        AutomataPool::default()
    }

    /// Hands out a warm automata (reset, memos intact) if one is idle,
    /// else builds a fresh one for `prog`. The caller must return it
    /// with [`put`](AutomataPool::put) to keep the warmth for the next
    /// evaluation.
    pub fn take(&self, prog: &CoreProgram) -> QueryAutomata {
        if let Some(mut qa) = self.idle.lock().expect("automata pool poisoned").pop() {
            qa.reset();
            self.reused.fetch_add(1, Ordering::Relaxed);
            return qa;
        }
        let t = Instant::now();
        let qa = QueryAutomata::new(prog);
        self.build_nanos
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.builds.fetch_add(1, Ordering::Relaxed);
        qa
    }

    /// Returns an automata to the pool, keeping its interned tables warm
    /// for the next `take`.
    pub fn put(&self, qa: QueryAutomata) {
        let mut idle = self.idle.lock().expect("automata pool poisoned");
        if idle.len() < POOL_IDLE_CAP {
            idle.push(qa);
        }
    }

    /// Automata built from scratch over the pool's lifetime.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Warm automata handed back out over the pool's lifetime.
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Cumulative wall time spent constructing automata from scratch.
    pub fn build_time(&self) -> Duration {
        Duration::from_nanos(self.build_nanos.load(Ordering::Relaxed))
    }

    /// Currently idle (warm) automata.
    pub fn idle_len(&self) -> usize {
        self.idle.lock().expect("automata pool poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_logic::Program;
    use arb_tmnf::{normalize, parse_program};
    use arb_tree::LabelTable;

    /// Paper Examples 4.5 and 4.7: the three-node chain <a><a><a/></a></a>
    /// with the program of Example 4.3.
    #[test]
    fn examples_4_5_and_4_7() {
        let mut lt = LabelTable::new();
        let ast = parse_program(arb_tmnf::programs::EXAMPLE_4_3, &mut lt).unwrap();
        let prog = normalize(&ast);
        let mut qa = QueryAutomata::new(&prog);
        let a = lt.intern("a").unwrap();

        let leaf = NodeInfo {
            label: a,
            has_first: false,
            has_second: false,
            is_root: false,
        };
        let mid = NodeInfo {
            label: a,
            has_first: true,
            has_second: false,
            is_root: false,
        };
        let root = NodeInfo {
            label: a,
            has_first: true,
            has_second: false,
            is_root: true,
        };

        let id = |n: &str| prog.pred_id(n).unwrap();

        // ρA(v2) = {P4 ← P3}
        let s2 = qa.bottom_up(None, None, leaf);
        let p = qa.programs.get(s2).clone();
        assert_eq!(
            p,
            Program::canonical(vec![Rule::new(
                Atom::local(id("P4")),
                vec![Atom::local(id("P3"))]
            )])
        );

        // ρA(v1) = {P5 ← P2}
        let s1 = qa.bottom_up(Some(s2), None, mid);
        assert_eq!(
            qa.programs.get(s1).clone(),
            Program::canonical(vec![Rule::new(
                Atom::local(id("P5")),
                vec![Atom::local(id("P2"))]
            )])
        );

        // ρA(v0) = {P1 ←; Q ←}
        let s0 = qa.bottom_up(Some(s1), None, root);
        assert_eq!(
            qa.programs.get(s0).clone(),
            Program::canonical(vec![
                Rule::fact(Atom::local(id("P1"))),
                Rule::fact(Atom::local(id("Q")))
            ])
        );

        // Example 4.7 top-down: {P1,Q} at v0; {P2,P5} at v1; {P3,P4} at v2.
        let b0 = qa.start_state(s0);
        let atoms = |s: PredSetId, qa: &QueryAutomata| -> Vec<u32> {
            qa.predsets
                .get(s)
                .atoms()
                .iter()
                .map(|a| a.pred())
                .collect()
        };
        assert_eq!(atoms(b0, &qa), vec![id("P1"), id("Q")]);
        let b1 = qa.top_down(b0, s1, 1);
        assert_eq!(atoms(b1, &qa), vec![id("P2"), id("P5")]);
        let b2 = qa.top_down(b1, s2, 1);
        assert_eq!(atoms(b2, &qa), vec![id("P3"), id("P4")]);

        // Transition counts: 3 bottom-up, 2 top-down, all distinct.
        assert_eq!(qa.bu_transitions, 3);
        assert_eq!(qa.td_transitions, 2);

        // Memoization: repeating costs nothing.
        qa.bottom_up(None, None, leaf);
        qa.top_down(b0, s1, 1);
        assert_eq!(qa.bu_transitions, 3);
        assert_eq!(qa.td_transitions, 2);
        assert!(qa.memory_bytes() > 0);

        // The interning-pressure report matches the tables.
        let s = qa.intern_stats();
        assert_eq!(s.bu_entries, 3);
        assert_eq!(s.td_entries, 2);
        assert_eq!(s.alphabet_symbols, 3, "leaf, mid, root symbols");
        assert!(s.arena_bytes > 0 && s.table_bytes > 0);
    }

    /// Satellite regression: with memoization disabled the δ tables must
    /// stay *empty* — the old code skipped only the lookup, so the
    /// "no hash tables" ablation still paid insert cost and memo memory.
    #[test]
    fn disabled_cache_inserts_nothing() {
        let mut lt = LabelTable::new();
        let ast = parse_program(arb_tmnf::programs::EXAMPLE_4_3, &mut lt).unwrap();
        let prog = normalize(&ast);
        let mut qa = QueryAutomata::new(&prog);
        qa.set_cache_enabled(false);
        let a = lt.intern("a").unwrap();
        let leaf = NodeInfo {
            label: a,
            has_first: false,
            has_second: false,
            is_root: false,
        };
        let s = qa.bottom_up(None, None, leaf);
        let s2 = qa.bottom_up(None, None, leaf);
        assert_eq!(s, s2, "states are still interned deterministically");
        assert_eq!(qa.bu_transitions, 2, "every call recomputes");
        let b = qa.start_state(s);
        qa.top_down(b, s, 1);
        qa.top_down(b, s, 1);
        assert_eq!(qa.td_transitions, 2);
        let st = qa.intern_stats();
        assert_eq!(st.bu_entries, 0, "δ_A table stays empty when disabled");
        assert_eq!(st.td_entries, 0, "δ_B table stays empty when disabled");

        // Re-enabling resumes memoization.
        qa.set_cache_enabled(true);
        qa.bottom_up(None, None, leaf);
        qa.bottom_up(None, None, leaf);
        assert_eq!(qa.bu_transitions, 3, "one miss after re-enable");
        assert_eq!(qa.intern_stats().bu_entries, 1);
    }

    /// `reset` zeroes the per-run counters but keeps every memo warm: a
    /// rerun over the same inputs reports zero lazily computed
    /// transitions, and the pool accounts builds vs. reuses.
    #[test]
    fn reset_keeps_memos_warm_and_pool_counts() {
        let mut lt = LabelTable::new();
        let ast = parse_program(arb_tmnf::programs::EXAMPLE_4_3, &mut lt).unwrap();
        let prog = normalize(&ast);
        let a = lt.intern("a").unwrap();
        let leaf = NodeInfo {
            label: a,
            has_first: false,
            has_second: false,
            is_root: true,
        };

        let pool = AutomataPool::new();
        let mut qa = pool.take(&prog);
        assert_eq!((pool.builds(), pool.reused()), (1, 0));
        let s = qa.bottom_up(None, None, leaf);
        let b = qa.start_state(s);
        qa.top_down(b, s, 1);
        assert_eq!(qa.bu_transitions, 1);
        let entries = qa.intern_stats();
        pool.put(qa);

        let mut qa = pool.take(&prog);
        assert_eq!((pool.builds(), pool.reused()), (1, 1));
        assert_eq!(qa.bu_transitions, 0, "per-run counter cleared");
        assert_eq!(qa.td_transitions, 0);
        assert_eq!(qa.intern_stats(), entries, "memos survive the reset");
        let s2 = qa.bottom_up(None, None, leaf);
        assert_eq!(s2, s, "warm table answers without recomputing");
        assert_eq!(qa.bu_transitions, 0, "pure cache hit on the warm run");
        pool.put(qa);
        assert_eq!(pool.idle_len(), 1);
    }
}
