//! The lazily-computed deterministic automata `A` and `B` (paper
//! Section 4, Figures 2 and 3).
//!
//! States of the bottom-up automaton `A` are interned residual programs;
//! states of the top-down automaton `B` are interned predicate sets.
//! Transitions are computed on demand by `ComputeReachableStates` and
//! `ComputeTruePreds` and memoized in hash tables — the paper's "in total,
//! we use four hash tables to store and quickly access the states and
//! transitions of the two automata", and its remedy for the potentially
//! exponential automaton sizes ("they are best computed lazily").

use arb_logic::{
    contract_rules, ltur, ltur_facts, ltur_residual, Atom, FxHashMap, LturScratch, PredSet,
    PredSetId, PredSetInterner, Program, ProgramId, ProgramInterner, Rule,
};
use arb_tmnf::{CoreProgram, PropLocal};
use arb_tree::NodeInfo;

// (The raw `NodeInfo::symbol_key` is label-resolved; the automata use
// the coarser schema abstraction below instead.)

/// The lazy automata pair for one TMNF program: everything that persists
/// across the two phases of Algorithm 4.6. Holds the four hash tables
/// (two state interners + two transition tables) plus the partitioned
/// `PropLocal(P)` clause groups and LTUR scratch space.
pub struct QueryAutomata {
    /// The compiled propositional clause groups (Definition 4.2).
    pl: PropLocal,
    /// EDB atom registry from the program (index = `Atom::edb` index).
    edbs: Vec<arb_tmnf::EdbAtom>,
    /// Interner for residual programs — the states `Q_A`.
    pub programs: ProgramInterner,
    /// Interner for true-predicate sets — the states `Q_B`.
    pub predsets: PredSetInterner,
    /// δ_A: `(s1+1|0, s2+1|0, schema symbol) → state` (0 encodes ⊥).
    bu_cache: FxHashMap<(u32, u32, u128), ProgramId>,
    /// δ_B: `(parent predset, child program state, k) → predset`.
    td_cache: FxHashMap<(u32, u32, u8), PredSetId>,
    /// `local_rules` specialized per schema symbol (EDB truth vector).
    local_by_sym: FxHashMap<u128, Vec<Rule>>,
    scratch: LturScratch,
    /// Memoization switch (true in production; the `ablation` benchmark
    /// disables it to quantify the paper's lazy-hash-table design).
    cache_enabled: bool,
    /// Lazily computed transitions of `A` (paper Fig. 6 column 5).
    pub bu_transitions: u64,
    /// Lazily computed transitions of `B` (paper Fig. 6 column 7).
    pub td_transitions: u64,
}

impl QueryAutomata {
    /// Compiles the automata skeleton for a strict TMNF program.
    pub fn new(prog: &CoreProgram) -> Self {
        QueryAutomata {
            pl: PropLocal::build(prog),
            edbs: prog.edbs().to_vec(),
            programs: ProgramInterner::new(),
            predsets: PredSetInterner::new(),
            bu_cache: FxHashMap::default(),
            td_cache: FxHashMap::default(),
            local_by_sym: FxHashMap::default(),
            scratch: LturScratch::new(),
            cache_enabled: true,
            bu_transitions: 0,
            td_transitions: 0,
        }
    }

    /// The automaton input symbol of a node: the truth vector of the
    /// program's EDB schema σ at that node (the alphabet Σ_A = 2^σ of
    /// paper Section 4). Nodes that agree on every EDB atom *mentioned by
    /// the query* are indistinguishable — this is what keeps the number
    /// of lazily computed transitions tiny even on databases with
    /// hundreds of distinct labels (paper Figure 6, Treebank).
    #[inline]
    pub fn schema_symbol(&self, info: &NodeInfo) -> u128 {
        debug_assert!(
            self.edbs.len() <= 128,
            "schema abstraction supports up to 128 EDB atoms per query"
        );
        let mut mask = 0u128;
        for (i, atom) in self.edbs.iter().enumerate() {
            if atom.eval(info) {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Specializes `local_rules ∪ PredsAsRules(labels)` for a schema
    /// symbol: rules whose bodies contain a *false* EDB atom are dropped,
    /// *true* EDB atoms are stripped. Equivalent to inserting the label
    /// facts and letting LTUR prune (paper Figure 2), but computed once
    /// per distinct symbol.
    fn local_rules_for(&mut self, key: u128) -> &[Rule] {
        if !self.local_by_sym.contains_key(&key) {
            let mut out: Vec<Rule> = Vec::with_capacity(self.pl.local.len());
            'rules: for r in &self.pl.local {
                let mut body: Vec<Atom> = Vec::with_capacity(r.body.len());
                for &a in r.body.iter() {
                    if a.is_edb() {
                        if key & (1 << a.pred()) != 0 {
                            continue; // true EDB atom: strip
                        }
                        continue 'rules; // false EDB atom: drop rule
                    }
                    body.push(a);
                }
                out.push(Rule::new(r.head, body));
            }
            self.local_by_sym.insert(key, out);
        }
        self.local_by_sym.get(&key).expect("just inserted")
    }

    /// `ComputeReachableStates` (paper Figure 2), memoized: the transition
    /// function δ_A of the deterministic bottom-up automaton. `None`
    /// encodes the pseudo-state ⊥ for a missing child.
    pub fn bottom_up(
        &mut self,
        s1: Option<ProgramId>,
        s2: Option<ProgramId>,
        info: NodeInfo,
    ) -> ProgramId {
        let key = (
            s1.map_or(0, |s| s.0 + 1),
            s2.map_or(0, |s| s.0 + 1),
            self.schema_symbol(&info),
        );
        if self.cache_enabled {
            if let Some(&id) = self.bu_cache.get(&key) {
                return id;
            }
        }
        self.bu_transitions += 1;

        // P := local_rules ∪ PredsAsRules(labels)  [pre-specialized]
        self.local_rules_for(key.2);
        let local = self.local_by_sym.get(&key.2).expect("specialized");

        // if (P^1_res ≠ ⊥) then P := P ∪ left_rules ∪ PushDown₁(P¹res)
        let down1: Vec<Rule>;
        let down2: Vec<Rule>;
        let mut parts: Vec<&[Rule]> = vec![local.as_slice()];
        if let Some(s1) = s1 {
            parts.push(&self.pl.left);
            down1 = self.programs.get(s1).push_down(1);
            parts.push(&down1);
        }
        if let Some(s2) = s2 {
            parts.push(&self.pl.right);
            down2 = self.programs.get(s2).push_down(2);
            parts.push(&down2);
        }

        // P := LTUR(P); contract if any child exists. The two steps are
        // fused: the large pre-contraction residual is never
        // canonicalized (only the contracted result is interned).
        let res = if s1.is_some() || s2.is_some() {
            let mut raw = Vec::new();
            ltur_residual(&parts, &mut self.scratch, &mut raw);
            contract_rules(&raw)
        } else {
            ltur(&parts, &mut self.scratch)
        };
        let id = self.programs.intern(res);
        self.bu_cache.insert(key, id);
        id
    }

    /// The start state `s_B = ⋂ ρ_A(Root)` of the top-down automaton: the
    /// predicates true in all reachable states at the root, i.e. the facts
    /// of the root's residual program (`TruePreds`).
    pub fn start_state(&mut self, root: ProgramId) -> PredSetId {
        let set: PredSet = self.programs.get(root).true_preds().collect();
        self.predsets.intern(set)
    }

    /// `ComputeTruePreds` (paper Figure 3), memoized: the transition
    /// functions δ_B^k of the top-down automaton. Given the parent's true
    /// predicates and the child's phase-1 residual program, returns the
    /// child's true predicates.
    pub fn top_down(&mut self, parent: PredSetId, child: ProgramId, k: u8) -> PredSetId {
        debug_assert!(k == 1 || k == 2);
        let key = (parent.0, child.0, k);
        if self.cache_enabled {
            if let Some(&id) = self.td_cache.get(&key) {
                return id;
            }
        }
        self.td_transitions += 1;

        // P := downward_rules_k ∪ PredsAsRules(parent_preds) ∪ PushDown_k(P_res)
        let downward: &[Rule] = if k == 1 {
            &self.pl.down1
        } else {
            &self.pl.down2
        };
        let parent_facts =
            Program::preds_as_rules(self.predsets.get(parent).atoms().iter().copied());
        let pushed = self.programs.get(child).push_down(k);
        // S := TruePreds(LTUR(P)); return PushUpFrom_k(Preds_k(S)).
        // Only the derived facts are needed — the residual is discarded.
        let mut facts = Vec::new();
        ltur_facts(
            &[downward, &parent_facts, &pushed],
            &mut self.scratch,
            &mut facts,
        );
        let set: PredSet = facts
            .into_iter()
            .filter(|a| a.sup_k() == Some(k))
            .map(Atom::push_up)
            .collect();
        let id = self.predsets.intern(set);
        self.td_cache.insert(key, id);
        id
    }

    /// True-predicate set membership helper.
    pub fn predset_contains(&self, id: PredSetId, pred: u32) -> bool {
        self.predsets.get(id).contains(Atom::local(pred))
    }

    /// Approximate main-memory footprint of the automata (interned states
    /// plus transition tables), in bytes — the paper's `mem` column.
    pub fn memory_bytes(&self) -> usize {
        let key_bytes = |n: usize, k: usize| n * (k + 8); // entries + overhead
        self.programs.byte_size()
            + self.predsets.byte_size()
            + key_bytes(self.bu_cache.len(), 16)
            + key_bytes(self.td_cache.len(), 12)
            + self
                .local_by_sym
                .values()
                .map(|v| v.iter().map(Rule::byte_size).sum::<usize>())
                .sum::<usize>()
    }

    /// Disables (or re-enables) transition memoization. With memoization
    /// off, every node recomputes its transition from scratch — the
    /// configuration the paper's lazy hash tables avoid.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
    }

    /// Number of interned bottom-up states.
    pub fn bu_state_count(&self) -> usize {
        self.programs.len()
    }

    /// Number of interned top-down states.
    pub fn td_state_count(&self) -> usize {
        self.predsets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_tmnf::{normalize, parse_program};
    use arb_tree::LabelTable;

    /// Paper Examples 4.5 and 4.7: the three-node chain <a><a><a/></a></a>
    /// with the program of Example 4.3.
    #[test]
    fn examples_4_5_and_4_7() {
        let mut lt = LabelTable::new();
        let ast = parse_program(arb_tmnf::programs::EXAMPLE_4_3, &mut lt).unwrap();
        let prog = normalize(&ast);
        let mut qa = QueryAutomata::new(&prog);
        let a = lt.intern("a").unwrap();

        let leaf = NodeInfo {
            label: a,
            has_first: false,
            has_second: false,
            is_root: false,
        };
        let mid = NodeInfo {
            label: a,
            has_first: true,
            has_second: false,
            is_root: false,
        };
        let root = NodeInfo {
            label: a,
            has_first: true,
            has_second: false,
            is_root: true,
        };

        let id = |n: &str| prog.pred_id(n).unwrap();

        // ρA(v2) = {P4 ← P3}
        let s2 = qa.bottom_up(None, None, leaf);
        let p = qa.programs.get(s2).clone();
        assert_eq!(
            p,
            Program::canonical(vec![Rule::new(
                Atom::local(id("P4")),
                vec![Atom::local(id("P3"))]
            )])
        );

        // ρA(v1) = {P5 ← P2}
        let s1 = qa.bottom_up(Some(s2), None, mid);
        assert_eq!(
            qa.programs.get(s1).clone(),
            Program::canonical(vec![Rule::new(
                Atom::local(id("P5")),
                vec![Atom::local(id("P2"))]
            )])
        );

        // ρA(v0) = {P1 ←; Q ←}
        let s0 = qa.bottom_up(Some(s1), None, root);
        assert_eq!(
            qa.programs.get(s0).clone(),
            Program::canonical(vec![
                Rule::fact(Atom::local(id("P1"))),
                Rule::fact(Atom::local(id("Q")))
            ])
        );

        // Example 4.7 top-down: {P1,Q} at v0; {P2,P5} at v1; {P3,P4} at v2.
        let b0 = qa.start_state(s0);
        let atoms = |s: PredSetId, qa: &QueryAutomata| -> Vec<u32> {
            qa.predsets
                .get(s)
                .atoms()
                .iter()
                .map(|a| a.pred())
                .collect()
        };
        assert_eq!(atoms(b0, &qa), vec![id("P1"), id("Q")]);
        let b1 = qa.top_down(b0, s1, 1);
        assert_eq!(atoms(b1, &qa), vec![id("P2"), id("P5")]);
        let b2 = qa.top_down(b1, s2, 1);
        assert_eq!(atoms(b2, &qa), vec![id("P3"), id("P4")]);

        // Transition counts: 3 bottom-up, 2 top-down, all distinct.
        assert_eq!(qa.bu_transitions, 3);
        assert_eq!(qa.td_transitions, 2);

        // Memoization: repeating costs nothing.
        qa.bottom_up(None, None, leaf);
        qa.top_down(b0, s1, 1);
        assert_eq!(qa.bu_transitions, 3);
        assert_eq!(qa.td_transitions, 2);
        assert!(qa.memory_bytes() > 0);
    }
}
