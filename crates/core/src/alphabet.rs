//! Dense interning of schema symbols — the automaton input alphabet
//! `Σ_A = 2^σ` (paper Section 4).
//!
//! The automaton input symbol of a node is the truth vector of the
//! program's EDB schema σ at that node: nodes that agree on every EDB
//! atom *mentioned by the query* are indistinguishable, which is what
//! keeps the number of lazily computed transitions tiny even on
//! databases with hundreds of distinct labels (paper Figure 6,
//! Treebank).
//!
//! Earlier revisions packed the truth vector into a `u128` and used it
//! directly as part of the δ_A key. That had two costs: the key was
//! 24+ bytes (hashed on *every node*), and programs with more than 128
//! EDB atoms — easily reached by merged multi-query batches — silently
//! aliased symbols (`1 << i` wraps in release builds). This interner
//! fixes both:
//!
//! * truth vectors are **arbitrary-width** bitsets in a flat `u64`
//!   arena, so a merged batch may mention any number of EDB atoms;
//! * each distinct vector gets a dense [`AlphabetId`] (`u32`), shrinking
//!   the δ_A key to 12 bytes;
//! * a packed-`NodeInfo` memo table answers the per-node symbol lookup
//!   with one small-key probe instead of evaluating all `|σ|` EDB atoms
//!   — the unmemoized path runs at most once per distinct
//!   (label, has_first, has_second, is_root) combination.

use arb_logic::{FxCache, RawTable};
use arb_tmnf::EdbAtom;
use arb_tree::NodeInfo;

/// Identifier of an interned schema symbol (a letter of `Σ_A`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AlphabetId(pub u32);

/// Packs the fields a schema symbol can depend on into one memo key:
/// the full 16-bit label index in bits 0–15, the three structural flags
/// from bit 16 up (flags must never move below bit 16 or labels would
/// alias). Public so the lazy automata can key their fused per-node
/// transition memo on it.
#[inline]
pub fn pack(info: &NodeInfo) -> u32 {
    info.label.0 as u32
        | (info.has_first as u32) << 16
        | (info.has_second as u32) << 17
        | (info.is_root as u32) << 18
}

/// Interner mapping EDB truth vectors to dense [`AlphabetId`]s, with a
/// per-`NodeInfo` memo in front (the per-node fast path).
pub struct AlphabetInterner {
    /// Packed [`NodeInfo`] → symbol id.
    memo: FxCache<u32>,
    /// Flat arena of truth vectors: `words_per_symbol` words per id.
    words: Vec<u64>,
    /// Fixed vector width (in `u64` words) for this program's schema.
    words_per_symbol: usize,
    /// Fx hash of each interned vector (id-parallel).
    hashes: Vec<u64>,
    table: RawTable,
    scratch: Vec<u64>,
}

impl AlphabetInterner {
    /// An interner for a schema of `edb_count` atoms.
    pub fn new(edb_count: usize) -> Self {
        AlphabetInterner {
            memo: FxCache::new(),
            words: Vec::new(),
            words_per_symbol: edb_count.div_ceil(64).max(1),
            hashes: Vec::new(),
            table: RawTable::new(),
            scratch: Vec::new(),
        }
    }

    #[inline]
    fn span(&self, id: u32) -> &[u64] {
        let start = id as usize * self.words_per_symbol;
        &self.words[start..start + self.words_per_symbol]
    }

    /// The symbol of a node: memo hit on the packed [`NodeInfo`], else
    /// evaluate the schema and intern the truth vector.
    #[inline]
    pub fn symbol(&mut self, edbs: &[EdbAtom], info: &NodeInfo) -> AlphabetId {
        let key = pack(info);
        if let Some(id) = self.memo.get(&key) {
            return AlphabetId(id);
        }
        self.symbol_slow(edbs, info, key)
    }

    fn symbol_slow(&mut self, edbs: &[EdbAtom], info: &NodeInfo, key: u32) -> AlphabetId {
        debug_assert!(edbs.len() <= self.words_per_symbol * 64);
        self.scratch.clear();
        self.scratch.resize(self.words_per_symbol, 0);
        for (i, atom) in edbs.iter().enumerate() {
            if atom.eval(info) {
                self.scratch[i >> 6] |= 1u64 << (i & 63);
            }
        }
        let hash = arb_logic::fx_hash(self.scratch.as_slice());
        let found = {
            let hashes = &self.hashes;
            let scratch = &self.scratch;
            self.table.find(hash, |id| {
                hashes[id as usize] == hash && self.span(id) == scratch.as_slice()
            })
        };
        let id = match found {
            Some(id) => id,
            None => {
                let id = self.hashes.len() as u32;
                self.words.extend_from_slice(&self.scratch);
                self.hashes.push(hash);
                let hashes = &self.hashes;
                self.table.insert(hash, id, |i| hashes[i as usize]);
                id
            }
        };
        self.memo.insert(key, id);
        AlphabetId(id)
    }

    /// Whether EDB atom `i` is true under symbol `id`.
    #[inline]
    pub fn bit(&self, id: AlphabetId, i: u32) -> bool {
        self.span(id.0)[(i >> 6) as usize] >> (i & 63) & 1 != 0
    }

    /// Number of distinct symbols interned (`|Σ_A|` reached so far).
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True if no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Heap footprint (vector arena, hashes, memo, slot array), in bytes.
    pub fn byte_size(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
            + self.hashes.capacity() * std::mem::size_of::<u64>()
            + self.table.byte_size()
            + self.memo.byte_size()
    }

    /// Longest probe sequence across the memo and vector tables.
    pub fn max_probe(&self) -> u32 {
        self.memo.max_probe().max(self.table.max_probe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_tree::LabelId;

    fn info(label: u16, has_first: bool, has_second: bool, is_root: bool) -> NodeInfo {
        NodeInfo {
            label: LabelId(label),
            has_first,
            has_second,
            is_root,
        }
    }

    #[test]
    fn schema_abstraction_collapses_unmentioned_labels() {
        // σ = {Label[300], Leaf}: nodes labelled 301 and 302 agree on both
        // atoms and must share one symbol; label 300 gets its own.
        let edbs = vec![EdbAtom::Label(LabelId(300)), EdbAtom::Leaf];
        let mut a = AlphabetInterner::new(edbs.len());
        let s301 = a.symbol(&edbs, &info(301, false, false, false));
        let s302 = a.symbol(&edbs, &info(302, false, false, false));
        let s300 = a.symbol(&edbs, &info(300, false, false, false));
        assert_eq!(s301, s302);
        assert_ne!(s300, s301);
        assert_eq!(a.len(), 2);
        assert!(a.bit(s300, 0) && a.bit(s300, 1));
        assert!(!a.bit(s301, 0) && a.bit(s301, 1));
        // Memo hits return the same id without re-interning.
        assert_eq!(a.symbol(&edbs, &info(301, false, false, false)), s301);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn wide_schema_does_not_alias() {
        // > 128 EDB atoms: bit i of the truth vector must stay atom i's,
        // with no u128 wrap-around (Label[i] vs Label[i+128] aliased under
        // the old mask).
        let n = 200u16;
        let edbs: Vec<EdbAtom> = (0..n).map(|i| EdbAtom::Label(LabelId(300 + i))).collect();
        let mut a = AlphabetInterner::new(edbs.len());
        let mut ids = Vec::new();
        for i in 0..n {
            let s = a.symbol(&edbs, &info(300 + i, false, false, false));
            assert!(a.bit(s, i as u32), "atom {i} true under its own label");
            for j in 0..n {
                assert_eq!(a.bit(s, j as u32), i == j, "symbol {i}, atom {j}");
            }
            ids.push(s);
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n as usize, "all {n} symbols distinct");
    }

    #[test]
    fn empty_schema_has_one_symbol() {
        let mut a = AlphabetInterner::new(0);
        let s1 = a.symbol(&[], &info(1, true, false, true));
        let s2 = a.symbol(&[], &info(2, false, true, false));
        assert_eq!(s1, s2);
        assert_eq!(a.len(), 1);
    }
}
