//! Frontier picking for parallel evaluation (paper §6.2), shared by the
//! in-memory and the disk backends.
//!
//! "Tree automata (working on binary trees) naturally admit parallel
//! processing": computations in distinct subtrees are completely
//! independent, so a run can be split at a *frontier* — a set of
//! disjoint subtree roots covering most of the tree — and the remaining
//! uncovered nodes (the *spine*: exactly the ancestors that were split,
//! a handful of nodes) evaluated sequentially.
//!
//! The only structure frontier picking needs is each node's preorder
//! subtree extent plus its child flags. [`SubtreeIndex`] holds those and
//! can be built either from a materialized [`BinaryTree`]
//! ([`SubtreeIndex::from_tree`], the in-memory path) or from the raw
//! arrays of a one-pass backward metadata scan over an `.arb` record
//! stream ([`SubtreeIndex::from_parts`]; see
//! `arb_storage::subtree_extents` — the disk path, which never
//! materializes the tree).

use arb_tree::BinaryTree;
use std::borrow::Cow;

/// Bit 0 of a `kinds` entry: the node has a first child.
pub const HAS_FIRST: u8 = 1;
/// Bit 1 of a `kinds` entry: the node has a second child.
pub const HAS_SECOND: u8 = 1 << 1;

/// Preorder subtree extents and child flags of a binary tree — the
/// structural skeleton (no labels) that frontier picking and sharded
/// range planning run on. Node `v`'s subtree is exactly the preorder
/// window `[v, end(v))`. Holds its arrays by [`Cow`] so a per-database
/// cached copy (the disk path) is planned against without duplicating
/// 5 bytes/node per run.
pub struct SubtreeIndex<'a> {
    ends: Cow<'a, [u32]>,
    kinds: Cow<'a, [u8]>,
}

impl SubtreeIndex<'static> {
    /// Builds the index from a materialized tree.
    pub fn from_tree(tree: &BinaryTree) -> Self {
        let n = tree.len();
        let mut ends = vec![0u32; n];
        let mut kinds = vec![0u8; n];
        for ix in (0..n as u32).rev() {
            let v = arb_tree::NodeId(ix);
            ends[ix as usize] = if let Some(c) = tree.second_child(v) {
                ends[c.ix()]
            } else if let Some(c) = tree.first_child(v) {
                ends[c.ix()]
            } else {
                ix + 1
            };
            kinds[ix as usize] =
                (tree.has_first(v) as u8 * HAS_FIRST) | (tree.has_second(v) as u8 * HAS_SECOND);
        }
        SubtreeIndex::from_parts(ends, kinds)
    }
}

impl<'a> SubtreeIndex<'a> {
    /// Builds the index from raw extent/flag arrays, owned or borrowed
    /// (the disk path borrows the database's cached metadata-scan
    /// result). `ends[v]` is one past the last node of `v`'s subtree;
    /// `kinds[v]` uses [`HAS_FIRST`] and [`HAS_SECOND`].
    pub fn from_parts(ends: impl Into<Cow<'a, [u32]>>, kinds: impl Into<Cow<'a, [u8]>>) -> Self {
        let (ends, kinds) = (ends.into(), kinds.into());
        debug_assert_eq!(ends.len(), kinds.len());
        SubtreeIndex { ends, kinds }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// True for the (degenerate) empty index.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// One past the last node of `v`'s subtree.
    pub fn end(&self, v: u32) -> u32 {
        self.ends[v as usize]
    }

    /// Number of nodes in `v`'s subtree.
    pub fn size(&self, v: u32) -> u32 {
        self.ends[v as usize] - v
    }

    /// `v`'s first child (which is `v + 1` in preorder), if any.
    pub fn first_child(&self, v: u32) -> Option<u32> {
        (self.kinds[v as usize] & HAS_FIRST != 0).then_some(v + 1)
    }

    /// `v`'s second child: past the first child's subtree, or `v + 1`
    /// when there is no first child.
    pub fn second_child(&self, v: u32) -> Option<u32> {
        (self.kinds[v as usize] & HAS_SECOND != 0).then(|| match self.first_child(v) {
            Some(c) => self.ends[c as usize],
            None => v + 1,
        })
    }

    /// Picks a frontier of disjoint subtree roots covering most of the
    /// tree, by repeatedly splitting the largest region until `target`
    /// pieces exist or pieces become too small. The returned roots are
    /// sorted; every node outside their subtrees (the spine — exactly
    /// the split ancestors, at most `target − 1` nodes) is an ancestor
    /// of some root. A result of `[0]` alone means no useful frontier
    /// exists (tiny or degenerate trees) — callers fall back to
    /// sequential evaluation.
    pub fn frontier(&self, target: usize) -> Vec<u32> {
        let n = self.len() as u32;
        // Clamp: a pathological target must not wrap the u32 math below
        // (`n / 0` panics), and more pieces than this is never useful.
        let target = target.clamp(1, 4096);
        let mut pieces: Vec<u32> = vec![0];
        let min_piece = (n / (target as u32 * 4)).max(512);
        while pieces.len() < target {
            // Split the largest piece into its children.
            let (i, &v) = match pieces.iter().enumerate().max_by_key(|(_, &v)| self.size(v)) {
                Some(x) => x,
                None => break,
            };
            if self.size(v) < min_piece * 2 {
                break;
            }
            let kids: Vec<u32> = [self.first_child(v), self.second_child(v)]
                .into_iter()
                .flatten()
                .collect();
            if kids.is_empty() {
                break;
            }
            pieces.swap_remove(i);
            pieces.extend(kids);
            // Note: the split node v itself moves to the sequential spine.
        }
        pieces.sort_unstable();
        pieces
    }

    /// The spine of a frontier: all nodes not covered by any root's
    /// subtree, in preorder. Closed under taking parents (a split node's
    /// parent is itself a split node or absent), so a sequential pass
    /// over it sees parents before children in preorder and children
    /// before parents in reverse.
    pub fn spine(&self, roots: &[u32]) -> Vec<u32> {
        let mut spine = Vec::new();
        let mut next = 0u32;
        for &r in roots {
            spine.extend(next..r);
            next = next.max(self.end(r));
        }
        spine.extend(next..self.len() as u32);
        spine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_tree::{infix::infix_tree, LabelId, LabelTable, NodeId};

    fn balanced_tree(len: u32) -> BinaryTree {
        let mut lt = LabelTable::new();
        let root = lt.intern("r").unwrap();
        let seq: Vec<LabelId> = (0..len).map(|i| LabelId((i % 4) as u16)).collect();
        infix_tree(root, &seq)
    }

    #[test]
    fn subtree_index_is_consistent() {
        let t = balanced_tree(31);
        let idx = SubtreeIndex::from_tree(&t);
        assert_eq!(idx.end(0), t.len() as u32);
        for v in t.nodes() {
            assert_eq!(idx.first_child(v.0), t.first_child(v).map(|c| c.0));
            assert_eq!(idx.second_child(v.0), t.second_child(v).map(|c| c.0));
            for c in [t.first_child(v), t.second_child(v)].into_iter().flatten() {
                assert!(c.0 > v.0 && idx.end(c.0) <= idx.end(v.0));
            }
        }
    }

    #[test]
    fn frontier_covers_all_but_the_spine_of_split_ancestors() {
        let t = balanced_tree(4095);
        let idx = SubtreeIndex::from_tree(&t);
        let roots = idx.frontier(8);
        assert!(roots.len() > 1, "balanced tree must admit a frontier");

        // Roots are sorted, disjoint, and non-empty subtrees.
        for w in roots.windows(2) {
            assert!(idx.end(w[0]) <= w[1], "subtrees overlap");
        }

        // The spine is exactly the complement, closed under parents.
        let spine = idx.spine(&roots);
        assert_eq!(
            spine.len() + roots.iter().map(|&r| idx.size(r) as usize).sum::<usize>(),
            idx.len()
        );
        assert!(spine.len() < 8 * 2, "spine is a handful of split nodes");
        for &s in &spine {
            if let Some(p) = t.parent(NodeId(s)) {
                assert!(spine.binary_search(&p.0).is_ok(), "spine parent-closed");
            }
        }
        // Every root's parent is on the spine.
        for &r in &roots {
            let p = t.parent(NodeId(r)).expect("roots are not the tree root");
            assert!(spine.binary_search(&p.0).is_ok());
        }
    }

    #[test]
    fn tiny_trees_yield_no_frontier() {
        let t = balanced_tree(7);
        let idx = SubtreeIndex::from_tree(&t);
        assert_eq!(idx.frontier(4), vec![0]);
        assert!(idx.spine(&[0]).is_empty());
    }

    /// Pathological targets (e.g. `--threads 2^30` → `target = 2^32`,
    /// whose `as u32` truncation used to divide by zero) are clamped.
    #[test]
    fn absurd_targets_are_clamped_not_panicking() {
        let t = balanced_tree(4095);
        let idx = SubtreeIndex::from_tree(&t);
        for target in [0usize, 1 << 30, 1 << 32, usize::MAX] {
            let roots = idx.frontier(target);
            assert!(!roots.is_empty());
        }
    }
}
